// Grand tour: a geometrically modeled home running several applications
// at once, narrated through a day of faults.
//
// Demonstrates the pieces working together:
//   * HomeTopology derives which host hears which device (range + walls),
//   * three applications (intrusion detection, temperature HVAC with
//     coordinated polling, energy billing with replicated state) share
//     the same five Rivulet processes,
//   * crash, sensor death, and a router partition hit mid-run.
//
// Build & run:  ./build/examples/smart_home_tour
#include <cstdio>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"
#include "workload/topology.hpp"

int main() {
  using namespace riv;

  workload::HomeDeployment::Options options;
  options.seed = 77;
  options.n_processes = 5;
  workload::HomeDeployment home(options);

  // --- geometry: devices placed in rooms, links derived from physics ---
  workload::HomeTopology topo = workload::sample_home(home.processes());

  devices::SensorSpec front_door;
  front_door.id = SensorId{1};
  front_door.name = "front-door";
  front_door.kind = devices::SensorKind::kDoor;
  front_door.tech = devices::Technology::kZigbee;
  front_door.rate_hz = 0.3;
  home.bus().add_sensor(front_door);
  topo.place_sensor(front_door.id, {0.5, 4.5});  // by the entrance

  devices::SensorSpec back_door = front_door;
  back_door.id = SensorId{2};
  back_door.name = "back-door";
  back_door.rate_hz = 0.1;
  home.bus().add_sensor(back_door);
  topo.place_sensor(back_door.id, {15.5, 5.5});  // kitchen exit

  devices::SensorSpec thermometer;
  thermometer.id = SensorId{3};
  thermometer.name = "hallway-thermometer";
  thermometer.kind = devices::SensorKind::kTemperature;
  thermometer.tech = devices::Technology::kZWave;
  thermometer.push = false;
  thermometer.poll_latency = milliseconds(400);
  thermometer.value_base = 20.0;
  thermometer.value_amplitude = 4.0;
  thermometer.value_period = minutes(10);  // a fast "day" for the demo
  home.bus().add_sensor(thermometer);
  topo.place_sensor(thermometer.id, {9.0, 5.0});

  devices::SensorSpec meter;
  meter.id = SensorId{4};
  meter.name = "house-meter";
  meter.kind = devices::SensorKind::kEnergy;
  meter.tech = devices::Technology::kIp;
  meter.payload_size = 8;
  meter.rate_hz = 1.0;
  meter.value_base = 900.0;
  meter.value_amplitude = 300.0;
  meter.value_period = minutes(5);
  home.bus().add_sensor(meter);
  topo.place_sensor(meter.id, {8.0, 0.5});

  devices::ActuatorSpec siren;
  siren.id = ActuatorId{1};
  siren.name = "siren";
  siren.tech = devices::Technology::kZWave;
  home.bus().add_actuator(siren);
  topo.place_actuator(siren.id, {8.5, 4.5});

  devices::ActuatorSpec hvac;
  hvac.id = ActuatorId{2};
  hvac.name = "hvac";
  hvac.tech = devices::Technology::kIp;
  home.bus().add_actuator(hvac);
  topo.place_actuator(hvac.id, {10.0, 1.0});

  devices::ActuatorSpec bill;
  bill.id = ActuatorId{3};
  bill.name = "billing-display";
  bill.tech = devices::Technology::kIp;
  home.bus().add_actuator(bill);
  topo.place_actuator(bill.id, {2.0, 4.0});

  topo.wire(home.bus());

  std::printf("Derived connectivity (range + walls):\n");
  for (SensorId s : home.bus().sensors()) {
    std::printf("  %-22s heard by:", home.bus().sensor(s).spec().name.c_str());
    for (ProcessId p : home.bus().processes_in_range(s))
      std::printf(" %s", to_string(p).c_str());
    std::printf("\n");
  }

  // --- applications -----------------------------------------------------
  home.deploy(workload::apps::intrusion_detection(
      AppId{1}, {SensorId{1}, SensorId{2}}, ActuatorId{1}));
  home.deploy(workload::apps::temperature_hvac(
      AppId{2}, SensorId{3}, ActuatorId{2}, seconds(10), 19.0, 23.0));
  home.deploy(workload::apps::energy_billing(
      AppId{3}, SensorId{4}, ActuatorId{3}, seconds(30), 0.28));
  home.start();

  auto report = [&](const char* phase) {
    std::printf("\n[%s]\n", phase);
    std::printf("  siren alarms   : %llu\n",
                static_cast<unsigned long long>(
                    home.bus().actuator(ActuatorId{1}).actions()));
    std::printf("  HVAC commands  : %llu (state %+.0f)\n",
                static_cast<unsigned long long>(
                    home.bus().actuator(ActuatorId{2}).actions()),
                home.bus().actuator(ActuatorId{2}).state());
    std::printf("  billing updates: %llu (last %.4f $/window)\n",
                static_cast<unsigned long long>(
                    home.bus().actuator(ActuatorId{3}).actions()),
                home.bus().actuator(ActuatorId{3}).state());
    std::printf("  thermometer polls: %llu (dropped %llu)\n",
                static_cast<unsigned long long>(
                    home.bus().sensor(SensorId{3}).polls_received()),
                static_cast<unsigned long long>(
                    home.bus().sensor(SensorId{3}).polls_dropped()));
  };

  home.run_for(minutes(2));
  report("2 min: healthy");

  home.process(0).crash();  // the hub dies
  home.run_for(minutes(2));
  report("4 min: hub crashed (apps failed over)");

  home.process(0).recover();
  home.net().set_partition({{home.pid(0), home.pid(1), home.pid(4)},
                            {home.pid(2), home.pid(3)}});
  home.run_for(minutes(2));
  report("6 min: hub back, WiFi partitioned");

  home.net().heal_partition();
  home.bus().sensor(SensorId{1}).crash();  // the front door sensor dies
  home.run_for(minutes(2));
  report("8 min: healed; front-door sensor dead (back door still alerts)");
  return 0;
}
