// Intrusion detection — the paper's Listing 1, with fault injection.
//
// Four Z-Wave door/window sensors guard a home; a siren must sound on any
// door-open event. The app declares FTCombiner(n-1) — any single sensor
// suffices — and the Gapless guarantee, so the alarm fires even when:
//   * sensor-process links lose 20% of transmissions,
//   * the process hosting the logic node crashes mid-burglary,
//   * individual door sensors die.
//
// Build & run:  ./build/examples/intrusion_detection
#include <cstdio>
#include <vector>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

int main() {
  using namespace riv;

  workload::HomeDeployment::Options options;
  options.seed = 1234;
  options.n_processes = 5;  // hub, TV, fridge, oven, washer
  workload::HomeDeployment home(options);

  // Four door sensors scattered through the house; lossy radio links to
  // two or three processes each.
  std::vector<SensorId> doors;
  for (std::uint16_t i = 1; i <= 4; ++i) {
    devices::SensorSpec spec;
    spec.id = SensorId{i};
    spec.name = "door-" + std::to_string(i);
    spec.kind = devices::SensorKind::kDoor;
    spec.tech = devices::Technology::kZWave;
    spec.rate_hz = 0.2;  // a door event every ~5 s somewhere
    spec.pattern = devices::EmitPattern::kPoisson;
    devices::LinkParams lossy;
    lossy.loss_prob = 0.2;
    std::vector<ProcessId> reachable = {home.pid(i % 5),
                                        home.pid((i + 2) % 5)};
    home.add_sensor(spec, reachable, lossy);
    doors.push_back(spec.id);
  }

  devices::ActuatorSpec siren;
  siren.id = ActuatorId{1};
  siren.name = "siren";
  siren.tech = devices::Technology::kIp;
  home.add_actuator(siren, {home.pid(0), home.pid(1)});

  // Listing 1: Gapless + CountWindow(1) + FTCombiner(n-1).
  home.deploy(workload::apps::intrusion_detection(AppId{1}, doors,
                                                  ActuatorId{1}));
  home.start();

  std::printf("phase 1: all healthy (60 s)\n");
  home.run_for(seconds(60));
  const devices::Actuator& alarm = home.bus().actuator(ActuatorId{1});
  std::printf("  door events: %llu   siren actions: %llu\n\n",
              static_cast<unsigned long long>(
                  home.metrics().counter_value("app1.delivered")),
              static_cast<unsigned long long>(alarm.actions()));

  std::printf("phase 2: the app-bearing process crashes (60 s)\n");
  core::RivuletProcess* active = home.active_logic_process(AppId{1});
  std::uint64_t before = alarm.actions();
  active->crash();
  home.run_for(seconds(60));
  std::printf("  siren actions while the old host was down: +%llu\n",
              static_cast<unsigned long long>(alarm.actions() - before));
  core::RivuletProcess* now = home.active_logic_process(AppId{1});
  std::printf("  logic failed over from %s to %s\n\n",
              to_string(active->id()).c_str(),
              now != nullptr ? to_string(now->id()).c_str() : "none");

  std::printf("phase 3: three of four door sensors die (60 s)\n");
  before = alarm.actions();
  for (std::uint16_t i = 1; i <= 3; ++i)
    home.bus().sensor(SensorId{i}).crash();
  home.run_for(seconds(60));
  std::printf("  siren still fires on the last sensor: +%llu actions\n",
              static_cast<unsigned long long>(alarm.actions() - before));
  std::printf(
      "  (FTCombiner(n-1): the app tolerates n-1 sensor failures)\n");
  return 0;
}
