// Quickstart: the paper's §3.2 running example.
//
//   DoorSensor => TurnLightOnOff => LightActuator
//
// A three-host home (TV, fridge, hub): the door sensor is reachable from
// the TV and the fridge, the light only from the hub. Rivulet places the
// active logic node, forwards door events with the Gapless guarantee, and
// routes actuation commands to the hub — precisely Figure 2 of the paper.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

int main() {
  using namespace riv;

  // --- the home -------------------------------------------------------
  workload::HomeDeployment::Options options;
  options.seed = 7;
  options.n_processes = 3;  // p1 = hub, p2 = TV, p3 = fridge
  workload::HomeDeployment home(options);
  const ProcessId hub = home.pid(0), tv = home.pid(1), fridge = home.pid(2);

  // --- devices ----------------------------------------------------------
  devices::SensorSpec door;
  door.id = SensorId{1};
  door.name = "front-door";
  door.kind = devices::SensorKind::kDoor;
  door.tech = devices::Technology::kZWave;
  door.rate_hz = 0.5;  // someone passes every ~2 s
  home.add_sensor(door, {tv, fridge});  // the hub cannot hear the door

  devices::ActuatorSpec light;
  light.id = ActuatorId{1};
  light.name = "hallway-light";
  light.tech = devices::Technology::kZWave;
  home.add_actuator(light, {hub});  // only the hub can switch the light

  // --- the application (Table 2 builder API) ---------------------------
  home.deploy(workload::apps::turn_light_on_off(
      AppId{1}, SensorId{1}, ActuatorId{1}, appmodel::Guarantee::kGapless));

  // --- run --------------------------------------------------------------
  home.start();
  home.run_for(seconds(30));

  const devices::Actuator& bulb = home.bus().actuator(ActuatorId{1});
  core::RivuletProcess* active = home.active_logic_process(AppId{1});
  std::printf("door events emitted : %llu\n",
              static_cast<unsigned long long>(
                  home.bus().sensor(SensorId{1}).events_emitted()));
  std::printf("delivered to logic  : %llu\n",
              static_cast<unsigned long long>(
                  home.metrics().counter_value("app1.delivered")));
  std::printf("light actuations    : %llu (state now %s)\n",
              static_cast<unsigned long long>(bulb.actions()),
              bulb.state() >= 0.5 ? "ON" : "OFF");
  std::printf("active logic node on: %s\n",
              active != nullptr ? to_string(active->id()).c_str() : "none");

  // The hub crashes — the light's only controller is gone, but the logic
  // node fails over and commands resume as soon as the hub recovers.
  std::printf("\n-- crashing the hub --\n");
  home.process(hub).crash();
  home.run_for(seconds(10));
  active = home.active_logic_process(AppId{1});
  std::printf("active logic node now on: %s\n",
              active != nullptr ? to_string(active->id()).c_str() : "none");

  std::printf("-- hub recovers --\n");
  home.process(hub).recover();
  home.run_for(seconds(10));
  std::uint64_t actions_before = bulb.actions();
  home.run_for(seconds(10));
  std::printf("light actuations resumed: +%llu in the last 10 s\n",
              static_cast<unsigned long long>(bulb.actions() -
                                              actions_before));
  return 0;
}
