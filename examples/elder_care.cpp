// Elder care under partition — fall alerts and inactivity monitoring.
//
// A realistic elder-care deployment: a BLE wearable (fall detection,
// Gapless — a missed fall event is catastrophic, §2.2), plus motion and
// door sensors feeding an inactivity monitor. We partition the home WiFi
// (router reboot) and show that (a) both sides keep running logic nodes,
// (b) the wearable's side still raises fall alerts, and (c) after healing
// exactly one logic node remains and nothing Gapless was lost.
//
// Build & run:  ./build/examples/elder_care
#include <cstdio>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

int main() {
  using namespace riv;

  workload::HomeDeployment::Options options;
  options.seed = 2024;
  options.n_processes = 4;
  workload::HomeDeployment home(options);

  // The wearable is BLE: bonded to a single host (the hub, p1).
  devices::SensorSpec wearable;
  wearable.id = SensorId{1};
  wearable.name = "fall-wearable";
  wearable.kind = devices::SensorKind::kWearable;
  wearable.tech = devices::Technology::kBle;
  wearable.rate_hz = 0.1;  // a (possible) fall signature every ~10 s
  home.add_sensor(wearable, {home.pid(0)});

  devices::SensorSpec motion;
  motion.id = SensorId{2};
  motion.name = "living-room-motion";
  motion.kind = devices::SensorKind::kMotion;
  motion.tech = devices::Technology::kZWave;
  motion.rate_hz = 0.5;
  home.add_sensor(motion, {home.pid(1), home.pid(2)});

  devices::SensorSpec door;
  door.id = SensorId{3};
  door.name = "bathroom-door";
  door.kind = devices::SensorKind::kDoor;
  door.tech = devices::Technology::kZWave;
  door.rate_hz = 0.1;
  home.add_sensor(door, {home.pid(2), home.pid(3)});

  devices::ActuatorSpec notifier;
  notifier.id = ActuatorId{1};
  notifier.name = "caregiver-notifier";
  notifier.tech = devices::Technology::kIp;
  home.add_actuator(notifier, {home.pid(0), home.pid(3)});

  home.deploy(
      workload::apps::fall_alert(AppId{1}, SensorId{1}, ActuatorId{1}));
  home.deploy(workload::apps::inactive_alert(AppId{2}, SensorId{2},
                                             SensorId{3}, ActuatorId{1},
                                             seconds(30)));
  home.start();

  std::printf("phase 1: healthy home (60 s)\n");
  home.run_for(seconds(60));
  const devices::Actuator& alert = home.bus().actuator(ActuatorId{1});
  std::printf("  fall events delivered : %llu\n",
              static_cast<unsigned long long>(
                  home.metrics().counter_value("app1.delivered")));
  std::printf("  caregiver alerts      : %llu\n\n",
              static_cast<unsigned long long>(alert.actions()));

  std::printf("phase 2: WiFi router glitch partitions {p1,p2} | {p3,p4}\n");
  home.net().set_partition({{home.pid(0), home.pid(1)},
                            {home.pid(2), home.pid(3)}});
  home.run_for(seconds(60));
  int fall_actives = 0, inactive_actives = 0;
  for (int i = 0; i < 4; ++i) {
    fall_actives += home.process(i).logic_active(AppId{1});
    inactive_actives += home.process(i).logic_active(AppId{2});
  }
  std::printf("  active fall-alert logic nodes    : %d\n", fall_actives);
  std::printf("  active inactive-alert logic nodes: %d (one per side)\n",
              inactive_actives);
  std::printf("  alerts kept flowing: %llu total\n\n",
              static_cast<unsigned long long>(alert.actions()));

  std::printf("phase 3: router back (60 s)\n");
  home.net().heal_partition();
  home.run_for(seconds(60));
  fall_actives = 0;
  inactive_actives = 0;
  for (int i = 0; i < 4; ++i) {
    fall_actives += home.process(i).logic_active(AppId{1});
    inactive_actives += home.process(i).logic_active(AppId{2});
  }
  std::printf("  logic nodes after heal: fall=%d inactive=%d (one each)\n",
              fall_actives, inactive_actives);
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  std::uint64_t delivered = home.metrics().counter_value("app1.delivered");
  std::printf("  wearable events: emitted=%llu delivered=%llu (Gapless)\n",
              static_cast<unsigned long long>(emitted),
              static_cast<unsigned long long>(delivered));
  return 0;
}
