// Temperature averaging — the paper's Listing 2, with a Byzantine sensor.
//
// Seven temperature sensors report the home temperature once per second;
// the Averaging operator fuses their windows with Marzullo's algorithm,
// tolerating floor((n-1)/3) = 2 arbitrarily faulty sensors, and drives a
// thermostat with the fused midpoint. We inject one wildly lying sensor
// and one dead sensor and show the fused output stays near the truth.
//
// Build & run:  ./build/examples/temperature_averaging
#include <cstdio>
#include <vector>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

int main() {
  using namespace riv;

  workload::HomeDeployment::Options options;
  options.seed = 99;
  options.n_processes = 3;
  workload::HomeDeployment home(options);

  const double kTruth = 21.0;
  std::vector<SensorId> temps;
  for (std::uint16_t i = 1; i <= 7; ++i) {
    devices::SensorSpec spec;
    spec.id = SensorId{i};
    spec.name = "temp-" + std::to_string(i);
    spec.kind = devices::SensorKind::kTemperature;
    spec.tech = devices::Technology::kIp;
    spec.rate_hz = 1.0;
    spec.value_base = kTruth;
    spec.value_amplitude = 0.0;
    spec.value_noise = 0.3;  // honest sensors: truth +/- 0.3
    if (i == 7) {
      // A Byzantine sensor: reports nonsense around 55 degrees.
      spec.value_base = 55.0;
      spec.value_noise = 5.0;
    }
    home.add_sensor(spec, {home.pid(i % 3)});
    temps.push_back(spec.id);
  }

  devices::ActuatorSpec thermostat;
  thermostat.id = ActuatorId{1};
  thermostat.name = "thermostat";
  thermostat.tech = devices::Technology::kIp;
  home.add_actuator(thermostat, {home.pid(0)});

  // Listing 2: Gap delivery, TimeWindow(1s), FTCombiner(floor((n-1)/3)).
  home.deploy(workload::apps::temperature_averaging(
      AppId{1}, temps, ActuatorId{1}, seconds(1)));
  home.start();
  home.run_for(seconds(60));

  const devices::Actuator& t = home.bus().actuator(ActuatorId{1});
  std::printf("true temperature          : %.1f C\n", kTruth);
  std::printf("byzantine sensor reports  : ~55 C\n");
  std::printf("fused thermostat set-point: %.2f C after %llu updates\n",
              t.state(), static_cast<unsigned long long>(t.actions()));

  // Now also kill one honest sensor: still within the f=2 budget.
  home.bus().sensor(SensorId{1}).crash();
  home.run_for(seconds(60));
  std::printf("after killing an honest sensor too: %.2f C (%llu updates)\n",
              t.state(), static_cast<unsigned long long>(t.actions()));
  std::printf("Marzullo fusion masked %zu faults out of %zu sensors\n",
              static_cast<std::size_t>(2), temps.size());
  return 0;
}
