#!/usr/bin/env bash
# Replay the chaos seed corpus (tests/seeds.txt) through chaos_run twice —
# serially and with --jobs — and require byte-identical output. Because
# every seed line includes its fault-trace hash, identical output proves
# the parallel runner reproduces the serial per-seed results exactly
# (determinism double-run included), which is the tier-2 gate for the
# multi-threaded sweep runner.
#
# usage: check_parallel_corpus.sh [chaos_run] [seeds.txt] [jobs]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
chaos_run="${1:-$repo_root/build/tools/chaos_run}"
seeds_file="${2:-$repo_root/tests/seeds.txt}"
jobs="${3:-$(nproc)}"

if [[ ! -x "$chaos_run" ]]; then
  echo "chaos_run not found/executable: $chaos_run" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Group corpus lines by (guarantee, horizon) so each group becomes one
# multi-seed invocation — that is what actually exercises the thread pool.
declare -A groups=()
while read -r seed guarantee horizon; do
  [[ -z "$seed" || "$seed" == \#* ]] && continue
  key="${guarantee}_${horizon}"
  groups[$key]="${groups[$key]:+${groups[$key]},}$seed"
done < "$seeds_file"

status=0
for key in "${!groups[@]}"; do
  guarantee="${key%_*}"
  horizon="${key#*_}"
  seeds="${groups[$key]}"
  echo "== corpus group: guarantee=$guarantee horizon=${horizon}s seeds=$seeds"
  "$chaos_run" --seeds "$seeds" --guarantee "$guarantee" \
    --duration "$horizon" > "$workdir/serial_$key.out" \
    || { echo "serial run failed for group $key" >&2; status=1; }
  "$chaos_run" --seeds "$seeds" --guarantee "$guarantee" \
    --duration "$horizon" --jobs "$jobs" > "$workdir/parallel_$key.out" \
    || { echo "parallel run failed for group $key" >&2; status=1; }
  if ! diff -u "$workdir/serial_$key.out" "$workdir/parallel_$key.out"; then
    echo "PARALLEL/SERIAL MISMATCH in group $key" >&2
    status=1
  else
    echo "   parallel (--jobs $jobs) output identical to serial"
  fi
done

if [[ $status -eq 0 ]]; then
  echo "corpus parallel replay: all per-seed hashes match serial"
fi
exit $status
