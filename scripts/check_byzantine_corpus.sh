#!/usr/bin/env bash
# Byzantine integrity-audit gate (DESIGN §12), two halves:
#
#   1. Zero false positives — every blessed golden trace (recorded with no
#      attacker) must audit to zero attacks and zero unattributed detector
#      evidence:  trace_analyze --audit --check exits 0.
#   2. 100% detection — every seed in tests/seeds_byzantine.txt replays
#      with the attacker armed (--kinds crash,spoof-event,replay-event,
#      corrupt-begin), streams its flight trace, and the audit must
#      account for every injected attack (detected by a tamper verdict or
#      provably lost in the network) with nothing left unattributed.
#
# usage: check_byzantine_corpus.sh [build_dir] [seeds_byzantine.txt]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
seeds_file="${2:-$repo_root/tests/seeds_byzantine.txt}"
chaos_run="$build_dir/tools/chaos_run"
trace_analyze="$build_dir/tools/trace_analyze"

for tool in "$chaos_run" "$trace_analyze"; do
  if [[ ! -x "$tool" ]]; then
    echo "tool not found/executable: $tool" >&2
    exit 2
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
status=0

echo "== goldens: integrity audit must report zero attacks =="
for g in gapless_ring gap_chain failover chaos_flight; do
  if ! "$trace_analyze" --audit --check \
      "$repo_root/tests/trace_golden/$g.rivtrace"; then
    echo "FALSE POSITIVE: golden $g failed the integrity audit" >&2
    status=1
  fi
done

echo "== Byzantine corpus: audit must account for every attack =="
kinds="crash,spoof-event,replay-event,corrupt-begin"
while read -r seed guarantee horizon; do
  [[ -z "$seed" || "$seed" == \#* ]] && continue
  if ! "$chaos_run" --seed "$seed" --guarantee "$guarantee" \
      --duration "$horizon" --kinds "$kinds" \
      --trace-stream "$workdir" --quiet; then
    echo "UNDEFENDED: seed $seed tripped an invariant under attack" >&2
    status=1
    continue
  fi
  trace="$workdir/seed-$seed.rivtrace"
  if ! "$trace_analyze" --audit --check "$trace"; then
    echo "AUDIT GAP: seed $seed ($guarantee) has unaccounted attacks" >&2
    echo "  repro: chaos_run --seed $seed --guarantee $guarantee" \
         "--duration $horizon --kinds $kinds --trace" >&2
    status=1
  fi
done < "$seeds_file"

if [[ $status -eq 0 ]]; then
  echo "byzantine corpus: zero false positives, 100% of attacks accounted"
fi
exit $status
