#!/usr/bin/env bash
# Checkpoint/restore equivalence gate (DESIGN §13), run over both chaos
# seed corpora (tests/seeds.txt and tests/seeds_byzantine.txt). For every
# seed, three runs must agree on the fault-trace hash:
#
#   1. serial     — chaos_run as shipped, uninterrupted;
#   2. chunked    — the same run with --checkpoint-every T: execution is
#                   split into checkpoint-sized chunks with a snapshot
#                   captured and saved at every boundary. Its stdout must
#                   be BYTE-IDENTICAL to the serial run's (the built-in
#                   determinism double-run stays on the uninterrupted
#                   path, so matching hashes prove chunked ≡ serial);
#   3. restored   — the latest .rivc snapshot from run 2 is loaded with
#                   --from-checkpoint, the restore is attested (every
#                   re-executed section byte-identical to the stored
#                   one), and the finished run must report the same
#                   fault-trace hash as the serial run.
#
# usage: check_checkpoint_corpus.sh [chaos_run] [seeds.txt [more.txt ...]]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
chaos_run="${1:-$repo_root/build/tools/chaos_run}"
shift || true
seed_files=("$@")
if [[ ${#seed_files[@]} -eq 0 ]]; then
  seed_files=("$repo_root/tests/seeds.txt"
              "$repo_root/tests/seeds_byzantine.txt")
fi

if [[ ! -x "$chaos_run" ]]; then
  echo "chaos_run not found/executable: $chaos_run" >&2
  exit 2
fi

byz_kinds="crash,spoof-event,replay-event,corrupt-begin"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
status=0
checked=0

for seeds_file in "${seed_files[@]}"; do
  echo "== corpus: $seeds_file =="
  # The Byzantine corpus runs with the attacker armed, like its tier-2
  # regression replay does; the checkpoint must capture attacker state too.
  kinds_args=()
  [[ "$seeds_file" == *byzantine* ]] && kinds_args=(--kinds "$byz_kinds")
  while read -r seed guarantee horizon; do
    [[ -z "$seed" || "$seed" == \#* ]] && continue
    every=$(( horizon / 3 )); (( every < 1 )) && every=1
    ckdir="$workdir/ck-$seed"
    "$chaos_run" --seed "$seed" --guarantee "$guarantee" \
      --duration "$horizon" "${kinds_args[@]}" \
      > "$workdir/serial.out" \
      || { echo "serial run failed: seed $seed" >&2; status=1; continue; }
    "$chaos_run" --seed "$seed" --guarantee "$guarantee" \
      --duration "$horizon" "${kinds_args[@]}" \
      --checkpoint-every "$every" --checkpoint-dir "$ckdir" \
      > "$workdir/chunked.out" \
      || { echo "chunked run failed: seed $seed" >&2; status=1; continue; }
    if ! diff -u "$workdir/serial.out" "$workdir/chunked.out"; then
      echo "CHUNKED/SERIAL MISMATCH: seed $seed ($guarantee ${horizon}s," \
           "--checkpoint-every $every)" >&2
      status=1
      continue
    fi
    serial_hash="$(grep -o 'trace=[0-9a-f]*' "$workdir/serial.out" | head -1)"
    # Restore from the LAST snapshot (deepest into the run, after the
    # fault plan has mostly played out) and finish the run.
    last_ck="$(ls "$ckdir"/seed-"$seed"-t*.rivc 2>/dev/null \
               | sort -t't' -k3 -n | tail -1)"
    if [[ -z "$last_ck" ]]; then
      echo "NO CHECKPOINT WRITTEN: seed $seed" >&2
      status=1
      continue
    fi
    if ! "$chaos_run" --from-checkpoint "$last_ck" \
        > "$workdir/restored.out"; then
      echo "RESTORE FAILED: seed $seed ($last_ck)" >&2
      cat "$workdir/restored.out" >&2
      status=1
      continue
    fi
    restored_hash="$(grep -o 'trace=[0-9a-f]*' "$workdir/restored.out" \
                     | head -1)"
    if [[ -z "$serial_hash" || "$restored_hash" != "$serial_hash" ]]; then
      echo "RESTORED/SERIAL HASH MISMATCH: seed $seed" \
           "(serial $serial_hash vs restored $restored_hash)" >&2
      status=1
      continue
    fi
    checked=$(( checked + 1 ))
    echo "seed $seed: chunked output identical, restored $restored_hash" \
         "matches serial ($(basename "$last_ck"))"
  done < "$seeds_file"
done

if [[ $status -eq 0 ]]; then
  echo "checkpoint corpus: $checked seeds — chunked ≡ serial and" \
       "restored ≡ uninterrupted on every fault-trace hash"
fi
exit $status
