#!/usr/bin/env bash
# Build and run the full test suite under ASan + UBSan (or any sanitizer
# combo given as the first argument) in a dedicated build tree.
#
#   scripts/check_sanitized.sh                    # address,undefined
#   scripts/check_sanitized.sh thread             # TSan instead
#   scripts/check_sanitized.sh address build-a    # custom build dir
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
BUILD_DIR="${2:-build-sanitize}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$REPO_ROOT/$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRIV_SANITIZE="$SANITIZERS"
cmake --build "$REPO_ROOT/$BUILD_DIR" -j "$(nproc)"

# abort_on_error makes failures fatal so ctest reports them; the
# suppressions-free defaults keep the run honest.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="abort_on_error=1:print_stacktrace=1"
ctest --test-dir "$REPO_ROOT/$BUILD_DIR" --output-on-failure -j "$(nproc)"
