// trace_analyze: causal provenance & per-stage latency attribution.
//
//   trace_analyze run.rivtrace            # human-readable report
//   trace_analyze --json run.rivtrace    # same content as one JSON doc
//   trace_analyze --check run.rivtrace   # health verdict (CI gate)
//   trace_analyze --audit run.rivtrace   # Byzantine integrity audit
//
// Reconstructs, for every sensor event in a flight-recorder trace, its
// causal chain through the pipeline (generated -> adapter_rx -> ingested
// -> delivered -> logic_fired -> command_sent -> actuated), then reports
// where the time went: per-stage latency distributions, end-to-end
// distributions, orphaned events with explanations, duplicate deliveries,
// and tail events attributed to the chaos faults that delayed them.
//
// --check exits 0 when the trace is causally healthy (no unexplained
// orphans, no duplicate deliveries within a promotion epoch, stage
// timestamps monotone per chain) and 1 otherwise, printing each problem.
//
// --audit switches to the DESIGN §12 integrity audit: every kByzantine
// attack marker the chaos injector stamped must be matched by detector
// evidence (a kTamper rejection, the byzantine drop record, or proof the
// frame died in the network first), and no detector evidence may be left
// unattributed. Combines with --check (exit 1 unless every attack is
// accounted for — on a non-adversarial golden trace that means zero
// attacks, zero tamper verdicts) and with --json.
//
// Exit status: 0 ok; 1 check failed; 2 usage / unreadable file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/provenance.hpp"
#include "trace/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--json] [--check] [--audit] [--grace SECONDS] A.rivtrace\n"
      "  --json            emit the report as a JSON document\n"
      "  --check           verdict only: exit 1 on unexplained orphans,\n"
      "                    duplicate deliveries, or stage-order violations\n"
      "  --audit           Byzantine integrity audit: match every injected\n"
      "                    attack marker to detector evidence; with --check\n"
      "                    exit 1 on any undetected or unattributed finding\n"
      "  --grace SECONDS   in-flight window before trace end within which\n"
      "                    undelivered events are not orphans (default 5)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check_only = false;
  bool audit_mode = false;
  riv::trace::AnalyzeOptions opt;
  const char* path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      audit_mode = true;
    } else if (std::strcmp(argv[i], "--grace") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      opt.grace = riv::seconds_f(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    usage(argv[0]);
    return 2;
  }

  riv::trace::Recorder rec;
  std::string err;
  if (!riv::trace::Recorder::load(path, &rec, &err)) {
    std::fprintf(stderr, "%s: %s\n", path, err.c_str());
    return 2;
  }

  if (audit_mode) {
    riv::trace::Audit au = riv::trace::audit(rec.records());
    if (check_only) {
      riv::trace::CheckResult res = riv::trace::check(au);
      if (res.ok) {
        std::printf("%s: AUDIT OK (%zu attacks: %zu detected, %zu lost in "
                    "network, 0 missed, 0 unattributed)\n",
                    path, au.attacks, au.detected, au.lost);
        return 0;
      }
      std::printf("%s: AUDIT FAILED (%zu problems)\n", path,
                  res.problems.size());
      for (const std::string& p : res.problems)
        std::printf("  %s\n", p.c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n", riv::trace::render_json(au).c_str());
    } else {
      std::printf("%s: hash %s\n", path, rec.digest().c_str());
      std::printf("%s", riv::trace::render(au).c_str());
    }
    return 0;
  }

  riv::trace::Analysis a = riv::trace::analyze(rec.records(), opt);

  if (check_only) {
    riv::trace::CheckResult res = riv::trace::check(a);
    if (res.ok) {
      std::printf("%s: OK (%zu chains, %d stages, %zu orphans explained, "
                  "0 duplicates)\n",
                  path, a.n_chains, a.stages_present(), a.orphans.size());
      return 0;
    }
    std::printf("%s: FAILED (%zu problems)\n", path, res.problems.size());
    for (const std::string& p : res.problems)
      std::printf("  %s\n", p.c_str());
    return 1;
  }

  if (json) {
    std::printf("%s\n", riv::trace::render_json(a).c_str());
  } else {
    std::printf("%s: hash %s\n", path, rec.digest().c_str());
    std::printf("%s", riv::trace::render(a).c_str());
  }
  return 0;
}
