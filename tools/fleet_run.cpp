// fleet_run: population-scale simulation driver.
//
//   fleet_run --homes 100000 --jobs 0            # fleet across every core
//   fleet_run --homes 20000 --campaign wifi:720:60:0.05
//                                                # WiFi outage across 5% of
//                                                # homes in minute 12
//
// Every home is an independent deterministic simulation derived from the
// fleet seed; the merged dashboard (population p99 delivery latency,
// survival rate, events/s/core, bytes/home) and both digests are
// bit-identical for any --jobs value — rerun with --jobs 1 to verify.
//
// Exit status: 0 ok; 2 usage error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "fleet/fleet.hpp"

namespace {

using namespace riv;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --homes N             homes in the fleet (default 1000)\n"
      "  --seed S              fleet seed; every per-home seed derives\n"
      "                        from it (default 1)\n"
      "  --jobs N              worker threads (default 0 = one per\n"
      "                        hardware thread); results are bit-identical\n"
      "                        for any value\n"
      "  --duration S          steady-state window simulated per home,\n"
      "                        virtual seconds (default 10)\n"
      "  --shard N             homes per work item (default 64)\n"
      "  --procs LO..HI        processes per home (default 2..4)\n"
      "  --sensors LO..HI      sensors per home (default 1..3)\n"
      "  --rate LO..HI         per-sensor rate in Hz (default 0.5..4)\n"
      "  --campaign SPEC       add a correlated fault event; SPEC =\n"
      "                        kind:at_s:dur_s:fraction[:region] with\n"
      "                        kind = wifi | power | rf. Repeatable.\n"
      "  --sweep SPEC          multi-campaign fan-out: each --sweep adds\n"
      "                        one single-event campaign (same SPEC syntax)\n"
      "                        and the whole population runs under every\n"
      "                        campaign. Repeatable; excludes --campaign,\n"
      "                        --rows and --triage.\n"
      "  --prefix S            fault-free warm-up prefix per home, virtual\n"
      "                        seconds; campaign clocks start after it\n"
      "                        (default 0)\n"
      "  --warm / --no-warm    snapshot-clone the warmed prefix state per\n"
      "                        home/per campaign instead of re-executing it\n"
      "                        (default off; requires --prefix > 0; results\n"
      "                        are bit-identical either way)\n"
      "  --attest F            byte-attest fraction F of warm clones\n"
      "                        against the checkpoint surface (default 0)\n"
      "  --resalt N            fold salt N ^ campaign into device RNGs at\n"
      "                        the prefix point (campaign decorrelation)\n"
      "  --regions N           region count for scoped events (default 16)\n"
      "  --rows PATH           write one CSV row per home to PATH\n"
      "  --sample F            flight-record fraction F of homes (pure\n"
      "                        function of seed+index; 0.001 = 0.1%%)\n"
      "  --top K               track the K unhealthiest homes (SLO health\n"
      "                        scoring; printed with the dashboard)\n"
      "  --slo MS              delivery-p99 SLO in milliseconds the health\n"
      "                        score is computed against (default 500)\n"
      "  --trace-dir DIR       save each sampled home's flight recording\n"
      "                        as DIR/home-<index>.rivtrace\n"
      "  --triage K            after the run, re-run the K unhealthiest\n"
      "                        homes with full tracing and print a triage\n"
      "                        report per home (implies --top >= K)\n"
      "  --quiet               only print the digest line\n",
      argv0);
}

bool parse_int_range(const char* arg, riv::fleet::IntRange& out) {
  const char* dots = std::strstr(arg, "..");
  if (dots == nullptr) {
    out.lo = out.hi = std::atoi(arg);
    return out.lo > 0;
  }
  out.lo = std::atoi(std::string(arg, dots).c_str());
  out.hi = std::atoi(dots + 2);
  return out.lo > 0 && out.hi >= out.lo;
}

bool parse_double_range(const char* arg, riv::fleet::DoubleRange& out) {
  const char* dots = std::strstr(arg, "..");
  if (dots == nullptr) {
    out.lo = out.hi = std::atof(arg);
    return out.lo > 0;
  }
  out.lo = std::atof(std::string(arg, dots).c_str());
  out.hi = std::atof(dots + 2);
  return out.lo > 0 && out.hi >= out.lo;
}

double now_wall() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetOptions opt;
  opt.jobs = 0;  // auto-detect by default: fleets exist to fill cores
  std::string rows_path;
  std::vector<fleet::CampaignPlan> sweep;
  int triage_k = 0;
  bool quiet = false;
  bool warm = false;
  long prefix_s = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--homes") {
      opt.homes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(next());
    } else if (arg == "--duration") {
      opt.population.sim_duration = seconds(std::atoll(next()));
    } else if (arg == "--shard") {
      opt.shard_size = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--procs") {
      if (!parse_int_range(next(), opt.population.processes)) {
        std::fprintf(stderr, "bad --procs range\n");
        return 2;
      }
    } else if (arg == "--sensors") {
      if (!parse_int_range(next(), opt.population.sensors)) {
        std::fprintf(stderr, "bad --sensors range\n");
        return 2;
      }
    } else if (arg == "--rate") {
      if (!parse_double_range(next(), opt.population.rate_hz)) {
        std::fprintf(stderr, "bad --rate range\n");
        return 2;
      }
    } else if (arg == "--campaign") {
      const char* spec = next();
      fleet::CampaignEvent ev;
      if (!fleet::parse_campaign_event(spec, ev)) {
        std::fprintf(stderr,
                     "bad --campaign spec '%s' (kind:at_s:dur_s:fraction"
                     "[:region], kind = wifi|power|rf)\n",
                     spec);
        usage(argv[0]);
        return 2;
      }
      opt.campaign.events.push_back(ev);
    } else if (arg == "--sweep") {
      const char* spec = next();
      fleet::CampaignEvent ev;
      if (!fleet::parse_campaign_event(spec, ev)) {
        std::fprintf(stderr,
                     "bad --sweep spec '%s' (kind:at_s:dur_s:fraction"
                     "[:region], kind = wifi|power|rf)\n",
                     spec);
        usage(argv[0]);
        return 2;
      }
      fleet::CampaignPlan plan;
      plan.events.push_back(ev);
      sweep.push_back(std::move(plan));
    } else if (arg == "--warm") {
      warm = true;
    } else if (arg == "--no-warm") {
      warm = false;
    } else if (arg == "--prefix") {
      prefix_s = std::atol(next());
      if (prefix_s < 0) {
        std::fprintf(stderr, "bad --prefix seconds\n");
        return 2;
      }
    } else if (arg == "--attest") {
      opt.warm.attest_sample = std::atof(next());
      if (opt.warm.attest_sample < 0 || opt.warm.attest_sample > 1) {
        std::fprintf(stderr, "bad --attest fraction (want [0, 1])\n");
        return 2;
      }
    } else if (arg == "--resalt") {
      opt.warm.resalt = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--regions") {
      opt.campaign.n_regions = std::atoi(next());
      if (opt.campaign.n_regions < 1) {
        std::fprintf(stderr, "bad --regions count\n");
        return 2;
      }
    } else if (arg == "--rows") {
      rows_path = next();
      opt.keep_home_rows = true;
    } else if (arg == "--sample") {
      opt.observe.sample = std::atof(next());
      if (opt.observe.sample < 0 || opt.observe.sample > 1) {
        std::fprintf(stderr, "bad --sample fraction (want [0, 1])\n");
        return 2;
      }
    } else if (arg == "--top") {
      int k = std::atoi(next());
      if (k < 1) {
        std::fprintf(stderr, "bad --top count\n");
        return 2;
      }
      opt.observe.top_k = static_cast<std::uint32_t>(k);
    } else if (arg == "--slo") {
      long ms = std::atol(next());
      if (ms < 1) {
        std::fprintf(stderr, "bad --slo milliseconds\n");
        return 2;
      }
      opt.observe.slo.delivery_p99 = milliseconds(ms);
    } else if (arg == "--trace-dir") {
      opt.observe.trace_dir = next();
    } else if (arg == "--triage") {
      triage_k = std::atoi(next());
      if (triage_k < 1) {
        std::fprintf(stderr, "bad --triage count\n");
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.homes == 0 || opt.population.sim_duration <= Duration{}) {
    std::fprintf(stderr, "bad fleet parameters\n");
    return 2;
  }
  opt.warm.prefix = seconds(prefix_s);
  opt.warm.enabled = warm;
  if (warm && prefix_s == 0) {
    std::fprintf(stderr, "--warm requires --prefix > 0\n");
    usage(argv[0]);
    return 2;
  }
  if (!sweep.empty()) {
    if (!opt.campaign.events.empty()) {
      std::fprintf(stderr, "--sweep and --campaign are mutually exclusive\n");
      usage(argv[0]);
      return 2;
    }
    if (!rows_path.empty() || triage_k > 0) {
      std::fprintf(stderr, "--sweep does not combine with --rows/--triage\n");
      usage(argv[0]);
      return 2;
    }
    for (fleet::CampaignPlan& plan : sweep)
      plan.n_regions = opt.campaign.n_regions;
  }
  // Triage needs the worst-K list, so it implies health scoring.
  if (triage_k > 0 &&
      opt.observe.top_k < static_cast<std::uint32_t>(triage_k))
    opt.observe.top_k = static_cast<std::uint32_t>(triage_k);
  if (!opt.observe.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.observe.trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s\n",
                   opt.observe.trace_dir.c_str());
      return 1;
    }
  }

  const int jobs = riv::resolve_jobs(opt.jobs);
  if (!quiet)
    std::printf("fleet: %llu homes, seed %llu, %d jobs, %.0fs/home%s\n",
                static_cast<unsigned long long>(opt.homes),
                static_cast<unsigned long long>(opt.seed), jobs,
                opt.population.sim_duration.seconds(),
                opt.warm.enabled ? " (warm-start)" : "");

  if (!sweep.empty()) {
    // Multi-campaign fan-out: the same population under every campaign,
    // one dashboard per campaign. With --warm each home's construction +
    // warm-up prefix is paid once and snapshot-cloned per campaign.
    double t0 = now_wall();
    std::vector<fleet::FleetResult> results =
        fleet::run_fleet_campaigns(opt, sweep);
    double wall = now_wall() - t0;
    for (std::size_t c = 0; c < results.size(); ++c) {
      if (quiet) {
        std::printf(
            "campaign %zu digest faults=%s metrics=%s\n", c,
            riv::hash::fnv1a_digest(results[c].fault_digest).c_str(),
            riv::hash::fnv1a_digest(
                fleet::registry_fingerprint(results[c].merged))
                .c_str());
        continue;
      }
      std::printf("--- campaign %zu ---\n", c);
      fleet::Dashboard dash =
          fleet::make_dashboard(results[c], wall / results.size(), jobs);
      std::printf("%s", fleet::render_dashboard(results[c], dash).c_str());
      std::printf("%s",
                  fleet::render_observation(results[c].observation).c_str());
    }
    if (!quiet) std::printf("wall            %.2fs (%zu campaigns)\n", wall,
                            results.size());
    return 0;
  }

  double t0 = now_wall();
  fleet::FleetResult result = fleet::run_fleet(opt);
  double wall = now_wall() - t0;

  fleet::Dashboard dash = fleet::make_dashboard(result, wall, jobs);
  if (quiet) {
    std::printf("digest          faults=%s metrics=%s\n",
                riv::hash::fnv1a_digest(result.fault_digest).c_str(),
                riv::hash::fnv1a_digest(
                    fleet::registry_fingerprint(result.merged))
                    .c_str());
  } else {
    std::printf("%s", fleet::render_dashboard(result, dash).c_str());
    std::printf("%s",
                fleet::render_observation(result.observation).c_str());
    std::printf("wall            %.2fs\n", wall);
  }

  if (triage_k > 0) {
    const auto& worst = result.observation.top.rows();
    const std::size_t n =
        std::min<std::size_t>(worst.size(), static_cast<std::size_t>(triage_k));
    for (std::size_t i = 0; i < n; ++i) {
      fleet::TriageReport rep = fleet::triage_home(opt, worst[i].index);
      std::printf("%s", fleet::render(rep).c_str());
    }
  }

  if (!rows_path.empty()) {
    std::FILE* f = std::fopen(rows_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", rows_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "home,seed,processes,sensors,sim_events,emitted,"
                 "delivered,faults,hit,survived,fault_hash\n");
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      const fleet::HomeOutcome& row = result.rows[i];
      std::fprintf(f, "%zu,%llu,%u,%u,%llu,%llu,%llu,%u,%d,%d,%s\n", i,
                   static_cast<unsigned long long>(row.seed),
                   row.n_processes, row.n_sensors,
                   static_cast<unsigned long long>(row.sim_events),
                   static_cast<unsigned long long>(row.emitted),
                   static_cast<unsigned long long>(row.delivered),
                   row.faults_injected, row.hit ? 1 : 0,
                   row.survived ? 1 : 0,
                   riv::hash::fnv1a_digest(row.fault_hash).c_str());
    }
    std::fclose(f);
    if (!quiet)
      std::printf("rows written: %s\n", rows_path.c_str());
  }
  return 0;
}
