// riv_replay: time-travel to a named record of a flight trace.
//
//   riv_replay --trace failover.rivtrace --record 118 --scenario failover
//   riv_replay --trace seed-7.rivtrace --record 500
//              --from-checkpoint seed-7-t30.rivc
//
// Given a .rivtrace file and a record id, the tool rebuilds the run that
// produced it — from scratch (--scenario, one of the blessed golden
// names) or from a RIVC checkpoint (--from-checkpoint, restored with
// byte-level attestation) — lands the simulation at the record's virtual
// time, then replays to the end and structurally diffs the regenerated
// trace against the file. Determinism makes this exact: the replayed
// trace is byte-for-byte the original, so the printed window around the
// record IS what happened, not an approximation.
//
// Exit status: 0 replay identical; 1 divergence or failed restore
// attestation; 2 usage / unreadable input.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/rivc.hpp"
#include "checkpoint/scenario.hpp"
#include "trace/diff.hpp"
#include "trace/trace.hpp"

namespace {

using namespace riv;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --trace FILE --record N\n"
      "          (--scenario NAME | --from-checkpoint F) [--context K]\n"
      "  --trace FILE          the .rivtrace to land in\n"
      "  --record N            record id (0-based, as printed by\n"
      "                        trace_diff --dump)\n"
      "  --scenario NAME       rebuild from scratch: gapless_ring |\n"
      "                        gap_chain | failover | chaos_flight\n"
      "  --from-checkpoint F   rebuild from a RIVC checkpoint (attested\n"
      "                        restore; chaos_run --checkpoint-every\n"
      "                        writes them)\n"
      "  --context K           records of context around N (default 5)\n",
      argv0);
}

double secs(TimePoint t) {
  return static_cast<double>((t - TimePoint{}).us) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string scenario_name;
  std::string checkpoint_path;
  long long record_id = -1;
  std::size_t context = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--record") {
      record_id = std::atoll(next());
    } else if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--from-checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--context") {
      context = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (trace_path.empty() || record_id < 0 ||
      (scenario_name.empty() == checkpoint_path.empty())) {
    usage(argv[0]);
    return 2;
  }

  // The trace being landed in.
  trace::Recorder file_rec;
  std::string err;
  if (!trace::Recorder::load(trace_path, &file_rec, &err)) {
    std::fprintf(stderr, "%s: %s\n", trace_path.c_str(), err.c_str());
    return 2;
  }
  const std::vector<trace::Record> want = file_rec.records();
  if (static_cast<std::size_t>(record_id) >= want.size()) {
    std::fprintf(stderr, "record %lld out of range (trace has %zu)\n",
                 record_id, want.size());
    return 2;
  }
  const std::size_t n = static_cast<std::size_t>(record_id);
  const TimePoint target = want[n].at;
  std::printf("%s: %zu records, hash %s\n", trace_path.c_str(),
              want.size(), file_rec.digest().c_str());
  std::printf("record %zu is at t=%.6fs\n", n, secs(target));

  // Rebuild the producing run.
  std::unique_ptr<checkpoint::Scenario> sc;
  if (!checkpoint_path.empty()) {
    checkpoint::Snapshot snap;
    if (!checkpoint::load(checkpoint_path, &snap, &err)) {
      std::fprintf(stderr, "%s: %s\n", checkpoint_path.c_str(),
                   err.c_str());
      return 2;
    }
    std::printf("restoring %s (scenario=%s seed=%llu at=%.3fs)\n",
                checkpoint_path.c_str(), snap.scenario.c_str(),
                static_cast<unsigned long long>(snap.seed),
                secs(snap.at));
    checkpoint::RestoreReport rep = checkpoint::restore(snap);
    if (!rep.ok) {
      std::fprintf(stderr, "restore FAILED: %s\n", rep.error.c_str());
      return 1;
    }
    std::printf("restore attested: all sections byte-identical\n");
    if (target < snap.at)
      std::printf("note: record %zu precedes the checkpoint; its window "
                  "comes from the attested re-execution prefix\n",
                  n);
    sc = std::move(rep.scenario);
  } else {
    sc = checkpoint::make_golden_scenario(scenario_name);
    if (sc == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s'\n",
                   scenario_name.c_str());
      return 2;
    }
    sc->start();
  }

  // Land at the record's virtual time, then replay the rest. Chunked
  // run_to is provably equivalent to one big run, so stopping by at the
  // landing point costs nothing. Records past end_time() belong to the
  // drain/teardown phase that only finish() can reproduce — landing is
  // clamped there, never run past it.
  const TimePoint land =
      target < sc->end_time() ? target : sc->end_time();
  if (land < target)
    std::printf("record %zu is in the drain/teardown phase (after the "
                "scenario end at t=%.3fs); landing there instead\n",
                n, secs(land));
  sc->run_to(land);
  std::printf("landed at t=%.6fs (sim now %.6fs)\n", secs(land),
              secs(sc->now()));
  sc->run_to(sc->end_time());
  sc->finish();

  std::shared_ptr<trace::Recorder> replay = sc->recorder();
  if (replay == nullptr) {
    std::fprintf(stderr, "scenario has no flight recorder\n");
    return 2;
  }
  const std::vector<trace::Record> got = replay->records();

  // The window around the landing record, from the replayed run (proved
  // identical below; shown from the replay to make the point that it IS
  // the replay being displayed).
  const std::size_t lo = n >= context ? n - context : 0;
  const std::size_t hi =
      n + context + 1 < got.size() ? n + context + 1 : got.size();
  std::printf("--- records %zu..%zu ---\n", lo, hi == 0 ? 0 : hi - 1);
  for (std::size_t i = lo; i < hi; ++i)
    std::printf("%s[%zu] %s\n", i == n ? ">>> " : "    ", i,
                trace::to_string(got[i]).c_str());

  trace::Divergence d = trace::diff(want, got);
  if (d.identical) {
    std::printf("replay identical: %zu records, hash %s\n", got.size(),
                replay->digest().c_str());
    return 0;
  }
  std::printf("REPLAY DIVERGED:\n%s",
              trace::render(want, got, d, context).c_str());
  return 1;
}
