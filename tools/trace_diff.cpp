// trace_diff: structural diff of two flight-recorder traces.
//
//   trace_diff a.rivtrace b.rivtrace     # first divergent record + context
//   trace_diff --dump a.rivtrace         # print every record of one trace
//
// Traces from the same seed are byte-identical, so any difference is a
// real behavioural divergence; this tool pinpoints the first divergent
// record and shows the (identical) records leading up to it, which is
// usually enough to read off the causal story.
//
// Exit status: 0 traces identical (or --dump); 1 traces differ; 2 usage /
// unreadable file.
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/diff.hpp"
#include "trace/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--context N] A.rivtrace B.rivtrace\n"
               "       %s --dump A.rivtrace\n"
               "  --context N   records of context before the divergence "
               "(default 5)\n",
               argv0, argv0);
}

bool load(const char* path, riv::trace::Recorder& out) {
  std::string err;
  if (!riv::trace::Recorder::load(path, &out, &err)) {
    std::fprintf(stderr, "%s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = false;
  std::size_t context = 5;
  const char* paths[2] = {nullptr, nullptr};
  int n_paths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--context") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      context = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    } else if (n_paths < 2) {
      paths[n_paths++] = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (dump) {
    if (n_paths != 1) {
      usage(argv[0]);
      return 2;
    }
    riv::trace::Recorder rec;
    if (!load(paths[0], rec)) return 2;
    std::printf("%s: %zu records, hash %s\n", paths[0], rec.size(),
                rec.digest().c_str());
    std::size_t i = 0;
    // records() decodes the packed arena on demand; do it once.
    for (const riv::trace::Record& r : rec.records())
      std::printf("[%zu] %s\n", i++, riv::trace::to_string(r).c_str());
    return 0;
  }

  if (n_paths != 2) {
    usage(argv[0]);
    return 2;
  }
  riv::trace::Recorder a, b;
  if (!load(paths[0], a) || !load(paths[1], b)) return 2;

  // Decode each packed trace once (records() renders on every call).
  const std::vector<riv::trace::Record> ra = a.records();
  const std::vector<riv::trace::Record> rb = b.records();
  riv::trace::Divergence d = riv::trace::diff(ra, rb);
  std::printf("a: %s (%zu records, hash %s)\n", paths[0], a.size(),
              a.digest().c_str());
  std::printf("b: %s (%zu records, hash %s)\n", paths[1], b.size(),
              b.digest().c_str());
  std::printf("%s", riv::trace::render(ra, rb, d, context).c_str());
  return d.identical ? 0 : 1;
}
