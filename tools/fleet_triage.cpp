// fleet_triage: deterministic drill-down into the unhealthiest homes of a
// fleet.
//
//   fleet_triage --homes 100000 --campaign wifi:5:10:0.05 --top 10
//                                  # score every home, re-run the worst 10
//                                  # with full tracing, attribute each
//   fleet_triage --homes 100000 --home 4242 --trace-dir /tmp/triage
//                                  # drill into one specific home and save
//                                  # its .rivtrace
//
// Because every home is an independent simulation derived from the fleet
// seed, re-running a flagged home costs milliseconds and reproduces its
// sampled flight recording byte-for-byte: --verify-sample pins the
// re-recorded FNV hash against a live sampled run of the same home and
// fails loudly on any mismatch. Each drill-down trace is put through the
// trace_analyze --check verdict (unexplained orphans, duplicate
// deliveries, ordering violations); --check makes a red verdict fatal.
//
// Exit status: 0 ok; 1 check/verify failure; 2 usage error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "fleet/fleet.hpp"

namespace {

using namespace riv;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --homes N             homes in the fleet (default 1000)\n"
      "  --seed S              fleet seed (default 1)\n"
      "  --jobs N              worker threads for the scoring pass\n"
      "                        (default 0 = auto)\n"
      "  --duration S          virtual seconds simulated per home\n"
      "                        (default 10)\n"
      "  --campaign SPEC       correlated fault event, repeatable\n"
      "                        (kind:at_s:dur_s:fraction[:region])\n"
      "  --regions N           region count for scoped events (default 16)\n"
      "  --top K               triage the K unhealthiest homes (default 5)\n"
      "  --home I              triage home index I instead of scoring the\n"
      "                        fleet; repeatable\n"
      "  --slo MS              delivery-p99 SLO in ms (default 500)\n"
      "  --trace-dir DIR       save each drill-down trace as\n"
      "                        DIR/home-<index>.rivtrace\n"
      "  --verify-sample       also flight-record each triaged home inside\n"
      "                        a sampled fleet pass and require the replay\n"
      "                        hash to match it exactly\n"
      "  --json                emit the report as JSON\n"
      "  --check               exit 1 if any drill-down trace fails the\n"
      "                        causal health check\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetOptions opt;
  opt.jobs = 0;
  int top_k = 5;
  std::vector<std::uint64_t> explicit_homes;
  fleet::TriageOptions topt;
  bool verify_sample = false;
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--homes") {
      opt.homes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(next());
    } else if (arg == "--duration") {
      opt.population.sim_duration = seconds(std::atoll(next()));
    } else if (arg == "--campaign") {
      const char* spec = next();
      fleet::CampaignEvent ev;
      if (!fleet::parse_campaign_event(spec, ev)) {
        std::fprintf(stderr,
                     "bad --campaign spec '%s' (kind:at_s:dur_s:fraction"
                     "[:region], kind = wifi|power|rf)\n",
                     spec);
        usage(argv[0]);
        return 2;
      }
      opt.campaign.events.push_back(ev);
    } else if (arg == "--regions") {
      opt.campaign.n_regions = std::atoi(next());
      if (opt.campaign.n_regions < 1) {
        std::fprintf(stderr, "bad --regions count\n");
        return 2;
      }
    } else if (arg == "--top") {
      top_k = std::atoi(next());
      if (top_k < 1) {
        std::fprintf(stderr, "bad --top count\n");
        return 2;
      }
    } else if (arg == "--home") {
      explicit_homes.push_back(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--slo") {
      long ms = std::atol(next());
      if (ms < 1) {
        std::fprintf(stderr, "bad --slo milliseconds\n");
        return 2;
      }
      opt.observe.slo.delivery_p99 = milliseconds(ms);
    } else if (arg == "--trace-dir") {
      topt.trace_dir = next();
    } else if (arg == "--verify-sample") {
      verify_sample = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.homes == 0 || opt.population.sim_duration <= Duration{}) {
    std::fprintf(stderr, "bad fleet parameters\n");
    return 2;
  }
  for (std::uint64_t h : explicit_homes) {
    if (h >= opt.homes) {
      std::fprintf(stderr, "--home %llu out of range (fleet has %llu)\n",
                   static_cast<unsigned long long>(h),
                   static_cast<unsigned long long>(opt.homes));
      return 2;
    }
  }
  if (!topt.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(topt.trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s\n", topt.trace_dir.c_str());
      return 1;
    }
  }

  // Which homes to drill into: the explicit list, or the worst K of a
  // fleet-wide health-scoring pass.
  std::vector<std::uint64_t> targets = explicit_homes;
  if (targets.empty()) {
    opt.observe.top_k = static_cast<std::uint32_t>(top_k);
    fleet::FleetResult scored = fleet::run_fleet(opt);
    for (const fleet::HomeHealth& row : scored.observation.top.rows())
      targets.push_back(row.index);
    if (!json)
      std::printf("scored %llu homes; triaging the %zu worst\n",
                  static_cast<unsigned long long>(scored.homes),
                  targets.size());
  }

  // With --verify-sample, record each target inside a sampled fleet
  // context first: sample >= 1 puts every home in the sampled set without
  // perturbing its execution, so the replay below must reproduce the
  // recording hash-for-hash.
  std::vector<std::uint64_t> sampled_hashes(targets.size(), 0);
  if (verify_sample) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      fleet::HomeRun sampled = fleet::run_home(opt, targets[i],
                                               /*traced=*/true);
      sampled_hashes[i] = sampled.flight->hash();
    }
  }

  bool all_ok = true;
  std::vector<fleet::TriageReport> reports;
  reports.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    fleet::TriageReport rep = fleet::triage_home(opt, targets[i], topt);
    if (!rep.check_ok) all_ok = false;
    if (verify_sample && rep.trace_hash != sampled_hashes[i]) {
      std::fprintf(stderr,
                   "home %llu: replay hash %s != sampled hash %s\n",
                   static_cast<unsigned long long>(targets[i]),
                   hash::fnv1a_digest(rep.trace_hash).c_str(),
                   hash::fnv1a_digest(sampled_hashes[i]).c_str());
      all_ok = false;
    }
    if (!json) std::printf("%s", fleet::render(rep).c_str());
    reports.push_back(std::move(rep));
  }
  if (json) std::printf("%s", fleet::render_triage_json(reports).c_str());

  if (check && !all_ok) return 1;
  if (verify_sample && !all_ok) return 1;
  return 0;
}
