// chaos_run: seed-range driver for the deterministic chaos engine.
//
//   chaos_run --seeds 1..200            # sweep, verify determinism per seed
//   chaos_run --seed 42 --print-trace   # one seed, dump the fault trace
//
// Each seed fully determines the fault schedule AND the workload, so any
// invariant violation this tool reports is reproducible with the one-line
// command it prints. By default every seed is executed twice and the two
// fault-trace hashes compared — a mismatch means nondeterminism crept into
// the stack and is reported as a failure even if no invariant fired.
//
// Exit status: 0 clean; 1 invariant violation / determinism mismatch /
// failed drain; 2 usage error.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chaos/engine.hpp"
#include "checkpoint/fork.hpp"
#include "common/parallel.hpp"
#include "checkpoint/rivc.hpp"
#include "checkpoint/scenario.hpp"

namespace {

using namespace riv;

struct CliOptions {
  std::vector<std::uint64_t> seeds{1};
  appmodel::Guarantee guarantee{appmodel::Guarantee::kGapless};
  int procs{4};
  int receivers{2};
  double loss{0.1};
  std::int64_t duration_s{60};
  std::int64_t check_interval_ms{500};
  int jobs{1};
  // --kinds: comma-separated fault-kind names; when non-empty only the
  // named categories are armed (everything else off). Kept verbatim for
  // the repro line.
  std::string kinds;
  bool verify_determinism{true};
  bool print_trace{false};
  bool demo_violation{false};
  bool quiet{false};
  // When non-empty, run every seed with the flight recorder on and save a
  // replayable .rivtrace artifact under this directory for each FAILING
  // seed (tools/trace_diff reads them).
  std::string trace_dir;
  // Ring sink: cap the in-memory flight trace at ~N bytes of packed
  // records, keeping the most recent ones (implies flight recording).
  std::size_t trace_ring_bytes{0};
  // Streaming sink: write DIR/seed-N.rivtrace incrementally during the
  // run for EVERY seed, with one chunk of buffering (implies flight
  // recording; only the primary run streams, the determinism re-run
  // records in memory).
  std::string stream_dir;
  // When non-empty, capture per-process metric snapshots every virtual
  // second and save DIR/seed-N.metrics.csv for EVERY seed (a timeline is
  // useful even — especially — when the seed passes).
  std::string metrics_dir;
  // Checkpoint the primary run every N virtual seconds: the run goes
  // through the checkpointable-scenario layer (flight recording forced
  // on, chunked run_to — behaviourally identical to one big run) and a
  // RIVC snapshot lands at checkpoint_dir/seed-N-tS.rivc per boundary.
  std::int64_t checkpoint_every_s{0};
  std::string checkpoint_dir{"checkpoints"};
  // Resume mode: load a .rivc file, restore (attested re-execution),
  // run the remaining virtual time, report the outcome.
  std::string from_checkpoint;
  // Fork-per-seed sweep: warm ONE session (workload seed = first seed)
  // to this many virtual seconds, then fork(2) a child per seed that
  // arms that seed's fault plan against the shared in-memory state.
  // < 0 means off.
  std::int64_t fork_warmup_s{-1};
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N              run one seed (default 1)\n"
      "  --seeds A..B | a,b,c  run an inclusive range or an explicit list\n"
      "  --guarantee G         gapless | gap (default gapless)\n"
      "  --procs N             processes in the home (default 4)\n"
      "  --receivers M         processes linked to the sensor (default 2)\n"
      "  --loss P              baseline device link loss (default 0.1)\n"
      "  --duration S          chaos horizon, virtual seconds (default 60)\n"
      "  --check-interval MS   continuous-check period (default 500)\n"
      "  --jobs N              run seeds on N worker threads (default 1;\n"
      "                        0 = one per hardware thread); per-seed\n"
      "                        results and output order are identical to\n"
      "                        a serial run\n"
      "  --kinds a,b,c         arm only the named fault kinds (names as\n"
      "                        printed by --list-kinds; naming either kind\n"
      "                        of a begin/end pair arms both)\n"
      "  --list-kinds          print every fault kind and its category,\n"
      "                        then exit\n"
      "  --no-verify           skip the determinism double-run\n"
      "  --print-trace         dump the fault trace of every run\n"
      "  --demo-violation      register an always-failing invariant to\n"
      "                        demonstrate violation reporting + repro\n"
      "  --trace DIR           record a flight trace per seed; save\n"
      "                        DIR/seed-N.rivtrace for every failing seed\n"
      "  --trace-ring N        keep only the last ~N bytes of packed\n"
      "                        flight records (bounded memory; implies\n"
      "                        flight recording)\n"
      "  --trace-stream DIR    stream DIR/seed-N.rivtrace to disk during\n"
      "                        the run for every seed (bounded memory)\n"
      "  --metrics DIR         snapshot per-process counters every virtual\n"
      "                        second; save DIR/seed-N.metrics.csv per seed\n"
      "  --checkpoint-every S  save a RIVC checkpoint of the primary run\n"
      "                        every S virtual seconds (implies flight\n"
      "                        recording; see --checkpoint-dir)\n"
      "  --checkpoint-dir DIR  where checkpoints land as seed-N-tS.rivc\n"
      "                        (default: checkpoints)\n"
      "  --from-checkpoint F   restore F (attested re-execution), run the\n"
      "                        remaining virtual time, report the outcome;\n"
      "                        all scenario flags are read from the file\n"
      "  --fork-sweep W        warm one session W virtual seconds, then\n"
      "                        fork(2) a child per seed that arms that\n"
      "                        seed's fault plan against the shared state\n"
      "                        (workload seed = first seed; --jobs children\n"
      "                        in flight)\n"
      "  --quiet               only print failures and the final summary\n",
      argv0);
}

// "N", "A..B" (inclusive range), or "a,b,c" (explicit list, run in the
// order given — the seed corpus is curated, not contiguous).
bool parse_seeds(const std::string& arg, std::vector<std::uint64_t>& out) {
  out.clear();
  try {
    if (arg.find(',') != std::string::npos) {
      std::size_t pos = 0;
      while (pos <= arg.size()) {
        std::size_t comma = arg.find(',', pos);
        if (comma == std::string::npos) comma = arg.size();
        out.push_back(std::stoull(arg.substr(pos, comma - pos)));
        pos = comma + 1;
      }
      return !out.empty();
    }
    auto dots = arg.find("..");
    if (dots == std::string::npos) {
      out.push_back(std::stoull(arg));
      return true;
    }
    std::uint64_t lo = std::stoull(arg.substr(0, dots));
    std::uint64_t hi = std::stoull(arg.substr(dots + 2));
    if (lo > hi) return false;
    for (std::uint64_t s = lo; s <= hi; ++s) out.push_back(s);
    return true;
  } catch (...) {
    return false;
  }
}

// Fault-kind filter: every FaultKind name maps to the PlanOptions toggle
// that arms its category (begin/end and fault/heal pairs share a toggle,
// so naming either arms both — a plan with an un-healable fault would not
// be well-formed). Quiesce windows are structural and always on.
struct KindToggle {
  const char* kind;  // to_string(FaultKind)
  bool chaos::PlanOptions::*toggle;
};
constexpr KindToggle kKindToggles[] = {
    {"crash", &chaos::PlanOptions::crashes},
    {"recover", &chaos::PlanOptions::crashes},
    {"partition", &chaos::PlanOptions::partitions},
    {"heal-partition", &chaos::PlanOptions::partitions},
    {"edge-down", &chaos::PlanOptions::asym_partitions},
    {"edge-up", &chaos::PlanOptions::asym_partitions},
    {"edge-delay", &chaos::PlanOptions::delay_spikes},
    {"edge-delay-clear", &chaos::PlanOptions::delay_spikes},
    {"edge-loss", &chaos::PlanOptions::edge_loss},
    {"edge-loss-clear", &chaos::PlanOptions::edge_loss},
    {"device-link-loss", &chaos::PlanOptions::device_link_loss},
    {"device-crash", &chaos::PlanOptions::device_crashes},
    {"device-recover", &chaos::PlanOptions::device_crashes},
    {"spoof-event", &chaos::PlanOptions::spoof_events},
    {"replay-event", &chaos::PlanOptions::replay_events},
    {"corrupt-begin", &chaos::PlanOptions::corrupt_process},
    {"corrupt-end", &chaos::PlanOptions::corrupt_process},
};

void list_kinds() {
  std::printf("fault kinds (--kinds name,name,...):\n");
  for (const KindToggle& k : kKindToggles) std::printf("  %s\n", k.kind);
  std::printf("always on: quiesce-begin, quiesce-end (convergence "
              "windows are structural)\n");
}

// Apply "a,b,c" to the plan toggles: all categories off, then each named
// kind's category on. False on an unknown name (caller exits 2).
bool apply_kinds(const std::string& spec, chaos::PlanOptions& plan) {
  for (const KindToggle& k : kKindToggles) plan.*(k.toggle) = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(pos, comma - pos);
    bool found = false;
    for (const KindToggle& k : kKindToggles) {
      if (name == k.kind) {
        plan.*(k.toggle) = true;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown fault kind '%s' (see --list-kinds)\n",
                   name.c_str());
      return false;
    }
    pos = comma + 1;
  }
  return true;
}

// The artificial invariant breaker: proves that a violation surfaces as a
// failing seed with a working one-line repro. It trips once deliveries
// start, which every healthy run reaches.
class DemoViolation : public chaos::Invariant {
 public:
  const char* name() const override { return "demo-always-violated"; }
  bool continuous() const override { return false; }
  void check(const chaos::CheckContext& ctx,
             std::vector<chaos::Violation>& out) const override {
    if (!ctx.final_check) return;
    out.push_back({name(), ctx.home->sim().now(),
                   "artificially broken invariant (--demo-violation)"});
  }
};

std::string repro_command(const CliOptions& cli, std::uint64_t seed) {
  std::string cmd = "chaos_run --seed " + std::to_string(seed);
  cmd += cli.guarantee == appmodel::Guarantee::kGapless
             ? " --guarantee gapless"
             : " --guarantee gap";
  cmd += " --procs " + std::to_string(cli.procs);
  cmd += " --receivers " + std::to_string(cli.receivers);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", cli.loss);
  cmd += std::string(" --loss ") + buf;
  cmd += " --duration " + std::to_string(cli.duration_s);
  if (!cli.kinds.empty()) cmd += " --kinds " + cli.kinds;
  if (cli.demo_violation) cmd += " --demo-violation";
  return cmd;
}

chaos::EngineOptions build_engine_options(const CliOptions& cli,
                                          std::uint64_t seed) {
  chaos::EngineOptions opt;
  opt.scenario.seed = seed;
  opt.scenario.guarantee = cli.guarantee;
  opt.scenario.n_processes = cli.procs;
  opt.scenario.receivers = cli.receivers;
  opt.scenario.device_link_loss = cli.loss;
  opt.plan.horizon = seconds(cli.duration_s);
  if (!cli.kinds.empty()) apply_kinds(cli.kinds, opt.plan);  // pre-validated
  opt.check_interval = milliseconds(cli.check_interval_ms);
  opt.flight = !cli.trace_dir.empty() || cli.trace_ring_bytes > 0 ||
               !cli.stream_dir.empty();
  opt.flight_ring_bytes = cli.trace_ring_bytes;
  if (!cli.metrics_dir.empty()) opt.metrics_period = seconds(1);
  return opt;
}

// Primary-run variant that rides the checkpointable-scenario layer:
// identical behaviour (chunked run_to ≡ one big run; flight recording is
// passive), plus a RIVC snapshot saved at every --checkpoint-every
// boundary. Any of those files feeds --from-checkpoint or riv_replay.
chaos::ChaosResult run_checkpointed(const CliOptions& cli,
                                    std::uint64_t seed,
                                    chaos::EngineOptions opt) {
  std::error_code ec;
  std::filesystem::create_directories(cli.checkpoint_dir, ec);
  std::unique_ptr<checkpoint::Scenario> sc =
      checkpoint::make_chaos_scenario(std::move(opt));
  sc->start();
  const TimePoint end = sc->end_time();
  for (std::int64_t k = 1;; ++k) {
    const std::int64_t at_s = k * cli.checkpoint_every_s;
    const TimePoint t = TimePoint{} + seconds(at_s);
    if (!(t < end)) break;
    sc->run_to(t);
    checkpoint::Snapshot snap = sc->capture();
    const std::string path = cli.checkpoint_dir + "/seed-" +
                             std::to_string(seed) + "-t" +
                             std::to_string(at_s) + ".rivc";
    std::string err;
    if (!checkpoint::save(snap, path, &err))
      std::fprintf(stderr, "seed %llu: checkpoint save failed: %s\n",
                   static_cast<unsigned long long>(seed), err.c_str());
  }
  sc->run_to(end);
  sc->finish();
  return *sc->chaos_result();
}

chaos::ChaosResult run_once(const CliOptions& cli, std::uint64_t seed,
                            bool primary = true) {
  chaos::EngineOptions opt = build_engine_options(cli, seed);
  // Only the primary run streams to disk; the determinism re-run would
  // otherwise overwrite the same artifact mid-flight.
  if (primary && !cli.stream_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.stream_dir, ec);
    opt.flight_stream_path =
        cli.stream_dir + "/seed-" + std::to_string(seed) + ".rivtrace";
  }
  // The determinism re-run stays on the plain engine path on purpose:
  // matching fault-trace hashes then also prove the checkpointed chunked
  // run is equivalent to the uninterrupted one.
  if (primary && cli.checkpoint_every_s > 0)
    return run_checkpointed(cli, seed, std::move(opt));
  chaos::ChaosEngine engine(opt);
  if (cli.demo_violation)
    engine.add_invariant(std::make_unique<DemoViolation>());
  return engine.run();
}

// Everything one seed produces; computed (possibly on a worker thread)
// separately from reporting, so --jobs N can run seeds concurrently while
// the main thread prints outcomes strictly in seed order.
struct SeedOutcome {
  std::uint64_t seed{0};
  chaos::ChaosResult result;
  bool deterministic{true};
  std::string second_digest;
};

SeedOutcome run_seed(const CliOptions& cli, std::uint64_t seed) {
  SeedOutcome o;
  o.seed = seed;
  o.result = run_once(cli, seed);
  if (cli.verify_determinism) {
    chaos::ChaosResult r2 = run_once(cli, seed, /*primary=*/false);
    o.deterministic = r2.trace_hash == o.result.trace_hash;
    o.second_digest = r2.trace_digest;
  }
  return o;
}

// Print one seed's outcome and return whether it failed. Runs only on the
// main thread (it touches stdout and the trace directory).
bool report_outcome(const CliOptions& cli, const SeedOutcome& o) {
  const chaos::ChaosResult& r = o.result;
  bool failed = !r.ok() || !o.deterministic;
  if (cli.print_trace) {
    for (const std::string& line : r.trace)
      std::printf("    %s\n", line.c_str());
  }
  if (!cli.quiet || failed) {
    // Applied faults and planned-but-inapplicable ones (victim already
    // down, nothing eligible to replay, ...) are separate counts: a plan
    // where most actions no-op'd is a very different run from one where
    // they all landed, even when the totals match.
    std::string byz = r.byzantine_attacks > 0
                          ? " byz=" + std::to_string(r.byzantine_attacks)
                          : "";
    std::printf("seed %llu: %s  faults=%zu noop=%zu%s emitted=%llu "
                "ingested=%llu delivered=%llu trace=%s%s\n",
                static_cast<unsigned long long>(o.seed),
                failed ? "FAIL" : "ok", r.faults_injected, r.faults_noop,
                byz.c_str(),
                static_cast<unsigned long long>(r.emitted),
                static_cast<unsigned long long>(r.ingested),
                static_cast<unsigned long long>(r.delivered),
                r.trace_digest.c_str(),
                cli.verify_determinism && o.deterministic
                    ? " (deterministic)"
                    : "");
  }
  if (!o.deterministic) {
    std::printf("  NONDETERMINISM: second run trace=%s differs\n",
                o.second_digest.c_str());
  }
  if (!r.quiesced)
    std::printf("  drain did not reach quiescence within bound\n");
  for (const chaos::Violation& v : r.violations)
    std::printf("  %s\n", chaos::to_string(v).c_str());
  if (failed && !cli.trace_dir.empty() && r.flight &&
      !r.flight->streaming()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.trace_dir, ec);
    std::string path =
        cli.trace_dir + "/seed-" + std::to_string(o.seed) + ".rivtrace";
    std::string err;
    if (r.flight->save(path, &err)) {
      if (r.flight->dropped_records() > 0) {
        std::printf("  flight trace (last %zu records; ring dropped %llu) "
                    "saved: %s\n",
                    r.flight->size(),
                    static_cast<unsigned long long>(
                        r.flight->dropped_records()),
                    path.c_str());
      } else {
        std::printf("  flight trace (%zu records) saved: %s\n",
                    r.flight->size(), path.c_str());
      }
    } else {
      std::printf("  flight trace save failed: %s\n", err.c_str());
    }
  }
  if (!cli.quiet && !cli.stream_dir.empty() && r.flight &&
      r.flight->streaming()) {
    std::printf("  flight trace streamed: %s/seed-%llu.rivtrace\n",
                cli.stream_dir.c_str(),
                static_cast<unsigned long long>(o.seed));
  }
  if (!cli.metrics_dir.empty() && !r.metrics_csv.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.metrics_dir, ec);
    std::string path = cli.metrics_dir + "/seed-" +
                       std::to_string(o.seed) + ".metrics.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(r.metrics_csv.data(), 1, r.metrics_csv.size(), f);
      std::fclose(f);
      if (!cli.quiet)
        std::printf("  metrics timeline saved: %s\n", path.c_str());
    } else {
      std::printf("  metrics timeline save failed: %s\n", path.c_str());
    }
  }
  if (failed)
    std::printf("  repro: %s\n", repro_command(cli, o.seed).c_str());
  return failed;
}

// --from-checkpoint: load → restore (attested) → run the tail → report.
// Every scenario parameter comes from the file; the usual scenario flags
// are ignored. Exit 0 clean, 1 violation / failed attestation, 2 on an
// unreadable or malformed file.
int run_from_checkpoint(const CliOptions& cli) {
  checkpoint::Snapshot snap;
  std::string err;
  if (!checkpoint::load(cli.from_checkpoint, &snap, &err)) {
    std::fprintf(stderr, "%s: %s\n", cli.from_checkpoint.c_str(),
                 err.c_str());
    return 2;
  }
  std::printf("checkpoint: scenario=%s seed=%llu at=%.3fs sections=%zu "
              "trace_records=%llu\n",
              snap.scenario.c_str(),
              static_cast<unsigned long long>(snap.seed),
              static_cast<double>((snap.at - TimePoint{}).us) / 1e6,
              snap.sections.size(),
              static_cast<unsigned long long>(snap.trace_records));
  checkpoint::RestoreReport rep = checkpoint::restore(snap);
  if (!rep.ok) {
    std::fprintf(stderr, "restore FAILED: %s\n", rep.error.c_str());
    return 1;
  }
  std::printf("restore attested: all sections byte-identical "
              "(restored ≡ uninterrupted)\n");
  checkpoint::Scenario& sc = *rep.scenario;
  sc.run_to(sc.end_time());
  sc.finish();
  const chaos::ChaosResult* cr = sc.chaos_result();
  if (cr == nullptr) {
    // A golden home scenario: no engine verdict, just the trace identity.
    std::printf("%s: %s\n", sc.name().c_str(), sc.summary().c_str());
    return 0;
  }
  CliOptions report = cli;
  report.verify_determinism = false;  // single resumed run, nothing to diff
  SeedOutcome o;
  o.seed = snap.seed;
  o.result = *cr;
  return report_outcome(report, o) ? 1 : 0;
}

// --fork-sweep W: one warm-up shared by every seed, then fork(2)-per-seed
// divergence. The workload seed is seeds[0]; each child arms seed i's
// fault plan at the fork point, so the sweep varies the fault schedule
// over an identical in-memory warm state (test_checkpoint proves each
// child's outcome equals a fresh run of the same configuration).
int run_fork_sweep(const CliOptions& cli) {
  if (!checkpoint::fork_supported()) {
    std::fprintf(stderr, "--fork-sweep needs fork(2); unsupported here\n");
    return 2;
  }
  chaos::EngineOptions opt = build_engine_options(cli, cli.seeds[0]);
  opt.defer_plan = true;
  const Duration warmup = seconds(cli.fork_warmup_s);
  chaos::ChaosSession warm(std::move(opt));
  warm.run_to(TimePoint{} + warmup);
  if (!cli.quiet)
    std::printf("fork-sweep: workload seed %llu warmed to %llds; forking "
                "%zu plan seeds (%d jobs)\n",
                static_cast<unsigned long long>(cli.seeds[0]),
                static_cast<long long>(cli.fork_warmup_s),
                cli.seeds.size(), cli.jobs);
  std::vector<checkpoint::ForkResult> results = checkpoint::fork_sweep(
      cli.seeds.size(), static_cast<std::size_t>(cli.jobs),
      [&cli, &warm, warmup](std::size_t i) {
        warm.arm_plan(cli.seeds[i], warmup);
        warm.run_to(warm.run_end());
        chaos::ChaosResult r;
        warm.finish(r);
        std::string line =
            "seed " + std::to_string(cli.seeds[i]) +
            (r.ok() ? ": ok" : ": FAIL") +
            "  faults=" + std::to_string(r.faults_injected) +
            " noop=" + std::to_string(r.faults_noop) +
            (r.byzantine_attacks > 0
                 ? " byz=" + std::to_string(r.byzantine_attacks)
                 : "") +
            " emitted=" + std::to_string(r.emitted) +
            " ingested=" + std::to_string(r.ingested) +
            " delivered=" + std::to_string(r.delivered) +
            " trace=" + r.trace_digest;
        for (const chaos::Violation& v : r.violations)
          line += "\n  " + chaos::to_string(v);
        if (!r.quiesced) line += "\n  drain did not reach quiescence";
        return line;
      });
  std::uint64_t failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const checkpoint::ForkResult& fr = results[i];
    const bool failed = !fr.ok ||
                        fr.payload.find(": FAIL") != std::string::npos;
    if (!fr.ok) {
      std::printf("seed %llu: FAIL (forked child died, status %d)\n",
                  static_cast<unsigned long long>(cli.seeds[i]), fr.status);
    } else if (!cli.quiet || failed) {
      std::printf("%s\n", fr.payload.c_str());
    }
    if (failed) ++failures;
  }
  std::printf("%llu/%llu seeds clean\n",
              static_cast<unsigned long long>(cli.seeds.size() - failures),
              static_cast<unsigned long long>(cli.seeds.size()));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed" || arg == "--seeds") {
      if (!parse_seeds(next(), cli.seeds)) {
        std::fprintf(stderr, "bad seed spec\n");
        return 2;
      }
    } else if (arg == "--guarantee") {
      std::string g = next();
      if (g == "gapless") {
        cli.guarantee = appmodel::Guarantee::kGapless;
      } else if (g == "gap") {
        cli.guarantee = appmodel::Guarantee::kGap;
      } else {
        std::fprintf(stderr, "bad guarantee '%s'\n", g.c_str());
        return 2;
      }
    } else if (arg == "--procs") {
      cli.procs = std::atoi(next());
    } else if (arg == "--receivers") {
      cli.receivers = std::atoi(next());
    } else if (arg == "--loss") {
      cli.loss = std::atof(next());
    } else if (arg == "--duration") {
      cli.duration_s = std::atoll(next());
    } else if (arg == "--check-interval") {
      cli.check_interval_ms = std::atoll(next());
    } else if (arg == "--jobs") {
      // 0 = auto-detect: one worker per hardware thread.
      cli.jobs = riv::resolve_jobs(std::atoi(next()));
    } else if (arg == "--kinds") {
      cli.kinds = next();
      chaos::PlanOptions probe;
      if (!apply_kinds(cli.kinds, probe)) return 2;
    } else if (arg == "--list-kinds") {
      list_kinds();
      return 0;
    } else if (arg == "--no-verify") {
      cli.verify_determinism = false;
    } else if (arg == "--print-trace") {
      cli.print_trace = true;
    } else if (arg == "--demo-violation") {
      cli.demo_violation = true;
    } else if (arg == "--trace") {
      cli.trace_dir = next();
    } else if (arg == "--trace-ring") {
      cli.trace_ring_bytes = static_cast<std::size_t>(std::atoll(next()));
      if (cli.trace_ring_bytes == 0) {
        std::fprintf(stderr, "bad --trace-ring size\n");
        return 2;
      }
    } else if (arg == "--trace-stream") {
      cli.stream_dir = next();
    } else if (arg == "--metrics") {
      cli.metrics_dir = next();
    } else if (arg == "--checkpoint-every") {
      cli.checkpoint_every_s = std::atoll(next());
      if (cli.checkpoint_every_s < 1) {
        std::fprintf(stderr, "bad --checkpoint-every interval\n");
        return 2;
      }
    } else if (arg == "--checkpoint-dir") {
      cli.checkpoint_dir = next();
    } else if (arg == "--from-checkpoint") {
      cli.from_checkpoint = next();
    } else if (arg == "--fork-sweep") {
      cli.fork_warmup_s = std::atoll(next());
      if (cli.fork_warmup_s < 1) {
        std::fprintf(stderr, "bad --fork-sweep warm-up\n");
        return 2;
      }
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (cli.procs < 1 || cli.receivers < 1 || cli.duration_s < 1 ||
      cli.jobs < 1) {
    std::fprintf(stderr, "bad scenario parameters\n");
    return 2;
  }
  if (cli.checkpoint_every_s > 0 && cli.demo_violation) {
    // The demo invariant is injected into the engine directly; it has no
    // place in a (name, seed, params)-identified checkpointable run.
    std::fprintf(stderr,
                 "--checkpoint-every and --demo-violation are exclusive\n");
    return 2;
  }
  if (!cli.from_checkpoint.empty()) return run_from_checkpoint(cli);
  if (cli.fork_warmup_s >= 0) return run_fork_sweep(cli);

  const std::vector<std::uint64_t>& seeds = cli.seeds;

  std::uint64_t failures = 0;
  if (cli.jobs == 1 || seeds.size() == 1) {
    for (std::uint64_t seed : seeds) {
      if (report_outcome(cli, run_seed(cli, seed))) ++failures;
    }
  } else {
    // Worker threads claim seeds in order; each simulation is fully
    // self-contained (own Rng, clock, metrics, thread-local trace scope),
    // so concurrent runs produce exactly the serial per-seed results. The
    // main thread reports outcome i only after outcomes 0..i-1, keeping
    // the output byte-identical to --jobs 1.
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::optional<SeedOutcome>> done(seeds.size());
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const std::size_t n_workers =
        std::min<std::size_t>(static_cast<std::size_t>(cli.jobs),
                              seeds.size());
    pool.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          std::size_t i = next.fetch_add(1);
          if (i >= seeds.size()) return;
          SeedOutcome o = run_seed(cli, seeds[i]);
          {
            std::lock_guard<std::mutex> lock(mu);
            done[i] = std::move(o);
          }
          cv.notify_one();
        }
      });
    }
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      SeedOutcome o;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done[i].has_value(); });
        o = std::move(*done[i]);
        done[i].reset();
      }
      if (report_outcome(cli, o)) ++failures;
    }
    for (std::thread& t : pool) t.join();
  }
  const std::uint64_t total = seeds.size();

  std::printf("%llu/%llu seeds clean\n",
              static_cast<unsigned long long>(total - failures),
              static_cast<unsigned long long>(total));
  return failures == 0 ? 0 : 1;
}
