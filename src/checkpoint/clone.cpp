#include "checkpoint/clone.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "checkpoint/rivc.hpp"
#include "checkpoint/scenario.hpp"
#include "metrics/metrics.hpp"
#include "workload/deployment.hpp"

namespace riv::checkpoint {
namespace {

// Registry clone codec. Counters and histograms are the
// registry_fingerprint surface, so they round-trip exactly: histograms as
// sparse (index, count) pairs — a fleet home touches a handful of the
// ~600 buckets — plus the exact count/sum/min/max words. Series
// round-trip point-for-point.
void encode_registry(BinaryWriter& w, const metrics::Registry& reg) {
  const auto& counters = reg.counters();
  w.u64(counters.size());
  for (const auto& [name, c] : counters) {
    w.str(name);
    w.u64(c.value());
  }
  const auto& lats = reg.latencies();
  w.u64(lats.size());
  for (const auto& [name, lat] : lats) {
    w.str(name);
    const metrics::Histogram& h = lat.hist();
    const auto& buckets = h.buckets();
    std::uint32_t nonzero = 0;
    for (std::uint64_t b : buckets) nonzero += (b != 0) ? 1u : 0u;
    w.u32(nonzero);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] != 0) {
        w.u32(static_cast<std::uint32_t>(i));
        w.u64(buckets[i]);
      }
    }
    w.u64(h.overflow());
    w.u64(h.count());
    w.i64(h.sum_us());
    w.i64(h.min_raw());
    w.i64(h.max().us);
  }
  const auto& series = reg.all_series();
  w.u64(series.size());
  for (const auto& [name, s] : series) {
    w.str(name);
    w.u64(s.points().size());
    for (const auto& p : s.points()) {
      w.time_point(p.t);
      w.f64(p.v);
    }
  }
}

void decode_registry(BinaryReader& r, metrics::Registry& reg) {
  reg.reset();
  const std::uint64_t n_counters = r.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = r.str();
    reg.counter(name).add(r.u64());
  }
  const std::uint64_t n_lats = r.u64();
  for (std::uint64_t i = 0; i < n_lats; ++i) {
    std::string name = r.str();
    std::array<std::uint64_t, metrics::Histogram::kBucketCount> buckets{};
    const std::uint32_t nonzero = r.u32();
    for (std::uint32_t j = 0; j < nonzero; ++j) {
      const std::uint32_t idx = r.u32();
      RIV_ASSERT(idx < buckets.size(), "clone restore: histogram bucket oob");
      buckets[idx] = r.u64();
    }
    const std::uint64_t overflow = r.u64();
    const std::uint64_t count = r.u64();
    const std::int64_t sum = r.i64();
    const std::int64_t min = r.i64();
    const std::int64_t max = r.i64();
    reg.latency(name).mutable_hist().restore(buckets, overflow, count, sum,
                                             min, max);
  }
  const std::uint64_t n_series = r.u64();
  for (std::uint64_t i = 0; i < n_series; ++i) {
    metrics::TimeSeries& s = reg.series(r.str());
    const std::uint64_t n_points = r.u64();
    for (std::uint64_t j = 0; j < n_points; ++j) {
      TimePoint t = r.time_point();
      s.append(t, r.f64());
    }
  }
}

}  // namespace

std::size_t WarmImage::bytes() const {
  std::size_t total = kernel.size() + metrics.size() + network.size() +
                      devices.size() + attest.size();
  for (const auto& p : procs) total += p.size();
  return total;
}

void WarmImage::clear() {
  seed = 0;
  at = {};
  n_processes = 0;
  n_sensors = 0;
  kernel.clear();
  metrics.clear();
  network.clear();
  devices.clear();
  for (auto& p : procs) p.clear();
  attest.clear();
}

void enable_clone_tracking(workload::HomeDeployment& home) {
  home.net().set_clone_tracking(true);
  home.bus().set_clone_tracking(true);
}

void capture_warm_home(workload::HomeDeployment& home, std::uint64_t seed,
                       WarmImage& out, bool with_attest) {
  out.seed = seed;
  out.at = home.sim().now();
  out.n_processes = static_cast<std::uint32_t>(home.processes().size());
  out.n_sensors = static_cast<std::uint32_t>(home.bus().sensors().size());
  {
    BinaryWriter w(std::move(out.kernel));
    home.sim().clone_state(w);
    out.kernel = w.take();
  }
  {
    BinaryWriter w(std::move(out.metrics));
    encode_registry(w, home.shared_metrics());
    for (ProcessId p : home.processes())
      encode_registry(w, home.process_metrics(p));
    out.metrics = w.take();
  }
  {
    BinaryWriter w(std::move(out.network));
    home.net().clone_state(w);
    out.network = w.take();
  }
  {
    BinaryWriter w(std::move(out.devices));
    home.bus().clone_state(w);
    out.devices = w.take();
  }
  out.procs.resize(out.n_processes);
  std::size_t i = 0;
  for (ProcessId p : home.processes()) {
    BinaryWriter w(std::move(out.procs[i]));
    home.process(p).clone_state(w);
    out.procs[i++] = w.take();
  }
  out.attest.clear();
  if (with_attest) {
    Snapshot snap;
    capture_deployment(home, snap);
    BinaryWriter w(std::move(out.attest));
    w.u32(static_cast<std::uint32_t>(snap.sections.size()));
    for (const Section& s : snap.sections) {
      w.str(s.name);
      w.bytes(s.payload);
    }
    out.attest = w.take();
  }
}

bool apply_warm_home(const WarmImage& img, workload::HomeDeployment& target,
                     std::uint64_t seed, std::string* error) {
  // Deployment-level identity gate: rejected cleanly, before any restore
  // call touches the target. (Deeper structural divergence with matching
  // counts is a build/scenario bug and trips component asserts instead.)
  auto reject = [error](std::string msg) {
    if (error) *error = std::move(msg);
    return false;
  };
  if (img.seed != seed)
    return reject("clone identity mismatch: image seed " +
                  std::to_string(img.seed) + ", target seed " +
                  std::to_string(seed));
  if (img.n_processes != target.processes().size())
    return reject("clone identity mismatch: image has " +
                  std::to_string(img.n_processes) + " processes, target " +
                  std::to_string(target.processes().size()));
  if (img.n_sensors != target.bus().sensors().size())
    return reject("clone identity mismatch: image has " +
                  std::to_string(img.n_sensors) + " sensors, target " +
                  std::to_string(target.bus().sensors().size()));
  RIV_ASSERT(img.procs.size() == img.n_processes,
             "clone image: per-process blob count mismatch");

  // A never-started target has an empty network registry (endpoints are
  // created by each process's volatile shell, which runs further down).
  // Pre-register them in pid order — the same first-touch order the
  // source used — so SimNetwork::restore_clone sees matching identity.
  for (ProcessId p : target.processes()) target.net().endpoint(p);

  {
    BinaryReader r(img.kernel);
    target.sim().begin_restore(r);
    RIV_ASSERT(r.ok() && r.remaining() == 0, "clone restore: kernel blob");
  }
  {
    BinaryReader r(img.metrics);
    decode_registry(r, target.shared_metrics());
    for (ProcessId p : target.processes())
      decode_registry(r, target.process_metrics(p));
    RIV_ASSERT(r.ok() && r.remaining() == 0, "clone restore: metrics blob");
  }
  {
    BinaryReader r(img.network);
    target.net().restore_clone(r);
    RIV_ASSERT(r.ok() && r.remaining() == 0, "clone restore: network blob");
  }
  {
    BinaryReader r(img.devices);
    target.bus().restore_clone(r);
    RIV_ASSERT(r.ok() && r.remaining() == 0, "clone restore: devices blob");
  }
  std::size_t i = 0;
  for (ProcessId p : target.processes()) {
    BinaryReader r(img.procs[i++]);
    target.process(p).restore_clone(r);
    RIV_ASSERT(r.ok() && r.remaining() == 0, "clone restore: process blob");
  }
  target.sim().finish_restore();
  if (error) error->clear();
  return true;
}

std::string attest_clone(const WarmImage& img,
                         workload::HomeDeployment& clone) {
  RIV_ASSERT(!img.attest.empty(),
             "attest_clone requires a capture taken with with_attest");
  Snapshot ref;
  ref.at = img.at;
  {
    BinaryReader r(img.attest);
    const std::uint32_t n = r.u32();
    ref.sections.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Section s;
      s.name = r.str();
      s.payload = r.bytes();
      ref.sections.push_back(std::move(s));
    }
    RIV_ASSERT(r.ok() && r.remaining() == 0, "clone attest: reference blob");
  }
  Snapshot cur;
  cur.at = img.at;
  capture_deployment(clone, cur);
  return diff_snapshots(ref, cur);
}

}  // namespace riv::checkpoint
