// In-memory fork: run a divergent tail of the current process's state.
//
// Serializing a mid-run simulation is impossible in general (timer
// callbacks are closures), but the operating system can copy one for
// free: fork(2) gives the child a copy-on-write image of the whole
// address space — closures, timer wheel, RNG streams and all. fork_run
// executes a callback in such a child and ships its result back over a
// pipe; fork_sweep keeps up to `jobs` children in flight. This is what
// makes fork-per-seed chaos sweeps cheap: one shared warm-up, then each
// seed diverges from the identical in-memory state (bench_kernel measures
// the speedup; test_checkpoint proves fork ≡ fresh run differentially).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace riv::checkpoint {

struct ForkResult {
  // False when fork(2) failed, the child died abnormally, or the payload
  // could not be read back.
  bool ok{false};
  // Raw wait(2) status for post-mortems on !ok.
  int status{0};
  // Whatever the child's callback returned.
  std::string payload;
};

// True on platforms with fork(2); false builds report failure instead.
bool fork_supported();

// Run `child` in a forked copy of this process; its return value is
// written over a pipe and becomes `payload`. The child never returns to
// the caller's code: it exits with _exit(0) as soon as the callback
// finishes (no destructors, no atexit — the parent owns the real state).
ForkResult fork_run(const std::function<std::string()>& child);

// Run `child(i)` for i in [0, n) in forked children, at most `jobs`
// alive at once (jobs==0 → 1). Results are indexed by i.
std::vector<ForkResult> fork_sweep(
    std::size_t n, std::size_t jobs,
    const std::function<std::string(std::size_t)>& child);

}  // namespace riv::checkpoint
