// RIVC: the versioned checkpoint container (DESIGN.md §13).
//
// A checkpoint is the scenario's identity (name, seed, opaque param blob)
// plus the virtual time it was taken at, the flight-trace position
// (record count + rolling hash), and a list of named state sections —
// each an opaque byte payload produced by a component's
// checkpoint_state(). The file ends with an FNV-1a footer over every
// preceding byte, so corruption anywhere is detected before a single
// field is trusted.
//
// Sections are an *attestation surface*, not a resurrection image: timer
// callbacks are closures and cannot be serialized, so restore() rebuilds
// the scenario from its identity, re-executes deterministically to `at`,
// and byte-compares the re-captured sections against the stored ones
// (checkpoint/scenario.hpp). A section mismatch means the build's
// behaviour diverged from the one that wrote the checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace riv::checkpoint {

// Bumped whenever the container layout or any section payload changes
// incompatibly. A reader only accepts its own version: checkpoints are
// build-coupled by design (they attest behaviour, not archive data).
inline constexpr std::uint32_t kRivcVersion = 1;

struct Section {
  std::string name;
  std::vector<std::byte> payload;
};

struct Snapshot {
  std::uint32_t version{kRivcVersion};
  // Scenario identity: registry name + seed + opaque parameter blob
  // (scenario-defined encoding), enough to rebuild the run from scratch.
  std::string scenario;
  std::uint64_t seed{0};
  std::vector<std::byte> params;
  // Virtual time the snapshot was taken at.
  TimePoint at{};
  // Flight-recorder position: records appended and rolling hash so far
  // (both zero when the scenario records no flight trace).
  std::uint64_t trace_records{0};
  std::uint64_t trace_hash{0};
  std::vector<Section> sections;

  const Section* find(std::string_view name) const;
};

// Encode to the RIVC wire form (including magic and footer).
std::vector<std::byte> encode(const Snapshot& snap);

// Decode; returns false and sets *error on any malformed input. Error
// strings are pinned (test_checkpoint_fuzz):
//   "not a RIVC checkpoint (bad magic)"
//   "unsupported checkpoint version N (this build reads 1)"
//   "truncated checkpoint"
//   "checkpoint footer hash mismatch"
//   "trailing bytes after checkpoint footer"
bool decode(const std::vector<std::byte>& data, Snapshot* out,
            std::string* error);

bool save(const Snapshot& snap, const std::string& path, std::string* error);
bool load(const std::string& path, Snapshot* out, std::string* error);

// Human-readable description of the first difference between two
// snapshots ("" when identical): a differing meta field by name, a
// section present in only one, or the first differing payload byte
// ("section 'proc.2' differs at byte 17 (0x3a vs 0x3b)"). This is the
// message a failed restore attestation reports.
std::string diff_snapshots(const Snapshot& a, const Snapshot& b);

}  // namespace riv::checkpoint
