#include "checkpoint/rivc.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/codec.hpp"
#include "common/hash.hpp"

namespace riv::checkpoint {
namespace {

constexpr char kMagic[4] = {'R', 'I', 'V', 'C'};

bool fail(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

const Section* Snapshot::find(std::string_view name) const {
  for (const Section& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<std::byte> encode(const Snapshot& snap) {
  BinaryWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(snap.version);
  w.str(snap.scenario);
  w.u64(snap.seed);
  w.bytes(snap.params);
  w.time_point(snap.at);
  w.u64(snap.trace_records);
  w.u64(snap.trace_hash);
  w.u32(static_cast<std::uint32_t>(snap.sections.size()));
  for (const Section& s : snap.sections) {
    w.str(s.name);
    w.bytes(s.payload);
  }
  std::vector<std::byte> out = w.take();
  const std::uint64_t footer = hash::fnv1a(out.data(), out.size());
  BinaryWriter f;
  f.u64(footer);
  std::vector<std::byte> tail = f.take();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

bool decode(const std::vector<std::byte>& data, Snapshot* out,
            std::string* error) {
  if (data.size() < sizeof(kMagic))
    return fail(error, "truncated checkpoint");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
    return fail(error, "not a RIVC checkpoint (bad magic)");

  BinaryReader r(data);
  r.skip_opaque(sizeof(kMagic));
  Snapshot snap;
  snap.version = r.u32();
  if (!r.ok()) return fail(error, "truncated checkpoint");
  if (snap.version != kRivcVersion) {
    if (error != nullptr)
      *error = "unsupported checkpoint version " +
               std::to_string(snap.version) + " (this build reads " +
               std::to_string(kRivcVersion) + ")";
    return false;
  }
  snap.scenario = r.str();
  snap.seed = r.u64();
  snap.params = r.bytes();
  snap.at = r.time_point();
  snap.trace_records = r.u64();
  snap.trace_hash = r.u64();
  const std::uint32_t n_sections = r.u32();
  if (!r.ok()) return fail(error, "truncated checkpoint");
  snap.sections.reserve(std::min<std::size_t>(n_sections, r.remaining()));
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    s.name = r.str();
    s.payload = r.bytes();
    if (!r.ok()) return fail(error, "truncated checkpoint");
    snap.sections.push_back(std::move(s));
  }
  if (r.remaining() < 8) return fail(error, "truncated checkpoint");
  // The footer covers every byte before it — verify before trusting any
  // parsed field. (Parsing above is bounds-checked, so reading first is
  // safe; trusting is what waits for the hash.)
  const std::size_t footer_off = data.size() - r.remaining();
  const std::uint64_t stored = r.u64();
  if (hash::fnv1a(data.data(), footer_off) != stored)
    return fail(error, "checkpoint footer hash mismatch");
  if (!r.at_end())
    return fail(error, "trailing bytes after checkpoint footer");
  *out = std::move(snap);
  return true;
}

bool save(const Snapshot& snap, const std::string& path, std::string* error) {
  std::vector<std::byte> data = encode(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(error, "cannot open checkpoint file");
  const bool ok =
      std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) return fail(error, "cannot write checkpoint file");
  return true;
}

bool load(const std::string& path, Snapshot* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(error, "cannot open checkpoint file");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok =
      std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!ok) return fail(error, "cannot read checkpoint file");
  return decode(data, out, error);
}

std::string diff_snapshots(const Snapshot& a, const Snapshot& b) {
  auto u64_diff = [](const char* field, std::uint64_t x, std::uint64_t y) {
    return std::string(field) + " differs (" + std::to_string(x) + " vs " +
           std::to_string(y) + ")";
  };
  if (a.version != b.version)
    return u64_diff("version", a.version, b.version);
  if (a.scenario != b.scenario)
    return "scenario differs ('" + a.scenario + "' vs '" + b.scenario + "')";
  if (a.seed != b.seed) return u64_diff("seed", a.seed, b.seed);
  if (a.params != b.params) return "params blob differs";
  if (a.at.us != b.at.us)
    return u64_diff("snapshot time", static_cast<std::uint64_t>(a.at.us),
                    static_cast<std::uint64_t>(b.at.us));
  if (a.trace_records != b.trace_records)
    return u64_diff("trace record count", a.trace_records, b.trace_records);
  if (a.trace_hash != b.trace_hash)
    return "trace hash differs (" + hash::fnv1a_digest(a.trace_hash) +
           " vs " + hash::fnv1a_digest(b.trace_hash) + ")";
  for (std::size_t i = 0; i < a.sections.size() || i < b.sections.size();
       ++i) {
    if (i >= a.sections.size())
      return "section '" + b.sections[i].name + "' only in second";
    if (i >= b.sections.size())
      return "section '" + a.sections[i].name + "' only in first";
    const Section& sa = a.sections[i];
    const Section& sb = b.sections[i];
    if (sa.name != sb.name)
      return "section order differs at index " + std::to_string(i) + " ('" +
             sa.name + "' vs '" + sb.name + "')";
    const std::size_t n = std::min(sa.payload.size(), sb.payload.size());
    for (std::size_t j = 0; j < n; ++j) {
      if (sa.payload[j] != sb.payload[j]) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "section '%s' differs at byte %zu (0x%02x vs 0x%02x)",
                      sa.name.c_str(), j,
                      static_cast<unsigned>(sa.payload[j]),
                      static_cast<unsigned>(sb.payload[j]));
        return buf;
      }
    }
    if (sa.payload.size() != sb.payload.size())
      return "section '" + sa.name + "' length differs (" +
             std::to_string(sa.payload.size()) + " vs " +
             std::to_string(sb.payload.size()) + ")";
  }
  return "";
}

}  // namespace riv::checkpoint
