// Checkpointable scenarios: the runs RIVC snapshots can name and rebuild.
//
// A Scenario is a named, seeded, parameterized deployment run whose whole
// behaviour is a pure function of (name, seed, params) — the golden-trace
// scenarios and any chaos-engine configuration qualify. Checkpointing one
// is capture(): serialize the logical state of every layer into named
// RIVC sections plus the flight-trace position.
//
// restore() is re-execution + attestation, not deserialization: timer
// callbacks are closures and cannot live in a file, so the only faithful
// way back to a mid-run state is to rebuild the scenario from its
// identity, run it deterministically to the snapshot time, and then
// byte-compare a fresh capture against the stored sections. A match
// proves "restored ≡ uninterrupted" for every captured layer; a mismatch
// names the first divergent section and byte. The restored scenario is
// live and can keep running (riv_replay, chaos_run --from-checkpoint).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "checkpoint/rivc.hpp"

namespace riv::trace {
class Recorder;
}
namespace riv::workload {
class HomeDeployment;
}

namespace riv::checkpoint {

class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual const std::string& name() const = 0;
  virtual std::uint64_t seed() const = 0;
  // Opaque parameter blob; scenario_from_snapshot() round-trips it.
  virtual std::vector<std::byte> params() const = 0;

  // Build the deployment and start it (virtual time 0). Call once.
  virtual void start() = 0;
  // Advance virtual time to `t`, applying any scripted mid-run actions
  // (e.g. the failover scenario's crash at 3s) that fall inside the
  // window. Chunked calls are equivalent to one big call — the property
  // that makes checkpoint-at-T invisible to the run.
  virtual void run_to(TimePoint t) = 0;
  virtual TimePoint now() = 0;
  // The scenario's natural end (golden runs: 8s; chaos: horizon + 1s).
  virtual TimePoint end_time() const = 0;
  // Finish the run and tear the deployment down; after this the flight
  // recorder holds the complete trace (teardown records included) and
  // summary() describes the outcome. Call once, after the last run_to.
  virtual void finish() = 0;

  virtual std::shared_ptr<riv::trace::Recorder> recorder() const = 0;
  virtual workload::HomeDeployment& home() = 0;
  virtual std::string summary() const = 0;
  // The engine verdict — non-null only for chaos scenarios, after
  // finish() (tools print violations / exit status from it).
  virtual const chaos::ChaosResult* chaos_result() const { return nullptr; }

  // Serialize the current logical state into a snapshot: scenario
  // identity + virtual time + flight-trace position + one section per
  // layer ("sim.kernel", "net.wifi", "bus.devices", "proc.<pid>", plus
  // scenario extras such as "chaos.injector").
  Snapshot capture();

 protected:
  // Scenario-private sections appended after the deployment's.
  virtual void extra_sections(Snapshot& /*snap*/) {}
};

// The deployment-level sections shared by every scenario.
void capture_deployment(workload::HomeDeployment& home, Snapshot& snap);

// The four blessed golden-trace scenarios: "gapless_ring", "gap_chain",
// "failover" (home runs, seed 42), "chaos_flight" (engine run, seed 7).
// Returns null for an unknown name.
std::unique_ptr<Scenario> make_golden_scenario(const std::string& name);

// Any chaos-engine configuration as a scenario named "chaos"; the full
// EngineOptions ride in the params blob. flight is forced on (the trace
// position is part of the checkpoint contract); flight_stream_path is
// NOT round-tripped — a restored run keeps its trace in memory.
std::unique_ptr<Scenario> make_chaos_scenario(chaos::EngineOptions opt);

// Rebuild the scenario a snapshot names, ready for start(). Returns null
// and sets *error for an unknown name or an undecodable params blob.
std::unique_ptr<Scenario> scenario_from_snapshot(const Snapshot& snap,
                                                 std::string* error);

std::vector<std::byte> encode_chaos_params(const chaos::EngineOptions& opt);
bool decode_chaos_params(const std::vector<std::byte>& params,
                         chaos::EngineOptions* out, std::string* error);

struct RestoreReport {
  bool ok{false};
  // On failure: the load/rebuild error, or the attestation mismatch
  // (first divergent section + byte, from diff_snapshots).
  std::string error;
  // The live scenario, positioned exactly at snap.at (set even when the
  // attestation failed, so tools can still inspect the divergent run).
  std::unique_ptr<Scenario> scenario;
};

// Rebuild + re-execute to snap.at + byte-compare against the stored
// sections ("restored ≡ uninterrupted" or the exact first difference).
RestoreReport restore(const Snapshot& snap);

}  // namespace riv::checkpoint
