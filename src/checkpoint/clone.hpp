// Warm snapshot clones: restore a captured home directly, no re-execution.
//
// PR 7's RIVC checkpoints treat serialized state as an *attestation
// surface*: timer callbacks are closures, so restore() re-executes the
// scenario from its identity and byte-compares. That is the right
// trust model for archival checkpoints, but it makes the checkpoint
// useless as a performance primitive — restoring costs as much as the
// run it saves.
//
// This module adds the second path (DESIGN.md §16): every timer-owning
// component serializes its own pending timers (exact id/t/seq triples)
// alongside its data, and restore rebuilds the closures itself — it knows
// its own callbacks — re-registering them through
// Simulation::schedule_restored. The target must be a freshly built,
// never-started deployment with the same identity (same HomeSpec /
// builder calls); apply_warm_home() then overwrites its state in one pass
// and the clone continues exactly where the source stood. Correctness is
// attested by *sampling*: capture optionally embeds the PR 7
// checkpoint_state sections, and attest_clone() byte-compares a fresh
// capture of the restored clone against them (the fleet runs this on the
// observe.cpp hash-threshold-sampled subset, not on every clone).
//
// The capture requires in-flight tracking (network frames, device
// deliveries) to have been enabled since before the source started —
// enable_clone_tracking() — because a radio frame mid-air is a pending
// timer some component must own and re-create.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace riv::workload {
class HomeDeployment;
}

namespace riv::checkpoint {

// One captured home, held entirely in memory. Buffers are reused across
// capture calls (clear() keeps capacity) so a shard warming many homes
// allocates its scratch once.
struct WarmImage {
  std::uint64_t seed{0};  // home seed (identity; rejected on mismatch)
  TimePoint at{};         // virtual time of capture
  std::uint32_t n_processes{0};
  std::uint32_t n_sensors{0};
  std::vector<std::byte> kernel;   // Simulation clone header
  std::vector<std::byte> metrics;  // shared + per-process registries
  std::vector<std::byte> network;
  std::vector<std::byte> devices;
  std::vector<std::vector<std::byte>> procs;  // one per process, pid order
  // PR 7 checkpoint sections of the source (attestation reference);
  // empty unless capture was asked for it.
  std::vector<std::byte> attest;

  std::size_t bytes() const;
  void clear();
};

// Turn on in-flight tracking for every component of `home` that owns
// transient timers. Must run before home.start().
void enable_clone_tracking(workload::HomeDeployment& home);

// Serialize the live deployment into `out` (buffers reused). `seed` is
// the home's identity seed (the caller knows it; HomeDeployment does not
// retain it). with_attest additionally embeds the PR 7 checkpoint
// sections for later attest_clone() calls.
void capture_warm_home(workload::HomeDeployment& home, std::uint64_t seed,
                       WarmImage& out, bool with_attest);

// Restore `img` into `target`, a freshly built, never-started deployment
// of the same identity. Returns false (and sets *error, never touching
// the target's state machine mid-way) when the deployment-level identity
// differs: seed, process count, or sensor count. Deeper structural
// mismatches (diverged builder calls with matching counts) fail hard via
// component-level identity asserts.
bool apply_warm_home(const WarmImage& img, workload::HomeDeployment& target,
                     std::uint64_t seed, std::string* error);

// Sampled background attestation: byte-compare the PR 7 checkpoint
// sections of the restored clone against the reference embedded at
// capture. Returns "" when identical, else the first difference
// (rivc.hpp diff semantics). Requires img.attest (capture with
// with_attest=true).
std::string attest_clone(const WarmImage& img,
                         workload::HomeDeployment& clone);

}  // namespace riv::checkpoint
