#include "checkpoint/scenario.hpp"

#include <optional>
#include <utility>

#include "common/codec.hpp"
#include "common/hash.hpp"
#include "trace/trace.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv::checkpoint {
namespace {

// The golden scenarios' fixed identifiers (mirrors tests/test_trace_golden).
constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

constexpr std::uint32_t kGoldenMask =
    trace::kAllComponents & ~trace::component_bit(trace::Component::kSim);

// The paper's running example (door sensor → light on a 3-process home),
// construction kept field-for-field identical to the golden-trace test so
// a registry run reproduces the blessed traces bit-for-bit.
class HomeScenario final : public Scenario {
 public:
  HomeScenario(std::string name, std::uint64_t seed,
               appmodel::Guarantee guarantee, bool crash_active_logic,
               std::uint32_t mask)
      : name_(std::move(name)),
        seed_(seed),
        guarantee_(guarantee),
        crash_(crash_active_logic),
        mask_(mask) {}

  const std::string& name() const override { return name_; }
  std::uint64_t seed() const override { return seed_; }

  std::vector<std::byte> params() const override {
    BinaryWriter w;
    w.u32(mask_);
    return w.take();
  }

  void start() override {
    rec_ = std::make_shared<trace::Recorder>(mask_);
    scope_.emplace(*rec_);

    workload::HomeDeployment::Options opt;
    opt.seed = seed_;
    opt.n_processes = 3;
    home_.emplace(opt);

    devices::SensorSpec spec;
    spec.id = kDoor;
    spec.name = "door";
    spec.kind = devices::SensorKind::kDoor;
    spec.tech = devices::Technology::kIp;
    spec.rate_hz = 2.0;
    devices::LinkParams link;
    link.loss_prob = 0.1;
    home_->add_sensor(spec, {home_->pid(0), home_->pid(1)}, link);

    devices::ActuatorSpec light;
    light.id = kLight;
    light.name = "light";
    light.tech = devices::Technology::kIp;
    home_->add_actuator(light, {home_->pid(0)});
    home_->deploy(
        workload::apps::turn_light_on_off(kApp, kDoor, kLight, guarantee_));

    home_->start();
  }

  void run_to(TimePoint t) override {
    // The failover scenario's one scripted action: crash the active logic
    // holder at 3s. Applying it on the way through keeps chunked runs
    // (checkpoint at 4s, continue) identical to the monolithic golden run
    // (run 3s, crash, run 5s).
    const TimePoint crash_at = TimePoint{} + seconds(3);
    if (crash_ && !crash_done_ && t >= crash_at) {
      if (home_->sim().now() < crash_at) home_->run_until(crash_at);
      core::RivuletProcess* active = home_->active_logic_process(kApp);
      if (active != nullptr) active->crash();
      trace::emit_text(home_->sim().now(), ProcessId{0},
                       trace::Component::kChaos, trace::Kind::kMark,
                       "crash_active_logic");
      crash_done_ = true;
    }
    if (t > home_->sim().now()) home_->run_until(t);
  }

  TimePoint now() override { return home_->sim().now(); }
  TimePoint end_time() const override { return TimePoint{} + seconds(8); }

  void finish() override {
    // Teardown while the Scope is still installed: shutdown records are
    // part of the blessed golden traces.
    summary_ = "records=" + std::to_string(rec_->size()) +
               " hash=" + rec_->digest();
    home_.reset();
    scope_.reset();
  }

  std::shared_ptr<trace::Recorder> recorder() const override { return rec_; }
  workload::HomeDeployment& home() override { return *home_; }
  std::string summary() const override { return summary_; }

 private:
  std::string name_;
  std::uint64_t seed_;
  appmodel::Guarantee guarantee_;
  bool crash_;
  std::uint32_t mask_;
  std::shared_ptr<trace::Recorder> rec_;
  std::optional<trace::Scope> scope_;
  std::optional<workload::HomeDeployment> home_;
  bool crash_done_{false};
  std::string summary_;
};

class ChaosScenario final : public Scenario {
 public:
  ChaosScenario(std::string name, chaos::EngineOptions opt)
      : name_(std::move(name)), opt_(std::move(opt)) {
    // The trace position is part of the checkpoint contract, and a
    // restored run cannot re-open the original stream file.
    opt_.flight = true;
    opt_.flight_stream_path.clear();
  }

  const std::string& name() const override { return name_; }
  std::uint64_t seed() const override { return opt_.scenario.seed; }
  std::vector<std::byte> params() const override {
    return encode_chaos_params(opt_);
  }

  void start() override {
    session_.emplace(opt_);
    rec_ = session_->flight();
  }

  void run_to(TimePoint t) override { session_->run_to(t); }
  TimePoint now() override { return session_->home().sim().now(); }
  TimePoint end_time() const override {
    return session_ ? session_->run_end()
                    : TimePoint{} + opt_.plan.horizon + seconds(1);
  }

  void finish() override {
    session_->finish(result_);
    session_.reset();  // teardown records land in the flight trace
    result_.flight = rec_;
    finished_ = true;
    summary_ = "violations=" + std::to_string(result_.violations.size()) +
               " quiesced=" + (result_.quiesced ? "yes" : "no") +
               " faults=" + std::to_string(result_.faults_injected) +
               " trace=" + result_.trace_digest;
  }

  std::shared_ptr<trace::Recorder> recorder() const override { return rec_; }
  workload::HomeDeployment& home() override { return session_->home(); }
  std::string summary() const override { return summary_; }

  chaos::ChaosSession* session() { return session_ ? &*session_ : nullptr; }
  const chaos::ChaosResult* chaos_result() const override {
    return finished_ ? &result_ : nullptr;
  }

 protected:
  void extra_sections(Snapshot& snap) override {
    BinaryWriter w;
    session_->checkpoint_state(w);
    snap.sections.push_back({"chaos.injector", w.take()});
  }

 private:
  std::string name_;
  chaos::EngineOptions opt_;
  std::optional<chaos::ChaosSession> session_;
  std::shared_ptr<trace::Recorder> rec_;
  chaos::ChaosResult result_;
  bool finished_{false};
  std::string summary_;
};

bool is_home_name(const std::string& name) {
  return name == "gapless_ring" || name == "gap_chain" || name == "failover";
}

std::unique_ptr<Scenario> make_home_scenario(const std::string& name,
                                             std::uint64_t seed,
                                             std::uint32_t mask) {
  const bool crash = name == "failover";
  const appmodel::Guarantee g = name == "gap_chain"
                                    ? appmodel::Guarantee::kGap
                                    : appmodel::Guarantee::kGapless;
  return std::make_unique<HomeScenario>(name, seed, g, crash, mask);
}

}  // namespace

Snapshot Scenario::capture() {
  Snapshot snap;
  snap.scenario = name();
  snap.seed = seed();
  snap.params = params();
  workload::HomeDeployment& h = home();
  snap.at = h.sim().now();
  if (auto rec = recorder()) {
    snap.trace_records = rec->size();
    snap.trace_hash = rec->hash();
  }
  capture_deployment(h, snap);
  extra_sections(snap);
  return snap;
}

void capture_deployment(workload::HomeDeployment& home, Snapshot& snap) {
  {
    BinaryWriter w;
    home.sim().checkpoint_state(w);
    snap.sections.push_back({"sim.kernel", w.take()});
  }
  {
    BinaryWriter w;
    home.net().checkpoint_state(w);
    snap.sections.push_back({"net.wifi", w.take()});
  }
  {
    BinaryWriter w;
    home.bus().checkpoint_state(w);
    snap.sections.push_back({"bus.devices", w.take()});
  }
  for (ProcessId p : home.processes()) {
    BinaryWriter w;
    home.process(p).checkpoint_state(w);
    snap.sections.push_back(
        {"proc." + std::to_string(p.value), w.take()});
  }
}

std::unique_ptr<Scenario> make_golden_scenario(const std::string& name) {
  if (is_home_name(name)) return make_home_scenario(name, 42, kGoldenMask);
  if (name == "chaos_flight") {
    chaos::EngineOptions opt;
    opt.scenario.seed = 7;
    opt.scenario.guarantee = appmodel::Guarantee::kGapless;
    opt.plan.horizon = seconds(12);
    opt.flight = true;
    opt.flight_mask =
        kGoldenMask & ~trace::component_bit(trace::Component::kNet);
    return std::make_unique<ChaosScenario>(name, std::move(opt));
  }
  return nullptr;
}

std::unique_ptr<Scenario> make_chaos_scenario(chaos::EngineOptions opt) {
  return std::make_unique<ChaosScenario>("chaos", std::move(opt));
}

std::unique_ptr<Scenario> scenario_from_snapshot(const Snapshot& snap,
                                                 std::string* error) {
  if (is_home_name(snap.scenario)) {
    BinaryReader r(snap.params);
    const std::uint32_t mask = r.u32();
    if (!r.ok() || !r.at_end()) {
      if (error != nullptr) *error = "bad home-scenario params blob";
      return nullptr;
    }
    return make_home_scenario(snap.scenario, snap.seed, mask);
  }
  if (snap.scenario == "chaos" || snap.scenario == "chaos_flight") {
    chaos::EngineOptions opt;
    if (!decode_chaos_params(snap.params, &opt, error)) return nullptr;
    return std::make_unique<ChaosScenario>(snap.scenario, std::move(opt));
  }
  if (error != nullptr)
    *error = "unknown checkpoint scenario '" + snap.scenario + "'";
  return nullptr;
}

std::vector<std::byte> encode_chaos_params(const chaos::EngineOptions& o) {
  BinaryWriter w;
  w.u64(o.scenario.seed);
  w.u8(static_cast<std::uint8_t>(o.scenario.guarantee));
  w.u32(static_cast<std::uint32_t>(o.scenario.n_processes));
  w.u32(static_cast<std::uint32_t>(o.scenario.receivers));
  w.f64(o.scenario.device_link_loss);
  w.f64(o.scenario.rate_hz);
  w.duration(o.plan.horizon);
  w.duration(o.plan.mean_gap);
  w.duration(o.plan.quiesce_every);
  w.duration(o.plan.quiesce_len);
  w.duration(o.plan.max_fault_hold);
  w.u8(o.plan.crashes ? 1 : 0);
  w.u8(o.plan.partitions ? 1 : 0);
  w.u8(o.plan.asym_partitions ? 1 : 0);
  w.u8(o.plan.delay_spikes ? 1 : 0);
  w.u8(o.plan.edge_loss ? 1 : 0);
  w.u8(o.plan.device_link_loss ? 1 : 0);
  w.u8(o.plan.device_crashes ? 1 : 0);
  w.u8(o.plan.spoof_events ? 1 : 0);
  w.u8(o.plan.replay_events ? 1 : 0);
  w.u8(o.plan.corrupt_process ? 1 : 0);
  w.f64(o.plan.max_edge_loss);
  w.f64(o.plan.max_device_link_loss);
  w.duration(o.plan.max_delay_spike);
  w.duration(o.check_interval);
  w.u32(o.flight_mask);
  w.u64(o.flight_ring_bytes);
  w.duration(o.metrics_period);
  w.u8(o.byzantine_defense ? 1 : 0);
  w.u8(o.defer_plan ? 1 : 0);
  return w.take();
}

bool decode_chaos_params(const std::vector<std::byte>& params,
                         chaos::EngineOptions* out, std::string* error) {
  BinaryReader r(params);
  chaos::EngineOptions o;
  o.scenario.seed = r.u64();
  o.scenario.guarantee = static_cast<appmodel::Guarantee>(r.u8());
  o.scenario.n_processes = static_cast<int>(r.u32());
  o.scenario.receivers = static_cast<int>(r.u32());
  o.scenario.device_link_loss = r.f64();
  o.scenario.rate_hz = r.f64();
  o.plan.horizon = r.duration();
  o.plan.mean_gap = r.duration();
  o.plan.quiesce_every = r.duration();
  o.plan.quiesce_len = r.duration();
  o.plan.max_fault_hold = r.duration();
  o.plan.crashes = r.u8() != 0;
  o.plan.partitions = r.u8() != 0;
  o.plan.asym_partitions = r.u8() != 0;
  o.plan.delay_spikes = r.u8() != 0;
  o.plan.edge_loss = r.u8() != 0;
  o.plan.device_link_loss = r.u8() != 0;
  o.plan.device_crashes = r.u8() != 0;
  o.plan.spoof_events = r.u8() != 0;
  o.plan.replay_events = r.u8() != 0;
  o.plan.corrupt_process = r.u8() != 0;
  o.plan.max_edge_loss = r.f64();
  o.plan.max_device_link_loss = r.f64();
  o.plan.max_delay_spike = r.duration();
  o.check_interval = r.duration();
  o.flight = true;
  o.flight_mask = r.u32();
  o.flight_ring_bytes = r.u64();
  o.metrics_period = r.duration();
  o.byzantine_defense = r.u8() != 0;
  o.defer_plan = r.u8() != 0;
  if (!r.ok() || !r.at_end()) {
    if (error != nullptr) *error = "bad chaos-scenario params blob";
    return false;
  }
  *out = std::move(o);
  return true;
}

RestoreReport restore(const Snapshot& snap) {
  RestoreReport rep;
  rep.scenario = scenario_from_snapshot(snap, &rep.error);
  if (rep.scenario == nullptr) return rep;
  rep.scenario->start();
  rep.scenario->run_to(snap.at);
  Snapshot re = rep.scenario->capture();
  const std::string diff = diff_snapshots(snap, re);
  if (!diff.empty()) {
    rep.error = "restore attestation failed: " + diff;
    return rep;
  }
  rep.ok = true;
  return rep;
}

}  // namespace riv::checkpoint
