#include "checkpoint/fork.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RIV_HAVE_FORK 1
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#endif

namespace riv::checkpoint {

#ifdef RIV_HAVE_FORK

namespace {

// Child side: length-prefixed payload, written with plain write(2) —
// stdio buffers are shared with the parent post-fork and must not be
// flushed twice.
void write_payload_and_exit(int fd, const std::string& payload) {
  std::uint64_t len = payload.size();
  const auto put = [fd](const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd, p, n);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        ::_exit(3);
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  };
  put(&len, sizeof(len));
  put(payload.data(), payload.size());
  ::close(fd);
  ::_exit(0);
}

struct Child {
  pid_t pid{-1};
  int fd{-1};
  std::size_t index{0};
  std::string buf;  // raw bytes read so far (length prefix + payload)
  bool eof{false};
};

bool spawn(std::size_t index,
           const std::function<std::string(std::size_t)>& fn, Child* out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    write_payload_and_exit(fds[1], fn(index));
  }
  ::close(fds[1]);
  out->pid = pid;
  out->fd = fds[0];
  out->index = index;
  return true;
}

// Harvest a finished child: validate the length prefix, reap the pid.
void finish_child(Child& c, ForkResult& r) {
  ::close(c.fd);
  int status = 0;
  ::waitpid(c.pid, &status, 0);
  r.status = status;
  if (c.buf.size() >= sizeof(std::uint64_t)) {
    std::uint64_t len = 0;
    std::memcpy(&len, c.buf.data(), sizeof(len));
    if (c.buf.size() == sizeof(len) + len) {
      r.payload = c.buf.substr(sizeof(len));
      r.ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
  }
}

}  // namespace

bool fork_supported() { return true; }

std::vector<ForkResult> fork_sweep(
    std::size_t n, std::size_t jobs,
    const std::function<std::string(std::size_t)>& child) {
  std::vector<ForkResult> results(n);
  if (n == 0) return results;
  if (jobs == 0) jobs = 1;

  std::vector<Child> live;
  std::size_t next = 0;
  while (next < n || !live.empty()) {
    while (next < n && live.size() < jobs) {
      Child c;
      if (!spawn(next, child, &c)) {
        results[next].ok = false;  // fork/pipe failure: recorded, skipped
        ++next;
        continue;
      }
      live.push_back(c);
      ++next;
    }
    if (live.empty()) continue;

    std::vector<pollfd> fds(live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
      fds[i] = {live[i].fd, POLLIN, 0};
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (fds[i].revents == 0) continue;
      char chunk[65536];
      ssize_t got = ::read(live[i].fd, chunk, sizeof(chunk));
      if (got > 0) {
        live[i].buf.append(chunk, static_cast<std::size_t>(got));
      } else if (got == 0 || (got < 0 && errno != EINTR)) {
        live[i].eof = true;
      }
    }
    for (std::size_t i = live.size(); i-- > 0;) {
      if (!live[i].eof) continue;
      finish_child(live[i], results[live[i].index]);
      live.erase(live.begin() + static_cast<long>(i));
    }
  }
  return results;
}

ForkResult fork_run(const std::function<std::string()>& child) {
  std::vector<ForkResult> r =
      fork_sweep(1, 1, [&child](std::size_t) { return child(); });
  return std::move(r[0]);
}

#else  // !RIV_HAVE_FORK

bool fork_supported() { return false; }

ForkResult fork_run(const std::function<std::string()>&) { return {}; }

std::vector<ForkResult> fork_sweep(
    std::size_t n, std::size_t,
    const std::function<std::string(std::size_t)>&) {
  return std::vector<ForkResult>(n);
}

#endif

}  // namespace riv::checkpoint
