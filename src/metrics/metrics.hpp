// Measurement infrastructure for the evaluation harness.
//
// Every experiment in bench/ reads its numbers from these recorders rather
// than from analytic formulas: the transport charges bytes into a Counter,
// the runtime records per-event delivery latency into a LatencyRecorder,
// and timeline experiments (Fig 7) append to a TimeSeries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace riv::metrics {

// Monotonic counter (messages, bytes, polls, ...).
class Counter {
 public:
  void add(std::uint64_t v = 1) { value_ += v; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

// Collects duration samples and reports order statistics.
class LatencyRecorder {
 public:
  void record(Duration d) { samples_.push_back(d); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  Duration mean() const {
    if (samples_.empty()) return {};
    std::int64_t sum = 0;
    for (Duration d : samples_) sum += d.us;
    return {sum / static_cast<std::int64_t>(samples_.size())};
  }

  // q in [0, 1]; q = 0.5 is the median. Returns zero when empty.
  Duration percentile(double q) const {
    if (samples_.empty()) return {};
    std::vector<Duration> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double idx = q * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(idx + 0.5)];
  }

  Duration max() const {
    Duration m{};
    for (Duration d : samples_) m = std::max(m, d);
    return m;
  }

  void reset() { samples_.clear(); }

 private:
  std::vector<Duration> samples_;
};

// Ordered (time, value) samples; used for timeline plots (Fig 7).
class TimeSeries {
 public:
  void append(TimePoint t, double v) { points_.push_back({t, v}); }
  struct Point {
    TimePoint t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }

  // Re-bucket into fixed-width bins; each bin reports the last sample value
  // (suitable for cumulative counters).
  std::vector<Point> binned_last(Duration bin, TimePoint end) const;

 private:
  std::vector<Point> points_;
};

// Named metric registry shared by one experiment. Counters are created on
// first use; names follow "component.metric" (e.g. "net.bytes.ring_event").
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  LatencyRecorder& latency(const std::string& name) { return latencies_[name]; }
  TimeSeries& series(const std::string& name) { return series_[name]; }

  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  // Sum of all counters whose name starts with `prefix`.
  std::uint64_t counter_sum(const std::string& prefix) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, LatencyRecorder> latencies_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace riv::metrics
