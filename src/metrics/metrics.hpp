// Measurement infrastructure for the evaluation harness.
//
// Every experiment in bench/ reads its numbers from these recorders rather
// than from analytic formulas: the transport charges bytes into a Counter,
// the runtime records per-event delivery latency into a LatencyRecorder,
// and timeline experiments (Fig 7) append to a TimeSeries.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace riv::metrics {

// Monotonic counter (messages, bytes, polls, ...).
class Counter {
 public:
  void add(std::uint64_t v = 1) { value_ += v; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

// Log-bucketed duration histogram (HdrHistogram-style): values below 16 µs
// land in exact one-µs buckets; above that, each power-of-two octave is
// split into 16 sub-buckets, so percentile error is bounded at 1/16
// (6.25%) relative while memory stays constant (~5 KB) no matter how many
// samples arrive. count/sum/min/max are tracked exactly, so mean() and
// max() are precise; only interior percentiles are bucketed. Histograms
// merge by bucket-wise addition, which is what lets per-process registries
// and per-seed sweeps aggregate without keeping raw samples.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16 per octave
  static constexpr int kOctaves = 39;  // covers values < 2^42 µs (~52 days)
  static constexpr int kBucketCount = kSubBuckets * kOctaves;
  static constexpr std::int64_t kMaxTrackable = (std::int64_t{1} << 42) - 1;

  void record(Duration d) { record_us(d.us); }
  void record_us(std::int64_t us) {
    if (us < 0) us = 0;
    if (us > kMaxTrackable) {
      ++overflow_;
    } else {
      ++buckets_[static_cast<std::size_t>(bucket_index(us))];
    }
    ++count_;
    sum_ += us;
    min_ = std::min(min_, us);
    max_ = std::max(max_, us);
  }

  std::size_t count() const { return static_cast<std::size_t>(count_); }
  bool empty() const { return count_ == 0; }
  std::uint64_t overflow() const { return overflow_; }

  Duration mean() const {
    if (count_ == 0) return {};
    return {sum_ / static_cast<std::int64_t>(count_)};
  }
  Duration min() const { return count_ == 0 ? Duration{} : Duration{min_}; }
  Duration max() const { return count_ == 0 ? Duration{} : Duration{max_}; }

  // q in [0, 1]; q = 0.5 is the median. Returns the upper bound of the
  // bucket holding the q-th sample, clamped to the exact observed range.
  // Zero when empty.
  Duration percentile(double q) const {
    if (count_ == 0) return {};
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBucketCount; ++i) {
      seen += buckets_[static_cast<std::size_t>(i)];
      if (seen >= rank)
        return {std::clamp(bucket_upper(i), min_, max_)};
    }
    return {max_};  // rank falls in the overflow bucket
  }

  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    for (int i = 0; i < kBucketCount; ++i)
      buckets_[static_cast<std::size_t>(i)] +=
          other.buckets_[static_cast<std::size_t>(i)];
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() { *this = Histogram{}; }

  // Raw bucket counts, exposed read-only so fleet-scale aggregation can
  // fingerprint a merged histogram exactly (registry_fingerprint) instead
  // of through lossy percentile readouts.
  const std::array<std::uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }
  std::int64_t sum_us() const { return sum_; }
  std::int64_t min_raw() const { return min_; }

  // Snapshot-clone restore (DESIGN.md §16): rebuild from serialized raw
  // contents. min/max are the raw tracked values (min is the sentinel
  // int64 max when the histogram is empty).
  void restore(const std::array<std::uint64_t, kBucketCount>& buckets,
               std::uint64_t overflow, std::uint64_t count, std::int64_t sum,
               std::int64_t min, std::int64_t max) {
    buckets_ = buckets;
    overflow_ = overflow;
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

 private:
  static int bucket_index(std::int64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    int top = std::bit_width(static_cast<std::uint64_t>(v)) - 1;
    int octave = top - kSubBits + 1;
    int sub = static_cast<int>((v >> (top - kSubBits)) & (kSubBuckets - 1));
    return octave * kSubBuckets + sub;
  }
  static std::int64_t bucket_upper(int idx) {
    int octave = idx >> kSubBits;
    std::int64_t sub = idx & (kSubBuckets - 1);
    if (octave == 0) return sub;
    int scale = octave - 1;
    std::int64_t lower = (kSubBuckets + sub) << scale;
    return lower + ((std::int64_t{1} << scale) - 1);
  }

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t overflow_{0};
  std::uint64_t count_{0};
  std::int64_t sum_{0};
  std::int64_t min_{std::numeric_limits<std::int64_t>::max()};
  std::int64_t max_{0};
};

// Collects duration samples into a constant-memory Histogram. Percentiles
// carry the histogram's <=6.25% relative bucketing error; count, mean and
// max are exact. Mergeable across processes and seeds. Tests that assert
// exact order statistics use ExactLatencyRecorder instead.
class LatencyRecorder {
 public:
  void record(Duration d) { hist_.record(d); }
  std::size_t count() const { return hist_.count(); }
  bool empty() const { return hist_.empty(); }
  Duration mean() const { return hist_.mean(); }
  // q in [0, 1]; q = 0.5 is the median. Returns zero when empty.
  Duration percentile(double q) const { return hist_.percentile(q); }
  Duration max() const { return hist_.max(); }
  void merge(const LatencyRecorder& other) { hist_.merge(other.hist_); }
  void reset() { hist_.reset(); }
  const Histogram& hist() const { return hist_; }
  // Snapshot-clone restore (DESIGN.md §16): writable histogram access.
  Histogram& mutable_hist() { return hist_; }

 private:
  Histogram hist_;
};

// The pre-histogram recorder: keeps every sample and sorts per
// percentile() call. Unbounded memory, exact order statistics.
class ExactLatencyRecorder {
 public:
  void record(Duration d) { samples_.push_back(d); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  Duration mean() const {
    if (samples_.empty()) return {};
    std::int64_t sum = 0;
    for (Duration d : samples_) sum += d.us;
    return {sum / static_cast<std::int64_t>(samples_.size())};
  }

  // q in [0, 1]; q = 0.5 is the median. Returns zero when empty.
  Duration percentile(double q) const {
    if (samples_.empty()) return {};
    std::vector<Duration> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double idx = q * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(idx + 0.5)];
  }

  Duration max() const {
    Duration m{};
    for (Duration d : samples_) m = std::max(m, d);
    return m;
  }

  void reset() { samples_.clear(); }

 private:
  std::vector<Duration> samples_;
};

// Ordered (time, value) samples; used for timeline plots (Fig 7).
class TimeSeries {
 public:
  void append(TimePoint t, double v) { points_.push_back({t, v}); }
  struct Point {
    TimePoint t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }

  // Re-bucket into fixed-width bins; each bin reports the last sample value
  // (suitable for cumulative counters).
  std::vector<Point> binned_last(Duration bin, TimePoint end) const;

  // Time-ordered merge of another (itself time-ordered) series.
  void merge_from(const TimeSeries& other);

 private:
  std::vector<Point> points_;
};

// Named metric registry shared by one experiment. Counters are created on
// first use; names follow "component.metric" (e.g. "net.bytes.ring_event").
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  LatencyRecorder& latency(const std::string& name) { return latencies_[name]; }
  TimeSeries& series(const std::string& name) { return series_[name]; }

  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  // Sum of all counters whose name starts with `prefix`.
  std::uint64_t counter_sum(const std::string& prefix) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, LatencyRecorder>& latencies() const {
    return latencies_;
  }
  const std::map<std::string, TimeSeries>& all_series() const {
    return series_;
  }

  // Fold another registry into this one: counters add, latency histograms
  // merge bucket-wise, series interleave in time order. The basis of the
  // deployment-wide aggregate view over per-process registries.
  void merge_from(const Registry& other);

  // Counters + latency histograms only, skipping time series. Integer
  // adds and bucket-wise histogram adds are exactly associative and
  // commutative, so the result is bit-identical no matter what order (or
  // tree shape) registries are folded in — the property fleet-scale
  // aggregation leans on when worker threads merge shard results, and
  // test_metrics pins over 1k randomized registries. (Full merge_from is
  // order-invariant only up to time-ordered series tie interleave, and a
  // million homes' worth of per-delivery series points would dwarf the
  // scalar state anyway.)
  void merge_scalars_from(const Registry& other);

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, LatencyRecorder> latencies_;
  std::map<std::string, TimeSeries> series_;
};

// Periodic virtual-time snapshots of cumulative counter values: one row
// per (instant, process, counter). ProcessId{0} denotes the deployment's
// shared registry (network, devices). Dumped as CSV next to chaos_run's
// --trace artifacts so a seed's metric timeline can be replayed offline.
class SnapshotTimeline {
 public:
  struct Row {
    TimePoint at;
    ProcessId process;
    std::string name;
    std::uint64_t value;
  };

  void capture(TimePoint at, ProcessId process, const Registry& reg);
  const std::vector<Row>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  // "time_us,process,counter,value" rows in capture order.
  std::string to_csv() const;

 private:
  std::vector<Row> rows_;
};

}  // namespace riv::metrics
