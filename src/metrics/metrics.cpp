#include "metrics/metrics.hpp"

#include <iterator>

namespace riv::metrics {

std::vector<TimeSeries::Point> TimeSeries::binned_last(Duration bin,
                                                       TimePoint end) const {
  std::vector<Point> out;
  double last = 0.0;
  std::size_t i = 0;
  for (TimePoint t{bin.us}; t <= end; t = t + bin) {
    while (i < points_.size() && points_[i].t <= t) last = points_[i++].v;
    out.push_back({t, last});
  }
  return out;
}

void TimeSeries::merge_from(const TimeSeries& other) {
  if (other.points_.empty()) return;
  std::vector<Point> merged;
  merged.reserve(points_.size() + other.points_.size());
  std::merge(points_.begin(), points_.end(), other.points_.begin(),
             other.points_.end(), std::back_inserter(merged),
             [](const Point& a, const Point& b) { return a.t < b.t; });
  points_ = std::move(merged);
}

std::uint64_t Registry::counter_sum(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& [name, counter] : counters_) {
    if (name.rfind(prefix, 0) == 0) total += counter.value();
  }
  return total;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, counter] : other.counters_)
    counters_[name].add(counter.value());
  for (const auto& [name, lat] : other.latencies_)
    latencies_[name].merge(lat);
  for (const auto& [name, ts] : other.series_)
    series_[name].merge_from(ts);
}

void Registry::merge_scalars_from(const Registry& other) {
  for (const auto& [name, counter] : other.counters_)
    counters_[name].add(counter.value());
  for (const auto& [name, lat] : other.latencies_)
    latencies_[name].merge(lat);
}

void Registry::reset() {
  counters_.clear();
  latencies_.clear();
  series_.clear();
}

void SnapshotTimeline::capture(TimePoint at, ProcessId process,
                               const Registry& reg) {
  for (const auto& [name, counter] : reg.counters())
    rows_.push_back(Row{at, process, name, counter.value()});
}

std::string SnapshotTimeline::to_csv() const {
  std::string out = "time_us,process,counter,value\n";
  for (const Row& r : rows_) {
    out += std::to_string(r.at.us);
    out += ',';
    out += std::to_string(r.process.value);
    out += ',';
    out += r.name;
    out += ',';
    out += std::to_string(r.value);
    out += '\n';
  }
  return out;
}

}  // namespace riv::metrics
