#include "metrics/metrics.hpp"

namespace riv::metrics {

std::vector<TimeSeries::Point> TimeSeries::binned_last(Duration bin,
                                                       TimePoint end) const {
  std::vector<Point> out;
  double last = 0.0;
  std::size_t i = 0;
  for (TimePoint t{bin.us}; t <= end; t = t + bin) {
    while (i < points_.size() && points_[i].t <= t) last = points_[i++].v;
    out.push_back({t, last});
  }
  return out;
}

std::uint64_t Registry::counter_sum(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& [name, counter] : counters_) {
    if (name.rfind(prefix, 0) == 0) total += counter.value();
  }
  return total;
}

void Registry::reset() {
  counters_.clear();
  latencies_.clear();
  series_.clear();
}

}  // namespace riv::metrics
