#include "fleet/observe.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"

namespace riv::fleet {

namespace {

// Domain-separation salt for sampler membership draws, disjoint from the
// campaign's region/event salts (campaign.cpp) so arming a campaign can
// never perturb which homes are flight-recorded.
constexpr std::uint64_t kSampleSalt = 0x4f627365'72765331ULL;

// Uniform [0,1) from a mixed 64-bit state (same mantissa trick as Rng).
double unit_from(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

void fnv_u64(hash::Fnv1aStream& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    h.put(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
}

// "from->to" label of leg[stage] (stage-1 -> stage), e.g.
// "ingested->delivered", using the canonical Stage names.
std::string leg_name(int stage) {
  std::string out = trace::to_string(static_cast<trace::Stage>(stage - 1));
  out += "->";
  out += trace::to_string(static_cast<trace::Stage>(stage));
  return out;
}

// Record kinds a healthy steady-state home never logs mid-run: fault
// injection, process crash, gapless-ring fallback, integrity rejections,
// Byzantine attack markers. The first such record is where a sick home's
// execution diverges from a healthy one. Deployment teardown emits a
// kCrash per process at the very end of the trace — normal shutdown, so
// crashes at the final instant don't count.
bool divergent(const trace::Record& r, std::int64_t end_us) {
  switch (r.kind) {
    case trace::Kind::kCrash:
      return r.at.us < end_us;
    case trace::Kind::kFault:
    case trace::Kind::kFallback:
    case trace::Kind::kTamper:
    case trace::Kind::kByzantine:
      return true;
    default:
      return false;
  }
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

bool home_sampled(std::uint64_t fleet_seed, std::uint64_t home_index,
                  double sample) {
  if (sample <= 0.0) return false;
  if (sample >= 1.0) return true;
  return unit_from(derive_seed(fleet_seed ^ kSampleSalt, home_index)) <
         sample;
}

bool worse(const HomeHealth& a, const HomeHealth& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

HomeHealth score_home(const SloSpec& slo, std::uint64_t index,
                      const HomeOutcome& outcome,
                      const metrics::Registry& home_metrics) {
  HomeHealth h;
  h.index = index;
  h.seed = outcome.seed;
  h.delivered = outcome.delivered;
  h.emitted = outcome.emitted;
  h.faults = outcome.faults_injected;
  h.hit = outcome.hit;
  h.survived = outcome.survived;
  h.slo_us = slo.delivery_p99.us;

  // This home's own delivery p99: its app delay histograms, merged the
  // same way make_dashboard does fleet-wide.
  metrics::Histogram delay;
  for (const auto& [name, lat] : home_metrics.latencies()) {
    if (name.size() >= 6 && name.compare(name.size() - 6, 6, ".delay") == 0)
      delay.merge(lat.hist());
  }
  h.delay_p99_us = delay.percentile(0.99).us;

  if (h.emitted > 0 && h.delivered == 0) h.score += 50'000'000;
  if (h.hit && !h.survived) h.score += 10'000'000;
  if (h.delay_p99_us > h.slo_us)
    h.score += static_cast<std::uint64_t>(h.delay_p99_us - h.slo_us);
  return h;
}

void apply_provenance(HomeHealth& row, const trace::Analysis& analysis) {
  row.sampled = true;
  row.unexplained_orphans =
      static_cast<std::uint32_t>(analysis.unexplained_orphans());
  row.duplicates = static_cast<std::uint32_t>(analysis.duplicates.size());
  row.ordering_violations =
      static_cast<std::uint32_t>(analysis.ordering_violations.size());
  row.score += 500'000ull * row.ordering_violations;
  row.score += 200'000ull * (row.unexplained_orphans + row.duplicates);
}

void TopKHealth::add(const HomeHealth& row) {
  if (k_ == 0) return;
  if (rows_.size() == k_ && !worse(row, rows_.back())) return;
  auto at = std::lower_bound(rows_.begin(), rows_.end(), row, worse);
  rows_.insert(at, row);
  if (rows_.size() > k_) rows_.pop_back();
}

void TopKHealth::merge_from(const TopKHealth& other) {
  if (k_ == 0) k_ = other.k_;
  for (const HomeHealth& row : other.rows_) add(row);
}

void Observation::fold_from(const Observation& shard) {
  samples.insert(samples.end(), shard.samples.begin(), shard.samples.end());
  for (int s = 1; s < trace::kStageCount; ++s) leg[s].merge(shard.leg[s]);
  e2e_delivery.merge(shard.e2e_delivery);
  trace_records += shard.trace_records;
  trace_bytes += shard.trace_bytes;
  chains += shard.chains;
  orphans += shard.orphans;
  unexplained_orphans += shard.unexplained_orphans;
  duplicates += shard.duplicates;
  top.merge_from(shard.top);
}

std::uint64_t Observation::trace_digest() const {
  hash::Fnv1aStream h;
  for (const TraceSample& s : samples) {
    fnv_u64(h, s.index);
    fnv_u64(h, s.trace_hash);
  }
  return h.value();
}

std::string render_observation(const Observation& o) {
  char buf[512];
  std::string out;
  if (!o.samples.empty()) {
    std::snprintf(
        buf, sizeof(buf),
        "observed        %12zu homes sampled   %llu records   %llu chains"
        "   digest traces=%s\n",
        o.samples.size(), static_cast<unsigned long long>(o.trace_records),
        static_cast<unsigned long long>(o.chains),
        hash::fnv1a_digest(o.trace_digest()).c_str());
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "provenance      %12llu orphans (%llu unexplained)   %llu "
        "duplicates\n",
        static_cast<unsigned long long>(o.orphans),
        static_cast<unsigned long long>(o.unexplained_orphans),
        static_cast<unsigned long long>(o.duplicates));
    out += buf;
    out += "sampled legs   ";
    for (int s = 1; s < trace::kStageCount; ++s) {
      if (o.leg[s].empty()) continue;
      std::snprintf(buf, sizeof(buf), "  %s p99 %.2fms",
                    leg_name(s).c_str(),
                    o.leg[s].percentile(0.99).millis());
      out += buf;
    }
    out += "\n";
  }
  if (o.top.k() > 0) {
    std::snprintf(buf, sizeof(buf), "worst homes     (top %zu of fleet)\n",
                  o.top.k());
    out += buf;
    for (const HomeHealth& h : o.top.rows()) {
      std::snprintf(
          buf, sizeof(buf),
          "  home %-9llu score %-10llu p99 %8.2fms   faults %-4u "
          "delivered %-6llu%s%s%s\n",
          static_cast<unsigned long long>(h.index),
          static_cast<unsigned long long>(h.score),
          static_cast<double>(h.delay_p99_us) / 1e3, h.faults,
          static_cast<unsigned long long>(h.delivered),
          h.hit ? (h.survived ? "   hit+recovered" : "   hit+FAILED") : "",
          h.sampled ? "   [traced]" : "",
          h.unexplained_orphans + h.duplicates + h.ordering_violations > 0
              ? "   PROVENANCE"
              : "");
      out += buf;
    }
  }
  return out;
}

TriageReport triage_home(const FleetOptions& opt, std::uint64_t index,
                         const TriageOptions& topt) {
  HomeRun run = run_home(opt, index, /*traced=*/true,
                         opt.observe.flight_mask);
  TriageReport rep;
  const std::vector<trace::Record> records = run.flight->records();
  const trace::Analysis an = trace::analyze(records, topt.analyze);

  rep.health = score_home(opt.observe.slo, index, run.outcome, run.metrics);
  apply_provenance(rep.health, an);
  rep.trace_hash = run.flight->hash();
  rep.trace_records = run.flight->size();

  const trace::CheckResult verdict = trace::check(an);
  rep.check_ok = verdict.ok;
  rep.problems = verdict.problems;

  rep.faults = static_cast<std::uint32_t>(an.faults.size());
  if (!an.faults.empty()) rep.fault = an.faults.front().what;

  for (int s = 1; s < trace::kStageCount; ++s) {
    if (an.leg[s].empty()) continue;
    const std::int64_t p99 = an.leg[s].percentile(0.99).us;
    if (rep.worst_leg.empty() || p99 > rep.worst_leg_p99_us) {
      rep.worst_leg = leg_name(s);
      rep.worst_leg_p99_us = p99;
    }
  }

  const std::int64_t end_us =
      records.empty() ? 0 : records.back().at.us;
  for (const trace::Record& rec : records) {
    if (!divergent(rec, end_us)) continue;
    rep.first_divergence = trace::to_string(rec);
    rep.first_divergence_us = rec.at.us;
    break;
  }

  if (!topt.trace_dir.empty()) {
    const std::string path =
        topt.trace_dir + "/home-" + std::to_string(index) + ".rivtrace";
    std::string err;
    if (!run.flight->save(path, &err))
      throw std::runtime_error("triage trace save: " + err);
    rep.trace_path = path;
  }
  return rep;
}

std::string render(const TriageReport& r) {
  char buf[512];
  std::string out;
  const HomeHealth& h = r.health;
  std::snprintf(buf, sizeof(buf),
                "home %llu  seed %llu  score %llu  (%s)\n",
                static_cast<unsigned long long>(h.index),
                static_cast<unsigned long long>(h.seed),
                static_cast<unsigned long long>(h.score),
                h.score == 0 ? "healthy" : "unhealthy");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  delivery     p99 %.2fms vs SLO %.2fms   %llu delivered / "
                "%llu emitted\n",
                static_cast<double>(h.delay_p99_us) / 1e3,
                static_cast<double>(h.slo_us) / 1e3,
                static_cast<unsigned long long>(h.delivered),
                static_cast<unsigned long long>(h.emitted));
  out += buf;
  if (r.faults > 0) {
    std::snprintf(buf, sizeof(buf), "  fault        %u injected; first: %s\n",
                  r.faults, r.fault.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "  recovery     %s\n",
                  h.hit ? (h.survived ? "survived (delivered after heal)"
                                      : "FAILED (nothing after heal)")
                        : "not campaign-hit");
    out += buf;
  }
  if (!r.worst_leg.empty()) {
    std::snprintf(buf, sizeof(buf), "  worst leg    %s p99 %.2fms\n",
                  r.worst_leg.c_str(),
                  static_cast<double>(r.worst_leg_p99_us) / 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  causal check %s (%u orphans unexplained, %u duplicates, "
                "%u order violations)\n",
                r.check_ok ? "OK" : "FAILED", h.unexplained_orphans,
                h.duplicates, h.ordering_violations);
  out += buf;
  for (const std::string& p : r.problems) {
    out += "    problem: ";
    out += p;
    out += "\n";
  }
  if (!r.first_divergence.empty()) {
    std::snprintf(buf, sizeof(buf), "  divergence   %s\n",
                  r.first_divergence.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  trace        %llu records  hash %s%s%s\n",
                static_cast<unsigned long long>(r.trace_records),
                hash::fnv1a_digest(r.trace_hash).c_str(),
                r.trace_path.empty() ? "" : "  saved ",
                r.trace_path.c_str());
  out += buf;
  return out;
}

std::string render_triage_json(const std::vector<TriageReport>& reports) {
  std::string out = "{\n  \"triage\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TriageReport& r = reports[i];
    const HomeHealth& h = r.health;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"home\": %llu, \"seed\": %llu, \"score\": %llu, "
        "\"delay_p99_us\": %lld, \"slo_us\": %lld, \"delivered\": %llu, "
        "\"emitted\": %llu, \"faults\": %u, \"hit\": %s, \"survived\": %s, "
        "\"check_ok\": %s, \"unexplained_orphans\": %u, \"duplicates\": %u, "
        "\"ordering_violations\": %u, ",
        static_cast<unsigned long long>(h.index),
        static_cast<unsigned long long>(h.seed),
        static_cast<unsigned long long>(h.score),
        static_cast<long long>(h.delay_p99_us),
        static_cast<long long>(h.slo_us),
        static_cast<unsigned long long>(h.delivered),
        static_cast<unsigned long long>(h.emitted), r.faults,
        h.hit ? "true" : "false", h.survived ? "true" : "false",
        r.check_ok ? "true" : "false", h.unexplained_orphans, h.duplicates,
        h.ordering_violations);
    out += buf;
    out += "\"fault\": \"";
    json_escape(out, r.fault);
    out += "\", \"worst_leg\": \"";
    json_escape(out, r.worst_leg);
    std::snprintf(buf, sizeof(buf),
                  "\", \"worst_leg_p99_us\": %lld, \"trace_records\": %llu, "
                  "\"trace_hash\": \"%s\", ",
                  static_cast<long long>(r.worst_leg_p99_us),
                  static_cast<unsigned long long>(r.trace_records),
                  hash::fnv1a_digest(r.trace_hash).c_str());
    out += buf;
    out += "\"first_divergence\": \"";
    json_escape(out, r.first_divergence);
    out += "\", \"trace_path\": \"";
    json_escape(out, r.trace_path);
    out += "\"}";
    out += (i + 1 < reports.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace riv::fleet
