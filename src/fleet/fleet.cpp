#include "fleet/fleet.hpp"

#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "chaos/injector.hpp"
#include "chaos/trace.hpp"
#include "checkpoint/clone.hpp"
#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trace/provenance.hpp"

namespace riv::fleet {

namespace {

constexpr std::uint64_t kAttestSalt = 0x5761'726d'4174'7431ULL;  // "WarmAtt1"

// Uniform [0,1) from a mixed 64-bit state (same mantissa trick as Rng).
double unit_from(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

// Per-campaign RNG salt folded into the device RNGs at the prefix point
// (identically on the warm and cold paths). Zero = resalting off.
std::uint64_t campaign_salt(const WarmOptions& warm, std::uint64_t campaign) {
  return warm.resalt == 0 ? 0 : derive_seed(warm.resalt, campaign);
}

void fnv_u64(hash::Fnv1aStream& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    h.put(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
}

void fnv_i64(hash::Fnv1aStream& h, std::int64_t v) {
  fnv_u64(h, static_cast<std::uint64_t>(v));
}

// Everything one shard (a contiguous run of home indices) produces;
// combined on the main thread in shard order so the fleet result never
// depends on worker scheduling.
struct ShardResult {
  metrics::Registry merged;
  std::vector<std::uint64_t> fault_hashes;  // one per home, index order
  std::vector<HomeOutcome> rows;
  Observation obs;
  std::uint64_t processes{0};
  std::uint64_t sensors{0};
  std::uint64_t sim_events{0};
  std::uint64_t emitted{0};
  std::uint64_t delivered{0};
  std::uint64_t faults_injected{0};
  std::uint64_t homes_hit{0};
  std::uint64_t homes_hit_survived{0};
  std::uint64_t homes_survived{0};
};

// The one execution envelope for a fleet home — run_fleet's shard loop
// and run_home (triage replays) both come through here, which is what
// makes a replayed trace byte-identical to the sampled recording. When
// `flight` is non-null it is installed as the current trace sink before
// any simulation object exists and stays installed through deployment
// teardown (same discipline as ChaosSession; scoping below is
// load-bearing). `after_run(outcome, metrics)` fires after the simulation
// finishes, while the home's own registry is still alive — the only
// window in which per-home health can be scored without copying.
//
// Three entry modes share the envelope (WarmOptions, fleet.hpp):
//   * prefix == 0, image == null — the historical path: faults armed
//     before start(), byte-compatible with pre-warm fleet digests.
//   * prefix > 0, image == null — cold reference: run the fault-free
//     prefix, fold in the campaign salt, arm the campaign shifted past
//     the prefix, run the window.
//   * image != null — warm clone: restore the captured prefix state into
//     the freshly built deployment (never started; the snapshot carries
//     every pending timer), then salt/arm/run exactly as the cold leg
//     does from its prefix point. Identical (id, seq) timer counters at
//     the arm point are what make the two legs bit-identical.
template <typename AfterRun>
HomeOutcome execute_home(const FleetOptions& opt, const CampaignPlan& campaign,
                         std::uint64_t salt, std::uint64_t index,
                         trace::Recorder* flight,
                         const checkpoint::WarmImage* image, bool attest,
                         AfterRun&& after_run) {
  std::optional<trace::Scope> flight_scope;
  if (flight != nullptr) flight_scope.emplace(*flight);

  const HomeSpec spec = sample_home(opt.population, opt.seed, index);
  std::unique_ptr<workload::HomeDeployment> home = build_home(spec);
  const Duration prefix = opt.warm.prefix;

  HomeOutcome out;
  out.seed = spec.seed;
  out.n_processes = static_cast<std::uint32_t>(spec.n_processes);
  out.n_sensors = static_cast<std::uint32_t>(spec.sensors.size());

  {
    // Campaign projection: arm this home's stamped fault plan (if any
    // event sampled it) and plant the survival probe at the last heal.
    // Inner scope: the injector references the home and must be gone
    // before the home is torn down below.
    chaos::TraceRecorder fault_trace;
    chaos::FaultInjector injector(*home, fault_trace);
    std::uint64_t delivered_at_heal = 0;
    bool probed = false;
    const TimePoint sim_end = TimePoint{} + prefix + spec.sim_duration;
    auto arm_campaign = [&] {
      if (campaign.empty()) return;
      chaos::FaultPlan plan = stamp_home_plan(campaign, opt.seed, spec);
      if (plan.actions.empty()) return;
      out.hit = true;
      injector.arm(plan, {}, prefix);
      const TimePoint heal = last_heal_time(campaign, opt.seed, index) + prefix;
      if (heal < sim_end) {
        workload::HomeDeployment* h = home.get();
        home->sim().schedule_at(heal, [h, &delivered_at_heal, &probed] {
          delivered_at_heal = total_delivered(h->metrics());
          probed = true;
        });
      }
    };

    if (image != nullptr) {
      std::string err;
      if (!checkpoint::apply_warm_home(*image, *home, spec.seed, &err))
        throw std::runtime_error("warm clone rejected (home " +
                                 std::to_string(index) + "): " + err);
      if (attest) {
        const std::string diff = checkpoint::attest_clone(*image, *home);
        if (!diff.empty())
          throw std::runtime_error("warm clone attestation failed (home " +
                                   std::to_string(index) + "): " + diff);
      }
      if (salt != 0) home->bus().perturb(salt);
      arm_campaign();
      home->run_for(spec.sim_duration);
    } else if (prefix.us > 0) {
      home->start();
      home->run_for(prefix);
      if (salt != 0) home->bus().perturb(salt);
      arm_campaign();
      home->run_for(spec.sim_duration);
    } else {
      if (salt != 0) home->bus().perturb(salt);
      arm_campaign();
      home->start();
      home->run_for(spec.sim_duration);
    }

    const metrics::Registry& m = home->metrics();
    out.delivered = total_delivered(m);
    out.sim_events = home->sim().events_fired();
    for (SensorId s : home->bus().sensors())
      out.emitted += home->bus().sensor(s).events_emitted();
    out.faults_injected =
        static_cast<std::uint32_t>(injector.injected() + injector.noops());
    if (out.hit) {
      out.fault_hash = fault_trace.hash();
      // Survived = delivered after the last fault healed. An outage that
      // outlives the home's window never gets a post-heal probe and counts
      // as not survived.
      out.survived = probed && out.delivered > delivered_at_heal;
    } else {
      out.survived = out.delivered > 0;
    }
    after_run(static_cast<const HomeOutcome&>(out), m);
  }
  // Tear the home down while the flight scope is still installed so the
  // shutdown records land in the trace (triage replays and sampled
  // recordings must see the same byte stream).
  home.reset();
  return out;
}

// One fleet home, with observability: sample-or-not is a pure function of
// (fleet_seed, index), health rows are scored in the after-run window,
// and a sampled home's trace is analyzed (and optionally saved) right
// here on the worker — only bounded derivatives enter the shard fold.
HomeOutcome run_one_home(const FleetOptions& opt, const CampaignPlan& campaign,
                         std::uint64_t salt, std::uint64_t index,
                         ShardResult& shard,
                         const checkpoint::WarmImage* image, bool attest) {
  const ObserveOptions& ob = opt.observe;
  const bool sampled = home_sampled(opt.seed, index, ob.sample);
  // Flight-sampled homes always run cold: a recording of a cloned home
  // would not be replayable from scratch by fleet_triage.
  RIV_ASSERT(image == nullptr || !sampled,
             "warm clone offered for a flight-sampled home");

  std::optional<trace::Recorder> flight;
  if (sampled) flight.emplace(ob.flight_mask);

  HomeHealth health;
  HomeOutcome out = execute_home(
      opt, campaign, salt, index, sampled ? &*flight : nullptr, image, attest,
      [&](const HomeOutcome& o, const metrics::Registry& m) {
        if (ob.top_k > 0 || sampled) health = score_home(ob.slo, index, o, m);
        shard.merged.merge_scalars_from(m);
      });

  if (sampled) {
    const trace::Analysis an = trace::analyze(flight->records());
    apply_provenance(health, an);
    for (int s = 1; s < trace::kStageCount; ++s)
      shard.obs.leg[static_cast<std::size_t>(s)].merge(
          an.leg[static_cast<std::size_t>(s)]);
    shard.obs.e2e_delivery.merge(an.e2e_delivery);
    shard.obs.chains += an.n_chains;
    shard.obs.orphans += an.orphans.size();
    shard.obs.unexplained_orphans += an.unexplained_orphans();
    shard.obs.duplicates += an.duplicates.size();
    TraceSample samp;
    samp.index = index;
    samp.seed = out.seed;
    samp.trace_hash = flight->hash();
    samp.records = flight->size();
    samp.bytes = flight->payload_bytes();
    shard.obs.trace_records += samp.records;
    shard.obs.trace_bytes += samp.bytes;
    shard.obs.samples.push_back(samp);
    if (!ob.trace_dir.empty()) {
      const std::string path =
          ob.trace_dir + "/home-" + std::to_string(index) + ".rivtrace";
      std::string err;
      if (!flight->save(path, &err))
        throw std::runtime_error("fleet trace save: " + err);
    }
  }
  if (ob.top_k > 0) shard.obs.top.add(health);
  return out;
}

void accumulate_row(const FleetOptions& opt, ShardResult& shard,
                    const HomeOutcome& row) {
  shard.fault_hashes.push_back(row.fault_hash);
  shard.processes += row.n_processes;
  shard.sensors += row.n_sensors;
  shard.sim_events += row.sim_events;
  shard.emitted += row.emitted;
  shard.delivered += row.delivered;
  shard.faults_injected += row.faults_injected;
  if (row.hit) {
    ++shard.homes_hit;
    if (row.survived) ++shard.homes_hit_survived;
  } else if (row.survived) {
    ++shard.homes_survived;
  }
  if (opt.keep_home_rows) shard.rows.push_back(row);
}

// One shard of a multi-campaign sweep: one ShardResult per campaign.
// With warm execution each non-sampled home is built + warmed once, its
// prefix state snapshotted, and the snapshot restored into a fresh
// deployment per campaign. The WarmImage is shard-local scratch whose
// buffers keep their capacity from home to home (pooled shard memory).
std::vector<ShardResult> run_shard_campaigns(
    const FleetOptions& opt, const std::vector<CampaignPlan>& campaigns,
    std::uint64_t first, std::uint64_t last) {
  std::vector<ShardResult> shards(campaigns.size());
  for (ShardResult& s : shards) {
    s.obs.top = TopKHealth{opt.observe.top_k};
    s.fault_hashes.reserve(last - first);
  }
  const bool warm = opt.warm.enabled && opt.warm.prefix.us > 0;
  checkpoint::WarmImage img;
  for (std::uint64_t i = first; i < last; ++i) {
    const bool sampled = home_sampled(opt.seed, i, opt.observe.sample);
    const bool use_warm = warm && !sampled;
    bool attest = false;
    if (use_warm) {
      attest = home_attested(opt.seed, i, opt.warm.attest_sample);
      // Warm source: construction + fault-free prefix paid once per home,
      // regardless of how many campaigns fan out below.
      const HomeSpec spec = sample_home(opt.population, opt.seed, i);
      std::unique_ptr<workload::HomeDeployment> home = build_home(spec);
      checkpoint::enable_clone_tracking(*home);
      home->start();
      home->run_for(opt.warm.prefix);
      checkpoint::capture_warm_home(*home, spec.seed, img, attest);
    }
    for (std::size_t c = 0; c < campaigns.size(); ++c) {
      HomeOutcome row = run_one_home(
          opt, campaigns[c], campaign_salt(opt.warm, c), i, shards[c],
          use_warm ? &img : nullptr, attest && c == 0);
      accumulate_row(opt, shards[c], row);
    }
  }
  return shards;
}

}  // namespace

std::vector<FleetResult> run_fleet_campaigns(
    const FleetOptions& opt, const std::vector<CampaignPlan>& campaigns) {
  RIV_ASSERT(!campaigns.empty(), "run_fleet_campaigns needs >= 1 campaign");
  const std::uint64_t shard_size = opt.shard_size > 0 ? opt.shard_size : 64;
  const std::uint64_t n_shards =
      opt.homes == 0 ? 0 : (opt.homes + shard_size - 1) / shard_size;

  std::vector<std::vector<ShardResult>> shards =
      parallel_map<std::vector<ShardResult>>(
          opt.jobs, n_shards, [&opt, &campaigns, shard_size](std::size_t s) {
            const std::uint64_t first = s * shard_size;
            const std::uint64_t last =
                std::min<std::uint64_t>(first + shard_size, opt.homes);
            return run_shard_campaigns(opt, campaigns, first, last);
          });

  std::vector<FleetResult> results(campaigns.size());
  for (std::size_t c = 0; c < campaigns.size(); ++c) {
    FleetResult& r = results[c];
    r.homes = opt.homes;
    r.observation.top = TopKHealth{opt.observe.top_k};
    hash::Fnv1aStream digest;
    for (std::vector<ShardResult>& per_campaign : shards) {
      ShardResult& shard = per_campaign[c];
      r.merged.merge_scalars_from(shard.merged);
      r.observation.fold_from(shard.obs);
      r.processes += shard.processes;
      r.sensors += shard.sensors;
      r.sim_events += shard.sim_events;
      r.emitted += shard.emitted;
      r.delivered += shard.delivered;
      r.faults_injected += shard.faults_injected;
      r.homes_hit += shard.homes_hit;
      r.homes_hit_survived += shard.homes_hit_survived;
      r.homes_survived += shard.homes_survived;
      for (std::uint64_t h : shard.fault_hashes) fnv_u64(digest, h);
      if (opt.keep_home_rows)
        r.rows.insert(r.rows.end(), shard.rows.begin(), shard.rows.end());
    }
    r.fault_digest = digest.value();
  }
  return results;
}

FleetResult run_fleet(const FleetOptions& opt) {
  std::vector<FleetResult> results = run_fleet_campaigns(opt, {opt.campaign});
  return std::move(results[0]);
}

bool home_attested(std::uint64_t fleet_seed, std::uint64_t home_index,
                   double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  return unit_from(derive_seed(fleet_seed ^ kAttestSalt, home_index)) <
         fraction;
}

HomeRun run_home(const FleetOptions& opt, std::uint64_t index, bool traced,
                 std::uint32_t flight_mask) {
  HomeRun r;
  if (traced) r.flight = std::make_shared<trace::Recorder>(flight_mask);
  // Campaign-0 salt: triage replays reproduce single-campaign runs (the
  // only kind fleet_triage points at) exactly; sampled homes of a sweep
  // replay under their own campaign via the same salt derivation.
  r.outcome = execute_home(
      opt, opt.campaign, campaign_salt(opt.warm, 0), index, r.flight.get(),
      nullptr, false,
      [&r](const HomeOutcome&, const metrics::Registry& m) {
        r.metrics = m;
      });
  return r;
}

std::uint64_t total_delivered(const metrics::Registry& reg) {
  static constexpr char kSuffix[] = ".delivered";
  constexpr std::size_t kLen = sizeof(kSuffix) - 1;
  std::uint64_t total = 0;
  for (const auto& [name, counter] : reg.counters()) {
    if (name.size() >= kLen &&
        name.compare(name.size() - kLen, kLen, kSuffix) == 0)
      total += counter.value();
  }
  return total;
}

std::uint64_t registry_fingerprint(const metrics::Registry& reg) {
  hash::Fnv1aStream h;
  for (const auto& [name, counter] : reg.counters()) {
    h.put(name.data(), name.size());
    fnv_u64(h, counter.value());
  }
  for (const auto& [name, lat] : reg.latencies()) {
    h.put(name.data(), name.size());
    const metrics::Histogram& hist = lat.hist();
    fnv_u64(h, hist.count());
    fnv_u64(h, hist.overflow());
    fnv_i64(h, hist.sum_us());
    fnv_i64(h, hist.min().us);
    fnv_i64(h, hist.max().us);
    for (std::uint64_t b : hist.buckets()) fnv_u64(h, b);
  }
  return h.value();
}

Dashboard make_dashboard(const FleetResult& r, double wall_s, int jobs) {
  Dashboard d;
  if (wall_s > 0) {
    d.homes_per_sec = static_cast<double>(r.homes) / wall_s;
    d.events_per_sec_per_core = static_cast<double>(r.sim_events) /
                                (wall_s * (jobs > 0 ? jobs : 1));
  }
  if (r.homes > 0) {
    d.bytes_per_home =
        static_cast<double>(r.merged.counter_sum("net.bytes.")) /
        static_cast<double>(r.homes);
  }
  if (r.homes_hit > 0) {
    // Survival over the homes the campaign actually touched: the number
    // every correlated-outage experiment is after.
    d.survival_rate = static_cast<double>(r.homes_hit_survived) /
                      static_cast<double>(r.homes_hit);
  }
  // Population delivery latency: every home's app delay histograms merged.
  metrics::Histogram delay;
  for (const auto& [name, lat] : r.merged.latencies()) {
    if (name.size() >= 6 &&
        name.compare(name.size() - 6, 6, ".delay") == 0)
      delay.merge(lat.hist());
  }
  d.delay_p50 = delay.percentile(0.50);
  d.delay_p99 = delay.percentile(0.99);
  d.delay_max = delay.max();
  return d;
}

std::string render_dashboard(const FleetResult& r, const Dashboard& d) {
  char buf[1024];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "homes           %12llu   (%llu processes, %llu sensors)\n",
                static_cast<unsigned long long>(r.homes),
                static_cast<unsigned long long>(r.processes),
                static_cast<unsigned long long>(r.sensors));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "events          %12llu sim   %llu emitted   %llu delivered\n",
                static_cast<unsigned long long>(r.sim_events),
                static_cast<unsigned long long>(r.emitted),
                static_cast<unsigned long long>(r.delivered));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "throughput      %12.0f homes/s   %.0f events/s/core\n",
                d.homes_per_sec, d.events_per_sec_per_core);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "delivery delay  p50 %.2fms   p99 %.2fms   max %.2fms\n",
                d.delay_p50.millis(), d.delay_p99.millis(),
                d.delay_max.millis());
  out += buf;
  std::snprintf(buf, sizeof(buf), "network         %.0f bytes/home\n",
                d.bytes_per_home);
  out += buf;
  if (r.homes_hit > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "chaos           %llu homes hit (%.2f%%)   %llu faults   "
        "survival %.2f%%\n",
        static_cast<unsigned long long>(r.homes_hit),
        100.0 * static_cast<double>(r.homes_hit) /
            static_cast<double>(r.homes),
        static_cast<unsigned long long>(r.faults_injected),
        100.0 * d.survival_rate);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "digest          faults=%s metrics=%s\n",
                hash::fnv1a_digest(r.fault_digest).c_str(),
                hash::fnv1a_digest(registry_fingerprint(r.merged)).c_str());
  out += buf;
  return out;
}

}  // namespace riv::fleet
