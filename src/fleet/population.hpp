// Population-scale workload generation: one fleet seed → a million homes.
//
// The paper evaluates Rivulet inside a single smart home; the fleet layer
// simulates entire populations of them. Every home is described by a
// HomeSpec — process count, device census, per-sensor technology, rate,
// payload and link quality — sampled from the configurable distributions
// of a PopulationModel. Sampling is a pure function of
// (model, fleet_seed, home_index): home 17 of fleet seed 9 is the same
// home on every machine, every run, any thread, which is what lets
// sharded fleet runs stay bit-deterministic (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "appmodel/graph.hpp"
#include "common/rng.hpp"
#include "devices/sensor.hpp"
#include "workload/deployment.hpp"

namespace riv::fleet {

// Inclusive integer range sampled uniformly.
struct IntRange {
  int lo{0};
  int hi{0};
  int sample(Rng& rng) const;
};

// Half-open double range sampled uniformly.
struct DoubleRange {
  double lo{0.0};
  double hi{0.0};
  double sample(Rng& rng) const;
};

// Relative weights over the radio technologies a sampled sensor uses.
struct TechMix {
  double ip{0.35};
  double zigbee{0.3};
  double zwave{0.2};
  double ble{0.15};
  devices::Technology sample(Rng& rng) const;
};

// The distributions a fleet draws each home from. Defaults describe a
// small steady-state home — 2-4 hosts, a handful of low-rate sensors —
// sized so a single core clears >1k homes/s (bench_fleet measures this).
struct PopulationModel {
  IntRange processes{2, 4};
  IntRange sensors{1, 3};
  IntRange receivers{1, 2};        // hosts linked per sensor (clamped)
  DoubleRange rate_hz{0.5, 4.0};   // push rate per sensor
  IntRange payload_bytes{4, 64};   // Table 3's small-event band
  DoubleRange link_loss{0.0, 0.05};
  TechMix tech{};
  double burst_fraction{0.15};     // sensors emitting Poisson bursts
  double gapless_fraction{0.5};    // subscriptions with the Gapless guarantee
  Duration sim_duration{seconds(10)};  // steady-state window per home
};

// A fully sampled home: everything build_home() needs, nothing else.
struct HomeSpec {
  std::uint64_t seed{0};   // per-home seed (derive_seed(fleet_seed, index))
  std::uint64_t index{0};  // position in the fleet
  int n_processes{0};
  Duration sim_duration{};
  struct SensorPlan {
    devices::SensorSpec spec;
    std::vector<int> receivers;  // 0-based process indices
    double link_loss{0.0};
    appmodel::Guarantee guarantee{appmodel::Guarantee::kGapless};
  };
  std::vector<SensorPlan> sensors;
};

// Pure function of its arguments; see file comment.
HomeSpec sample_home(const PopulationModel& model, std::uint64_t fleet_seed,
                     std::uint64_t index);

// Materialise the spec: a HomeDeployment with every sensor wired to its
// receivers and one sink app subscribing all of them under their sampled
// guarantees. Not yet started — the fleet runner arms fault plans first.
std::unique_ptr<workload::HomeDeployment> build_home(const HomeSpec& spec);

}  // namespace riv::fleet
