// Sharded fleet runner: thousands-to-millions of deterministic homes.
//
// Each home is an independent simulation — own kernel, network, devices,
// registry — fully determined by derive_seed(fleet_seed, home_index), so
// a fleet shards embarrassingly across worker threads (parallel_map,
// src/common/parallel.hpp). Homes are grouped into fixed contiguous
// shards; a worker runs its shard's homes serially in index order and
// folds their metrics shard-locally, then the main thread folds shard
// results fleet-globally in shard order. Because shard boundaries and
// per-home content never depend on which worker ran what, the merged
// metrics, per-home outcomes and fault-trace digest are bit-identical
// for --jobs 1 and --jobs N (test_fleet pins a 256-home fleet against
// 8 jobs).
//
// A CampaignPlan layers correlated chaos over the population; per-home
// survival and the population-wide delivery-latency histogram feed the
// fleet dashboard.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/campaign.hpp"
#include "fleet/observe.hpp"
#include "fleet/population.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace riv::fleet {

// Warm-fleet execution (DESIGN.md §16): run each home's fault-free
// warm-up prefix once, snapshot-clone the warmed state, and restore it
// into a fresh deployment per campaign — an N-campaign sweep pays
// construction + warm-up once per home instead of N times.
//
// `prefix` is honored by BOTH the warm and the cold path: with a
// non-zero prefix every campaign's fault schedule is shifted to start
// after it (FaultInjector::arm offset), so the cold leg is the exact
// reference the warm leg must reproduce bit-for-bit — same outcome
// rows, fault digest, and merged-metrics fingerprint. `enabled` only
// switches the *mechanism* (clone-restore vs re-execute); it never
// changes results. prefix == 0 preserves the historical single-campaign
// behavior byte-for-byte (faults armed before start).
struct WarmOptions {
  bool enabled{false};
  Duration prefix{};  // fault-free warm-up shared by every campaign
  // Fraction of warm homes whose restored clone is byte-attested against
  // the PR 7 checkpoint surface before running (sampled background
  // integrity check; selection is a pure function of (seed, index)).
  double attest_sample{0.0};
  // Non-zero: fold salt ^ campaign_index into the device RNGs at the
  // prefix point (Sensor::perturb seam) so campaigns decorrelate. Applied
  // identically on the warm and cold paths.
  std::uint64_t resalt{0};
};

struct FleetOptions {
  std::uint64_t seed{1};
  std::uint64_t homes{1000};
  int jobs{1};  // 0 = auto-detect hardware_concurrency()
  // Homes per work item. Small enough to keep every core busy at the
  // tail, large enough that shard bookkeeping is noise.
  std::uint64_t shard_size{64};
  PopulationModel population{};
  CampaignPlan campaign{};
  WarmOptions warm{};
  // Observability: sampled flight recording, SLO health scoring, top-K
  // worst-offender tracking (src/fleet/observe.hpp). Off by default.
  ObserveOptions observe{};
  // Keep one HomeOutcome row per home (10 scalar fields; ~56 B/home —
  // fine at 256 homes, 56 MB at a million). Aggregates are always kept.
  bool keep_home_rows{false};
};

// One home's outcome row (kept only when FleetOptions::keep_home_rows).
struct HomeOutcome {
  std::uint64_t seed{0};
  std::uint64_t fault_hash{0};  // per-home fault-trace FNV; 0 = no faults
  std::uint32_t n_processes{0};
  std::uint32_t n_sensors{0};
  std::uint32_t faults_injected{0};
  std::uint64_t sim_events{0};
  std::uint64_t emitted{0};
  std::uint64_t delivered{0};
  bool hit{false};       // sampled by >= 1 campaign event
  bool survived{false};  // see FleetResult::homes_survived

  bool operator==(const HomeOutcome&) const = default;
};
// The keep_home_rows memory budget above leans on this staying true.
static_assert(sizeof(HomeOutcome) <= 72,
              "HomeOutcome grew past the ~64 B/home row budget");

struct FleetResult {
  std::uint64_t homes{0};
  std::uint64_t processes{0};
  std::uint64_t sensors{0};
  std::uint64_t sim_events{0};
  std::uint64_t emitted{0};
  std::uint64_t delivered{0};
  std::uint64_t faults_injected{0};
  // Homes sampled by at least one campaign event.
  std::uint64_t homes_hit{0};
  // Hit homes that survived: delivered at least one event after their
  // last fault healed (the protocols actually recovered). An outage that
  // outlives a home's window counts as not survived.
  std::uint64_t homes_hit_survived{0};
  // Unhit homes that delivered at all (the healthy baseline).
  std::uint64_t homes_survived{0};
  // FNV-1a over every home's fault-trace hash, in home-index order — the
  // fleet-wide chaos determinism fingerprint.
  std::uint64_t fault_digest{0};
  // Counters + delivery-latency histograms of every home, folded with
  // merge_scalars_from (order-invariant, so sharding cannot change it).
  metrics::Registry merged;
  std::vector<HomeOutcome> rows;  // empty unless keep_home_rows
  // Sampled traces, latency legs, health top-K (empty unless
  // FleetOptions::observe is enabled). Folded in shard order like
  // everything else, so bit-identical for any --jobs.
  Observation observation;
};

// Run the fleet. Deterministic: bit-identical result for any jobs value.
FleetResult run_fleet(const FleetOptions& opt);

// Multi-campaign fan-out: run the same population under each campaign,
// returning one FleetResult per campaign (in input order; opt.campaign is
// ignored). With opt.warm.enabled each home is built + warmed once and
// snapshot-cloned per campaign; flight-sampled homes always run the cold
// path so their recordings stay replayable by fleet_triage. Results are
// bit-identical to running each campaign through run_fleet() with the
// same WarmOptions prefix, for any jobs value.
std::vector<FleetResult> run_fleet_campaigns(
    const FleetOptions& opt, const std::vector<CampaignPlan>& campaigns);

// Is `index` in the warm attestation sample? Pure function of
// (fleet_seed, index, fraction) — exposed so tests can pin the selection.
bool home_attested(std::uint64_t fleet_seed, std::uint64_t home_index,
                   double fraction);

// One home of the fleet, executed exactly as run_fleet() would execute
// it, optionally with the flight recorder installed for the home's whole
// lifetime (construction through teardown — the same envelope sampled
// homes record under). Pure function of (opt, index, traced, mask): the
// packed trace bytes are identical on every call, which is what lets
// fleet_triage reproduce a sampled home's recording hash-for-hash.
struct HomeRun {
  HomeOutcome outcome;
  // Copy of the home's own merged registry (cheap: one home's counters).
  metrics::Registry metrics;
  std::shared_ptr<trace::Recorder> flight;  // null unless traced
};
HomeRun run_home(const FleetOptions& opt, std::uint64_t index, bool traced,
                 std::uint32_t flight_mask = trace::kAllComponents);

// Order-sensitive FNV-1a fingerprint of a registry's scalar contents
// (counter names/values, histogram buckets/count/sum/min/max) — what
// fleet_run prints as the merged-metrics digest. std::map iteration is
// name-ordered, so equal registries always fingerprint equally.
std::uint64_t registry_fingerprint(const metrics::Registry& reg);

// Sum of every "*.delivered" counter — total app deliveries in `reg`.
std::uint64_t total_delivered(const metrics::Registry& reg);

// Population-level rollup of a result + wall-clock rates, rendered as the
// fleet dashboard (fleet_run, bench_fleet).
struct Dashboard {
  double homes_per_sec{0};
  double events_per_sec_per_core{0};
  double bytes_per_home{0};
  double survival_rate{1.0};  // over hit homes; 1.0 when nothing was hit
  Duration delay_p50{};
  Duration delay_p99{};
  Duration delay_max{};
};

Dashboard make_dashboard(const FleetResult& r, double wall_s, int jobs);
std::string render_dashboard(const FleetResult& r, const Dashboard& d);

}  // namespace riv::fleet
