#include "fleet/campaign.hpp"

#include <algorithm>
#include <cstdlib>

namespace riv::fleet {

namespace {

// Domain-separation salts so the region map, event membership draws and
// per-home workload seeds are independent streams of one fleet seed.
constexpr std::uint64_t kRegionSalt = 0x52656769'6f6e5331ULL;
constexpr std::uint64_t kEventSalt = 0x4576656e'74533142ULL;

// Uniform [0,1) from a mixed 64-bit state (same mantissa trick as Rng).
double unit_from(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

const char* to_string(CampaignFault kind) {
  switch (kind) {
    case CampaignFault::kWifiOutage: return "wifi-outage";
    case CampaignFault::kPowerBlip: return "power-blip";
    case CampaignFault::kSensorDegrade: return "sensor-degrade";
  }
  return "?";
}

int home_region(const CampaignPlan& plan, std::uint64_t fleet_seed,
                std::uint64_t home_index) {
  if (plan.n_regions <= 1) return 0;
  std::uint64_t h = splitmix64_mix(derive_seed(fleet_seed ^ kRegionSalt,
                                               home_index));
  return static_cast<int>(h % static_cast<std::uint64_t>(plan.n_regions));
}

bool event_hits_home(const CampaignPlan& plan, std::size_t event_index,
                     std::uint64_t fleet_seed, std::uint64_t home_index) {
  if (event_index >= plan.events.size()) return false;
  const CampaignEvent& ev = plan.events[event_index];
  if (ev.fraction <= 0.0) return false;
  if (ev.region >= 0 &&
      home_region(plan, fleet_seed, home_index) != ev.region)
    return false;
  // One independent draw per (event, home): derive an event-specific root
  // first so neighbouring events never share a stream.
  std::uint64_t root = derive_seed(fleet_seed ^ kEventSalt, event_index);
  return unit_from(derive_seed(root, home_index)) < ev.fraction;
}

chaos::FaultPlan stamp_home_plan(const CampaignPlan& plan,
                                 std::uint64_t fleet_seed,
                                 const HomeSpec& home) {
  chaos::FaultPlan out;
  out.seed = home.seed;
  out.options.n_processes = home.n_processes;
  for (std::size_t e = 0; e < plan.events.size(); ++e) {
    if (!event_hits_home(plan, e, fleet_seed, home.index)) continue;
    const CampaignEvent& ev = plan.events[e];
    const TimePoint begin = TimePoint{} + ev.at;
    const TimePoint end = begin + ev.duration;
    auto pid = [](int index) {
      return ProcessId{static_cast<std::uint16_t>(index + 1)};
    };
    switch (ev.kind) {
      case CampaignFault::kWifiOutage:
        // Sever every directed process edge, restore all at heal time.
        for (int a = 0; a < home.n_processes; ++a) {
          for (int b = 0; b < home.n_processes; ++b) {
            if (a == b) continue;
            chaos::FaultAction down;
            down.at = begin;
            down.kind = chaos::FaultKind::kEdgeDown;
            down.a = pid(a);
            down.b = pid(b);
            out.actions.push_back(down);
            chaos::FaultAction up = down;
            up.at = end;
            up.kind = chaos::FaultKind::kEdgeUp;
            out.actions.push_back(up);
          }
        }
        break;
      case CampaignFault::kPowerBlip:
        for (int a = 1; a < home.n_processes; ++a) {
          chaos::FaultAction crash;
          crash.at = begin;
          crash.kind = chaos::FaultKind::kCrashProcess;
          crash.a = pid(a);
          out.actions.push_back(crash);
          chaos::FaultAction recover = crash;
          recover.at = end;
          recover.kind = chaos::FaultKind::kRecoverProcess;
          out.actions.push_back(recover);
        }
        break;
      case CampaignFault::kSensorDegrade:
        for (const HomeSpec::SensorPlan& sp : home.sensors) {
          for (int r : sp.receivers) {
            chaos::FaultAction degrade;
            degrade.at = begin;
            degrade.kind = chaos::FaultKind::kDeviceLinkLoss;
            degrade.sensor = sp.spec.id;
            degrade.b = pid(r);
            degrade.value = 0.9;
            out.actions.push_back(degrade);
            chaos::FaultAction restore = degrade;
            restore.at = end;
            restore.value = -1.0;  // back to the pre-chaos baseline
            out.actions.push_back(restore);
          }
        }
        break;
    }
    if (end > TimePoint{} + out.options.horizon)
      out.options.horizon = end - TimePoint{};
  }
  // Plan contract: actions sorted by time, ties kept in emit order.
  std::stable_sort(out.actions.begin(), out.actions.end(),
                   [](const chaos::FaultAction& x,
                      const chaos::FaultAction& y) { return x.at < y.at; });
  return out;
}

TimePoint last_heal_time(const CampaignPlan& plan, std::uint64_t fleet_seed,
                         std::uint64_t home_index) {
  TimePoint last{};
  for (std::size_t e = 0; e < plan.events.size(); ++e) {
    if (!event_hits_home(plan, e, fleet_seed, home_index)) continue;
    const CampaignEvent& ev = plan.events[e];
    last = std::max(last, TimePoint{} + ev.at + ev.duration);
  }
  return last;
}

bool parse_campaign_event(const std::string& spec, CampaignEvent& out) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t colon = spec.find(':', pos);
    if (colon == std::string::npos) colon = spec.size();
    parts.push_back(spec.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (parts.size() < 4 || parts.size() > 5) return false;
  if (parts[0] == "wifi") {
    out.kind = CampaignFault::kWifiOutage;
  } else if (parts[0] == "power") {
    out.kind = CampaignFault::kPowerBlip;
  } else if (parts[0] == "rf") {
    out.kind = CampaignFault::kSensorDegrade;
  } else {
    return false;
  }
  // Every numeric field must parse in full: "1x", "", or a stray space is
  // a malformed spec, not a zero (fleet_run exits 2 on it).
  char* end = nullptr;
  double at_s = std::strtod(parts[1].c_str(), &end);
  if (parts[1].empty() || *end != '\0' || at_s < 0) return false;
  double dur_s = std::strtod(parts[2].c_str(), &end);
  if (parts[2].empty() || *end != '\0' || dur_s <= 0) return false;
  double fraction = std::strtod(parts[3].c_str(), &end);
  if (parts[3].empty() || *end != '\0' || fraction <= 0 || fraction > 1)
    return false;
  out.at = microseconds(static_cast<std::int64_t>(at_s * 1e6));
  out.duration = microseconds(static_cast<std::int64_t>(dur_s * 1e6));
  out.fraction = fraction;
  out.region = -1;
  if (parts.size() == 5) {
    long region = std::strtol(parts[4].c_str(), &end, 10);
    if (parts[4].empty() || *end != '\0' || region < 0) return false;
    out.region = static_cast<int>(region);
  }
  return true;
}

}  // namespace riv::fleet
