// Fleet observatory: sampled flight recording, per-home SLO health
// scoring, and deterministic outlier drill-down.
//
// A million-home fleet run folds every per-home registry away into
// population aggregates (src/fleet/fleet.hpp) — great for dashboards,
// useless for diagnosis: which homes are unhealthy, and why? This module
// answers both without giving up the fleet's O(jobs + shards) memory or
// its bit-determinism under any --jobs:
//
//   1. Sampled flight recording. home_sampled() is a pure hash-threshold
//      function of (fleet_seed, home_index), so the sampled set is fixed
//      before any home runs and identical under any sharding. A sampled
//      home executes with the PR-5 zero-alloc trace recorder installed for
//      its whole lifetime (construction through teardown); the resulting
//      trace is analyzed in place (trace::analyze) and only bounded
//      derivatives survive the shard fold: per-stage latency-leg
//      histograms, orphan/duplicate counts, and one TraceSample row
//      (index, seed, FNV hash, record/byte counts) per sampled home.
//
//   2. Per-home SLO health scoring. Before a home's registry is merged
//      away, score_home() reduces it to a HomeHealth row — delivery p99
//      vs the SLO target, survival, fault counts, and (for sampled homes)
//      provenance verdicts — with a single integer score: 0 is healthy,
//      bigger is sicker. TopKHealth keeps the K worst rows under a total
//      order (score desc, index asc), so merging shard heaps in any order
//      yields the same list: the top-K of a multiset under a total order
//      does not depend on insertion order.
//
//   3. Drill-down replay. Because each home is an independent seeded
//      simulation, triage_home() re-runs any flagged home with full
//      tracing for a few hundred microseconds of CPU and attributes its
//      sickness: the injected fault, the slowest pipeline leg, the causal
//      health verdict (trace_analyze --check semantics), and the first
//      record a healthy home never logs. The re-recorded trace is
//      byte-identical to the sampled one — fleet_triage gates on the FNV
//      hash matching.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "metrics/metrics.hpp"
#include "trace/provenance.hpp"
#include "trace/trace.hpp"

namespace riv::fleet {

struct FleetOptions;  // fleet.hpp (which includes this header)
struct HomeOutcome;

// Service-level objective a home is scored against.
struct SloSpec {
  // Population delivery-latency target: a home whose own p99 exceeds this
  // accrues (p99 - target) microseconds of score.
  Duration delivery_p99{milliseconds(500)};
};

struct ObserveOptions {
  // Fraction of homes flight-recorded, [0, 1]. Pure hash-threshold
  // membership — see home_sampled().
  double sample{0.0};
  // Keep the K worst HomeHealth rows (0 disables health scoring).
  std::uint32_t top_k{0};
  SloSpec slo{};
  // When non-empty, each sampled home's trace is saved as
  // DIR/home-<index>.rivtrace (fleet_run --trace-dir).
  std::string trace_dir;
  // Components recorded for sampled homes. Triage re-runs use the same
  // mask, which is what makes their traces byte-identical.
  std::uint32_t flight_mask{trace::kAllComponents};

  bool enabled() const { return sample > 0.0 || top_k > 0; }
};

// Does the fleet flight-record this home? Pure function of its arguments
// (hash-threshold over a sampler-salted derive_seed stream, the same
// discipline as campaign membership draws): the sampled set never depends
// on sharding, job count, or which homes ran before.
bool home_sampled(std::uint64_t fleet_seed, std::uint64_t home_index,
                  double sample);

// One home's health row, computed while its registry is still alive.
struct HomeHealth {
  std::uint64_t index{0};
  std::uint64_t seed{0};
  // 0 = healthy; bigger = sicker. Deterministic integer penalty sum —
  // see score_home() for the schedule.
  std::uint64_t score{0};
  std::int64_t delay_p99_us{0};  // this home's own delivery p99
  std::int64_t slo_us{0};        // the target it was scored against
  std::uint64_t delivered{0};
  std::uint64_t emitted{0};
  std::uint32_t faults{0};
  // Provenance verdicts; only populated when the home was traced
  // (sampled == true), zero otherwise.
  std::uint32_t unexplained_orphans{0};
  std::uint32_t duplicates{0};
  std::uint32_t ordering_violations{0};
  bool sampled{false};
  bool hit{false};       // sampled by >= 1 campaign event
  bool survived{false};  // HomeOutcome::survived

  bool operator==(const HomeHealth&) const = default;
};

// Total order, sickest first: score descending, home index ascending.
// Strict and total, so any set of rows has exactly one top-K.
bool worse(const HomeHealth& a, const HomeHealth& b);

// Reduce one finished home to a HomeHealth row; called while the home's
// own (not yet folded) registry is still alive. Penalty schedule
// (integers only, so scores are bit-deterministic and comparable):
//   +50'000'000                 emitted events but delivered none
//   +10'000'000                 hit by a campaign and did not survive
//   +(p99_us - slo_us)          delivery p99 over the SLO target
HomeHealth score_home(const SloSpec& slo, std::uint64_t index,
                      const HomeOutcome& outcome,
                      const metrics::Registry& home_metrics);

// Fold a flight-recorded home's provenance verdicts into its row (sets
// sampled, the orphan/duplicate/violation counts, and their penalties):
//   +500'000 per                stage-ordering violation
//   +200'000 per                unexplained orphan / duplicate delivery
void apply_provenance(HomeHealth& row, const trace::Analysis& analysis);

// Bounded worst-offenders list. Insertion and merge order never change
// the final contents: rows are kept sorted under worse() and truncated to
// K, which computes the top-K of the underlying multiset — a pure
// function of the set. test_observe pins this over randomized shard
// orders.
class TopKHealth {
 public:
  TopKHealth() = default;
  explicit TopKHealth(std::size_t k) : k_(k) {}

  void add(const HomeHealth& row);
  void merge_from(const TopKHealth& other);

  std::size_t k() const { return k_; }
  // Sorted, sickest first; size() <= k.
  const std::vector<HomeHealth>& rows() const { return rows_; }

 private:
  std::size_t k_{0};
  std::vector<HomeHealth> rows_;
};

// What survives of one sampled home's flight recording after the fold.
struct TraceSample {
  std::uint64_t index{0};
  std::uint64_t seed{0};
  std::uint64_t trace_hash{0};  // Recorder FNV over the packed records
  std::uint64_t records{0};
  std::uint64_t bytes{0};  // packed payload bytes

  bool operator==(const TraceSample&) const = default;
};

// Fleet-wide observability aggregate. Shard-local instances are folded on
// the main thread in shard order (fold_from), the same discipline as the
// rest of FleetResult, so every field is bit-identical for any --jobs.
struct Observation {
  // One row per sampled home, home-index order.
  std::vector<TraceSample> samples;
  // Per-stage latency legs over all sampled homes' chains (leg[i] spans
  // stage i-1 -> i; leg[0] unused), plus generated -> delivered e2e.
  std::array<metrics::Histogram, trace::kStageCount> leg{};
  metrics::Histogram e2e_delivery;
  std::uint64_t trace_records{0};
  std::uint64_t trace_bytes{0};
  std::uint64_t chains{0};
  std::uint64_t orphans{0};             // all orphans, explained included
  std::uint64_t unexplained_orphans{0};
  std::uint64_t duplicates{0};
  TopKHealth top;

  void fold_from(const Observation& shard);
  // FNV-1a over (index, trace_hash) of every sample, index order — the
  // sampled-fleet determinism fingerprint fleet_run prints.
  std::uint64_t trace_digest() const;
};

// Dashboard section: sampled-set summary, leg p99s, worst offenders.
std::string render_observation(const Observation& o);

// --- drill-down -----------------------------------------------------------

struct TriageOptions {
  // Save the drill-down trace as DIR/home-<index>.rivtrace.
  std::string trace_dir;
  trace::AnalyzeOptions analyze{};
};

// Everything the drill-down replay of one flagged home learned.
struct TriageReport {
  HomeHealth health;  // re-scored with full provenance
  std::uint64_t trace_hash{0};
  std::uint64_t trace_records{0};
  // trace_analyze --check verdict over the drill-down trace.
  bool check_ok{true};
  std::vector<std::string> problems;
  // First injected fault (empty when the home saw no faults) and total
  // fault count, from the chaos records in the trace.
  std::string fault;
  std::uint32_t faults{0};
  // The pipeline leg with the largest p99 ("ingested->delivered"), and
  // that p99 in microseconds. Empty when no chain completed any leg.
  std::string worst_leg;
  std::int64_t worst_leg_p99_us{0};
  // The first record of a kind a healthy steady-state home never logs
  // (fault injection, crash, gapless fallback, tamper verdict) — where
  // this home's execution first diverged from a healthy one. Empty for a
  // healthy home.
  std::string first_divergence;
  std::int64_t first_divergence_us{-1};
  std::string trace_path;  // saved drill-down trace ("" when not saved)
};

// Deterministically re-run one home of the fleet with full tracing and
// attribute its health. Pure function of (opt, index): the trace — and
// therefore trace_hash — is byte-identical run to run, and identical to
// the sampled recording when the home was in the sampled set.
TriageReport triage_home(const FleetOptions& opt, std::uint64_t index,
                         const TriageOptions& topt = {});

std::string render(const TriageReport& r);
std::string render_triage_json(const std::vector<TriageReport>& reports);

}  // namespace riv::fleet
