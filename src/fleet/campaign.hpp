// Fleet-level chaos campaigns: correlated faults across a population.
//
// A single home's chaos comes from seeded FaultPlans (src/chaos); a fleet
// fails differently — "WiFi drops across 5% of homes in minute 12", "a
// power blip hits region 3". A CampaignPlan states those incidents once,
// fleet-wide; stamp_home_plan() then projects the campaign onto one home
// as an ordinary chaos::FaultPlan, so the per-home injector machinery
// (trace recording, noop accounting, determinism hashes) is reused
// unchanged. Membership draws — which homes an event samples — are pure
// functions of (fleet_seed, event, home_index): no shared state, no
// ordering sensitivity, identical under any sharding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "fleet/population.hpp"

namespace riv::fleet {

enum class CampaignFault : std::uint8_t {
  // Home WiFi down: every process-to-process edge severed for the
  // duration; device radios (Zigbee/Z-Wave/BLE/IP links to sensors) keep
  // working, so ingest continues and delivery rides out the outage on
  // local logic + post-heal anti-entropy.
  kWifiOutage,
  // Power blip: every host except p1 crashes, then recovers. (At least
  // one correct process, per §3.1's fault model.)
  kPowerBlip,
  // RF degradation: every sensor link's loss jumps to 0.9, then returns
  // to its sampled baseline.
  kSensorDegrade,
};

const char* to_string(CampaignFault kind);

// One correlated incident: at `at` (fleet virtual time), a Bernoulli
// `fraction` of the in-scope homes (all homes, or one region) suffers
// `kind` for `duration`.
struct CampaignEvent {
  CampaignFault kind{CampaignFault::kWifiOutage};
  Duration at{};
  Duration duration{seconds(30)};
  double fraction{0.05};
  int region{-1};  // -1 = fleet-wide; else only homes in this region
};

struct CampaignPlan {
  int n_regions{16};
  std::vector<CampaignEvent> events;
  bool empty() const { return events.empty(); }
};

// Stable region assignment: uniform over [0, n_regions), a pure function
// of (fleet_seed, home_index).
int home_region(const CampaignPlan& plan, std::uint64_t fleet_seed,
                std::uint64_t home_index);

// Does event `event_index` of the plan sample this home? Region scope
// plus an independent per-(event, home) Bernoulli draw at
// events[event_index].fraction.
bool event_hits_home(const CampaignPlan& plan, std::size_t event_index,
                     std::uint64_t fleet_seed, std::uint64_t home_index);

// Project the campaign onto one home: a chaos::FaultPlan holding the
// actions of every event that samples it (empty when none do), actions
// sorted by time with fault/heal pairs. Feed to chaos::FaultInjector.
chaos::FaultPlan stamp_home_plan(const CampaignPlan& plan,
                                 std::uint64_t fleet_seed,
                                 const HomeSpec& home);

// Virtual time the last fault affecting this home heals (zero when no
// event samples it) — the survival probe point (src/fleet/fleet.hpp).
TimePoint last_heal_time(const CampaignPlan& plan, std::uint64_t fleet_seed,
                         std::uint64_t home_index);

// Parse "kind:at_s:dur_s:fraction[:region]" (kind = wifi | power | rf),
// the fleet_run --campaign syntax. Returns false on a malformed spec.
bool parse_campaign_event(const std::string& spec, CampaignEvent& out);

}  // namespace riv::fleet
