#include "fleet/population.hpp"

#include <string>

namespace riv::fleet {

int IntRange::sample(Rng& rng) const {
  if (hi <= lo) return lo;
  return lo + static_cast<int>(rng.uniform_int(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}

double DoubleRange::sample(Rng& rng) const {
  if (hi <= lo) return lo;
  return rng.uniform(lo, hi);
}

devices::Technology TechMix::sample(Rng& rng) const {
  const double total = ip + zigbee + zwave + ble;
  double u = rng.uniform() * (total > 0 ? total : 1.0);
  if ((u -= ip) < 0) return devices::Technology::kIp;
  if ((u -= zigbee) < 0) return devices::Technology::kZigbee;
  if ((u -= zwave) < 0) return devices::Technology::kZWave;
  return devices::Technology::kBle;
}

namespace {

// Sensor kinds the sampler rotates through: a mix of analog and binary
// devices so sampled homes exercise both value models.
constexpr devices::SensorKind kKinds[] = {
    devices::SensorKind::kTemperature, devices::SensorKind::kMotion,
    devices::SensorKind::kDoor,        devices::SensorKind::kHumidity,
    devices::SensorKind::kEnergy,
};

}  // namespace

HomeSpec sample_home(const PopulationModel& model, std::uint64_t fleet_seed,
                     std::uint64_t index) {
  HomeSpec home;
  home.seed = derive_seed(fleet_seed, index);
  home.index = index;
  home.sim_duration = model.sim_duration;
  // All draws come from the home's own generator, in a fixed order — the
  // spec depends only on (model, home.seed), never on other homes.
  Rng rng(home.seed);
  home.n_processes = model.processes.sample(rng);
  const int n_sensors = model.sensors.sample(rng);
  for (int s = 0; s < n_sensors; ++s) {
    HomeSpec::SensorPlan plan;
    devices::SensorSpec& spec = plan.spec;
    spec.id = SensorId{static_cast<std::uint16_t>(s + 1)};
    spec.name = "s" + std::to_string(s + 1);
    spec.kind = kKinds[rng.uniform_int(std::size(kKinds))];
    spec.tech = model.tech.sample(rng);
    spec.push = true;
    spec.payload_size =
        static_cast<std::uint32_t>(model.payload_bytes.sample(rng));
    spec.rate_hz = model.rate_hz.sample(rng);
    spec.pattern = rng.bernoulli(model.burst_fraction)
                       ? devices::EmitPattern::kBurst
                       : devices::EmitPattern::kPeriodic;
    plan.link_loss = model.link_loss.sample(rng);
    plan.guarantee = rng.bernoulli(model.gapless_fraction)
                         ? appmodel::Guarantee::kGapless
                         : appmodel::Guarantee::kGap;
    // Distinct receiver processes, drawn without replacement.
    int want = model.receivers.sample(rng);
    if (want > home.n_processes) want = home.n_processes;
    if (want < 1) want = 1;
    std::vector<int> pool;
    for (int p = 0; p < home.n_processes; ++p) pool.push_back(p);
    for (int r = 0; r < want; ++r) {
      std::size_t pick = rng.uniform_int(pool.size());
      plan.receivers.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    home.sensors.push_back(std::move(plan));
  }
  return home;
}

std::unique_ptr<workload::HomeDeployment> build_home(const HomeSpec& spec) {
  workload::HomeDeployment::Options opt;
  opt.seed = spec.seed;
  opt.n_processes = spec.n_processes;
  auto home = std::make_unique<workload::HomeDeployment>(opt);

  appmodel::AppBuilder app(AppId{1}, "fleet-sink");
  auto op = app.add_operator("FleetSink");
  for (const HomeSpec::SensorPlan& plan : spec.sensors) {
    std::vector<ProcessId> receivers;
    for (int r : plan.receivers) receivers.push_back(home->pid(r));
    devices::LinkParams link;
    link.loss_prob = plan.link_loss;
    home->add_sensor(plan.spec, receivers, link);
    op.add_sensor(plan.spec.id, plan.guarantee,
                  appmodel::WindowSpec::count_window(1));
  }
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>&,
         appmodel::TriggerContext&) {});
  home->deploy(app.build());
  return home;
}

}  // namespace riv::fleet
