#include "appmodel/graph.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.hpp"

namespace riv::appmodel {

std::vector<SensorId> AppGraph::sensors() const {
  std::vector<SensorId> out;
  for (const SensorEdge& e : sensor_edges) {
    if (std::find(out.begin(), out.end(), e.sensor) == out.end())
      out.push_back(e.sensor);
  }
  return out;
}

std::vector<ActuatorId> AppGraph::actuators() const {
  std::vector<ActuatorId> out;
  for (const ActuatorEdge& e : actuator_edges) {
    if (std::find(out.begin(), out.end(), e.actuator) == out.end())
      out.push_back(e.actuator);
  }
  return out;
}

const OperatorSpec* AppGraph::find_operator(const std::string& name) const {
  for (const OperatorSpec& op : operators) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

const SensorEdge* AppGraph::find_sensor_edge(SensorId sensor,
                                             const std::string& op) const {
  for (const SensorEdge& e : sensor_edges) {
    if (e.sensor == sensor && e.to_op == op) return &e;
  }
  return nullptr;
}

void AppGraph::validate() const {
  std::set<std::string> names;
  for (const OperatorSpec& op : operators) {
    RIV_ASSERT(!op.name.empty(), "operator needs a name");
    RIV_ASSERT(names.insert(op.name).second, "duplicate operator name");
    RIV_ASSERT(op.combiner != nullptr, "operator needs a combiner");
  }
  for (const SensorEdge& e : sensor_edges)
    RIV_ASSERT(names.count(e.to_op) != 0, "sensor edge to unknown operator");
  for (const ActuatorEdge& e : actuator_edges)
    RIV_ASSERT(names.count(e.from_op) != 0,
               "actuator edge from unknown operator");
  for (const OperatorEdge& e : operator_edges) {
    RIV_ASSERT(names.count(e.from_op) != 0, "edge from unknown operator");
    RIV_ASSERT(names.count(e.to_op) != 0, "edge to unknown operator");
  }

  // Acyclicity via Kahn's algorithm over operator edges.
  std::map<std::string, int> indegree;
  for (const OperatorSpec& op : operators) indegree[op.name] = 0;
  for (const OperatorEdge& e : operator_edges) ++indegree[e.to_op];
  std::vector<std::string> frontier;
  for (const auto& [name, deg] : indegree)
    if (deg == 0) frontier.push_back(name);
  std::size_t visited = 0;
  while (!frontier.empty()) {
    std::string cur = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const OperatorEdge& e : operator_edges) {
      if (e.from_op == cur && --indegree[e.to_op] == 0)
        frontier.push_back(e.to_op);
    }
  }
  RIV_ASSERT(visited == operators.size(),
             "application operator graph must be acyclic (§3.2)");
}

OperatorBuilder& OperatorBuilder::add_sensor(SensorId sensor,
                                             Guarantee guarantee,
                                             WindowSpec window,
                                             PollingPolicy polling) {
  app_->graph_.sensor_edges.push_back(
      SensorEdge{sensor, guarantee, window, polling, name_});
  return *this;
}

OperatorBuilder& OperatorBuilder::add_upstream_operator(const std::string& op,
                                                        WindowSpec window) {
  app_->graph_.operator_edges.push_back(OperatorEdge{op, name_, window});
  return *this;
}

OperatorBuilder& OperatorBuilder::add_actuator(ActuatorId actuator,
                                               Guarantee guarantee) {
  app_->graph_.actuator_edges.push_back(
      ActuatorEdge{actuator, guarantee, name_});
  return *this;
}

OperatorBuilder& OperatorBuilder::handle_triggered_window(
    TriggerHandler handler) {
  for (OperatorSpec& op : app_->graph_.operators) {
    if (op.name == name_) {
      op.handler = std::move(handler);
      return *this;
    }
  }
  RIV_ASSERT(false, "operator vanished from its own builder");
  return *this;
}

AppBuilder::AppBuilder(AppId id, std::string name) {
  graph_.id = id;
  graph_.name = std::move(name);
}

OperatorBuilder AppBuilder::add_operator(const std::string& name) {
  return add_operator(name, std::make_unique<AllCombiner>());
}

OperatorBuilder AppBuilder::add_operator(const std::string& name,
                                         std::unique_ptr<Combiner> combiner) {
  OperatorSpec spec;
  spec.name = name;
  spec.combiner = std::shared_ptr<const Combiner>(std::move(combiner));
  graph_.operators.push_back(std::move(spec));
  return OperatorBuilder(*this, name);
}

AppGraph AppBuilder::build() {
  graph_.validate();
  return graph_;
}

}  // namespace riv::appmodel
