#include "appmodel/window.hpp"

#include "common/assert.hpp"

namespace riv::appmodel {

WindowSpec WindowSpec::time_window(Duration span) {
  return time_window(span, TriggerPolicy::periodic(span));
}
WindowSpec WindowSpec::time_window(Duration span, TriggerPolicy trigger) {
  return time_window(span, trigger, EvictorPolicy::clear());
}
WindowSpec WindowSpec::time_window(Duration span, TriggerPolicy trigger,
                                   EvictorPolicy evictor) {
  WindowSpec w;
  w.bound = Bound::kTime;
  w.span = span;
  w.trigger = trigger;
  w.evictor = evictor;
  return w;
}

WindowSpec WindowSpec::count_window(std::size_t count) {
  return count_window(count, TriggerPolicy::count_reached(count));
}
WindowSpec WindowSpec::count_window(std::size_t count, TriggerPolicy trigger) {
  return count_window(count, trigger, EvictorPolicy::clear());
}
WindowSpec WindowSpec::count_window(std::size_t count, TriggerPolicy trigger,
                                    EvictorPolicy evictor) {
  RIV_ASSERT(count >= 1, "count window needs a positive bound");
  WindowSpec w;
  w.bound = Bound::kCount;
  w.count = count;
  w.trigger = trigger;
  w.evictor = evictor;
  return w;
}

void Window::add(const devices::SensorEvent& e, TimePoint now) {
  buffer_.push_back(e);
  enforce_bounds(now);
}

void Window::enforce_bounds(TimePoint now) {
  if (spec_.bound == WindowSpec::Bound::kCount) {
    while (buffer_.size() > spec_.count) buffer_.pop_front();
  } else {
    while (!buffer_.empty() &&
           now - buffer_.front().emitted_at > spec_.span)
      buffer_.pop_front();
  }
  // Evictor caps apply continuously for sliding windows.
  if (spec_.evictor.keep_last > 0) {
    while (buffer_.size() > spec_.evictor.keep_last) buffer_.pop_front();
  }
  if (spec_.evictor.max_age.us > 0) {
    while (!buffer_.empty() &&
           now - buffer_.front().emitted_at > spec_.evictor.max_age)
      buffer_.pop_front();
  }
}

bool Window::event_trigger_ready() const {
  switch (spec_.trigger.kind) {
    case TriggerPolicy::Kind::kEveryEvent:
      return !buffer_.empty();
    case TriggerPolicy::Kind::kCount:
      return buffer_.size() >= spec_.trigger.count;
    case TriggerPolicy::Kind::kPeriodic:
      return false;  // timer-driven
  }
  return false;
}

std::vector<devices::SensorEvent> Window::snapshot(TimePoint now) {
  enforce_bounds(now);
  return {buffer_.begin(), buffer_.end()};
}

void Window::after_trigger(TimePoint now) {
  if (spec_.evictor.clear_on_trigger) {
    buffer_.clear();
    return;
  }
  enforce_bounds(now);
}

}  // namespace riv::appmodel
