// Marzullo's fault-tolerant interval averaging (§6.2, [Marzullo 1990]).
//
// Given n interval readings of which at most f may be faulty, the fused
// value is the interval [l, u] where l is the smallest value contained in
// at least (n - f) of the intervals and u is the largest such value.
// Tolerates fail-stop sensors with f <= n-1 and arbitrary (Byzantine)
// sensors with f <= floor((n-1)/3).
#pragma once

#include <optional>
#include <vector>

namespace riv::appmodel {

struct Interval {
  double lo{0.0};
  double hi{0.0};
  bool operator==(const Interval&) const = default;
};

// Returns std::nullopt when fewer than (n - f) intervals overlap anywhere
// (the failure assumption is violated) or when the input is empty.
std::optional<Interval> marzullo_fuse(const std::vector<Interval>& readings,
                                      std::size_t f);

// Max f tolerable for fail-stop sensors: n - 1.
std::size_t marzullo_max_failstop(std::size_t n);
// Max f tolerable for arbitrary faults: floor((n - 1) / 3).
std::size_t marzullo_max_arbitrary(std::size_t n);

}  // namespace riv::appmodel
