#include "appmodel/logic.hpp"

#include <limits>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::appmodel {

LogicInstance::LogicInstance(const AppGraph& graph, sim::Simulation& sim,
                             Callbacks callbacks)
    : graph_(&graph), timers_(sim), callbacks_(std::move(callbacks)) {
  for (const OperatorSpec& spec : graph.operators) {
    OpState state;
    state.spec = &spec;
    state.combiner = spec.combiner->clone();
    ops_.emplace(spec.name, std::move(state));
  }
  for (const SensorEdge& e : graph.sensor_edges) {
    OpState& op = ops_.at(e.to_op);
    op.streams.push_back(
        Stream{sensor_key(e.sensor), e.sensor, Window(e.window), {}});
  }
  for (const OperatorEdge& e : graph.operator_edges) {
    OpState& to = ops_.at(e.to_op);
    to.streams.push_back(
        Stream{op_key(e.from_op), std::nullopt, Window(e.window), {}});
    ops_.at(e.from_op).downstream_ops.push_back(e.to_op);
  }
  for (const ActuatorEdge& e : graph.actuator_edges)
    ops_.at(e.from_op).actuators.push_back(&e);
}

void LogicInstance::start() {
  if (started_) return;
  started_ = true;
  for (auto& [name, op] : ops_) {
    for (Stream& stream : op.streams) {
      if (stream.window.spec().trigger.kind == TriggerPolicy::Kind::kPeriodic)
        arm_periodic(op, stream);
    }
  }
}

void LogicInstance::arm_periodic(OpState& op, Stream& stream) {
  Duration period = stream.window.spec().trigger.period;
  RIV_ASSERT(period.us > 0, "periodic trigger needs a positive period");
  stream.periodic_timer = timers_.schedule_after(
      period, [this, &op, &stream] { periodic_fire(op, stream); });
}

void LogicInstance::periodic_fire(OpState& op, Stream& stream) {
  take_pending(op, stream);
  evaluate(op);
  arm_periodic(op, stream);
}

void LogicInstance::on_sensor_event(const devices::SensorEvent& e) {
  ++events_consumed_;
  last_cause_ = provenance_of(e.id);
  const std::string key = sensor_key(e.id.sensor);
  for (auto& [name, op] : ops_) {
    for (Stream& stream : op.streams) {
      if (stream.key == key) feed(op, stream, e);
    }
  }
}

void LogicInstance::feed(OpState& op, Stream& stream,
                         const devices::SensorEvent& e) {
  stream.window.add(e, timers_.now());
  try_trigger_event_driven(op, stream);
}

void LogicInstance::try_trigger_event_driven(OpState& op, Stream& stream) {
  if (!stream.window.event_trigger_ready()) return;
  take_pending(op, stream);
  evaluate(op);
}

void LogicInstance::take_pending(OpState& op, Stream& stream) {
  (void)op;
  std::vector<devices::SensorEvent> events =
      stream.window.snapshot(timers_.now());
  if (events.empty()) return;  // an empty window never counts as "ready"
  stream.pending = StreamWindow{stream.key, std::move(events)};
  stream.window.after_trigger(timers_.now());
}

void LogicInstance::evaluate(OpState& op) {
  std::vector<StreamWindow> ready;
  for (Stream& stream : op.streams) {
    if (stream.pending) ready.push_back(*stream.pending);
  }
  if (ready.empty()) return;
  if (!op.combiner->should_deliver(ready, op.streams.size())) {
    ++combiner_blocked_;
    return;
  }
  for (Stream& stream : op.streams) stream.pending.reset();
  deliver(op, std::move(ready));
}

void LogicInstance::deliver(OpState& op, std::vector<StreamWindow> ready) {
  ++triggers_fired_;
  // The trigger's causal id: the newest real sensor reading among the
  // windows that fired. Derived (downstream) events carry the synthetic
  // sensor 0xffff and are skipped; a purely-derived or purely-periodic
  // firing falls back to the last reading the instance consumed.
  trigger_cause_ = last_cause_;
  TimePoint newest{std::numeric_limits<std::int64_t>::min()};
  for (const StreamWindow& w : ready) {
    for (const devices::SensorEvent& e : w.events) {
      if (e.id.sensor.value != 0xffff && e.emitted_at >= newest) {
        newest = e.emitted_at;
        trigger_cause_ = provenance_of(e.id);
      }
    }
  }
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(timers_.now(), callbacks_.self, trace::Component::kRuntime,
                trace::Kind::kLogicFire, trigger_cause_,
                trace::fu(trace::Key::kApp, graph_->id.value),
                trace::fs(trace::Key::kOp, op.spec->name));
  }
  if (!op.spec->handler) return;

  TriggerContext ctx;
  ctx.self_ = callbacks_.self;
  ctx.now_fn = [this] { return timers_.now(); };
  ctx.kv_put_fn = [this](const std::string& key, double value) {
    if (callbacks_.kv_put) {
      callbacks_.kv_put(key, value);
    } else {
      local_kv_[key] = value;
    }
  };
  ctx.kv_get_fn =
      [this](const std::string& key) -> std::optional<double> {
    if (callbacks_.kv_get) return callbacks_.kv_get(key);
    auto it = local_kv_.find(key);
    if (it == local_kv_.end()) return std::nullopt;
    return it->second;
  };
  ctx.emit_fn = [this, &op](double value) { emit_downstream(op, value); };
  ctx.actuate_fn = [this, &op](ActuatorId actuator, bool tas, double expected,
                               double value) {
    const ActuatorEdge* edge = nullptr;
    for (const ActuatorEdge* e : op.actuators) {
      if (e->actuator == actuator) edge = e;
    }
    RIV_ASSERT(edge != nullptr,
               "handler actuated a device not wired to this operator");
    devices::Command cmd;
    cmd.id = callbacks_.next_command_id();
    cmd.actuator = actuator;
    cmd.test_and_set = tas;
    cmd.expected = expected;
    cmd.value = value;
    cmd.issued_at = timers_.now();
    cmd.cause = trigger_cause_;
    ++commands_issued_;
    callbacks_.command_sink(*edge, cmd);
  };
  op.spec->handler(ready, ctx);
}

void LogicInstance::emit_downstream(OpState& from, double value) {
  // Derived events carry no sensor identity; downstream streams are keyed
  // by the emitting operator's name.
  devices::SensorEvent e;
  e.id = EventId{SensorId{0xffff}, emit_seq_++};
  e.emitted_at = timers_.now();
  e.value = value;
  e.payload_size = 8;
  const std::string key = op_key(from.spec->name);
  for (const std::string& down : from.downstream_ops) {
    OpState& op = ops_.at(down);
    for (Stream& stream : op.streams) {
      if (stream.key == key) feed(op, stream, e);
    }
  }
}

void LogicInstance::on_staleness_violation(SensorId sensor,
                                           std::uint32_t epoch) {
  ++staleness_violations_;
  if (staleness_handler_) staleness_handler_(sensor, epoch);
}

void LogicInstance::clone_state(BinaryWriter& w) const {
  w.u64(ops_.size());
  for (const auto& [name, op] : ops_) {
    w.str(name);
    w.u64(op.streams.size());
    for (const Stream& stream : op.streams) {
      const std::deque<devices::SensorEvent>& buf = stream.window.buffer();
      w.u64(buf.size());
      for (const devices::SensorEvent& e : buf) devices::encode_clone(w, e);
      w.u8(stream.pending ? 1 : 0);
      if (stream.pending) {
        w.u64(stream.pending->events.size());
        for (const devices::SensorEvent& e : stream.pending->events)
          devices::encode_clone(w, e);
      }
      TimePoint t;
      std::uint64_t seq;
      bool live = stream.periodic_timer != 0 &&
                  timers_.sim().timer_info(stream.periodic_timer, &t, &seq);
      w.u8(live ? 1 : 0);
      if (live) {
        w.u64(stream.periodic_timer);
        w.time_point(t);
        w.u64(seq);
      }
    }
  }
  w.u64(local_kv_.size());
  for (const auto& [key, value] : local_kv_) {
    w.str(key);
    w.f64(value);
  }
  w.u32(emit_seq_);
  w.u8(started_ ? 1 : 0);
  w.provenance_id(last_cause_);
  w.provenance_id(trigger_cause_);
  w.u64(events_consumed_);
  w.u64(triggers_fired_);
  w.u64(combiner_blocked_);
  w.u64(commands_issued_);
  w.u64(staleness_violations_);
}

void LogicInstance::restore_clone(BinaryReader& r) {
  RIV_ASSERT(!started_, "clone restore requires a not-started instance");
  const std::uint64_t n_ops = r.u64();
  RIV_ASSERT(n_ops == ops_.size(), "clone restore: operator count mismatch");
  for (auto& [name, op] : ops_) {
    RIV_ASSERT(r.str() == name, "clone restore: operator order mismatch");
    const std::uint64_t n_streams = r.u64();
    RIV_ASSERT(n_streams == op.streams.size(),
               "clone restore: stream count mismatch");
    for (Stream& stream : op.streams) {
      std::deque<devices::SensorEvent> buf;
      const std::uint64_t n_buf = r.u64();
      for (std::uint64_t i = 0; i < n_buf; ++i)
        buf.push_back(devices::decode_clone_event(r));
      stream.window.restore_buffer(std::move(buf));
      if (r.u8() != 0) {
        StreamWindow pending;
        pending.stream = stream.key;
        const std::uint64_t n_pending = r.u64();
        pending.events.reserve(n_pending);
        for (std::uint64_t i = 0; i < n_pending; ++i)
          pending.events.push_back(devices::decode_clone_event(r));
        stream.pending = std::move(pending);
      }
      if (r.u8() != 0) {
        sim::TimerId tid = r.u64();
        TimePoint t = r.time_point();
        std::uint64_t seq = r.u64();
        stream.periodic_timer = timers_.restore_at(
            tid, t, seq,
            [this, &o = op, &s = stream] { periodic_fire(o, s); });
      }
    }
  }
  local_kv_.clear();
  const std::uint64_t n_kv = r.u64();
  for (std::uint64_t i = 0; i < n_kv; ++i) {
    std::string key = r.str();
    local_kv_[std::move(key)] = r.f64();
  }
  emit_seq_ = r.u32();
  started_ = r.u8() != 0;
  last_cause_ = r.provenance_id();
  trigger_cause_ = r.provenance_id();
  events_consumed_ = r.u64();
  triggers_fired_ = r.u64();
  combiner_blocked_ = r.u64();
  commands_issued_ = r.u64();
  staleness_violations_ = r.u64();
}

}  // namespace riv::appmodel
