#include "appmodel/logic.hpp"

#include <limits>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::appmodel {

LogicInstance::LogicInstance(const AppGraph& graph, sim::Simulation& sim,
                             Callbacks callbacks)
    : graph_(&graph), timers_(sim), callbacks_(std::move(callbacks)) {
  for (const OperatorSpec& spec : graph.operators) {
    OpState state;
    state.spec = &spec;
    state.combiner = spec.combiner->clone();
    ops_.emplace(spec.name, std::move(state));
  }
  for (const SensorEdge& e : graph.sensor_edges) {
    OpState& op = ops_.at(e.to_op);
    op.streams.push_back(
        Stream{sensor_key(e.sensor), e.sensor, Window(e.window), {}});
  }
  for (const OperatorEdge& e : graph.operator_edges) {
    OpState& to = ops_.at(e.to_op);
    to.streams.push_back(
        Stream{op_key(e.from_op), std::nullopt, Window(e.window), {}});
    ops_.at(e.from_op).downstream_ops.push_back(e.to_op);
  }
  for (const ActuatorEdge& e : graph.actuator_edges)
    ops_.at(e.from_op).actuators.push_back(&e);
}

void LogicInstance::start() {
  if (started_) return;
  started_ = true;
  for (auto& [name, op] : ops_) {
    for (Stream& stream : op.streams) {
      if (stream.window.spec().trigger.kind == TriggerPolicy::Kind::kPeriodic)
        arm_periodic(op, stream);
    }
  }
}

void LogicInstance::arm_periodic(OpState& op, Stream& stream) {
  Duration period = stream.window.spec().trigger.period;
  RIV_ASSERT(period.us > 0, "periodic trigger needs a positive period");
  timers_.schedule_after(period, [this, &op, &stream] {
    take_pending(op, stream);
    evaluate(op);
    arm_periodic(op, stream);
  });
}

void LogicInstance::on_sensor_event(const devices::SensorEvent& e) {
  ++events_consumed_;
  last_cause_ = provenance_of(e.id);
  const std::string key = sensor_key(e.id.sensor);
  for (auto& [name, op] : ops_) {
    for (Stream& stream : op.streams) {
      if (stream.key == key) feed(op, stream, e);
    }
  }
}

void LogicInstance::feed(OpState& op, Stream& stream,
                         const devices::SensorEvent& e) {
  stream.window.add(e, timers_.now());
  try_trigger_event_driven(op, stream);
}

void LogicInstance::try_trigger_event_driven(OpState& op, Stream& stream) {
  if (!stream.window.event_trigger_ready()) return;
  take_pending(op, stream);
  evaluate(op);
}

void LogicInstance::take_pending(OpState& op, Stream& stream) {
  (void)op;
  std::vector<devices::SensorEvent> events =
      stream.window.snapshot(timers_.now());
  if (events.empty()) return;  // an empty window never counts as "ready"
  stream.pending = StreamWindow{stream.key, std::move(events)};
  stream.window.after_trigger(timers_.now());
}

void LogicInstance::evaluate(OpState& op) {
  std::vector<StreamWindow> ready;
  for (Stream& stream : op.streams) {
    if (stream.pending) ready.push_back(*stream.pending);
  }
  if (ready.empty()) return;
  if (!op.combiner->should_deliver(ready, op.streams.size())) {
    ++combiner_blocked_;
    return;
  }
  for (Stream& stream : op.streams) stream.pending.reset();
  deliver(op, std::move(ready));
}

void LogicInstance::deliver(OpState& op, std::vector<StreamWindow> ready) {
  ++triggers_fired_;
  // The trigger's causal id: the newest real sensor reading among the
  // windows that fired. Derived (downstream) events carry the synthetic
  // sensor 0xffff and are skipped; a purely-derived or purely-periodic
  // firing falls back to the last reading the instance consumed.
  trigger_cause_ = last_cause_;
  TimePoint newest{std::numeric_limits<std::int64_t>::min()};
  for (const StreamWindow& w : ready) {
    for (const devices::SensorEvent& e : w.events) {
      if (e.id.sensor.value != 0xffff && e.emitted_at >= newest) {
        newest = e.emitted_at;
        trigger_cause_ = provenance_of(e.id);
      }
    }
  }
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(timers_.now(), callbacks_.self, trace::Component::kRuntime,
                trace::Kind::kLogicFire, trigger_cause_,
                trace::fu(trace::Key::kApp, graph_->id.value),
                trace::fs(trace::Key::kOp, op.spec->name));
  }
  if (!op.spec->handler) return;

  TriggerContext ctx;
  ctx.self_ = callbacks_.self;
  ctx.now_fn = [this] { return timers_.now(); };
  ctx.kv_put_fn = [this](const std::string& key, double value) {
    if (callbacks_.kv_put) {
      callbacks_.kv_put(key, value);
    } else {
      local_kv_[key] = value;
    }
  };
  ctx.kv_get_fn =
      [this](const std::string& key) -> std::optional<double> {
    if (callbacks_.kv_get) return callbacks_.kv_get(key);
    auto it = local_kv_.find(key);
    if (it == local_kv_.end()) return std::nullopt;
    return it->second;
  };
  ctx.emit_fn = [this, &op](double value) { emit_downstream(op, value); };
  ctx.actuate_fn = [this, &op](ActuatorId actuator, bool tas, double expected,
                               double value) {
    const ActuatorEdge* edge = nullptr;
    for (const ActuatorEdge* e : op.actuators) {
      if (e->actuator == actuator) edge = e;
    }
    RIV_ASSERT(edge != nullptr,
               "handler actuated a device not wired to this operator");
    devices::Command cmd;
    cmd.id = callbacks_.next_command_id();
    cmd.actuator = actuator;
    cmd.test_and_set = tas;
    cmd.expected = expected;
    cmd.value = value;
    cmd.issued_at = timers_.now();
    cmd.cause = trigger_cause_;
    ++commands_issued_;
    callbacks_.command_sink(*edge, cmd);
  };
  op.spec->handler(ready, ctx);
}

void LogicInstance::emit_downstream(OpState& from, double value) {
  // Derived events carry no sensor identity; downstream streams are keyed
  // by the emitting operator's name.
  devices::SensorEvent e;
  e.id = EventId{SensorId{0xffff}, emit_seq_++};
  e.emitted_at = timers_.now();
  e.value = value;
  e.payload_size = 8;
  const std::string key = op_key(from.spec->name);
  for (const std::string& down : from.downstream_ops) {
    OpState& op = ops_.at(down);
    for (Stream& stream : op.streams) {
      if (stream.key == key) feed(op, stream, e);
    }
  }
}

void LogicInstance::on_staleness_violation(SensorId sensor,
                                           std::uint32_t epoch) {
  ++staleness_violations_;
  if (staleness_handler_) staleness_handler_(sensor, epoch);
}

}  // namespace riv::appmodel
