// Logic-node execution engine.
//
// A LogicInstance is the *active* incarnation of an application's logic
// node on one process (§3.3): it owns live Window instances per (operator,
// input stream), runs trigger policies, consults the operator's Combiner,
// invokes trigger handlers, and routes emissions to downstream operators
// and actuation commands to the command sink installed by the runtime.
//
// Shadow logic nodes have no LogicInstance — they are pure placeholders.
// Distribution concerns (which process is active, how events arrive) live
// in core/; this class is deliberately single-process and is also usable
// standalone in tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "appmodel/graph.hpp"
#include "sim/simulation.hpp"

namespace riv::appmodel {

class LogicInstance {
 public:
  struct Callbacks {
    // Route a command to (eventually) the physical actuator.
    std::function<void(const ActuatorEdge&, const devices::Command&)>
        command_sink;
    std::function<CommandId()> next_command_id;
    // Replicated application state (optional; defaults to a local map so
    // LogicInstance stays usable standalone in tests).
    std::function<void(const std::string&, double)> kv_put;
    std::function<std::optional<double>(const std::string&)> kv_get;
    ProcessId self{};
  };

  // Owns its timers: destroying the instance (demotion, crash) cancels
  // every pending periodic trigger.
  LogicInstance(const AppGraph& graph, sim::Simulation& sim,
                Callbacks callbacks);

  // Arm periodic triggers. Safe to call once after construction.
  void start();

  // Feed one delivered sensor event (already deduplicated by the delivery
  // service); it fans out to every operator wired to this sensor.
  void on_sensor_event(const devices::SensorEvent& e);

  // Delivery service noticed a poll-based sensor produced nothing for an
  // epoch (§4.1: Gapless "throws an exception" to the application).
  void on_staleness_violation(SensorId sensor, std::uint32_t epoch);
  using StalenessHandler = std::function<void(SensorId, std::uint32_t)>;
  void set_staleness_handler(StalenessHandler fn) {
    staleness_handler_ = std::move(fn);
  }

  // Statistics.
  std::uint64_t events_consumed() const { return events_consumed_; }
  std::uint64_t triggers_fired() const { return triggers_fired_; }
  std::uint64_t combiner_blocked() const { return combiner_blocked_; }
  std::uint64_t commands_issued() const { return commands_issued_; }
  std::uint64_t staleness_violations() const { return staleness_violations_; }

  const AppGraph& graph() const { return *graph_; }

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Unlike checkpoints (which re-execute logic state), a clone carries the
  // full live engine: window buffers, pending trigger windows, periodic
  // timers, local KV, sequence counters and provenance cursors. Restore
  // targets a freshly constructed, not-started instance built from the
  // same graph; start() afterwards is a no-op.
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  struct Stream {
    std::string key;  // "s:<sensor>" or "o:<operator>"
    std::optional<SensorId> sensor;
    Window window;
    std::optional<StreamWindow> pending;
    sim::TimerId periodic_timer{0};
  };
  struct OpState {
    const OperatorSpec* spec;
    std::unique_ptr<Combiner> combiner;
    std::vector<Stream> streams;
    std::vector<const ActuatorEdge*> actuators;
    std::vector<std::string> downstream_ops;
  };

  static std::string sensor_key(SensorId s) {
    return "s:" + std::to_string(s.value);
  }
  static std::string op_key(const std::string& name) { return "o:" + name; }

  void feed(OpState& op, Stream& stream, const devices::SensorEvent& e);
  void arm_periodic(OpState& op, Stream& stream);
  void periodic_fire(OpState& op, Stream& stream);
  void try_trigger_event_driven(OpState& op, Stream& stream);
  void take_pending(OpState& op, Stream& stream);
  void evaluate(OpState& op);
  void deliver(OpState& op, std::vector<StreamWindow> ready);
  void emit_downstream(OpState& from, double value);

  const AppGraph* graph_;
  sim::ProcessTimers timers_;
  Callbacks callbacks_;
  std::map<std::string, double> local_kv_;  // fallback when no store wired
  std::map<std::string, OpState> ops_;  // by operator name
  StalenessHandler staleness_handler_;
  std::uint32_t emit_seq_{1};
  bool started_{false};
  ProvenanceId last_cause_{};     // newest reading consumed, ever
  ProvenanceId trigger_cause_{};  // cause of the trigger currently firing

  std::uint64_t events_consumed_{0};
  std::uint64_t triggers_fired_{0};
  std::uint64_t combiner_blocked_{0};
  std::uint64_t commands_issued_{0};
  std::uint64_t staleness_violations_{0};
};

}  // namespace riv::appmodel
