// Windows over event streams (§6.1).
//
// A Window is a contiguous, finite portion of one input stream with three
// orthogonal pieces of configuration, exactly as the paper defines them:
//   1. a bounded event buffer — bound expressed as an event count or as a
//      time span;
//   2. a trigger policy — when the buffered events are presented to the
//      operator (every event, when N events are available, or every T);
//   3. an evictor policy — how events leave the buffer (clear on trigger
//      for disjoint batches, keep-last-N / max-age for sliding windows).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/time.hpp"
#include "devices/event.hpp"

namespace riv::appmodel {

struct TriggerPolicy {
  enum class Kind { kEveryEvent, kCount, kPeriodic };
  Kind kind{Kind::kEveryEvent};
  std::size_t count{1};
  Duration period{};

  static TriggerPolicy every_event() { return {Kind::kEveryEvent, 1, {}}; }
  static TriggerPolicy count_reached(std::size_t n) {
    return {Kind::kCount, n, {}};
  }
  static TriggerPolicy periodic(Duration t) {
    return {Kind::kPeriodic, 0, t};
  }
};

struct EvictorPolicy {
  bool clear_on_trigger{true};       // false => sliding window
  std::size_t keep_last{0};          // 0 = no count cap beyond the bound
  Duration max_age{};                // zero = no age cap beyond the bound

  static EvictorPolicy clear() { return {true, 0, {}}; }
  static EvictorPolicy sliding_keep_last(std::size_t n) {
    return {false, n, {}};
  }
  static EvictorPolicy sliding_max_age(Duration age) {
    return {false, 0, age};
  }
};

// Declarative description (used in app graphs; instantiated per process).
struct WindowSpec {
  enum class Bound { kCount, kTime };
  Bound bound{Bound::kCount};
  std::size_t count{1};
  Duration span{};
  TriggerPolicy trigger{};
  EvictorPolicy evictor{EvictorPolicy::clear()};

  // TimeWindow(span[, trigger[, evictor]]) — Table 2. Default trigger is
  // periodic with the window's own span.
  static WindowSpec time_window(Duration span);
  static WindowSpec time_window(Duration span, TriggerPolicy trigger);
  static WindowSpec time_window(Duration span, TriggerPolicy trigger,
                                EvictorPolicy evictor);

  // CountWindow(count[, trigger[, evictor]]) — Table 2. Default trigger
  // fires when `count` events are available.
  static WindowSpec count_window(std::size_t count);
  static WindowSpec count_window(std::size_t count, TriggerPolicy trigger);
  static WindowSpec count_window(std::size_t count, TriggerPolicy trigger,
                                 EvictorPolicy evictor);
};

// A live window instance over one stream.
class Window {
 public:
  explicit Window(WindowSpec spec) : spec_(spec) {}

  const WindowSpec& spec() const { return spec_; }

  // Buffer an event (applies the buffer bound).
  void add(const devices::SensorEvent& e, TimePoint now);

  // Would the trigger fire right now? (Periodic triggers are timer-driven
  // by the logic engine; this answers event-driven kinds.)
  bool event_trigger_ready() const;

  // Snapshot current contents (bound + age constraints applied).
  std::vector<devices::SensorEvent> snapshot(TimePoint now);

  // Apply the evictor after a successful trigger.
  void after_trigger(TimePoint now);

  bool empty() const { return buffer_.empty(); }
  std::size_t size() const { return buffer_.size(); }

  // Snapshot-clone support (DESIGN.md §16): raw buffer access so the
  // logic engine can serialize and restore live window contents exactly.
  const std::deque<devices::SensorEvent>& buffer() const { return buffer_; }
  void restore_buffer(std::deque<devices::SensorEvent> buffer) {
    buffer_ = std::move(buffer);
  }

 private:
  void enforce_bounds(TimePoint now);

  WindowSpec spec_;
  std::deque<devices::SensorEvent> buffer_;
};

}  // namespace riv::appmodel
