#include "appmodel/marzullo.hpp"

#include <algorithm>
#include <optional>

namespace riv::appmodel {

std::optional<Interval> marzullo_fuse(const std::vector<Interval>& readings,
                                      std::size_t f) {
  const std::size_t n = readings.size();
  if (n == 0) return std::nullopt;
  if (f >= n) f = n - 1;  // at least one genuine reading is always required
  const int need = static_cast<int>(n - f);

  // Sweep endpoints: +1 at interval start, -1 at interval end.
  struct Edge {
    double x;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * n);
  for (const Interval& r : readings) {
    edges.push_back({std::min(r.lo, r.hi), +1});
    edges.push_back({std::max(r.lo, r.hi), -1});
  }
  // Ascending; at equal x, starts before ends so closed intervals touching
  // at a point count as overlapping.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.delta > b.delta;
  });

  // l: smallest value contained in at least `need` intervals.
  std::optional<double> lo;
  int depth = 0;
  for (const Edge& e : edges) {
    depth += e.delta;
    if (depth >= need) {
      lo = e.x;
      break;
    }
  }
  if (!lo) return std::nullopt;

  // u: largest such value — sweep from the right, where an interval end
  // opens coverage and a start closes it.
  std::optional<double> hi;
  depth = 0;
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    depth += (it->delta == -1) ? +1 : -1;
    if (depth >= need) {
      hi = it->x;
      break;
    }
  }
  if (!hi) return std::nullopt;
  return Interval{*lo, *hi};
}

std::size_t marzullo_max_failstop(std::size_t n) { return n == 0 ? 0 : n - 1; }

std::size_t marzullo_max_arbitrary(std::size_t n) {
  return n == 0 ? 0 : (n - 1) / 3;
}

}  // namespace riv::appmodel
