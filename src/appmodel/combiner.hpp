// Combiners (§6.1): how triggered windows from multiple input streams are
// merged before being presented to an operator.
//
// The default combiner requires every input stream to have a triggered
// window — the strictest semantics, which stalls when any sensor fails.
// FTCombiner(f) is the paper's fault-tolerance abstraction: the programmer
// declares that the operator tolerates up to f failed input streams, and
// triggered windows are delivered whenever at least (n - f) streams have
// data. Listing 1 (intrusion, f = n-1: any one door sensor suffices) and
// Listing 2 (Marzullo averaging, f = floor((n-1)/3) for arbitrary sensor
// faults) both build on it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "devices/event.hpp"

namespace riv::appmodel {

// One stream's triggered window as handed to the operator.
struct StreamWindow {
  std::string stream;  // "s:<sensor id>" or upstream operator name
  std::vector<devices::SensorEvent> events;
};

class Combiner {
 public:
  virtual ~Combiner() = default;

  // `ready` = streams with a non-empty triggered window this round;
  // `total_streams` = number of input streams wired to the operator.
  // Return true to deliver the combined windows now.
  virtual bool should_deliver(const std::vector<StreamWindow>& ready,
                              std::size_t total_streams) const = 0;

  virtual std::unique_ptr<Combiner> clone() const = 0;
};

// Deliver only when every input stream contributed.
class AllCombiner final : public Combiner {
 public:
  bool should_deliver(const std::vector<StreamWindow>& ready,
                      std::size_t total_streams) const override {
    return !ready.empty() && ready.size() >= total_streams;
  }
  std::unique_ptr<Combiner> clone() const override {
    return std::make_unique<AllCombiner>();
  }
};

// Deliver when at least (total - f) streams contributed.
class FTCombiner final : public Combiner {
 public:
  explicit FTCombiner(std::size_t max_failures) : f_(max_failures) {}

  bool should_deliver(const std::vector<StreamWindow>& ready,
                      std::size_t total_streams) const override {
    if (ready.empty()) return false;
    std::size_t required = total_streams > f_ ? total_streams - f_ : 1;
    return ready.size() >= required;
  }
  std::size_t max_failures() const { return f_; }
  std::unique_ptr<Combiner> clone() const override {
    return std::make_unique<FTCombiner>(f_);
  }

 private:
  std::size_t f_;
};

}  // namespace riv::appmodel
