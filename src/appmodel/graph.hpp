// Application graphs (§3.2, §6, Table 2).
//
// A Rivulet application is a DAG of sensor nodes, logic operators, and
// actuator nodes. The AppGraph below is the declarative description the
// developer builds (via AppBuilder, which mirrors the paper's Table 2 API:
// Operator / addSensor / addUpstreamOperator / addActuator /
// handleTriggeredWindow); the runtime then instantiates active or shadow
// nodes for it on every process (§3.3).
//
// Handlers must treat the app as stateless (§3.2): they may run on any
// process and, after failover, more than one process concurrently.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "appmodel/combiner.hpp"
#include "appmodel/window.hpp"
#include "common/types.hpp"

namespace riv::appmodel {

enum class Guarantee : std::uint8_t { kGap = 0, kGapless = 1 };

inline const char* to_string(Guarantee g) {
  return g == Guarantee::kGap ? "Gap" : "Gapless";
}

// Poll-based sensor configuration: the app requires one event per epoch
// (the epoch doubles as the staleness bound of §6). A zero epoch means the
// sensor is push-based and never polled.
struct PollingPolicy {
  Duration epoch{};
  bool poll_based() const { return epoch.us > 0; }
};

// Execution context passed to trigger handlers. The function hooks are
// provided by the executing LogicInstance.
class TriggerContext {
 public:
  // Issue a command to a downstream actuator (plain set — idempotent path).
  void actuate(ActuatorId actuator, double value) const {
    actuate_fn(actuator, false, 0.0, value);
  }
  // Test&Set command for non-idempotent actuators (§5).
  void actuate_test_and_set(ActuatorId actuator, double expected,
                            double value) const {
    actuate_fn(actuator, true, expected, value);
  }
  // Emit a derived value to downstream operators.
  void emit(double value) const { emit_fn(value); }

  // Replicated application state (extension; see store/replicated_store):
  // survives logic-node failover, last-writer-wins across processes.
  void put(const std::string& key, double value) const {
    kv_put_fn(key, value);
  }
  std::optional<double> get(const std::string& key) const {
    return kv_get_fn(key);
  }
  double get_or(const std::string& key, double fallback) const {
    return kv_get_fn(key).value_or(fallback);
  }

  TimePoint now() const { return now_fn(); }
  ProcessId self() const { return self_; }

  // Wired by LogicInstance.
  std::function<void(ActuatorId, bool, double, double)> actuate_fn;
  std::function<void(double)> emit_fn;
  std::function<void(const std::string&, double)> kv_put_fn;
  std::function<std::optional<double>(const std::string&)> kv_get_fn;
  std::function<TimePoint()> now_fn;
  ProcessId self_{};
};

using TriggerHandler =
    std::function<void(const std::vector<StreamWindow>&, TriggerContext&)>;

struct SensorEdge {
  SensorId sensor{};
  Guarantee guarantee{Guarantee::kGap};
  WindowSpec window{};
  PollingPolicy polling{};
  std::string to_op;
};

struct OperatorEdge {
  std::string from_op;
  std::string to_op;
  WindowSpec window{};
};

struct ActuatorEdge {
  ActuatorId actuator{};
  Guarantee guarantee{Guarantee::kGap};
  std::string from_op;
};

struct OperatorSpec {
  std::string name;
  std::shared_ptr<const Combiner> combiner;  // prototype; cloned per instance
  TriggerHandler handler;
};

struct AppGraph {
  AppId id{};
  std::string name;
  std::vector<OperatorSpec> operators;
  std::vector<SensorEdge> sensor_edges;
  std::vector<OperatorEdge> operator_edges;
  std::vector<ActuatorEdge> actuator_edges;

  std::vector<SensorId> sensors() const;
  std::vector<ActuatorId> actuators() const;
  const OperatorSpec* find_operator(const std::string& name) const;
  const SensorEdge* find_sensor_edge(SensorId sensor,
                                     const std::string& op) const;

  // Asserts structural sanity: unique operator names, edges referencing
  // existing operators, acyclic operator edges.
  void validate() const;
};

// ---------------------------------------------------------------------
// Builder API mirroring Table 2.
// ---------------------------------------------------------------------
class AppBuilder;

class OperatorBuilder {
 public:
  OperatorBuilder& add_sensor(SensorId sensor, Guarantee guarantee,
                              WindowSpec window, PollingPolicy polling = {});
  OperatorBuilder& add_upstream_operator(const std::string& op,
                                         WindowSpec window);
  OperatorBuilder& add_actuator(ActuatorId actuator, Guarantee guarantee);
  OperatorBuilder& handle_triggered_window(TriggerHandler handler);

 private:
  friend class AppBuilder;
  OperatorBuilder(AppBuilder& app, std::string name)
      : app_(&app), name_(std::move(name)) {}
  AppBuilder* app_;
  std::string name_;
};

class AppBuilder {
 public:
  AppBuilder(AppId id, std::string name);

  // Operator(Name[, Combiner]) — defaults to the all-streams combiner.
  OperatorBuilder add_operator(const std::string& name);
  OperatorBuilder add_operator(const std::string& name,
                               std::unique_ptr<Combiner> combiner);

  AppGraph build();

 private:
  friend class OperatorBuilder;
  AppGraph graph_;
};

}  // namespace riv::appmodel
