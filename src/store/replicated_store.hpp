// Replicated application state (extension).
//
// The paper keeps Rivulet's core stateless (§3.2): "applications are free
// to use existing distributed storage systems to replicate state." This
// module supplies that missing piece natively so stateful apps (running
// totals for energy billing, hysteresis for HVAC, ...) survive logic-node
// failover: a last-writer-wins replicated key-value register set,
// replicated with the same machinery Rivulet already relies on —
// best-effort push on write plus periodic ring-successor anti-entropy,
// persisted to the process's stable store across crashes.
//
// Consistency: eventual, LWW per key ordered by (timestamp, writer id).
// That matches the home setting (no quorums, any number of processes) and
// the kinds of state Table 1 apps keep.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "net/payload.hpp"
#include "sim/simulation.hpp"
#include "sim/stable_store.hpp"

namespace riv::store {

struct Entry {
  double value{0.0};
  TimePoint written_at{};
  std::uint32_t seq{0};  // per-writer write counter
  ProcessId writer{};

  // LWW dominance: later timestamp wins; among writes with the same
  // timestamp a writer's later write beats its earlier one (seq), and the
  // writer id breaks the remaining cross-writer ties deterministically.
  bool dominates(const Entry& other) const {
    if (written_at != other.written_at)
      return written_at > other.written_at;
    if (writer == other.writer) return seq > other.seq;
    return writer > other.writer;
  }
};

void encode_entry(BinaryWriter& w, const std::string& key, const Entry& e);

class ReplicatedStore {
 public:
  struct Hooks {
    ProcessId self{};
    // Push an encoded update/sync payload to a peer; the runtime binds
    // this to its transport (kStorePut / kStoreSync messages). Fan-out
    // paths reuse one Payload for every peer.
    std::function<void(ProcessId, bool is_sync, net::Payload)> send;
    std::function<const std::set<ProcessId>&()> view;
    sim::ProcessTimers* timers{nullptr};
    sim::StableStore* stable{nullptr};  // may be null (volatile store)
    Duration sync_period{seconds(5)};
  };

  explicit ReplicatedStore(Hooks hooks);

  // Arm periodic anti-entropy and reload persisted state.
  void start();

  // --- application API -------------------------------------------------
  void put(const std::string& key, double value);
  std::optional<double> get(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  std::vector<std::string> keys() const;

  // --- replication plumbing (called by the runtime) ---------------------
  void on_update(const std::vector<std::byte>& payload);  // single entry
  void on_sync(const std::vector<std::byte>& payload);    // batch

  std::uint64_t writes() const { return writes_; }
  std::uint64_t merges_applied() const { return merges_applied_; }
  std::uint64_t merges_ignored() const { return merges_ignored_; }

  // Serialize every replicated register and the write counters for a
  // checkpoint (entries_ is ordered, so this is content-deterministic).
  void checkpoint_state(BinaryWriter& w) const {
    w.u32(write_seq_);
    w.u64(writes_);
    w.u64(merges_applied_);
    w.u64(merges_ignored_);
    w.u64(entries_.size());
    for (const auto& [key, e] : entries_) {
      w.str(key);
      w.f64(e.value);
      w.time_point(e.written_at);
      w.u32(e.seq);
      w.process_id(e.writer);
    }
  }

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Full state including the anti-entropy timer's (id, t, seq) identity.
  // Restore requires a constructed-but-not-started store whose hooks are
  // already wired (the runtime installs the closures first).
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  bool merge(const std::string& key, const Entry& incoming);
  void persist(const std::string& key, const Entry& e);
  void recover();
  void anti_entropy();
  std::vector<std::byte> encode_batch() const;

  Hooks hooks_;
  std::map<std::string, Entry> entries_;
  std::uint32_t write_seq_{0};
  std::uint64_t writes_{0};
  std::uint64_t merges_applied_{0};
  std::uint64_t merges_ignored_{0};
  sim::TimerId sync_timer_{0};
};

}  // namespace riv::store
