#include "store/replicated_store.hpp"

#include "common/assert.hpp"

namespace riv::store {
namespace {

constexpr const char* kStablePrefix = "kv/";

Entry decode_entry(BinaryReader& r, std::string* key) {
  *key = r.str();
  Entry e;
  e.value = r.f64();
  e.written_at = r.time_point();
  e.seq = r.u32();
  e.writer = r.process_id();
  return e;
}

}  // namespace

void encode_entry(BinaryWriter& w, const std::string& key, const Entry& e) {
  w.str(key);
  w.f64(e.value);
  w.time_point(e.written_at);
  w.u32(e.seq);
  w.process_id(e.writer);
}

ReplicatedStore::ReplicatedStore(Hooks hooks) : hooks_(std::move(hooks)) {
  RIV_ASSERT(hooks_.timers != nullptr, "store needs timers");
}

void ReplicatedStore::start() {
  recover();
  sync_timer_ = hooks_.timers->schedule_after(hooks_.sync_period, [this] {
    anti_entropy();
  });
}

void ReplicatedStore::put(const std::string& key, double value) {
  Entry e;
  e.value = value;
  e.written_at = hooks_.timers->now();
  e.seq = ++write_seq_;
  e.writer = hooks_.self;
  ++writes_;
  if (!merge(key, e)) return;  // an even-newer write already landed

  // Best-effort push to everyone currently visible; anti-entropy covers
  // whoever this misses.
  if (hooks_.send) {
    BinaryWriter w;
    encode_entry(w, key, e);
    net::Payload payload = w.take();  // shared by every visible peer
    for (ProcessId p : hooks_.view()) {
      if (p != hooks_.self) hooks_.send(p, /*is_sync=*/false, payload);
    }
  }
}

std::optional<double> ReplicatedStore::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.value;
}

std::vector<std::string> ReplicatedStore::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

bool ReplicatedStore::merge(const std::string& key, const Entry& incoming) {
  auto it = entries_.find(key);
  if (it != entries_.end() && !incoming.dominates(it->second)) {
    ++merges_ignored_;
    return false;
  }
  entries_[key] = incoming;
  ++merges_applied_;
  persist(key, incoming);
  return true;
}

void ReplicatedStore::persist(const std::string& key, const Entry& e) {
  if (hooks_.stable == nullptr) return;
  BinaryWriter w;
  encode_entry(w, key, e);
  hooks_.stable->put(kStablePrefix + key, w.take());
}

void ReplicatedStore::recover() {
  if (hooks_.stable == nullptr) return;
  for (const std::string& skey :
       hooks_.stable->keys_with_prefix(kStablePrefix)) {
    auto raw = hooks_.stable->get(skey);
    RIV_ASSERT(raw.has_value(), "key listed but missing");
    BinaryReader r(*raw);
    std::string key;
    Entry e = decode_entry(r, &key);
    RIV_ASSERT(r.ok(), "corrupt stored kv entry");
    auto it = entries_.find(key);
    if (it == entries_.end() || e.dominates(it->second)) entries_[key] = e;
  }
}

std::vector<std::byte> ReplicatedStore::encode_batch() const {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [key, entry] : entries_) encode_entry(w, key, entry);
  return w.take();
}

void ReplicatedStore::anti_entropy() {
  // Push the whole state to the ring successor. Home-automation state is
  // a handful of registers; a digest exchange would only pay off at much
  // larger scale.
  const std::set<ProcessId>& view = hooks_.view();
  if (hooks_.send && view.size() > 1 && !entries_.empty()) {
    auto it = view.upper_bound(hooks_.self);
    if (it == view.end()) it = view.begin();
    if (*it != hooks_.self)
      hooks_.send(*it, /*is_sync=*/true, encode_batch());
  }
  sync_timer_ = hooks_.timers->schedule_after(hooks_.sync_period, [this] {
    anti_entropy();
  });
}

void ReplicatedStore::clone_state(BinaryWriter& w) const {
  checkpoint_state(w);
  TimePoint t;
  std::uint64_t seq;
  bool syncing = sync_timer_ != 0 &&
                 hooks_.timers->sim().timer_info(sync_timer_, &t, &seq);
  w.u8(syncing ? 1 : 0);
  if (syncing) {
    w.u64(sync_timer_);
    w.time_point(t);
    w.u64(seq);
  }
}

void ReplicatedStore::restore_clone(BinaryReader& r) {
  write_seq_ = r.u32();
  writes_ = r.u64();
  merges_applied_ = r.u64();
  merges_ignored_ = r.u64();
  entries_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    Entry e;
    e.value = r.f64();
    e.written_at = r.time_point();
    e.seq = r.u32();
    e.writer = r.process_id();
    entries_[key] = e;
  }
  if (r.u8() != 0) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    sync_timer_ = hooks_.timers->restore_at(tid, t, seq, [this] {
      anti_entropy();
    });
  }
}

void ReplicatedStore::on_update(const std::vector<std::byte>& payload) {
  BinaryReader r(payload);
  std::string key;
  Entry e = decode_entry(r, &key);
  if (r.ok()) merge(key, e);
}

void ReplicatedStore::on_sync(const std::vector<std::byte>& payload) {
  BinaryReader r(payload);
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string key;
    Entry e = decode_entry(r, &key);
    if (r.ok()) merge(key, e);
  }
}

}  // namespace riv::store
