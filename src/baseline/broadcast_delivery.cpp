#include "baseline/broadcast_delivery.hpp"

namespace riv::baseline {

BroadcastDeliveryNode::BroadcastDeliveryNode(net::SimNetwork& net,
                                             devices::HomeBus& bus,
                                             ProcessId self,
                                             std::vector<ProcessId> all,
                                             bool app_bearing)
    : net_(&net),
      bus_(&bus),
      self_(self),
      all_(std::move(all)),
      app_bearing_(app_bearing) {}

void BroadcastDeliveryNode::start() {
  net_->endpoint(self_).set_handler(
      [this](const net::Message& msg) { on_message(msg); });
  bus_->subscribe(self_, [this](const devices::SensorEvent& e) {
    on_device_event(e);
  });
}

void BroadcastDeliveryNode::on_device_event(const devices::SensorEvent& e) {
  if (seen_.count(e.id) != 0) return;  // already heard via broadcast
  note(e, /*from_network=*/false);

  core::wire::EventPayload p;
  p.app = AppId{1};
  p.sensor = e.id.sensor;
  p.event = e;
  net::Payload payload = core::wire::encode_event_payload(p);  // shared buffer
  ++broadcasts_;
  for (ProcessId q : all_) {
    if (q != self_)
      net_->endpoint(self_).send(q, net::MsgType::kRbEvent, payload);
  }
}

void BroadcastDeliveryNode::on_message(const net::Message& msg) {
  if (msg.type != net::MsgType::kRbEvent) return;
  core::wire::EventPayload p = core::wire::decode_event_payload(msg.payload);
  if (seen_.count(p.event.id) != 0) return;
  note(p.event, /*from_network=*/true);
}

void BroadcastDeliveryNode::note(const devices::SensorEvent& e,
                                 bool from_network) {
  (void)from_network;
  seen_.insert(e.id);
  if (app_bearing_) ++delivered_to_app_;
}

}  // namespace riv::baseline
