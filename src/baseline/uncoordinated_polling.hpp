// Baseline comparator of §8.5 / Fig 8: uncoordinated polling.
//
// Every process that can reach a poll-based sensor issues one poll request
// at a uniformly random offset inside each epoch, skipping only when an
// event for the epoch was already received. Because the sensors accept a
// single outstanding request and drop the rest silently, overlapping polls
// fail and drain battery for nothing — the effect Fig 8 quantifies at
// 1.5–2.5x the optimal request count.
#pragma once

#include <cstdint>
#include <set>

#include "common/rng.hpp"
#include "devices/home_bus.hpp"
#include "sim/simulation.hpp"

namespace riv::baseline {

class UncoordinatedPoller {
 public:
  UncoordinatedPoller(sim::Simulation& sim, devices::HomeBus& bus,
                      ProcessId self, SensorId sensor, Duration epoch,
                      Rng rng);

  void start();

  // The owner fans device events out to its pollers (one HomeBus handler
  // exists per process).
  void on_device_event(const devices::SensorEvent& e);

  std::uint64_t polls_issued() const { return polls_issued_; }

 private:
  void schedule_epoch(std::uint32_t epoch);

  sim::Simulation* sim_;
  devices::HomeBus* bus_;
  ProcessId self_;
  SensorId sensor_;
  Duration epoch_;
  Rng rng_;
  sim::ProcessTimers timers_;
  std::set<std::uint32_t> epochs_seen_;
  std::uint64_t polls_issued_{0};
};

}  // namespace riv::baseline
