#include "baseline/uncoordinated_polling.hpp"

namespace riv::baseline {

UncoordinatedPoller::UncoordinatedPoller(sim::Simulation& sim,
                                         devices::HomeBus& bus,
                                         ProcessId self, SensorId sensor,
                                         Duration epoch, Rng rng)
    : sim_(&sim),
      bus_(&bus),
      self_(self),
      sensor_(sensor),
      epoch_(epoch),
      rng_(rng),
      timers_(sim) {}

void UncoordinatedPoller::start() {
  auto current =
      static_cast<std::uint32_t>(sim_->now().us / epoch_.us);
  schedule_epoch(current + 1);
}

void UncoordinatedPoller::on_device_event(const devices::SensorEvent& e) {
  if (e.id.sensor != sensor_) return;
  epochs_seen_.insert(e.epoch);
  while (epochs_seen_.size() > 1024)
    epochs_seen_.erase(epochs_seen_.begin());
}

void UncoordinatedPoller::schedule_epoch(std::uint32_t epoch) {
  const TimePoint boundary{static_cast<std::int64_t>(epoch) * epoch_.us};
  const Duration offset{
      static_cast<std::int64_t>(rng_.uniform() * static_cast<double>(epoch_.us))};
  timers_.schedule_at(boundary + offset, [this, epoch] {
    if (epochs_seen_.count(epoch) == 0) {
      ++polls_issued_;
      bus_->poll(self_, sensor_, epoch);
    }
  });
  timers_.schedule_at(boundary, [this, epoch] { schedule_epoch(epoch + 1); });
}

}  // namespace riv::baseline
