// Baseline comparator of §8.2 / Fig 5: simple broadcast delivery.
//
// Each process that receives an event directly from the sensor broadcasts
// it to every other process — unless it already learned of the event from
// another process first. With m event-receiving processes this costs
// O(m × n) messages in the failure-free case, which is exactly the
// overhead Rivulet's ring protocol avoids (§4.1).
//
// The node rides the same SimNetwork and frame format as Rivulet so the
// byte comparison in bench_fig5 is apples-to-apples.
#pragma once

#include <set>
#include <vector>

#include "core/wire.hpp"
#include "devices/home_bus.hpp"
#include "net/sim_network.hpp"

namespace riv::baseline {

class BroadcastDeliveryNode {
 public:
  BroadcastDeliveryNode(net::SimNetwork& net, devices::HomeBus& bus,
                        ProcessId self, std::vector<ProcessId> all,
                        bool app_bearing);

  // Install transport + device handlers.
  void start();

  std::uint64_t delivered_to_app() const { return delivered_to_app_; }
  std::uint64_t broadcasts() const { return broadcasts_; }

 private:
  void on_device_event(const devices::SensorEvent& e);
  void on_message(const net::Message& msg);
  void note(const devices::SensorEvent& e, bool from_network);

  net::SimNetwork* net_;
  devices::HomeBus* bus_;
  ProcessId self_;
  std::vector<ProcessId> all_;
  bool app_bearing_;
  std::set<EventId> seen_;
  std::uint64_t delivered_to_app_{0};
  std::uint64_t broadcasts_{0};
};

}  // namespace riv::baseline
