// Simulated stable storage.
//
// The paper's crash-recovery model assumes a recovering process can report
// the timestamp of the last event it received (the Bayou-style successor
// sync in §4.1). That requires state surviving a crash. StableStore models
// a tiny persistent key-value area (flash on a hub, disk on a TV): writes
// are atomic per key and survive crash/recover; volatile process state does
// not.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace riv::sim {

class StableStore {
 public:
  void put(const std::string& key, std::vector<std::byte> value) {
    data_[key] = std::move(value);
  }
  std::optional<std::vector<std::byte>> get(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  void erase(const std::string& key) { data_.erase(key); }
  bool contains(const std::string& key) const { return data_.count(key) != 0; }
  std::size_t size() const { return data_.size(); }

  // Keys with the given prefix, in lexicographic order (deterministic).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const {
    std::vector<std::string> out;
    for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
      if (it->first.rfind(prefix, 0) != 0) break;
      out.push_back(it->first);
    }
    return out;
  }

 private:
  std::map<std::string, std::vector<std::byte>> data_;
};

}  // namespace riv::sim
