// Simulated stable storage.
//
// The paper's crash-recovery model assumes a recovering process can report
// the timestamp of the last event it received (the Bayou-style successor
// sync in §4.1). That requires state surviving a crash. StableStore models
// a tiny persistent key-value area (flash on a hub, disk on a TV): writes
// are atomic per key and survive crash/recover; volatile process state does
// not.
//
// Writes sit on the event-log hot path (every appended event persists its
// watermark), so the index is a hash map — O(1) amortized put/get instead
// of a red-black-tree walk per key — and put() moves both key and value.
// keys_with_prefix() sorts its (small, recovery-time-only) result so scan
// order stays lexicographic and deterministic like the old ordered map.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/codec.hpp"

namespace riv::sim {

class StableStore {
 public:
  void put(std::string key, std::vector<std::byte> value) {
    data_.insert_or_assign(std::move(key), std::move(value));
  }
  std::optional<std::vector<std::byte>> get(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  void erase(const std::string& key) { data_.erase(key); }
  bool contains(const std::string& key) const { return data_.count(key) != 0; }
  std::size_t size() const { return data_.size(); }

  // Serialize every (key, value) pair in lexicographic key order. The
  // index is a hash map whose iteration order depends on insertion and
  // rehash history, so the sort here is load-bearing: two stores holding
  // the same pairs must checkpoint byte-identically no matter how they
  // got there (pinned by CheckpointDeterminismPins.StableStoreOrder).
  void checkpoint_state(BinaryWriter& w) const {
    std::vector<const std::string*> keys;
    keys.reserve(data_.size());
    for (const auto& [key, value] : data_) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    w.u64(keys.size());
    for (const std::string* key : keys) {
      w.str(*key);
      w.bytes(data_.find(*key)->second);
    }
  }

  // Snapshot-clone restore (DESIGN.md §16): the clone format reuses the
  // checkpoint encoding, so this is its exact inverse.
  void restore_clone(BinaryReader& r) {
    data_.clear();
    const std::uint64_t n = r.u64();
    data_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = r.str();
      data_.insert_or_assign(std::move(key), r.bytes());
    }
  }

  // Keys with the given prefix, in lexicographic order (deterministic).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const {
    std::vector<std::string> out;
    for (const auto& [key, value] : data_) {
      if (key.rfind(prefix, 0) == 0) out.push_back(key);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::string, std::vector<std::byte>> data_;
};

}  // namespace riv::sim
