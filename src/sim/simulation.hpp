// Discrete-event simulation kernel.
//
// This is the substitution for the paper's physical testbed (Raspberry Pi
// hosts on a home WiFi network): a single-threaded event loop over virtual
// time. Determinism rules:
//   * ties in firing time break by scheduling order (monotonic sequence
//     number), never by container iteration order;
//   * all randomness comes from the simulation's seeded Rng (or forks
//     of it);
//   * protocol code only sees the Clock/timer interfaces, so it cannot
//     accidentally depend on wall-clock time.
//
// Hot-path design (see DESIGN.md §9): pending timers live in a
// hierarchical timer wheel (4 levels × 64 slots, 1 µs ticks, ~16.7 s
// horizon) with per-level occupancy bitmaps so the kernel jumps straight
// to the next event instead of ticking; timers beyond the horizon wait in
// a small overflow heap and are promoted as virtual time approaches.
// Timer nodes come from a slab with a free list, cancellation marks a
// tombstone instead of erasing from a map, and TimerId -> node resolution
// is a dense ring keyed by the monotonically issued id — so steady-state
// schedule/fire/cancel does no heap allocation and no hashing. Event
// ordering is exactly (firing time, scheduling seq), bit-identical to the
// reference heap kernel (tests/test_sim_wheel.cpp proves it over 1e6
// random ops; the golden traces prove it end to end).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace riv {
class BinaryWriter;
class BinaryReader;
}

namespace riv::sim {

using TimerId = std::uint64_t;

class Simulation : public Clock {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(std::uint64_t seed);

  TimePoint now() const override { return now_; }
  Rng& rng() { return rng_; }

  // Schedule `cb` at absolute time `t` (>= now). Returns an id usable with
  // cancel(); ids are never reused.
  TimerId schedule_at(TimePoint t, Callback cb);
  TimerId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  // Cancel a pending timer. Cancelling an already-fired or already-cancelled
  // timer is a harmless no-op (protocols routinely cancel opportunistically).
  void cancel(TimerId id);
  bool is_pending(TimerId id) const;

  // Fire the next event. Returns false when the queue is empty.
  bool step();

  // Run events with firing time <= t, then set now to t.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }

  // Drain the queue completely (use in tests with finite workloads only).
  void run_all();

  // Live (scheduled, not yet fired or cancelled) timers.
  std::size_t pending_count() const { return live_count_; }

  // Total callbacks dispatched since construction (bench_kernel's
  // events/sec numerator).
  std::uint64_t events_fired() const { return events_fired_; }

  // Serialize the kernel's logical state for a checkpoint: virtual time,
  // counters, the RNG stream, and every live timer as (id, t, seq) sorted
  // by seq. Slab layout, slot chains, free lists, the overflow/wheel
  // split, and tombstones are storage artifacts and deliberately excluded,
  // so two kernels that would fire the same timers in the same order
  // always serialize identically. Callbacks are closures and cannot be
  // serialized — see checkpoint/rivc.hpp for how restore() handles that.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ---------------------------
  //
  // The clone format splits responsibility: the kernel serializes only its
  // scalar header (time, counters, RNG, live-timer count) — per-timer
  // (id, t, seq) triples live with the components that own them, because
  // only the owners can rebuild the callbacks. Restore is three-phase:
  // begin_restore() wipes every existing timer and restores the header,
  // each owner re-creates its timers via schedule_restored() with the
  // exact original id/t/seq, and finish_restore() asserts the restored
  // count matches the capture — a timer owned by anything outside the
  // restore set fails loudly instead of silently vanishing.

  // Serialize the kernel scalar header. Must be called at rest (between
  // run_until steps, never from inside a callback batch).
  void clone_state(BinaryWriter& w) const;

  // Wipe all pending timers and restore the scalar header. Requires an
  // empty kernel (a freshly built, not-yet-started deployment): restored
  // ids may collide with ids already handed out otherwise.
  void begin_restore(BinaryReader& r);

  // Re-create one live timer with its original identity. Only valid
  // between begin_restore() and finish_restore(); id/seq must come from a
  // capture of this kernel's restored header (id < next_id, seq <
  // next_seq, t >= now).
  TimerId schedule_restored(TimerId id, TimePoint t, std::uint64_t seq,
                            Callback cb);

  // Assert every captured live timer was restored and close the restore.
  void finish_restore();

  // Look up a pending timer's firing time and sequence (false when the
  // timer already fired or was cancelled) — how owners capture the
  // (id, t, seq) triples of the timers they track by id.
  bool timer_info(TimerId id, TimePoint* t, std::uint64_t* seq) const;

 private:
  // --- wheel geometry ----------------------------------------------------
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 4;
  // Timers with t - cur_ beyond this go to the overflow heap.
  static constexpr std::int64_t kWheelHorizon = std::int64_t{1}
                                                << (kLevelBits * kLevels);
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::int64_t t{0};
    std::uint64_t seq{0};
    TimerId id{0};
    std::uint32_t next{kNil};  // slot chain / free list
    bool cancelled{false};
    Callback cb;
  };

  struct HeapEntry {
    std::int64_t t;
    std::uint64_t seq;
    std::uint32_t node;
    bool operator>(const HeapEntry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);

  // TimerId -> slab index ring (dense: ids are issued monotonically and
  // the live window [id_base_, next_id_) is kept within capacity).
  std::uint32_t id_lookup(TimerId id) const;
  void id_store(TimerId id, std::uint32_t node);
  void id_clear(TimerId id);
  void id_grow();

  // Place a node into the wheel or the overflow heap. Landing in the
  // cursor's own slot of a level while belonging to a *future* revolution
  // of that level is forbidden (it would make cascading that slot a
  // no-op); such nodes are bumped one level up, which is always a valid
  // (coarser) window for them.
  void place(std::uint32_t idx);
  void promote_overflow();

  // Advance cur_ to the next firing time <= cap, filling due_ with that
  // instant's nodes in seq order. Returns false when no event fires by
  // cap. Does not run callbacks and does not touch now_.
  bool advance(std::int64_t cap);
  // Fire exactly one event with t <= cap; false if none.
  bool fire_next(std::int64_t cap);

  TimePoint now_{};
  std::int64_t cur_{0};  // wheel cursor; invariant cur_ <= now_ between runs
  std::uint64_t next_seq_{0};
  std::uint64_t events_fired_{0};
  std::size_t live_count_{0};
  Rng rng_;

  // Slab.
  std::vector<Node> nodes_;
  std::uint32_t free_head_{kNil};

  // Wheel: per-level slot chains + occupancy bitmaps.
  std::uint32_t slot_head_[kLevels][kSlotsPerLevel];
  std::uint32_t slot_tail_[kLevels][kSlotsPerLevel];
  std::uint64_t bitmap_[kLevels];
  std::size_t wheel_count_{0};  // nodes in the wheel (incl. tombstones)

  // Overflow heap for timers beyond the wheel horizon.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      overflow_;

  // The batch currently due: node indices at time due_time_, seq order.
  std::vector<std::uint32_t> due_;
  std::size_t due_head_{0};
  std::int64_t due_time_{0};

  // TimerId ring.
  TimerId next_id_{1};
  TimerId id_base_{1};
  std::vector<std::uint32_t> id_map_;

  // Restore bookkeeping (begin_restore .. finish_restore window).
  bool in_restore_{false};
  std::uint64_t expected_live_{0};
  std::uint64_t restored_count_{0};
};

// Timer façade owned by one simulated process. Crash semantics: when the
// process crashes, cancel_all() drops every outstanding timer so no stale
// callback from a previous incarnation can fire (the paper's crash-recovery
// model: a crashed process halts all activity).
class ProcessTimers {
 public:
  explicit ProcessTimers(Simulation& sim) : sim_(&sim) {}
  ~ProcessTimers() { cancel_all(); }

  ProcessTimers(const ProcessTimers&) = delete;
  ProcessTimers& operator=(const ProcessTimers&) = delete;

  TimerId schedule_after(Duration d, Simulation::Callback cb);
  TimerId schedule_at(TimePoint t, Simulation::Callback cb);
  // Snapshot-clone restore: re-create an owned timer with its original
  // identity (forwards to Simulation::schedule_restored and records
  // ownership so crash-time cancel_all still covers it).
  TimerId restore_at(TimerId id, TimePoint t, std::uint64_t seq,
                     Simulation::Callback cb);
  void cancel(TimerId id);
  void cancel_all();

  TimePoint now() const { return sim_->now(); }
  Simulation& sim() { return *sim_; }
  const Simulation& sim() const { return *sim_; }

 private:
  void garbage_collect();

  Simulation* sim_;
  std::vector<TimerId> owned_;
  // Adaptive GC trigger: collect dead ids only once owned_ doubles past
  // the last collection, so a stable working set is never rescanned on
  // every schedule (the old fixed threshold made schedule O(owned)).
  std::size_t gc_threshold_{64};
};

}  // namespace riv::sim
