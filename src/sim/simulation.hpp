// Discrete-event simulation kernel.
//
// This is the substitution for the paper's physical testbed (Raspberry Pi
// hosts on a home WiFi network): a single-threaded event loop over virtual
// time. Determinism rules:
//   * ties in firing time break by scheduling order (monotonic sequence
//     number), never by container iteration order;
//   * all randomness comes from the simulation's seeded Rng (or forks
//     of it);
//   * protocol code only sees the Clock/timer interfaces, so it cannot
//     accidentally depend on wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace riv::sim {

using TimerId = std::uint64_t;

class Simulation : public Clock {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  TimePoint now() const override { return now_; }
  Rng& rng() { return rng_; }

  // Schedule `cb` at absolute time `t` (>= now). Returns an id usable with
  // cancel(); ids are never reused.
  TimerId schedule_at(TimePoint t, Callback cb);
  TimerId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + d, std::move(cb));
  }

  // Cancel a pending timer. Cancelling an already-fired or already-cancelled
  // timer is a harmless no-op (protocols routinely cancel opportunistically).
  void cancel(TimerId id) { pending_.erase(id); }
  bool is_pending(TimerId id) const { return pending_.count(id) != 0; }

  // Fire the next event. Returns false when the queue is empty.
  bool step();

  // Run events with firing time <= t, then set now to t.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }

  // Drain the queue completely (use in tests with finite workloads only).
  void run_all();

  std::size_t pending_count() const { return pending_.size(); }

 private:
  struct QueueEntry {
    TimePoint t;
    std::uint64_t seq;
    TimerId id;
    bool operator>(const QueueEntry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  TimePoint now_{};
  std::uint64_t next_seq_{0};
  TimerId next_id_{1};
  Rng rng_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::unordered_map<TimerId, Callback> pending_;
};

// Timer façade owned by one simulated process. Crash semantics: when the
// process crashes, cancel_all() drops every outstanding timer so no stale
// callback from a previous incarnation can fire (the paper's crash-recovery
// model: a crashed process halts all activity).
class ProcessTimers {
 public:
  explicit ProcessTimers(Simulation& sim) : sim_(&sim) {}
  ~ProcessTimers() { cancel_all(); }

  ProcessTimers(const ProcessTimers&) = delete;
  ProcessTimers& operator=(const ProcessTimers&) = delete;

  TimerId schedule_after(Duration d, Simulation::Callback cb);
  TimerId schedule_at(TimePoint t, Simulation::Callback cb);
  void cancel(TimerId id);
  void cancel_all();

  TimePoint now() const { return sim_->now(); }
  Simulation& sim() { return *sim_; }

 private:
  void garbage_collect();

  Simulation* sim_;
  std::vector<TimerId> owned_;
};

}  // namespace riv::sim
