#include "sim/simulation.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "trace/trace.hpp"

namespace riv::sim {

namespace {
constexpr std::int64_t kMaxTime = std::numeric_limits<std::int64_t>::max();
}  // namespace

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed), id_map_(1024, kNil) {
  for (int l = 0; l < kLevels; ++l) {
    bitmap_[l] = 0;
    for (int s = 0; s < kSlotsPerLevel; ++s) {
      slot_head_[l][s] = kNil;
      slot_tail_[l][s] = kNil;
    }
  }
}

// --- slab ------------------------------------------------------------------

std::uint32_t Simulation::alloc_node() {
  if (free_head_ != kNil) {
    std::uint32_t idx = free_head_;
    free_head_ = nodes_[idx].next;
    return idx;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Simulation::free_node(std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.cb = nullptr;
  n.next = free_head_;
  free_head_ = idx;
}

// --- TimerId ring ----------------------------------------------------------
//
// Ids are issued monotonically, so id -> node is a ring indexed by
// id & (capacity - 1) over the live window [id_base_, next_id_). Slots
// outside the window are kNil by construction, which is what lets the
// base chase forward past completed ids. Capacity is bounded by the id
// *span*, not the live count: one immortal timer under heavy churn keeps
// the window wide (4 bytes per id of span — fine for simulation-scale
// runs, noted here in case someone reuses this for a long-running server).

std::uint32_t Simulation::id_lookup(TimerId id) const {
  if (id < id_base_ || id >= next_id_) return kNil;
  return id_map_[id & (id_map_.size() - 1)];
}

void Simulation::id_store(TimerId id, std::uint32_t node) {
  if (id - id_base_ >= id_map_.size()) id_grow();
  id_map_[id & (id_map_.size() - 1)] = node;
}

void Simulation::id_clear(TimerId id) {
  id_map_[id & (id_map_.size() - 1)] = kNil;
  while (id_base_ < next_id_ &&
         id_map_[id_base_ & (id_map_.size() - 1)] == kNil)
    ++id_base_;
}

void Simulation::id_grow() {
  // Only called from id_store while storing id == next_id_ - 1, so every
  // id in [id_base_, next_id_ - 1) has a valid slot to carry over.
  std::size_t cap = id_map_.size() * 2;
  while (next_id_ - id_base_ >= cap) cap *= 2;
  std::vector<std::uint32_t> fresh(cap, kNil);
  for (TimerId i = id_base_; i + 1 < next_id_; ++i)
    fresh[i & (cap - 1)] = id_map_[i & (id_map_.size() - 1)];
  id_map_ = std::move(fresh);
}

// --- wheel -----------------------------------------------------------------

void Simulation::place(std::uint32_t idx) {
  Node& n = nodes_[idx];
  std::int64_t delta = n.t - cur_;
  RIV_ASSERT(delta >= 0, "timer wheel: placing a node behind the cursor");
  if (delta >= kWheelHorizon) {
    overflow_.push(HeapEntry{n.t, n.seq, idx});
    return;
  }
  int level = 0;
  while (delta >= (std::int64_t{1} << (kLevelBits * (level + 1)))) ++level;
  // Bump out of the cursor's slot unless the node lies in the cursor's
  // current window there (then it cascades down, never re-lands).
  for (; level < kLevels; ++level) {
    int shift = kLevelBits * level;
    if (((n.t ^ cur_) >> shift) & (kSlotsPerLevel - 1)) break;
    if ((n.t >> (shift + kLevelBits)) == (cur_ >> (shift + kLevelBits)))
      break;
  }
  if (level == kLevels) {
    // Cursor-slot collision at the top level: the node is in a future
    // top-level revolution, so the heap owns it until the cursor gets
    // there (promote_overflow's revolution test keeps it out until then).
    overflow_.push(HeapEntry{n.t, n.seq, idx});
    return;
  }
  int shift = kLevelBits * level;
  int slot = static_cast<int>((n.t >> shift) & (kSlotsPerLevel - 1));
  n.next = kNil;
  if (slot_head_[level][slot] == kNil)
    slot_head_[level][slot] = idx;
  else
    nodes_[slot_tail_[level][slot]].next = idx;
  slot_tail_[level][slot] = idx;
  bitmap_[level] |= std::uint64_t{1} << slot;
  ++wheel_count_;
}

void Simulation::promote_overflow() {
  // Pull in everything from the cursor's current top-level revolution.
  // (Not simply everything within the horizon: a node just past the
  // revolution boundary could land back in the cursor's top-level slot,
  // and place() would bounce it straight back here.)
  constexpr int kTopShift = kLevelBits * kLevels;
  while (!overflow_.empty() &&
         (overflow_.top().t >> kTopShift) == (cur_ >> kTopShift)) {
    std::uint32_t idx = overflow_.top().node;
    overflow_.pop();
    if (nodes_[idx].cancelled)
      free_node(idx);
    else
      place(idx);
  }
}

bool Simulation::advance(std::int64_t cap) {
  for (;;) {
    if (wheel_count_ == 0) {
      if (overflow_.empty()) return false;
      std::int64_t top = overflow_.top().t;
      if (top > cap) return false;
      cur_ = top;
      promote_overflow();
      continue;
    }
    promote_overflow();

    // Level-0 candidate: an exact firing time.
    std::int64_t t0 = -1;
    int p0 = 0;
    if (std::uint64_t bm = bitmap_[0]; bm != 0) {
      int c0 = static_cast<int>(cur_ & (kSlotsPerLevel - 1));
      std::int64_t base = cur_ & ~std::int64_t{kSlotsPerLevel - 1};
      if (std::uint64_t ahead = bm >> c0; ahead != 0) {
        p0 = c0 + std::countr_zero(ahead);
        t0 = base + p0;
      } else {
        p0 = std::countr_zero(bm);
        t0 = base + kSlotsPerLevel + p0;  // wrapped into the next lap
      }
    }

    // Higher levels: window-start lower bounds (candidates to cascade).
    std::int64_t best_w = kMaxTime;
    int best_l = -1;
    int best_q = 0;
    for (int l = 1; l < kLevels; ++l) {
      std::uint64_t bm = bitmap_[l];
      if (bm == 0) continue;
      int shift = kLevelBits * l;
      int cl = static_cast<int>((cur_ >> shift) & (kSlotsPerLevel - 1));
      int q;
      std::int64_t w;
      std::int64_t rev = std::int64_t{1} << (shift + kLevelBits);
      std::int64_t rev_base = cur_ & ~(rev - 1);
      if (std::uint64_t ahead = bm >> cl; ahead != 0) {
        q = cl + std::countr_zero(ahead);
        w = rev_base + (static_cast<std::int64_t>(q) << shift);
      } else {
        q = std::countr_zero(bm);
        w = rev_base + rev + (static_cast<std::int64_t>(q) << shift);
      }
      if (w < best_w) {
        best_w = w;
        best_l = l;
        best_q = q;
      }
    }

    // Nodes still in the heap can precede a next-revolution window start,
    // so the heap top competes as a third candidate.
    std::int64_t heap_t = overflow_.empty() ? kMaxTime : overflow_.top().t;

    if (t0 >= 0 && t0 < best_w && t0 < heap_t) {
      if (t0 > cap) return false;
      cur_ = t0;
      std::uint32_t idx = slot_head_[0][p0];
      slot_head_[0][p0] = kNil;
      slot_tail_[0][p0] = kNil;
      bitmap_[0] &= ~(std::uint64_t{1} << p0);
      due_.clear();
      due_head_ = 0;
      while (idx != kNil) {
        std::uint32_t nxt = nodes_[idx].next;
        --wheel_count_;
        if (nodes_[idx].cancelled) {
          free_node(idx);
        } else {
          RIV_ASSERT(nodes_[idx].t == t0, "timer wheel slot/time mismatch");
          due_.push_back(idx);
        }
        idx = nxt;
      }
      if (due_.empty()) continue;  // tombstone-only slot; keep looking
      std::sort(due_.begin(), due_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return nodes_[a].seq < nodes_[b].seq;
                });
      due_time_ = t0;
      return true;
    }

    if (heap_t <= best_w) {
      // Next event is still beyond the wheel: jump the cursor so
      // promotion can pull it in. Safe — every wheel candidate is later.
      if (heap_t > cap) return false;
      cur_ = heap_t;
      promote_overflow();
      continue;
    }

    RIV_ASSERT(best_l >= 0, "timer wheel: occupancy with no candidate");
    // Cascade the earliest higher-level slot. On a tie with t0 this runs
    // first so same-time nodes merge into one level-0 slot and fire in
    // seq order.
    if (best_w > cap) return false;
    if (best_w > cur_) cur_ = best_w;
    std::uint32_t idx = slot_head_[best_l][best_q];
    slot_head_[best_l][best_q] = kNil;
    slot_tail_[best_l][best_q] = kNil;
    bitmap_[best_l] &= ~(std::uint64_t{1} << best_q);
    while (idx != kNil) {
      std::uint32_t nxt = nodes_[idx].next;
      --wheel_count_;
      if (nodes_[idx].cancelled)
        free_node(idx);
      else
        place(idx);
      idx = nxt;
    }
  }
}

// --- public API ------------------------------------------------------------

TimerId Simulation::schedule_at(TimePoint t, Callback cb) {
  RIV_ASSERT(t >= now_, "cannot schedule in the past");
  TimerId id = next_id_++;
  std::uint32_t idx = alloc_node();
  Node& n = nodes_[idx];
  n.t = t.us;
  n.seq = next_seq_++;
  n.id = id;
  n.cancelled = false;
  n.cb = std::move(cb);
  id_store(id, idx);
  place(idx);
  ++live_count_;
  return id;
}

void Simulation::cancel(TimerId id) {
  std::uint32_t idx = id_lookup(id);
  if (idx == kNil) return;
  Node& n = nodes_[idx];
  n.cancelled = true;
  n.cb = nullptr;  // release captured state now, not at slot drain
  --live_count_;
  id_clear(id);
}

bool Simulation::is_pending(TimerId id) const { return id_lookup(id) != kNil; }

bool Simulation::fire_next(std::int64_t cap) {
  for (;;) {
    while (due_head_ < due_.size()) {
      std::uint32_t idx = due_[due_head_];
      if (nodes_[idx].cancelled) {
        // Cancelled after the batch formed (e.g. by an earlier callback
        // of the same instant): drop without advancing time.
        ++due_head_;
        free_node(idx);
        continue;
      }
      if (due_time_ > cap) return false;
      ++due_head_;
      now_ = TimePoint{due_time_};
      ++events_fired_;
      --live_count_;
      TimerId id = nodes_[idx].id;
      Callback cb = std::move(nodes_[idx].cb);
      id_clear(id);
      free_node(idx);
      if (trace::active(trace::Component::kSim)) {
        trace::emit(now_, ProcessId{0}, trace::Component::kSim,
                    trace::Kind::kTimerFire, trace::fu(trace::Key::kTimer, id));
      }
      cb();
      return true;
    }
    due_.clear();
    due_head_ = 0;
    if (!advance(cap)) return false;
  }
}

bool Simulation::step() { return fire_next(kMaxTime); }

void Simulation::checkpoint_state(BinaryWriter& w) const {
  w.i64(now_.us);
  w.u64(next_seq_);
  w.u64(events_fired_);
  w.u64(next_id_);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  // A node is live iff the id ring still points at it and it was not
  // cancelled (fire and cancel both clear the ring entry; freed slab
  // slots keep stale ids that no longer resolve to them). The not-yet-
  // fired tail of the current due_ batch still satisfies this.
  std::vector<const Node*> live;
  live.reserve(live_count_);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.cancelled || n.id == 0) continue;
    if (id_lookup(n.id) != i) continue;
    live.push_back(&n);
  }
  std::sort(live.begin(), live.end(),
            [](const Node* a, const Node* b) { return a->seq < b->seq; });
  w.u64(live.size());
  for (const Node* n : live) {
    w.u64(n->id);
    w.i64(n->t);
    w.u64(n->seq);
  }
}

void Simulation::clone_state(BinaryWriter& w) const {
  RIV_ASSERT(due_head_ == due_.size(), "clone capture mid-batch");
  w.i64(now_.us);
  w.u64(next_seq_);
  w.u64(events_fired_);
  w.u64(next_id_);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(live_count_);
}

void Simulation::begin_restore(BinaryReader& r) {
  RIV_ASSERT(!in_restore_, "nested kernel restore");
  RIV_ASSERT(live_count_ == 0,
             "kernel restore target must be a fresh, not-yet-started "
             "deployment (restored ids would collide otherwise)");
  now_ = TimePoint{r.i64()};
  cur_ = now_.us;
  next_seq_ = r.u64();
  events_fired_ = r.u64();
  next_id_ = r.u64();
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.set_state(rng_state);
  expected_live_ = r.u64();
  restored_count_ = 0;

  // Wipe storage wholesale: tombstones and free lists are artifacts of
  // the target's (empty) history and must not leak into the clone.
  nodes_.clear();
  free_head_ = kNil;
  for (int l = 0; l < kLevels; ++l) {
    bitmap_[l] = 0;
    for (int s = 0; s < kSlotsPerLevel; ++s) {
      slot_head_[l][s] = kNil;
      slot_tail_[l][s] = kNil;
    }
  }
  wheel_count_ = 0;
  overflow_ = {};
  due_.clear();
  due_head_ = 0;
  live_count_ = 0;
  // Empty id window at the restored high end; schedule_restored walks
  // id_base_ down as owners re-register their (older) live ids.
  id_base_ = next_id_;
  std::fill(id_map_.begin(), id_map_.end(), kNil);
  in_restore_ = true;
}

TimerId Simulation::schedule_restored(TimerId id, TimePoint t,
                                      std::uint64_t seq, Callback cb) {
  RIV_ASSERT(in_restore_, "schedule_restored outside a restore window");
  RIV_ASSERT(id >= 1 && id < next_id_, "restored timer id out of window");
  RIV_ASSERT(seq < next_seq_, "restored timer seq out of window");
  RIV_ASSERT(t >= now_, "restored timer fires in the past");
  if (id < id_base_) {
    // Extend the ring window down to cover this id (capacity is bounded
    // by id span; see the ring comment above).
    std::size_t span = static_cast<std::size_t>(next_id_ - id);
    if (span > id_map_.size()) {
      std::size_t cap = id_map_.size();
      while (span > cap) cap *= 2;
      std::vector<std::uint32_t> fresh(cap, kNil);
      for (TimerId i = id_base_; i < next_id_; ++i) {
        std::uint32_t v = id_map_[i & (id_map_.size() - 1)];
        if (v != kNil) fresh[i & (cap - 1)] = v;
      }
      id_map_ = std::move(fresh);
    }
    id_base_ = id;
  }
  RIV_ASSERT(id_lookup(id) == kNil, "duplicate restored timer id");
  std::uint32_t idx = alloc_node();
  Node& n = nodes_[idx];
  n.t = t.us;
  n.seq = seq;
  n.id = id;
  n.cancelled = false;
  n.cb = std::move(cb);
  id_map_[id & (id_map_.size() - 1)] = idx;
  place(idx);
  ++live_count_;
  ++restored_count_;
  return id;
}

void Simulation::finish_restore() {
  RIV_ASSERT(in_restore_, "finish_restore outside a restore window");
  RIV_ASSERT(restored_count_ == expected_live_,
             "restored live-timer count mismatch: a timer owner outside "
             "the clone set was pending at capture");
  in_restore_ = false;
}

bool Simulation::timer_info(TimerId id, TimePoint* t,
                            std::uint64_t* seq) const {
  std::uint32_t idx = id_lookup(id);
  if (idx == kNil) return false;
  *t = TimePoint{nodes_[idx].t};
  *seq = nodes_[idx].seq;
  return true;
}

void Simulation::run_until(TimePoint t) {
  while (fire_next(t.us)) {
  }
  if (now_ < t) now_ = t;
}

void Simulation::run_all() {
  while (step()) {
  }
}

// --- ProcessTimers ---------------------------------------------------------

TimerId ProcessTimers::schedule_after(Duration d, Simulation::Callback cb) {
  garbage_collect();
  TimerId id = sim_->schedule_after(d, std::move(cb));
  owned_.push_back(id);
  return id;
}

TimerId ProcessTimers::schedule_at(TimePoint t, Simulation::Callback cb) {
  garbage_collect();
  TimerId id = sim_->schedule_at(t, std::move(cb));
  owned_.push_back(id);
  return id;
}

TimerId ProcessTimers::restore_at(TimerId id, TimePoint t, std::uint64_t seq,
                                  Simulation::Callback cb) {
  sim_->schedule_restored(id, t, seq, std::move(cb));
  owned_.push_back(id);
  return id;
}

void ProcessTimers::cancel(TimerId id) {
  sim_->cancel(id);
  auto it = std::find(owned_.begin(), owned_.end(), id);
  if (it != owned_.end()) {
    *it = owned_.back();  // ids are unique; order of owned_ is irrelevant
    owned_.pop_back();
  }
}

void ProcessTimers::cancel_all() {
  for (TimerId id : owned_) sim_->cancel(id);
  owned_.clear();
}

void ProcessTimers::garbage_collect() {
  if (owned_.size() < gc_threshold_) return;
  owned_.erase(std::remove_if(owned_.begin(), owned_.end(),
                              [&](TimerId id) { return !sim_->is_pending(id); }),
               owned_.end());
  gc_threshold_ = std::max<std::size_t>(64, owned_.size() * 2);
}

}  // namespace riv::sim
