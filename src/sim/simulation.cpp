#include "sim/simulation.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace riv::sim {

TimerId Simulation::schedule_at(TimePoint t, Callback cb) {
  RIV_ASSERT(t >= now_, "cannot schedule in the past");
  TimerId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  pending_.emplace(id, std::move(cb));
  return id;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = pending_.find(entry.id);
    if (it == pending_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    pending_.erase(it);
    now_ = entry.t;
    if (trace::active(trace::Component::kSim)) {
      trace::emit(now_, ProcessId{0}, trace::Component::kSim,
                  trace::Kind::kTimerFire,
                  "timer=" + std::to_string(entry.id));
    }
    cb();
    return true;
  }
  return false;
}

void Simulation::run_until(TimePoint t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing time.
    QueueEntry entry = queue_.top();
    if (pending_.find(entry.id) == pending_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.t > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run_all() {
  while (step()) {
  }
}

TimerId ProcessTimers::schedule_after(Duration d, Simulation::Callback cb) {
  garbage_collect();
  TimerId id = sim_->schedule_after(d, std::move(cb));
  owned_.push_back(id);
  return id;
}

TimerId ProcessTimers::schedule_at(TimePoint t, Simulation::Callback cb) {
  garbage_collect();
  TimerId id = sim_->schedule_at(t, std::move(cb));
  owned_.push_back(id);
  return id;
}

void ProcessTimers::cancel(TimerId id) {
  sim_->cancel(id);
  owned_.erase(std::remove(owned_.begin(), owned_.end(), id), owned_.end());
}

void ProcessTimers::cancel_all() {
  for (TimerId id : owned_) sim_->cancel(id);
  owned_.clear();
}

void ProcessTimers::garbage_collect() {
  if (owned_.size() < 64) return;
  owned_.erase(std::remove_if(owned_.begin(), owned_.end(),
                              [&](TimerId id) { return !sim_->is_pending(id); }),
               owned_.end());
}

}  // namespace riv::sim
