// Simulated home WiFi network.
//
// Models the testbed of §8.1: all hosts share one 802.11 access point.
// A frame from process A to process B therefore crosses the shared medium
// and pays:
//   * a base per-hop latency (AP relay, MAC contention floor),
//   * transmission time = bytes / effective bandwidth,
//   * CPU serialization/deserialization cost proportional to bytes
//     (wimpy 1.2 GHz ARM hosts, §8.1),
//   * a congestion term growing with the number of live processes
//     (keep-alive chatter; the paper attributes Gap's delay growth with
//     process count to this, Fig 4a),
//   * bounded random jitter.
//
// Reliability model: in-order reliable delivery per (src,dst) while both
// processes are up and mutually reachable; a crash or partition at send
// or delivery time loses the frame (TCP reset). Partitions are arbitrary
// groupings of processes (§3.1 allows arbitrary partitions). Layered under
// the group partitions, the chaos engine can force individual *directed*
// edges down (asymmetric reachability: A hears B but not vice versa) and
// override per-edge delay/loss — see set_reachable / set_edge_*.
//
// Byte accounting: every frame put on the wire increments
//   net.msgs.<type> and net.bytes.<type>
// in the experiment's metrics Registry; Fig 5 reads these.
//
// Hot-path layout (DESIGN.md §9): every process gets a small dense index
// at registration, and all per-process / per-directed-edge fault state
// (liveness, partition group, edge-down, edge delay/loss, FIFO clamp)
// lives in flat n- or n×n-arrays indexed by it — the per-frame path does
// no tree or hash lookups. Per-MsgType metrics counters are resolved once
// and cached, and the live-process count is maintained incrementally.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "metrics/metrics.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace riv::net {

struct WifiModel {
  Duration base_latency{1200};           // 1.2 ms per process->process hop
  double bandwidth_bytes_per_us{6.25};   // ~50 Mb/s effective
  double cpu_us_per_byte{0.04};          // serialize+deserialize, both ends
  Duration congestion_per_process{300};  // extra delay per live process > 2
  double jitter_frac{0.15};              // uniform [0, frac] of the total
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulation& sim, metrics::Registry& metrics,
             WifiModel model = {});
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // Get (creating on first use) the transport endpoint of a process.
  Transport& endpoint(ProcessId p);

  // Process liveness: a down process neither sends nor receives. (Crash of
  // the Rivulet runtime; the paper's crash-recovery model §3.1.)
  void set_process_up(ProcessId p, bool up);
  bool process_up(ProcessId p) const;

  // Install a partition: processes in different groups cannot communicate;
  // processes in the same group can. Any process not mentioned forms its
  // own singleton group.
  void set_partition(const std::vector<std::set<ProcessId>>& groups);
  // Remove any partition: full connectivity.
  void heal_partition();
  bool connected(ProcessId a, ProcessId b) const;

  // --- Directed-edge fault hooks (chaos engine) ----------------------
  // Asymmetric reachability: mark the directed link src->dst down (frames
  // that way are lost) while dst->src stays untouched. Layered UNDER group
  // partitions: a frame crosses iff the partition allows it AND no edge
  // override blocks it. heal_partition() does not clear edge overrides.
  void set_reachable(ProcessId src, ProcessId dst, bool up);
  void clear_reachable_overrides();
  // Directed deliverability: partition check plus edge override.
  bool reachable(ProcessId src, ProcessId dst) const;

  // Per-directed-edge quality overrides: extra one-way delay (spike on a
  // congested path) and Bernoulli frame loss (lossy WiFi path). A zero
  // delay / zero loss value removes the override.
  void set_edge_delay(ProcessId src, ProcessId dst, Duration extra);
  void set_edge_loss(ProcessId src, ProcessId dst, double loss_prob);
  void clear_edge_overrides();

  // --- Byzantine interposer (chaos engine) ---------------------------
  // Consulted once per frame, after the source-liveness check and before
  // the frame touches the air. The hook may rewrite the message in place
  // (payload mutation at a compromised host) and returns how many copies
  // to transmit: 0 eats the frame (traced as a "byzantine" drop), 1
  // passes it through, 2 forwards a duplicate. The chaos injector is the
  // only installer, so fault injection stays in one place.
  using Interposer = std::function<int(Message&)>;
  void set_interposer(Interposer fn) { interposer_ = std::move(fn); }

  // Number of processes currently up (drives the congestion term).
  int up_count() const { return up_count_; }

  const WifiModel& model() const { return model_; }
  metrics::Registry& metrics() { return *metrics_; }

  // Total frames currently in flight (for tests).
  std::size_t in_flight() const { return in_flight_; }

  // Serialize the network's fault/liveness state for a checkpoint: the
  // registered processes (registration order == dense index order, which
  // is deterministic), liveness and partition groups, every directed-edge
  // override matrix, and the per-pair FIFO clamps. Frames in the air are
  // sim timer closures; the kernel checkpoint attests them as (id, t,
  // seq) triples and in_flight_ is attested here as a count.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // While tracking is on, every frame put on the air is also remembered
  // as (timer id, Message) so clone_state can serialize frames still in
  // flight with their full contents and timer identity. Off by default:
  // the normal per-frame path stays allocation- and bookkeeping-free.
  void set_clone_tracking(bool on);
  // Full-state serialization for the clone path: liveness, partition
  // groups, override matrices, FIFO clamps, and every in-flight frame.
  // Requires clone tracking to have been on since the last quiescent
  // point (asserted: tracked live frames must equal in_flight_).
  void clone_state(BinaryWriter& w) const;
  // Restore into a freshly built network whose processes were registered
  // in the same deterministic order (asserted); in-flight frames are
  // re-created via Simulation::schedule_restored with their original
  // (id, t, seq) identity.
  void restore_clone(BinaryReader& r);

 private:
  class Endpoint;

  struct Proc {
    ProcessId pid{};
    std::unique_ptr<Endpoint> ep;
    bool up{false};
    // Matches the old map semantics: process_up() is false until either
    // endpoint() registers the process (initially up) or set_process_up()
    // states it explicitly.
    bool up_set{false};
    int group{0};  // 0 = unmentioned by the current partition
  };

  struct TypeCounters {
    metrics::Counter* msgs{nullptr};
    metrics::Counter* bytes{nullptr};
  };

  // Dense index of p, registering it on first sight (matrices grow).
  int ensure_index(ProcessId p);
  // Dense index of p, or -1 if p was never seen.
  int index_of(ProcessId p) const {
    return p.value < pid_to_idx_.size() ? pid_to_idx_[p.value] : -1;
  }
  std::size_t edge(int s, int d) const {
    return static_cast<std::size_t>(s) * procs_.size() +
           static_cast<std::size_t>(d);
  }

  void send_frame(Message msg);
  void transmit(Message msg);
  // Delivery-time half of transmit: liveness/reachability re-check plus
  // endpoint dispatch. Shared by the live path and restored frames.
  void complete_delivery(const Message& msg);
  void track_frame(sim::TimerId id, Message msg);
  Duration frame_delay(std::size_t bytes);

  sim::Simulation* sim_;
  metrics::Registry* metrics_;
  WifiModel model_;

  std::vector<std::int16_t> pid_to_idx_;  // ProcessId.value -> dense index
  std::vector<Proc> procs_;
  int up_count_{0};
  bool partitioned_{false};

  // n×n matrices indexed by edge(src_idx, dst_idx); absent override = 0.
  std::vector<std::uint8_t> edge_down_;
  std::vector<std::int64_t> edge_delay_us_;
  std::vector<double> edge_loss_;
  std::vector<std::int64_t> last_delivery_us_;  // per-pair FIFO clamp

  TypeCounters type_counters_[16];
  std::size_t in_flight_{0};
  Interposer interposer_;

  // Clone tracking (set_clone_tracking): frames on the air with their
  // timer ids. Entries whose timer already fired are pruned lazily.
  struct TrackedFrame {
    sim::TimerId timer;
    Message msg;
  };
  bool clone_tracking_{false};
  std::vector<TrackedFrame> tracked_;
};

}  // namespace riv::net
