#include "net/sim_network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::net {
namespace {

// "type=<msg type> src=pN dst=pM" — the canonical frame detail shared by
// send/recv/drop records.
std::string frame_detail(const Message& msg) {
  std::string out = "type=";
  out += to_string(msg.type);
  out += " src=" + riv::to_string(msg.src);
  out += " dst=" + riv::to_string(msg.dst);
  return out;
}

void trace_frame(const sim::Simulation& sim, trace::Kind kind,
                 const Message& msg, const char* reason = nullptr) {
  if (!trace::active(trace::Component::kNet)) return;
  std::string detail = frame_detail(msg);
  if (reason != nullptr) detail += std::string(" reason=") + reason;
  // Attribute sends to the source, receptions/drops to the destination.
  ProcessId owner = kind == trace::Kind::kSend ? msg.src : msg.dst;
  trace::emit(sim.now(), owner, trace::Component::kNet, kind,
              std::move(detail));
}

}  // namespace

class SimNetwork::Endpoint : public Transport {
 public:
  Endpoint(SimNetwork& net, ProcessId id) : net_(&net), id_(id) {}

  ProcessId local() const override { return id_; }

  void send(ProcessId dst, MsgType type,
            std::vector<std::byte> payload) override {
    Message msg;
    msg.src = id_;
    msg.dst = dst;
    msg.type = type;
    msg.payload = std::move(payload);
    net_->send_frame(std::move(msg));
  }

  void set_handler(Handler handler) override { handler_ = std::move(handler); }

  void deliver(const Message& msg) {
    if (handler_) handler_(msg);
  }

 private:
  SimNetwork* net_;
  ProcessId id_;
  Handler handler_;
};

SimNetwork::SimNetwork(sim::Simulation& sim, metrics::Registry& metrics,
                       WifiModel model)
    : sim_(&sim), metrics_(&metrics), model_(model) {}

SimNetwork::~SimNetwork() = default;

Transport& SimNetwork::endpoint(ProcessId p) {
  auto it = endpoints_.find(p);
  if (it == endpoints_.end()) {
    it = endpoints_.emplace(p, std::make_unique<Endpoint>(*this, p)).first;
    up_.emplace(p, true);
  }
  return *it->second;
}

void SimNetwork::set_process_up(ProcessId p, bool up) {
  up_[p] = up;
  if (trace::active(trace::Component::kNet)) {
    trace::emit(sim_->now(), p, trace::Component::kNet, trace::Kind::kLink,
                std::string("process up=") + (up ? "1" : "0"));
  }
}

bool SimNetwork::process_up(ProcessId p) const {
  auto it = up_.find(p);
  return it != up_.end() && it->second;
}

void SimNetwork::set_partition(const std::vector<std::set<ProcessId>>& groups) {
  partition_group_.clear();
  partitioned_ = true;
  int g = 1;
  for (const auto& group : groups) {
    for (ProcessId p : group) partition_group_[p] = g;
    ++g;
  }
  if (trace::active(trace::Component::kNet)) {
    std::string detail = "partition";
    for (const auto& group : groups) {
      detail += " [";
      bool first = true;
      for (ProcessId p : group) {
        if (!first) detail += "+";
        detail += riv::to_string(p);
        first = false;
      }
      detail += "]";
    }
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink, std::move(detail));
  }
}

void SimNetwork::heal_partition() {
  partition_group_.clear();
  partitioned_ = false;
  trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
              trace::Kind::kLink, "heal_partition");
}

bool SimNetwork::connected(ProcessId a, ProcessId b) const {
  if (a == b) return true;
  if (!partitioned_) return true;
  auto ia = partition_group_.find(a);
  auto ib = partition_group_.find(b);
  // Unmentioned processes are singleton groups: only reachable from
  // themselves while the partition lasts.
  if (ia == partition_group_.end() || ib == partition_group_.end())
    return false;
  return ia->second == ib->second;
}

void SimNetwork::set_reachable(ProcessId src, ProcessId dst, bool up) {
  if (up)
    edge_down_.erase({src, dst});
  else
    edge_down_.insert({src, dst});
  if (trace::active(trace::Component::kNet)) {
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink,
                std::string("reachable src=") + riv::to_string(src) +
                    " dst=" + riv::to_string(dst) +
                    " up=" + (up ? "1" : "0"));
  }
}

void SimNetwork::clear_reachable_overrides() {
  edge_down_.clear();
  trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
              trace::Kind::kLink, "clear_reachable_overrides");
}

bool SimNetwork::reachable(ProcessId src, ProcessId dst) const {
  if (src == dst) return true;
  if (!connected(src, dst)) return false;
  return edge_down_.count({src, dst}) == 0;
}

void SimNetwork::set_edge_delay(ProcessId src, ProcessId dst,
                                Duration extra) {
  if (extra.us <= 0)
    edge_delay_.erase({src, dst});
  else
    edge_delay_[{src, dst}] = extra;
  if (trace::active(trace::Component::kNet)) {
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink,
                std::string("edge_delay src=") + riv::to_string(src) +
                    " dst=" + riv::to_string(dst) +
                    " extra_us=" + std::to_string(extra.us));
  }
}

void SimNetwork::set_edge_loss(ProcessId src, ProcessId dst,
                               double loss_prob) {
  if (loss_prob <= 0.0)
    edge_loss_.erase({src, dst});
  else
    edge_loss_[{src, dst}] = loss_prob;
  if (trace::active(trace::Component::kNet)) {
    // Report loss as an integer permille so the detail string never
    // depends on float formatting.
    auto permille = static_cast<std::int64_t>(loss_prob * 1000.0 + 0.5);
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink,
                std::string("edge_loss src=") + riv::to_string(src) +
                    " dst=" + riv::to_string(dst) +
                    " permille=" + std::to_string(permille));
  }
}

void SimNetwork::clear_edge_overrides() {
  edge_delay_.clear();
  edge_loss_.clear();
  trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
              trace::Kind::kLink, "clear_edge_overrides");
}

int SimNetwork::up_count() const {
  int n = 0;
  for (const auto& [p, up] : up_)
    if (up) ++n;
  return n;
}

Duration SimNetwork::frame_delay(std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  double us = static_cast<double>(model_.base_latency.us);
  us += b / model_.bandwidth_bytes_per_us;
  us += b * model_.cpu_us_per_byte;
  int extra_procs = std::max(0, up_count() - 2);
  us += static_cast<double>(model_.congestion_per_process.us) * extra_procs;
  us *= 1.0 + sim_->rng().uniform(0.0, model_.jitter_frac);
  return Duration{static_cast<std::int64_t>(us)};
}

void SimNetwork::send_frame(Message msg) {
  if (!process_up(msg.src)) return;  // a dead process sends nothing
  if (!reachable(msg.src, msg.dst)) {  // TCP reset: frame lost
    trace_frame(*sim_, trace::Kind::kDrop, msg, "unreachable");
    return;
  }
  if (!edge_loss_.empty()) {
    auto lit = edge_loss_.find({msg.src, msg.dst});
    if (lit != edge_loss_.end() && sim_->rng().bernoulli(lit->second)) {
      trace_frame(*sim_, trace::Kind::kDrop, msg, "edge_loss");
      return;  // lossy path: frame dropped on the air
    }
  }
  trace_frame(*sim_, trace::Kind::kSend, msg);

  const char* type_name = to_string(msg.type);
  metrics_->counter(std::string("net.msgs.") + type_name).add(1);
  metrics_->counter(std::string("net.bytes.") + type_name)
      .add(msg.wire_size());

  TimePoint deliver_at = sim_->now() + frame_delay(msg.wire_size());
  if (!edge_delay_.empty()) {
    auto dit = edge_delay_.find({msg.src, msg.dst});
    if (dit != edge_delay_.end()) deliver_at = deliver_at + dit->second;
  }
  // Enforce per-pair FIFO: a later frame never overtakes an earlier one.
  auto key = std::make_pair(msg.src, msg.dst);
  auto it = last_delivery_.find(key);
  if (it != last_delivery_.end() && deliver_at < it->second)
    deliver_at = it->second;
  last_delivery_[key] = deliver_at;

  ++in_flight_;
  sim_->schedule_at(deliver_at, [this, msg = std::move(msg)]() {
    --in_flight_;
    // Re-check at delivery time: a crash or partition that happened while
    // the frame was in flight loses it.
    if (!process_up(msg.dst) || !process_up(msg.src) ||
        !reachable(msg.src, msg.dst)) {
      trace_frame(*sim_, trace::Kind::kDrop, msg, "in_flight");
      return;
    }
    auto it = endpoints_.find(msg.dst);
    if (it == endpoints_.end()) return;
    trace_frame(*sim_, trace::Kind::kRecv, msg);
    it->second->deliver(msg);
  });
}

}  // namespace riv::net
