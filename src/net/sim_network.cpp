#include "net/sim_network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::net {
namespace {

// "type=<msg type> src=pN dst=pM [reason=R]" — the canonical frame fields
// shared by send/recv/drop records, packed with no string building.
void trace_frame(const sim::Simulation& sim, trace::Kind kind,
                 const Message& msg, const char* reason = nullptr) {
  if (!trace::active(trace::Component::kNet)) return;
  using trace::Key;
  // Attribute sends to the source, receptions/drops to the destination.
  ProcessId owner = kind == trace::Kind::kSend ? msg.src : msg.dst;
  if (reason != nullptr) {
    trace::emit(sim.now(), owner, trace::Component::kNet, kind,
                trace::fs(Key::kType, to_string(msg.type)),
                trace::fp(Key::kSrc, msg.src), trace::fp(Key::kDst, msg.dst),
                trace::fs(Key::kReason, reason));
  } else {
    trace::emit(sim.now(), owner, trace::Component::kNet, kind,
                trace::fs(Key::kType, to_string(msg.type)),
                trace::fp(Key::kSrc, msg.src), trace::fp(Key::kDst, msg.dst));
  }
}

}  // namespace

class SimNetwork::Endpoint : public Transport {
 public:
  Endpoint(SimNetwork& net, ProcessId id) : net_(&net), id_(id) {}

  ProcessId local() const override { return id_; }

  void send(ProcessId dst, MsgType type, Payload payload) override {
    Message msg;
    msg.src = id_;
    msg.dst = dst;
    msg.type = type;
    msg.payload = std::move(payload);
    net_->send_frame(std::move(msg));
  }

  void set_handler(Handler handler) override { handler_ = std::move(handler); }

  void deliver(const Message& msg) {
    if (handler_) handler_(msg);
  }

 private:
  SimNetwork* net_;
  ProcessId id_;
  Handler handler_;
};

SimNetwork::SimNetwork(sim::Simulation& sim, metrics::Registry& metrics,
                       WifiModel model)
    : sim_(&sim), metrics_(&metrics), model_(model) {}

SimNetwork::~SimNetwork() = default;

int SimNetwork::ensure_index(ProcessId p) {
  if (p.value >= pid_to_idx_.size())
    pid_to_idx_.resize(p.value + 1, std::int16_t{-1});
  if (pid_to_idx_[p.value] >= 0) return pid_to_idx_[p.value];

  std::size_t old_n = procs_.size();
  std::size_t n = old_n + 1;
  pid_to_idx_[p.value] = static_cast<std::int16_t>(old_n);
  procs_.emplace_back();
  procs_.back().pid = p;

  // Grow the n×n edge matrices in place (row-major re-pack; registration
  // is rare and n is home-deployment-sized, so simplicity wins).
  auto regrow = [&](auto& m, auto zero) {
    std::decay_t<decltype(m)> fresh(n * n, zero);
    for (std::size_t s = 0; s < old_n; ++s)
      for (std::size_t d = 0; d < old_n; ++d)
        fresh[s * n + d] = m[s * old_n + d];
    m = std::move(fresh);
  };
  regrow(edge_down_, std::uint8_t{0});
  regrow(edge_delay_us_, std::int64_t{0});
  regrow(edge_loss_, 0.0);
  regrow(last_delivery_us_, std::int64_t{0});
  return static_cast<int>(old_n);
}

Transport& SimNetwork::endpoint(ProcessId p) {
  int i = ensure_index(p);
  Proc& proc = procs_[i];
  if (!proc.ep) {
    proc.ep = std::make_unique<Endpoint>(*this, p);
    if (!proc.up_set) {
      proc.up = true;
      proc.up_set = true;
      ++up_count_;
    }
  }
  return *proc.ep;
}

void SimNetwork::set_process_up(ProcessId p, bool up) {
  Proc& proc = procs_[ensure_index(p)];
  if (proc.up != up) up_count_ += up ? 1 : -1;
  proc.up = up;
  proc.up_set = true;
  if (trace::active(trace::Component::kNet)) {
    trace::emit(sim_->now(), p, trace::Component::kNet, trace::Kind::kLink,
                trace::fs(trace::Key::kText, "process"),
                trace::fu(trace::Key::kUp, up ? 1 : 0));
  }
}

bool SimNetwork::process_up(ProcessId p) const {
  int i = index_of(p);
  return i >= 0 && procs_[i].up;
}

void SimNetwork::set_partition(const std::vector<std::set<ProcessId>>& groups) {
  for (Proc& proc : procs_) proc.group = 0;
  partitioned_ = true;
  int g = 1;
  for (const auto& group : groups) {
    for (ProcessId p : group) procs_[ensure_index(p)].group = g;
    ++g;
  }
  if (trace::active(trace::Component::kNet)) {
    std::string detail = "partition";
    for (const auto& group : groups) {
      detail += " [";
      bool first = true;
      for (ProcessId p : group) {
        if (!first) detail += "+";
        detail += riv::to_string(p);
        first = false;
      }
      detail += "]";
    }
    trace::emit_text(sim_->now(), ProcessId{0}, trace::Component::kNet,
                     trace::Kind::kLink, detail);
  }
}

void SimNetwork::heal_partition() {
  for (Proc& proc : procs_) proc.group = 0;
  partitioned_ = false;
  trace::emit_text(sim_->now(), ProcessId{0}, trace::Component::kNet,
                   trace::Kind::kLink, "heal_partition");
}

bool SimNetwork::connected(ProcessId a, ProcessId b) const {
  if (a == b) return true;
  if (!partitioned_) return true;
  int ia = index_of(a);
  int ib = index_of(b);
  // Unmentioned processes are singleton groups: only reachable from
  // themselves while the partition lasts.
  if (ia < 0 || ib < 0) return false;
  int ga = procs_[ia].group;
  int gb = procs_[ib].group;
  return ga != 0 && ga == gb;
}

void SimNetwork::set_reachable(ProcessId src, ProcessId dst, bool up) {
  int s = ensure_index(src);
  int d = ensure_index(dst);
  edge_down_[edge(s, d)] = up ? 0 : 1;
  if (trace::active(trace::Component::kNet)) {
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink, trace::fs(trace::Key::kText, "reachable"),
                trace::fp(trace::Key::kSrc, src),
                trace::fp(trace::Key::kDst, dst),
                trace::fu(trace::Key::kUp, up ? 1 : 0));
  }
}

void SimNetwork::clear_reachable_overrides() {
  std::fill(edge_down_.begin(), edge_down_.end(), std::uint8_t{0});
  trace::emit_text(sim_->now(), ProcessId{0}, trace::Component::kNet,
                   trace::Kind::kLink, "clear_reachable_overrides");
}

bool SimNetwork::reachable(ProcessId src, ProcessId dst) const {
  if (src == dst) return true;
  if (!connected(src, dst)) return false;
  int s = index_of(src);
  int d = index_of(dst);
  if (s < 0 || d < 0) return true;  // no override can exist for them
  return edge_down_[edge(s, d)] == 0;
}

void SimNetwork::set_edge_delay(ProcessId src, ProcessId dst,
                                Duration extra) {
  int s = ensure_index(src);
  int d = ensure_index(dst);
  edge_delay_us_[edge(s, d)] = extra.us <= 0 ? 0 : extra.us;
  if (trace::active(trace::Component::kNet)) {
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink, trace::fs(trace::Key::kText, "edge_delay"),
                trace::fp(trace::Key::kSrc, src),
                trace::fp(trace::Key::kDst, dst),
                trace::fi(trace::Key::kExtraUs, extra.us));
  }
}

void SimNetwork::set_edge_loss(ProcessId src, ProcessId dst,
                               double loss_prob) {
  int s = ensure_index(src);
  int d = ensure_index(dst);
  edge_loss_[edge(s, d)] = loss_prob <= 0.0 ? 0.0 : loss_prob;
  if (trace::active(trace::Component::kNet)) {
    // Report loss as an integer permille so the detail string never
    // depends on float formatting.
    auto permille = static_cast<std::int64_t>(loss_prob * 1000.0 + 0.5);
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kNet,
                trace::Kind::kLink, trace::fs(trace::Key::kText, "edge_loss"),
                trace::fp(trace::Key::kSrc, src),
                trace::fp(trace::Key::kDst, dst),
                trace::fi(trace::Key::kPermille, permille));
  }
}

void SimNetwork::clear_edge_overrides() {
  std::fill(edge_delay_us_.begin(), edge_delay_us_.end(), std::int64_t{0});
  std::fill(edge_loss_.begin(), edge_loss_.end(), 0.0);
  trace::emit_text(sim_->now(), ProcessId{0}, trace::Component::kNet,
                   trace::Kind::kLink, "clear_edge_overrides");
}

Duration SimNetwork::frame_delay(std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  double us = static_cast<double>(model_.base_latency.us);
  us += b / model_.bandwidth_bytes_per_us;
  us += b * model_.cpu_us_per_byte;
  int extra_procs = std::max(0, up_count_ - 2);
  us += static_cast<double>(model_.congestion_per_process.us) * extra_procs;
  us *= 1.0 + sim_->rng().uniform(0.0, model_.jitter_frac);
  return Duration{static_cast<std::int64_t>(us)};
}

void SimNetwork::send_frame(Message msg) {
  int s = index_of(msg.src);  // senders are registered (they have an endpoint)
  if (s < 0 || !procs_[s].up) return;  // a dead process sends nothing
  if (interposer_) {
    // Byzantine hook: a compromised host may mutate the frame in place,
    // eat it, or forward extra copies — all before the air sees it.
    int copies = interposer_(msg);
    if (copies <= 0) {
      trace_frame(*sim_, trace::Kind::kDrop, msg, "byzantine");
      return;
    }
    for (int i = 1; i < copies; ++i) transmit(msg);
  }
  transmit(std::move(msg));
}

void SimNetwork::transmit(Message msg) {
  int s = index_of(msg.src);
  if (!reachable(msg.src, msg.dst)) {  // TCP reset: frame lost
    trace_frame(*sim_, trace::Kind::kDrop, msg, "unreachable");
    return;
  }
  int d = ensure_index(msg.dst);
  std::size_t e = edge(s, d);
  if (double loss = edge_loss_[e];
      loss > 0.0 && sim_->rng().bernoulli(loss)) {
    trace_frame(*sim_, trace::Kind::kDrop, msg, "edge_loss");
    return;  // lossy path: frame dropped on the air
  }
  trace_frame(*sim_, trace::Kind::kSend, msg);

  TypeCounters& tc = type_counters_[static_cast<std::size_t>(msg.type) & 15];
  if (tc.msgs == nullptr) {
    const char* type_name = to_string(msg.type);
    tc.msgs = &metrics_->counter(std::string("net.msgs.") + type_name);
    tc.bytes = &metrics_->counter(std::string("net.bytes.") + type_name);
  }
  tc.msgs->add(1);
  tc.bytes->add(msg.wire_size());

  TimePoint deliver_at = sim_->now() + frame_delay(msg.wire_size());
  deliver_at = deliver_at + Duration{edge_delay_us_[e]};
  // Enforce per-pair FIFO: a later frame never overtakes an earlier one.
  if (deliver_at.us < last_delivery_us_[e]) deliver_at.us = last_delivery_us_[e];
  last_delivery_us_[e] = deliver_at.us;

  ++in_flight_;
  if (clone_tracking_) {
    // Message copies share the payload buffer, so keeping one for the
    // tracked list is a refcount bump, not a byte copy.
    sim::TimerId tid = sim_->schedule_at(deliver_at, [this, msg]() {
      --in_flight_;
      complete_delivery(msg);
    });
    track_frame(tid, std::move(msg));
  } else {
    sim_->schedule_at(deliver_at, [this, msg = std::move(msg)]() {
      --in_flight_;
      complete_delivery(msg);
    });
  }
}

void SimNetwork::complete_delivery(const Message& msg) {
  // Re-check at delivery time: a crash or partition that happened while
  // the frame was in flight loses it.
  if (!process_up(msg.dst) || !process_up(msg.src) ||
      !reachable(msg.src, msg.dst)) {
    trace_frame(*sim_, trace::Kind::kDrop, msg, "in_flight");
    return;
  }
  Endpoint* ep = procs_[index_of(msg.dst)].ep.get();
  if (ep == nullptr) return;
  trace_frame(*sim_, trace::Kind::kRecv, msg);
  ep->deliver(msg);
}

void SimNetwork::set_clone_tracking(bool on) {
  clone_tracking_ = on;
  if (!on) {
    tracked_.clear();
    tracked_.shrink_to_fit();
  }
}

void SimNetwork::track_frame(sim::TimerId id, Message msg) {
  // Lazy prune: once the list doubles past the live frame count, drop
  // entries whose timer already fired, keeping the list O(in-flight).
  if (tracked_.size() >= 64 && tracked_.size() >= in_flight_ * 2) {
    TimePoint t;
    std::uint64_t seq;
    std::erase_if(tracked_, [&](const TrackedFrame& f) {
      return !sim_->timer_info(f.timer, &t, &seq);
    });
  }
  tracked_.push_back({id, std::move(msg)});
}

void SimNetwork::checkpoint_state(BinaryWriter& w) const {
  const std::size_t n = procs_.size();
  w.u64(n);
  for (const Proc& p : procs_) {
    w.process_id(p.pid);
    w.u8(p.up ? 1 : 0);
    w.u8(p.up_set ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(p.group));
  }
  w.u32(static_cast<std::uint32_t>(up_count_));
  w.u8(partitioned_ ? 1 : 0);
  w.u64(in_flight_);
  for (std::size_t e = 0; e < n * n; ++e) w.u8(edge_down_[e]);
  for (std::size_t e = 0; e < n * n; ++e) w.i64(edge_delay_us_[e]);
  for (std::size_t e = 0; e < n * n; ++e) w.f64(edge_loss_[e]);
  for (std::size_t e = 0; e < n * n; ++e) w.i64(last_delivery_us_[e]);
}

void SimNetwork::clone_state(BinaryWriter& w) const {
  const std::size_t n = procs_.size();
  w.u64(n);
  for (const Proc& p : procs_) {
    w.process_id(p.pid);
    w.u8(p.ep ? 1 : 0);
    w.u8(p.up ? 1 : 0);
    w.u8(p.up_set ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(p.group));
  }
  w.u8(partitioned_ ? 1 : 0);
  for (std::size_t e = 0; e < n * n; ++e) w.u8(edge_down_[e]);
  for (std::size_t e = 0; e < n * n; ++e) w.i64(edge_delay_us_[e]);
  for (std::size_t e = 0; e < n * n; ++e) w.f64(edge_loss_[e]);
  for (std::size_t e = 0; e < n * n; ++e) w.i64(last_delivery_us_[e]);

  // In-flight frames: every tracked entry whose timer is still pending.
  RIV_ASSERT(clone_tracking_, "clone_state requires clone tracking");
  std::size_t live = 0;
  TimePoint t;
  std::uint64_t seq;
  for (const TrackedFrame& f : tracked_)
    if (sim_->timer_info(f.timer, &t, &seq)) ++live;
  RIV_ASSERT(live == in_flight_,
             "clone tracking must cover every in-flight frame");
  w.u64(live);
  for (const TrackedFrame& f : tracked_) {
    if (!sim_->timer_info(f.timer, &t, &seq)) continue;
    w.u64(f.timer);
    w.time_point(t);
    w.u64(seq);
    w.process_id(f.msg.src);
    w.process_id(f.msg.dst);
    w.u8(static_cast<std::uint8_t>(f.msg.type));
    w.bytes(f.msg.payload);
  }
}

void SimNetwork::restore_clone(BinaryReader& r) {
  const std::size_t n = r.u64();
  RIV_ASSERT(n == procs_.size(),
             "clone restore: process count mismatch (different scenario?)");
  up_count_ = 0;
  for (Proc& p : procs_) {
    ProcessId pid = r.process_id();
    RIV_ASSERT(pid == p.pid, "clone restore: process registration order "
                             "diverged from the captured deployment");
    bool had_ep = r.u8() != 0;
    RIV_ASSERT(had_ep == (p.ep != nullptr),
               "clone restore: endpoint presence mismatch");
    p.up = r.u8() != 0;
    p.up_set = r.u8() != 0;
    p.group = static_cast<int>(r.u32());
    if (p.up) ++up_count_;
  }
  partitioned_ = r.u8() != 0;
  for (std::size_t e = 0; e < n * n; ++e) edge_down_[e] = r.u8();
  for (std::size_t e = 0; e < n * n; ++e) edge_delay_us_[e] = r.i64();
  for (std::size_t e = 0; e < n * n; ++e) edge_loss_[e] = r.f64();
  for (std::size_t e = 0; e < n * n; ++e) last_delivery_us_[e] = r.i64();

  const std::uint64_t frames = r.u64();
  for (std::uint64_t i = 0; i < frames; ++i) {
    sim::TimerId id = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    Message msg;
    msg.src = r.process_id();
    msg.dst = r.process_id();
    msg.type = static_cast<MsgType>(r.u8());
    msg.payload = r.bytes();
    ++in_flight_;
    sim_->schedule_restored(id, t, seq, [this, msg]() {
      --in_flight_;
      complete_delivery(msg);
    });
    if (clone_tracking_) track_frame(id, std::move(msg));
  }
}

}  // namespace riv::net
