// Shared immutable payload buffer.
//
// A frame's payload is encoded once and then fanned out: reliable
// broadcast sends the identical bytes to every peer, command fan-out to
// every actuator-bearing process, and each in-flight frame holds the
// bytes until delivery. Payload makes those copies reference bumps: the
// byte vector is built once, frozen behind a shared_ptr-to-const, and
// every Message/deferred-delivery closure shares it. Decoders are
// untouched — Payload converts implicitly to const std::vector<std::byte>&
// so BinaryReader and the wire codecs read it like the plain vector the
// transport used to carry.
//
// The refcount is std::shared_ptr's (atomic), so independent simulations
// in a parallel seed sweep can each churn payloads on their own thread;
// the buffers themselves are immutable after construction.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace riv::net {

class Payload {
 public:
  Payload() = default;

  // Implicit on purpose: `send(dst, type, writer.take())` freezes the
  // encoded bytes into a shareable buffer at the call site.
  Payload(std::vector<std::byte> bytes)  // NOLINT(google-explicit-constructor)
      : buf_(bytes.empty()
                 ? nullptr
                 : std::make_shared<const std::vector<std::byte>>(
                       std::move(bytes))) {}

  const std::vector<std::byte>& bytes() const {
    return buf_ ? *buf_ : empty_buffer();
  }
  // Implicit view so decode sites (`BinaryReader r(msg.payload)`) are
  // source-compatible with the old by-value vector member.
  operator const std::vector<std::byte>&() const {  // NOLINT
    return bytes();
  }

  std::size_t size() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return size() == 0; }

 private:
  static const std::vector<std::byte>& empty_buffer() {
    static const std::vector<std::byte> kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const std::vector<std::byte>> buf_;
};

}  // namespace riv::net
