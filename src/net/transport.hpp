// Transport abstraction.
//
// Protocol code (membership, delivery, execution) sends and receives
// Messages through this interface only. The paper's prototype backs it
// with Netty TCP channels; this repository backs it with net::SimNetwork.
// Guarantees expected by the protocols (§3.1): reliable in-order delivery
// per (src, dst) pair while both ends are up and connected; messages may
// be silently lost across crashes and network partitions (TCP connection
// reset), which the protocols tolerate via keep-alives and sync.
#pragma once

#include <functional>

#include "net/message.hpp"

namespace riv::net {

class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  virtual ProcessId local() const = 0;

  // Fire-and-forget send. Never blocks; delivery is asynchronous. The
  // payload converts implicitly from std::vector<std::byte>; broadcast
  // loops should build one Payload and pass it to every send so the
  // targets share the buffer.
  virtual void send(ProcessId dst, MsgType type, Payload payload) = 0;

  // Install the receive callback. Passing an empty handler detaches the
  // endpoint (used when a process crashes).
  virtual void set_handler(Handler handler) = 0;
};

}  // namespace riv::net
