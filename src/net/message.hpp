// Inter-process message framing.
//
// Every process-to-process payload travels in a Message frame. The frame
// header models the custom serialization of the Java prototype (§7):
//   type (1 B) | src (2 B) | dst (2 B) | payload length (4 B)
// i.e. kHeaderBytes = 9 per frame, charged by the transport's byte
// accounting on top of the payload.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "net/payload.hpp"

namespace riv::net {

enum class MsgType : std::uint8_t {
  kKeepAlive = 1,     // membership heartbeat (view + processed watermarks)
  kRingEvent = 2,     // Gapless ring protocol (e:S:V)
  kRbEvent = 3,       // reliable-broadcast flooding of an event
  kGapForward = 4,    // Gap chain forward of an event
  kSyncRequest = 5,   // new-successor sync: ask for high-water timestamps
  kSyncResponse = 6,  // reply with per-sensor high-water timestamps
  kCommand = 7,       // actuation command forwarded to an active actuator peer
  kPromote = 8,       // logic-node promotion notification (§5)
  kDemote = 9,        // logic-node demotion notification (§5)
  kCommandAck = 10,   // actuator-bearing peer confirms a Gapless command
  kStorePut = 11,     // replicated-store single-entry update (extension)
  kStoreSync = 12,    // replicated-store anti-entropy batch (extension)
};

inline const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kKeepAlive: return "keepalive";
    case MsgType::kRingEvent: return "ring_event";
    case MsgType::kRbEvent: return "rb_event";
    case MsgType::kGapForward: return "gap_forward";
    case MsgType::kSyncRequest: return "sync_request";
    case MsgType::kSyncResponse: return "sync_response";
    case MsgType::kCommand: return "command";
    case MsgType::kPromote: return "promote";
    case MsgType::kDemote: return "demote";
    case MsgType::kCommandAck: return "command_ack";
    case MsgType::kStorePut: return "store_put";
    case MsgType::kStoreSync: return "store_sync";
  }
  return "unknown";
}

inline constexpr std::size_t kHeaderBytes = 9;

struct Message {
  ProcessId src{};
  ProcessId dst{};
  MsgType type{};
  // Shared immutable buffer: copying a Message (e.g. per broadcast target
  // or into an in-flight delivery closure) bumps a refcount instead of
  // deep-copying the bytes.
  Payload payload;

  std::size_t wire_size() const { return kHeaderBytes + payload.size(); }
};

}  // namespace riv::net
