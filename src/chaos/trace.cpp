#include "chaos/trace.hpp"

#include "common/hash.hpp"

namespace riv::chaos {

void TraceRecorder::record(TimePoint at, const std::string& line) {
  lines_.push_back("t=" + std::to_string(at.us) + "us " + line);
}

void TraceRecorder::record(const std::string& line) {
  lines_.push_back(line);
}

std::uint64_t TraceRecorder::hash() const {
  std::uint64_t h = hash::kFnvOffsetBasis;
  for (const std::string& line : lines_) {
    h = hash::fnv1a(h, line.data(), line.size());
    h = hash::fnv1a_byte(h, '\n');
  }
  return h;
}

std::string TraceRecorder::digest() const { return hash::fnv1a_digest(hash()); }

}  // namespace riv::chaos
