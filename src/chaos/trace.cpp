#include "chaos/trace.hpp"

namespace riv::chaos {

void TraceRecorder::record(TimePoint at, const std::string& line) {
  lines_.push_back("t=" + std::to_string(at.us) + "us " + line);
}

void TraceRecorder::record(const std::string& line) {
  lines_.push_back(line);
}

std::uint64_t TraceRecorder::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  auto mix = [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  };
  for (const std::string& line : lines_) {
    for (char c : line) mix(c);
    mix('\n');
  }
  return h;
}

std::string TraceRecorder::digest() const {
  static const char* hex = "0123456789abcdef";
  std::uint64_t h = hash();
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace riv::chaos
