#include "chaos/engine.hpp"

#include <algorithm>
#include <optional>

#include "chaos/injector.hpp"
#include "common/assert.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv::chaos {

// Declaration order is teardown order in reverse and is load-bearing:
// the deployment (and the checker/injector that reference it) must tear
// down while the flight Scope is still installed, so the shutdown records
// their destructors emit land in the flight trace exactly as they did
// when ChaosEngine::run() was monolithic.
struct ChaosSession::Impl {
  EngineOptions options;
  bool byzantine{false};
  bool defense{false};
  PlanOptions plan_opt;
  TimePoint end{};
  std::shared_ptr<riv::trace::Recorder> flight;
  std::optional<riv::trace::Scope> flight_scope;
  TraceRecorder trace;
  std::optional<workload::HomeDeployment> home;
  std::optional<InvariantChecker> checker;
  std::optional<FaultInjector> injector;
};

ChaosSession::ChaosSession(EngineOptions options,
                           std::vector<std::unique_ptr<Invariant>> extra)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.options = std::move(options);
  const ScenarioOptions& sc = im.options.scenario;
  RIV_ASSERT(sc.n_processes >= 1, "scenario needs at least one process");

  // Install the flight recorder (if requested) before any simulation
  // object exists, so construction-time activity is captured too.
  if (im.options.flight) {
    im.flight =
        std::make_shared<riv::trace::Recorder>(im.options.flight_mask);
    if (im.options.flight_ring_bytes > 0)
      im.flight->set_ring_limit(im.options.flight_ring_bytes);
    if (!im.options.flight_stream_path.empty()) {
      std::string err;
      RIV_ASSERT(im.flight->stream_to(im.options.flight_stream_path, &err),
                 ("flight stream: " + err).c_str());
    }
    im.flight_scope.emplace(*im.flight);
  }

  // --- the standard home -------------------------------------------------
  // Any Byzantine plan category arms the attacker model (signing sensors,
  // ground-truth markers); the defense toggle decides whether receivers
  // actually verify. The deployment key is a pure function of the seed so
  // sealed traffic — like everything else — replays bit-for-bit.
  im.byzantine = im.options.plan.spoof_events ||
                 im.options.plan.replay_events ||
                 im.options.plan.corrupt_process;
  im.defense = im.byzantine && im.options.byzantine_defense;
  const std::uint64_t integrity_key =
      sc.seed * 0x2545f4914f6cdd1dULL ^ 0x452821e638d01377ULL;

  workload::HomeDeployment::Options home_opt;
  home_opt.seed = sc.seed;
  home_opt.n_processes = sc.n_processes;
  if (im.defense) {
    home_opt.config.integrity = true;
    home_opt.config.integrity_key = integrity_key;
  }
  im.home.emplace(home_opt);
  workload::HomeDeployment& home = *im.home;

  devices::SensorSpec spec;
  spec.id = kChaosSensor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = sc.rate_hz;
  std::vector<ProcessId> linked;
  for (int i = 0; i < sc.receivers && i < sc.n_processes; ++i)
    linked.push_back(home.pid(i));
  devices::LinkParams link;
  link.loss_prob = sc.device_link_loss;
  devices::Sensor& door = home.add_sensor(spec, linked, link);
  if (im.byzantine) door.enable_integrity(integrity_key);

  devices::ActuatorSpec light;
  light.id = kChaosActuator;
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home.add_actuator(light, {home.pid(0)});
  home.deploy(workload::apps::turn_light_on_off(
      kChaosApp, kChaosSensor, kChaosActuator, sc.guarantee));

  // --- the fault plan -----------------------------------------------------
  im.plan_opt = im.options.plan;
  im.plan_opt.n_processes = sc.n_processes;
  im.plan_opt.devices = {kChaosSensor};
  im.plan_opt.device_links.clear();
  for (ProcessId p : linked)
    im.plan_opt.device_links.emplace_back(kChaosSensor, p);
  // A quiescence window must cover ring-wide anti-entropy propagation
  // ((n-1) sync periods) plus failure-detection and a safety margin, or
  // the converged checks would run before convergence is promised.
  Duration min_quiesce = core::Config{}.sync_period * (sc.n_processes - 1) +
                         seconds(6);
  im.plan_opt.quiesce_len = std::max(im.plan_opt.quiesce_len, min_quiesce);

  // --- checker + injector -------------------------------------------------
  im.checker.emplace(home, kChaosApp, kChaosSensor);
  im.checker->add(std::make_unique<SingleActiveLogic>());
  im.checker->add(std::make_unique<NoDuplicateDelivery>());
  if (sc.guarantee == appmodel::Guarantee::kGapless) {
    im.checker->add(std::make_unique<LogSetConvergence>());
    im.checker->add(std::make_unique<GaplessPostIngest>());
  }
  if (im.byzantine) {
    im.checker->add(std::make_unique<NoForgedActuation>());
    if (im.defense) im.checker->add(std::make_unique<NoOriginSeqRegression>());
  }
  for (auto& inv : extra) im.checker->add(std::move(inv));
  extra.clear();

  im.injector.emplace(home, im.trace);
  im.injector->set_integrity_armed(im.defense);
  im.end = home.sim().now() + im.plan_opt.horizon + seconds(1);
  if (!im.options.defer_plan) arm_plan(sc.seed);

  // --- start --------------------------------------------------------------
  if (im.options.metrics_period.us > 0)
    home.enable_metric_snapshots(im.options.metrics_period);
  home.start();
  im.checker->start(im.options.check_interval);
}

ChaosSession::~ChaosSession() = default;

workload::HomeDeployment& ChaosSession::home() { return *impl_->home; }

TimePoint ChaosSession::run_end() const { return impl_->end; }

void ChaosSession::run_to(TimePoint t) {
  if (t > impl_->home->sim().now()) impl_->home->run_until(t);
}

void ChaosSession::arm_plan(std::uint64_t plan_seed, Duration offset) {
  Impl& im = *impl_;
  const ScenarioOptions& sc = im.options.scenario;
  FaultPlan plan = generate_plan(plan_seed, im.plan_opt);
  im.trace.record("chaos seed=" + std::to_string(plan_seed) +
                  " guarantee=" + appmodel::to_string(sc.guarantee) +
                  " procs=" + std::to_string(sc.n_processes) +
                  " receivers=" + std::to_string(sc.receivers) +
                  " horizon=" + std::to_string(im.plan_opt.horizon.us) + "us");
  InvariantChecker* checker = &*im.checker;
  im.injector->arm(
      plan,
      [checker](TimePoint window_start) {
        checker->check_converged(window_start, /*final_check=*/false);
      },
      offset);
  im.end = im.home->sim().now() + im.plan_opt.horizon + seconds(1);
}

void ChaosSession::finish(ChaosResult& result) {
  Impl& im = *impl_;
  workload::HomeDeployment& home = *im.home;

  result.quiesced = home.drain_to_quiescence();
  if (!result.quiesced)
    im.trace.record(home.sim().now(), "drain did NOT quiesce");
  im.checker->check_converged(home.sim().now(), /*final_check=*/true);

  // --- summarize ----------------------------------------------------------
  result.violations = im.checker->violations();
  result.faults_injected = im.injector->injected();
  result.faults_noop = im.injector->noops();
  result.byzantine_attacks = im.injector->attacks();
  if (im.byzantine) {
    // Folded into the determinism hash like the main summary, so a hash
    // match also certifies "same attacks were performed and survived".
    im.trace.record(home.sim().now(),
                    std::string("byzantine attacks=") +
                        std::to_string(im.injector->attacks()) +
                        " defense=" + (im.defense ? "on" : "off"));
  }
  result.delivered = home.metrics().counter_value(
      "app" + std::to_string(kChaosApp.value) + ".delivered");
  result.emitted = home.bus().sensor(kChaosSensor).events_emitted();
  for (ProcessId p : home.processes()) {
    result.ingested = std::max(
        result.ingested,
        home.metrics().counter_value(
            "ingest.p" + std::to_string(p.value) + ".s" +
            std::to_string(kChaosSensor.value)));
  }
  // The summary folds observable end-state into the determinism hash, so
  // a hash match certifies not just "same faults" but "same outcome".
  std::string logs;
  for (ProcessId p : home.processes()) {
    core::EventLog* log = home.process(p).event_log(kChaosApp);
    logs += " " + to_string(p) + "=" +
            std::to_string(log ? log->size(kChaosSensor) : 0);
  }
  im.trace.record(home.sim().now(),
                  "summary emitted=" + std::to_string(result.emitted) +
                      " ingested=" + std::to_string(result.ingested) +
                      " delivered=" + std::to_string(result.delivered) +
                      " logs:" + logs);

  if (im.options.metrics_period.us > 0)
    result.metrics_csv = home.metric_snapshots().to_csv();

  result.sim_events = home.sim().events_fired();

  // Deployment teardown emits nothing into the fault-trace recorder, so
  // reading it here (before ~ChaosSession) matches the monolithic run.
  result.trace = im.trace.lines();
  result.trace_hash = im.trace.hash();
  result.trace_digest = im.trace.digest();
}

std::shared_ptr<riv::trace::Recorder> ChaosSession::flight() const {
  return impl_->flight;
}

const TraceRecorder& ChaosSession::fault_trace() const { return impl_->trace; }

void ChaosSession::checkpoint_state(BinaryWriter& w) const {
  impl_->injector->checkpoint_state(w);
}

ChaosEngine::ChaosEngine(EngineOptions options)
    : options_(std::move(options)) {}

ChaosEngine::~ChaosEngine() = default;

void ChaosEngine::add_invariant(std::unique_ptr<Invariant> invariant) {
  extra_.push_back(std::move(invariant));
}

ChaosResult ChaosEngine::run() {
  ChaosResult result;
  std::shared_ptr<riv::trace::Recorder> flight;
  {
    ChaosSession session(options_, std::move(extra_));
    extra_.clear();
    session.run_to(session.run_end());
    session.finish(result);
    flight = session.flight();
  }  // deployment teardown — shutdown records land in the flight trace
  if (flight != nullptr && flight->streaming()) {
    std::string err;
    RIV_ASSERT(flight->finish(&err), ("flight stream: " + err).c_str());
  }
  result.flight = std::move(flight);
  return result;
}

}  // namespace riv::chaos
