#include "chaos/engine.hpp"

#include <algorithm>
#include <optional>

#include "chaos/injector.hpp"
#include "common/assert.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv::chaos {

ChaosEngine::ChaosEngine(EngineOptions options)
    : options_(std::move(options)) {}

ChaosEngine::~ChaosEngine() = default;

void ChaosEngine::add_invariant(std::unique_ptr<Invariant> invariant) {
  extra_.push_back(std::move(invariant));
}

ChaosResult ChaosEngine::run() {
  const ScenarioOptions& sc = options_.scenario;
  RIV_ASSERT(sc.n_processes >= 1, "scenario needs at least one process");

  // Install the flight recorder (if requested) before any simulation
  // object exists, so construction-time activity is captured too. The
  // Scope lasts the whole run and the recorder outlives it via the shared
  // pointer handed back in the result.
  std::shared_ptr<riv::trace::Recorder> flight;
  std::optional<riv::trace::Scope> flight_scope;
  if (options_.flight) {
    flight =
        std::make_shared<riv::trace::Recorder>(options_.flight_mask);
    if (options_.flight_ring_bytes > 0)
      flight->set_ring_limit(options_.flight_ring_bytes);
    if (!options_.flight_stream_path.empty()) {
      std::string err;
      RIV_ASSERT(flight->stream_to(options_.flight_stream_path, &err),
                 ("flight stream: " + err).c_str());
    }
    flight_scope.emplace(*flight);
  }

  ChaosResult result;
  TraceRecorder trace;

  // Inner scope: the deployment (and the checker/injector that reference
  // it) must tear down *before* a streaming flight sink is finished, so
  // the shutdown records their destructors emit reach the file and the
  // streamed trace stays byte-identical to an in-memory save.
  {
  // --- the standard home -------------------------------------------------
  // Any Byzantine plan category arms the attacker model (signing sensors,
  // ground-truth markers); the defense toggle decides whether receivers
  // actually verify. The deployment key is a pure function of the seed so
  // sealed traffic — like everything else — replays bit-for-bit.
  const bool byzantine = options_.plan.spoof_events ||
                         options_.plan.replay_events ||
                         options_.plan.corrupt_process;
  const bool defense = byzantine && options_.byzantine_defense;
  const std::uint64_t integrity_key =
      sc.seed * 0x2545f4914f6cdd1dULL ^ 0x452821e638d01377ULL;

  workload::HomeDeployment::Options home_opt;
  home_opt.seed = sc.seed;
  home_opt.n_processes = sc.n_processes;
  if (defense) {
    home_opt.config.integrity = true;
    home_opt.config.integrity_key = integrity_key;
  }
  workload::HomeDeployment home(home_opt);

  devices::SensorSpec spec;
  spec.id = kChaosSensor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = sc.rate_hz;
  std::vector<ProcessId> linked;
  for (int i = 0; i < sc.receivers && i < sc.n_processes; ++i)
    linked.push_back(home.pid(i));
  devices::LinkParams link;
  link.loss_prob = sc.device_link_loss;
  devices::Sensor& door = home.add_sensor(spec, linked, link);
  if (byzantine) door.enable_integrity(integrity_key);

  devices::ActuatorSpec light;
  light.id = kChaosActuator;
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home.add_actuator(light, {home.pid(0)});
  home.deploy(workload::apps::turn_light_on_off(
      kChaosApp, kChaosSensor, kChaosActuator, sc.guarantee));

  // --- the fault plan -----------------------------------------------------
  PlanOptions plan_opt = options_.plan;
  plan_opt.n_processes = sc.n_processes;
  plan_opt.devices = {kChaosSensor};
  plan_opt.device_links.clear();
  for (ProcessId p : linked) plan_opt.device_links.emplace_back(kChaosSensor, p);
  // A quiescence window must cover ring-wide anti-entropy propagation
  // ((n-1) sync periods) plus failure-detection and a safety margin, or
  // the converged checks would run before convergence is promised.
  Duration min_quiesce = core::Config{}.sync_period * (sc.n_processes - 1) +
                         seconds(6);
  plan_opt.quiesce_len = std::max(plan_opt.quiesce_len, min_quiesce);
  FaultPlan plan = generate_plan(sc.seed, plan_opt);

  // --- checker + injector -------------------------------------------------
  trace.record("chaos seed=" + std::to_string(sc.seed) +
               " guarantee=" + appmodel::to_string(sc.guarantee) +
               " procs=" + std::to_string(sc.n_processes) +
               " receivers=" + std::to_string(sc.receivers) +
               " horizon=" + std::to_string(plan_opt.horizon.us) + "us");

  InvariantChecker checker(home, kChaosApp, kChaosSensor);
  checker.add(std::make_unique<SingleActiveLogic>());
  checker.add(std::make_unique<NoDuplicateDelivery>());
  if (sc.guarantee == appmodel::Guarantee::kGapless) {
    checker.add(std::make_unique<LogSetConvergence>());
    checker.add(std::make_unique<GaplessPostIngest>());
  }
  if (byzantine) {
    checker.add(std::make_unique<NoForgedActuation>());
    if (defense) checker.add(std::make_unique<NoOriginSeqRegression>());
  }
  for (auto& inv : extra_) checker.add(std::move(inv));
  extra_.clear();

  FaultInjector injector(home, trace);
  injector.set_integrity_armed(defense);
  injector.arm(plan, [&checker](TimePoint window_start) {
    checker.check_converged(window_start, /*final_check=*/false);
  });

  // --- run ----------------------------------------------------------------
  if (options_.metrics_period.us > 0)
    home.enable_metric_snapshots(options_.metrics_period);
  home.start();
  checker.start(options_.check_interval);
  home.run_for(plan_opt.horizon + seconds(1));

  result.quiesced = home.drain_to_quiescence();
  if (!result.quiesced)
    trace.record(home.sim().now(), "drain did NOT quiesce");
  checker.check_converged(home.sim().now(), /*final_check=*/true);

  // --- summarize ----------------------------------------------------------
  result.violations = checker.violations();
  result.faults_injected = injector.injected();
  result.faults_noop = injector.noops();
  result.byzantine_attacks = injector.attacks();
  if (byzantine) {
    // Folded into the determinism hash like the main summary, so a hash
    // match also certifies "same attacks were performed and survived".
    trace.record(home.sim().now(),
                 std::string("byzantine attacks=") +
                     std::to_string(injector.attacks()) +
                     " defense=" + (defense ? "on" : "off"));
  }
  result.delivered = home.metrics().counter_value(
      "app" + std::to_string(kChaosApp.value) + ".delivered");
  result.emitted = home.bus().sensor(kChaosSensor).events_emitted();
  for (ProcessId p : home.processes()) {
    result.ingested = std::max(
        result.ingested,
        home.metrics().counter_value(
            "ingest.p" + std::to_string(p.value) + ".s" +
            std::to_string(kChaosSensor.value)));
  }
  // The summary folds observable end-state into the determinism hash, so
  // a hash match certifies not just "same faults" but "same outcome".
  std::string logs;
  for (ProcessId p : home.processes()) {
    core::EventLog* log = home.process(p).event_log(kChaosApp);
    logs += " " + to_string(p) + "=" +
            std::to_string(log ? log->size(kChaosSensor) : 0);
  }
  trace.record(home.sim().now(),
               "summary emitted=" + std::to_string(result.emitted) +
                   " ingested=" + std::to_string(result.ingested) +
                   " delivered=" + std::to_string(result.delivered) +
                   " logs:" + logs);

  if (options_.metrics_period.us > 0)
    result.metrics_csv = home.metric_snapshots().to_csv();

  result.sim_events = home.sim().events_fired();
  }  // deployment teardown — shutdown records land in the flight trace

  result.trace = trace.lines();
  result.trace_hash = trace.hash();
  result.trace_digest = trace.digest();
  if (flight != nullptr && flight->streaming()) {
    std::string err;
    RIV_ASSERT(flight->finish(&err), ("flight stream: " + err).c_str());
  }
  result.flight = std::move(flight);
  return result;
}

}  // namespace riv::chaos
