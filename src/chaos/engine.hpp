// ChaosEngine: one seed in, one verdict out.
//
// Ties the pieces together for the standard chaos scenario (the door→light
// app of the paper's running example on an n-process home): builds the
// deployment, derives a FaultPlan from the seed, arms the injector,
// registers the invariants the deployed guarantee promises, runs the
// schedule with continuous checking, drains to quiescence, and runs the
// exact final checks. The result carries every violation (timestamped),
// the full fault trace, and the trace's determinism hash.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "appmodel/graph.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/trace.hpp"
#include "trace/trace.hpp"

namespace riv {
class BinaryWriter;
namespace workload {
class HomeDeployment;
}
}  // namespace riv

namespace riv::chaos {

struct ScenarioOptions {
  std::uint64_t seed{1};
  appmodel::Guarantee guarantee{appmodel::Guarantee::kGapless};
  int n_processes{4};
  int receivers{2};             // processes with a link to the sensor
  double device_link_loss{0.1};  // baseline loss on each sensor link
  double rate_hz{10.0};
};

struct EngineOptions {
  ScenarioOptions scenario;
  // Plan knobs; n_processes / devices / device_links are filled in from
  // the scenario. quiesce_len is raised to cover ring-wide anti-entropy
  // propagation ((n-1) sync periods) so converged checks cannot fire
  // before convergence is even possible.
  PlanOptions plan;
  Duration check_interval{milliseconds(500)};
  // When set, the run records a full flight-recorder trace (src/trace)
  // covering the components in flight_mask; the recorder lands in
  // ChaosResult::flight and can be saved as a replayable .rivtrace
  // artifact (tools/chaos_run --trace).
  bool flight{false};
  std::uint32_t flight_mask{riv::trace::kAllComponents};
  // Ring sink: keep only the most recent ~N bytes of packed flight
  // records (chaos_run --trace-ring). 0 = unbounded in-memory arena.
  std::size_t flight_ring_bytes{0};
  // Streaming sink: when non-empty, packed chunks are flushed to this
  // file as they fill (bounded memory); the engine finalises the footer
  // at the end of the run. ChaosResult::flight then holds only the
  // recorder's rolling hash, not the records themselves.
  std::string flight_stream_path;
  // When positive, per-process + shared counter snapshots are captured
  // every `metrics_period` of virtual time and the timeline lands in
  // ChaosResult::metrics_csv (tools/chaos_run --metrics).
  Duration metrics_period{};
  // When any Byzantine plan category is enabled the engine arms the
  // tamper-evidence layer (device MACs + sealed frames + receiver
  // verification) unless this is cleared — tests clear it to demonstrate
  // what an undefended home does with the same attacks. Sensors sign
  // their emissions whenever Byzantine chaos is on, so the attacker model
  // is identical in both modes; only the verification differs.
  bool byzantine_defense{true};
  // Fork-per-seed sweeps: build the deployment but generate/arm NO fault
  // plan. The caller warms the home up, then calls
  // ChaosSession::arm_plan(seed, offset) — typically once per forked
  // child — so many divergent fault schedules share one warm-up prefix.
  bool defer_plan{false};
};

struct ChaosResult {
  std::vector<Violation> violations;
  std::vector<std::string> trace;
  std::uint64_t trace_hash{0};
  std::string trace_digest;
  // Flight-recorder trace (only when EngineOptions::flight was set).
  std::shared_ptr<riv::trace::Recorder> flight;
  // Snapshot-timeline CSV (only when EngineOptions::metrics_period set).
  std::string metrics_csv;
  bool quiesced{false};
  std::size_t faults_injected{0};
  // Plan actions that landed on already-satisfied state ("(noop)").
  std::size_t faults_noop{0};
  // Byzantine attacks actually performed (spoof/replay injections and
  // interposer mutate/dup/drop events); 0 unless a Byzantine category ran.
  std::size_t byzantine_attacks{0};
  std::uint64_t delivered{0};
  std::uint64_t ingested{0};
  std::uint64_t emitted{0};
  // Discrete events the sim kernel dispatched over the whole run
  // (bench_kernel's throughput numerator).
  std::uint64_t sim_events{0};

  bool ok() const { return violations.empty() && quiesced; }
};

class ChaosEngine {
 public:
  explicit ChaosEngine(EngineOptions options);
  ~ChaosEngine();

  // Register an extra invariant before run() (tests use this to prove the
  // violation→repro pipeline fires).
  void add_invariant(std::unique_ptr<Invariant> invariant);

  // Execute the full schedule. Call once per engine instance.
  ChaosResult run();

 private:
  EngineOptions options_;
  std::vector<std::unique_ptr<Invariant>> extra_;
};

// One chaos run, held open. Construction builds the deployment, arms the
// seed's fault plan (unless EngineOptions::defer_plan), and starts the
// home + checker — exactly the prefix ChaosEngine::run() always executed.
// The caller then advances virtual time in chunks (run_to), may capture a
// checkpoint between chunks, and calls finish() for the drain + final
// converged checks + summary. ChaosEngine::run() is now a thin wrapper
// over one session, and a chunked session produces a trace byte-identical
// to the monolithic run it replaced (test_checkpoint pins this).
class ChaosSession {
 public:
  explicit ChaosSession(EngineOptions options,
                        std::vector<std::unique_ptr<Invariant>> extra = {});
  ~ChaosSession();
  ChaosSession(const ChaosSession&) = delete;
  ChaosSession& operator=(const ChaosSession&) = delete;

  // The deployment under test (checkpoint capture reads it).
  workload::HomeDeployment& home();

  // Virtual end of the scheduled run: plan horizon + 1s of settle time,
  // measured from the moment the plan was armed.
  TimePoint run_end() const;

  // Advance virtual time to `t` (no-op if `t` is already past).
  void run_to(TimePoint t);

  // Drain to quiescence, run the final converged checks, and fill every
  // ChaosResult field except `flight` — the engine attaches the flight
  // recorder only after teardown so shutdown records reach a streaming
  // sink first. Call once, after the last run_to.
  void finish(ChaosResult& result);

  // defer_plan mode: generate the plan for `plan_seed` and arm it with
  // every action shifted by `offset`. Fork-per-seed sweeps call this once
  // per forked child after a shared fault-free warm-up, so divergent
  // schedules reuse one warm prefix.
  void arm_plan(std::uint64_t plan_seed, Duration offset = {});

  // The flight recorder (null unless EngineOptions::flight was set).
  std::shared_ptr<riv::trace::Recorder> flight() const;

  // The human-readable fault trace accumulated so far.
  const TraceRecorder& fault_trace() const;

  // Serialize the injector's fault-plan cursors — the "chaos.injector"
  // checkpoint section.
  void checkpoint_state(BinaryWriter& w) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The scenario's fixed identifiers (shared with tests).
inline constexpr AppId kChaosApp{1};
inline constexpr SensorId kChaosSensor{1};
inline constexpr ActuatorId kChaosActuator{1};

}  // namespace riv::chaos
