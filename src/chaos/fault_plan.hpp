// Seeded fault plans: a deterministic, timed schedule of fault actions.
//
// A FaultPlan is derived from a single 64-bit seed plus static options; the
// same (seed, options) pair always yields the same plan, action for action.
// This is the contract that makes every chaos failure a one-line repro:
// the plan — not ad-hoc test code — is the only source of faults, and the
// plan is a pure function of its seed.
//
// The generator maintains a model of home state (which processes are down,
// which directed edges are severed, which devices are crashed) so plans
// are well-formed by construction:
//   * at least one process is always up (§3.1: invariants are stated for
//     executions with at least one correct process);
//   * recover/heal actions pair with the crash/sever that caused them;
//   * periodic partial-quiescence windows heal everything and give the
//     protocols time to converge, so converged-state invariants can be
//     checked *during* the run, not only at the end.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace riv::chaos {

enum class FaultKind : std::uint8_t {
  kCrashProcess,    // a: victim
  kRecoverProcess,  // a: process to revive
  kPartition,       // group: side A; everyone else forms side B
  kHealPartition,
  kEdgeDown,        // directed a->b severed (asymmetric partition)
  kEdgeUp,          // directed a->b restored
  kEdgeDelay,       // directed a->b: extra one-way delay `dur`
  kEdgeDelayClear,
  kEdgeLoss,        // directed a->b: Bernoulli frame loss `value`
  kEdgeLossClear,
  kDeviceLinkLoss,  // sensor->b link loss set to `value`; value < 0
                    // restores the pre-chaos baseline
  kDeviceCrash,     // sensor crashed (emits nothing, ignores polls)
  kDeviceRecover,
  kQuiesceBegin,    // heal everything; convergence window opens
  kQuiesceEnd,      // convergence window closes; converged checks fire
  kSpoofEvent,      // inject a sensor event with forged origin/seq at b
  kReplayEvent,     // re-deliver a previously emitted event to b
  kCorruptBegin,    // a: process starts duplicating/dropping/mutating
                    // the event frames it forwards
  kCorruptEnd,      // a: process behaves correctly again
};

const char* to_string(FaultKind kind);

struct FaultAction {
  TimePoint at{};
  FaultKind kind{};
  ProcessId a{};                 // victim / edge source
  ProcessId b{};                 // edge destination / device link process
  SensorId sensor{};             // device actions
  double value{0.0};             // loss probability / spoofed reading
  Duration dur{};                // delay-spike size / informational hold
  std::uint32_t seq{0};          // spoofed sequence / replay pick
  std::vector<ProcessId> group;  // kPartition: members of side A
};

// Canonical one-line rendering (used for traces; part of the determinism
// hash, so keep it stable).
std::string to_string(const FaultAction& action);

struct PlanOptions {
  Duration horizon{seconds(60)};        // chaos stops at this virtual time
  Duration mean_gap{milliseconds(1200)};  // mean spacing between faults
  Duration quiesce_every{seconds(22)};  // convergence window cadence
  Duration quiesce_len{seconds(16)};    // convergence window length
  Duration max_fault_hold{seconds(7)};  // how long a severed edge / delay
                                        // spike / crashed device lasts

  int n_processes{4};
  // Device links eligible for link-loss ramps (sensor, receiving process).
  std::vector<std::pair<SensorId, ProcessId>> device_links;
  // Devices eligible for crash/recover chaos.
  std::vector<SensorId> devices;

  // Fault-category toggles.
  bool crashes{true};
  bool partitions{true};
  bool asym_partitions{true};
  bool delay_spikes{true};
  bool edge_loss{true};
  bool device_link_loss{true};
  bool device_crashes{true};
  // Byzantine categories: off by default so existing (seed, options)
  // pairs keep generating byte-identical plans. Enabling any of these
  // also arms the tamper-evidence layer in the engine.
  bool spoof_events{false};
  bool replay_events{false};
  bool corrupt_process{false};

  double max_edge_loss{0.8};
  double max_device_link_loss{0.7};
  Duration max_delay_spike{milliseconds(400)};
};

struct FaultPlan {
  std::uint64_t seed{0};
  PlanOptions options;
  std::vector<FaultAction> actions;  // sorted by `at`, ties in emit order
};

// Pure function of (seed, options); see file comment for the guarantees.
FaultPlan generate_plan(std::uint64_t seed, PlanOptions options);

}  // namespace riv::chaos
