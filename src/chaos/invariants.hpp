// Continuous invariant checking over a chaos run.
//
// The paper states its guarantees as run-long invariants; the checker
// turns each into executable form and evaluates it repeatedly at virtual-
// time intervals — not just once at the end — so a transient violation
// (e.g. a Gap stream double-delivering during a view split) is caught at
// the instant it happens, timestamped, and attributable to the fault
// trace around it.
//
// Two check phases:
//   * continuous — safety properties that must hold at EVERY instant, no
//     matter the fault state (Gap's no-over-delivery, §4.2);
//   * converged  — properties the protocols only promise after faults
//     heal and views converge (single active logic node §5, log-set
//     convergence and post-ingest delivery §4.1). These run at the end of
//     each partial-quiescence window, with a cutoff timestamp bounding
//     which events must already have converged, and once more — exactly,
//     with no cutoff — after the final drain.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/trace.hpp"
#include "workload/deployment.hpp"

namespace riv::chaos {

struct Violation {
  std::string invariant;
  TimePoint at{};
  std::string detail;
};

std::string to_string(const Violation& v);

struct CheckContext {
  workload::HomeDeployment* home{nullptr};
  AppId app{};
  SensorId sensor{};
  // Converged checks: events emitted at or before this instant must have
  // reached converged state. Continuous checks ignore it.
  TimePoint cutoff{};
  // True for the post-drain check: the home is fault-free and fully
  // drained, so convergence must be exact with no cutoff allowance.
  bool final_check{false};
};

class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual const char* name() const = 0;
  // Continuous invariants run at every check interval; the rest only at
  // quiescence-window ends and the final drained check.
  virtual bool continuous() const = 0;
  virtual void check(const CheckContext& ctx,
                     std::vector<Violation>& out) const = 0;
};

// §4.2 "no duplicates to the app": no single logic-instance epoch is ever
// fed the same event twice. Stated per instance, not per home — under an
// asymmetric partition two logic nodes can be legitimately (transiently)
// active at once, so a home-wide delivered-vs-emitted comparison would
// flag correct behaviour. The runtime charges intra-instance duplicates
// to the "<app>.dup_instance_delivery" counter; this invariant requires
// it to stay zero, continuously, for both guarantees (Gap dedup window,
// Gapless log-exact dedup + replay only into a fresh instance).
class NoDuplicateDelivery : public Invariant {
 public:
  const char* name() const override { return "no-duplicate-delivery"; }
  bool continuous() const override { return true; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;

 private:
  // The metric is cumulative; report each duplicate once, not per tick.
  mutable std::uint64_t reported_{0};
};

// Home-wide delivered ≤ emitted. Sound ONLY under fault plans that never
// split views (crash/recover-only): with a single active logic node at all
// times, total deliveries cannot exceed emissions. Kept for the
// crash-only property suites; the default engine set uses
// NoDuplicateDelivery instead.
class NoOverDelivery : public Invariant {
 public:
  const char* name() const override { return "gap-no-over-delivery"; }
  bool continuous() const override { return true; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;
};

// §5: after views converge, exactly one logic node is active per app.
class SingleActiveLogic : public Invariant {
 public:
  const char* name() const override { return "single-active-logic"; }
  bool continuous() const override { return false; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;
};

// §4.1: all live processes converge to the same event-log set. With a
// cutoff, only events emitted at or before the cutoff are required to
// have fully replicated; the final check requires exact equality.
class LogSetConvergence : public Invariant {
 public:
  const char* name() const override { return "log-set-convergence"; }
  bool continuous() const override { return false; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;
};

// §4.1 Gapless post-ingest guarantee: every event that reached at least
// one process is delivered to an active logic node at least once. Only
// decidable after the final drain (delivery counters are cumulative), so
// it checks nothing until ctx.final_check.
class GaplessPostIngest : public Invariant {
 public:
  const char* name() const override { return "gapless-post-ingest"; }
  bool continuous() const override { return false; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;
};

// DESIGN §12 "no actuation without genuine provenance": every actuation
// whose cause names a known sensor must reference a sequence number that
// sensor actually emitted. A spoofed event that reaches an app turns into
// an actuation with a fabricated provenance seq, which this catches even
// when every lower layer was fooled. Continuous — a forged actuation is a
// violation the instant it happens.
class NoForgedActuation : public Invariant {
 public:
  const char* name() const override { return "no-forged-actuation"; }
  bool continuous() const override { return true; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;

 private:
  // Actuator histories are append-only; remember how far we scanned.
  mutable std::map<ActuatorId, std::size_t> scanned_;
};

// DESIGN §12 "no origin seq regression": with the tamper-evidence layer
// armed, every accepted device ingest adds a previously-unseen sequence
// number to the per-origin history, so per process the ingest counter and
// the history size must track exactly. A replayed (or otherwise repeated)
// seq that slips past the gate makes the counter run ahead — defense in
// depth for any future ingest path that forgets the gate. No-op when the
// integrity layer is off.
class NoOriginSeqRegression : public Invariant {
 public:
  const char* name() const override { return "no-origin-seq-regression"; }
  bool continuous() const override { return true; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override;
};

// Periodically evaluates registered invariants against a deployment and
// accumulates violations (each tagged with its virtual time).
class InvariantChecker {
 public:
  InvariantChecker(workload::HomeDeployment& home, AppId app,
                   SensorId sensor);
  ~InvariantChecker();

  void add(std::unique_ptr<Invariant> invariant);

  // Begin periodic continuous checks every `interval` of virtual time.
  void start(Duration interval);

  // Run all continuous invariants now.
  void check_continuous();
  // Run converged-state invariants (plus the continuous ones) now.
  void check_converged(TimePoint cutoff, bool final_check);

  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t checks_run() const { return checks_run_; }

 private:
  CheckContext context(TimePoint cutoff, bool final_check);

  workload::HomeDeployment* home_;
  AppId app_;
  SensorId sensor_;
  std::vector<std::unique_ptr<Invariant>> invariants_;
  std::vector<Violation> violations_;
  std::size_t checks_run_{0};
  // Lets the periodic timer lambda outlive `this` harmlessly.
  std::shared_ptr<bool> alive_;
  std::function<void()> tick_;
};

}  // namespace riv::chaos
