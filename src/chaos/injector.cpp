#include "chaos/injector.hpp"

#include "trace/trace.hpp"

namespace riv::chaos {

FaultInjector::FaultInjector(workload::HomeDeployment& home,
                             TraceRecorder& trace)
    : home_(&home), trace_(&trace) {}

void FaultInjector::arm(const FaultPlan& plan, QuiesceHook on_quiesce_end) {
  on_quiesce_end_ = std::move(on_quiesce_end);
  for (const FaultAction& action : plan.actions) {
    home_->sim().schedule_at(action.at,
                             [this, action] { apply(action); });
  }
}

void FaultInjector::restore_device_links() {
  for (const auto& [link, base] : base_link_loss_)
    home_->bus().sensor(link.first).set_link_loss(link.second, base);
  base_link_loss_.clear();
}

void FaultInjector::apply(const FaultAction& action) {
  bool applied = true;
  switch (action.kind) {
    case FaultKind::kCrashProcess: {
      core::RivuletProcess& p = home_->process(action.a);
      // Generator invariant: never crashes the last live process. Guard
      // anyway so a hand-written plan cannot violate §3.1's model.
      int live = 0;
      for (ProcessId q : home_->processes())
        live += home_->process(q).up() ? 1 : 0;
      if (p.up() && live > 1)
        p.crash();
      else
        applied = false;
      break;
    }
    case FaultKind::kRecoverProcess: {
      core::RivuletProcess& p = home_->process(action.a);
      if (!p.up())
        p.recover();
      else
        applied = false;
      break;
    }
    case FaultKind::kPartition: {
      std::set<ProcessId> side_a(action.group.begin(), action.group.end());
      std::set<ProcessId> side_b;
      for (ProcessId p : home_->processes()) {
        if (side_a.count(p) == 0) side_b.insert(p);
      }
      home_->net().set_partition({side_a, side_b});
      break;
    }
    case FaultKind::kHealPartition:
      home_->net().heal_partition();
      break;
    case FaultKind::kEdgeDown:
      home_->net().set_reachable(action.a, action.b, false);
      break;
    case FaultKind::kEdgeUp:
      home_->net().set_reachable(action.a, action.b, true);
      break;
    case FaultKind::kEdgeDelay:
      home_->net().set_edge_delay(action.a, action.b, action.dur);
      break;
    case FaultKind::kEdgeDelayClear:
      home_->net().set_edge_delay(action.a, action.b, Duration{});
      break;
    case FaultKind::kEdgeLoss:
      home_->net().set_edge_loss(action.a, action.b, action.value);
      break;
    case FaultKind::kEdgeLossClear:
      home_->net().set_edge_loss(action.a, action.b, 0.0);
      break;
    case FaultKind::kDeviceLinkLoss: {
      devices::Sensor& s = home_->bus().sensor(action.sensor);
      auto key = std::make_pair(action.sensor, action.b);
      if (action.value < 0.0) {
        auto it = base_link_loss_.find(key);
        if (it != base_link_loss_.end()) {
          s.set_link_loss(action.b, it->second);
          base_link_loss_.erase(it);
        } else {
          applied = false;  // restore without a preceding override
        }
      } else {
        base_link_loss_.emplace(key, s.link_loss(action.b));
        s.set_link_loss(action.b, action.value);
      }
      break;
    }
    case FaultKind::kDeviceCrash: {
      devices::Sensor& s = home_->bus().sensor(action.sensor);
      if (!s.crashed())
        s.crash();
      else
        applied = false;
      break;
    }
    case FaultKind::kDeviceRecover: {
      devices::Sensor& s = home_->bus().sensor(action.sensor);
      if (s.crashed())
        s.recover();
      else
        applied = false;
      break;
    }
    case FaultKind::kQuiesceBegin:
      home_->heal_all();
      restore_device_links();
      window_start_ = home_->sim().now();
      break;
    case FaultKind::kQuiesceEnd:
      break;
  }

  ++injected_;
  std::string what = to_string(action);
  if (!applied) what += " (noop)";
  trace_->record(home_->sim().now(), what);
  if (trace::active(trace::Component::kChaos)) {
    // The leading fault id lets trace_analyze blame tail events on a
    // specific injected fault ("fault #7 partition ...").
    trace::emit(home_->sim().now(), ProcessId{0}, trace::Component::kChaos,
                trace::Kind::kFault, trace::fu(trace::Key::kFaultId, injected_),
                trace::fs(trace::Key::kText, what));
  }

  if (action.kind == FaultKind::kQuiesceEnd && on_quiesce_end_)
    on_quiesce_end_(window_start_);
}

}  // namespace riv::chaos
