#include "chaos/injector.hpp"

#include <vector>

#include "trace/trace.hpp"

namespace riv::chaos {

FaultInjector::FaultInjector(workload::HomeDeployment& home,
                             TraceRecorder& trace)
    : home_(&home), trace_(&trace) {}

void FaultInjector::arm(const FaultPlan& plan, QuiesceHook on_quiesce_end,
                        Duration offset) {
  on_quiesce_end_ = std::move(on_quiesce_end);
  // Attack-time randomness is independent of both the plan generator's
  // stream and the simulation's, but still a pure function of the seed.
  byz_rng_ = Rng(plan.seed * 0x2545f4914f6cdd1dULL ^ 0x9e3779b97f4a7c15ULL);
  bool any_corrupt = false;
  for (const FaultAction& action : plan.actions) {
    any_corrupt |= action.kind == FaultKind::kCorruptBegin;
    // Fork-per-seed sweeps arm a plan after a shared warm-up; `offset`
    // shifts the whole schedule so plan times stay relative to arming.
    FaultAction shifted = action;
    shifted.at = shifted.at + offset;
    home_->sim().schedule_at(shifted.at,
                             [this, shifted] { apply(shifted); });
  }
  if (any_corrupt) {
    home_->net().set_interposer(
        [this](net::Message& msg) { return interpose(msg); });
  }
}

void FaultInjector::restore_device_links() {
  for (const auto& [link, base] : base_link_loss_)
    home_->bus().sensor(link.first).set_link_loss(link.second, base);
  base_link_loss_.clear();
}

void FaultInjector::mark_net_attack(const net::Message& msg,
                                    const char* what) {
  ++attacks_;
  if (trace::active(trace::Component::kChaos)) {
    trace::emit(home_->sim().now(), msg.src, trace::Component::kChaos,
                trace::Kind::kByzantine,
                trace::fu(trace::Key::kFaultId, corrupt_fault_id_),
                trace::fs(trace::Key::kText, what),
                trace::fs(trace::Key::kType, net::to_string(msg.type)),
                trace::fp(trace::Key::kSrc, msg.src),
                trace::fp(trace::Key::kDst, msg.dst));
  }
}

int FaultInjector::interpose(net::Message& msg) {
  if (!corrupt_pid_ || msg.src != *corrupt_pid_) return 1;
  switch (msg.type) {
    // Only the event/command plane is attacked: tampered keep-alives would
    // turn the run into a membership experiment instead of an integrity
    // one, and the MAC layer does not cover them (detector limit, §12).
    case net::MsgType::kRingEvent:
    case net::MsgType::kRbEvent:
    case net::MsgType::kGapForward:
    case net::MsgType::kCommand:
      break;
    default:
      return 1;
  }
  const double u = byz_rng_.uniform();
  if (integrity_ && u < 0.15) {
    std::vector<std::byte> bytes = msg.payload.bytes();
    if (!bytes.empty()) {
      const std::size_t idx = byz_rng_.uniform_int(bytes.size());
      const auto flip =
          static_cast<unsigned char>(1 + byz_rng_.uniform_int(255));
      bytes[idx] ^= std::byte{flip};
      msg.payload = std::move(bytes);
      mark_net_attack(msg, "mutate");
    }
    return 1;
  }
  if (u < 0.30) {
    mark_net_attack(msg, "dup");
    return 2;
  }
  if (u < 0.40) {
    mark_net_attack(msg, "drop");
    return 0;
  }
  return 1;
}

void FaultInjector::apply(const FaultAction& action) {
  const std::size_t fault_id = ++seq_;
  bool applied = true;
  switch (action.kind) {
    case FaultKind::kCrashProcess: {
      core::RivuletProcess& p = home_->process(action.a);
      // Generator invariant: never crashes the last live process. Guard
      // anyway so a hand-written plan cannot violate §3.1's model.
      int live = 0;
      for (ProcessId q : home_->processes())
        live += home_->process(q).up() ? 1 : 0;
      if (p.up() && live > 1)
        p.crash();
      else
        applied = false;
      break;
    }
    case FaultKind::kRecoverProcess: {
      core::RivuletProcess& p = home_->process(action.a);
      if (!p.up())
        p.recover();
      else
        applied = false;
      break;
    }
    case FaultKind::kPartition: {
      std::set<ProcessId> side_a(action.group.begin(), action.group.end());
      std::set<ProcessId> side_b;
      for (ProcessId p : home_->processes()) {
        if (side_a.count(p) == 0) side_b.insert(p);
      }
      home_->net().set_partition({side_a, side_b});
      break;
    }
    case FaultKind::kHealPartition:
      home_->net().heal_partition();
      break;
    case FaultKind::kEdgeDown:
      home_->net().set_reachable(action.a, action.b, false);
      break;
    case FaultKind::kEdgeUp:
      home_->net().set_reachable(action.a, action.b, true);
      break;
    case FaultKind::kEdgeDelay:
      home_->net().set_edge_delay(action.a, action.b, action.dur);
      break;
    case FaultKind::kEdgeDelayClear:
      home_->net().set_edge_delay(action.a, action.b, Duration{});
      break;
    case FaultKind::kEdgeLoss:
      home_->net().set_edge_loss(action.a, action.b, action.value);
      break;
    case FaultKind::kEdgeLossClear:
      home_->net().set_edge_loss(action.a, action.b, 0.0);
      break;
    case FaultKind::kDeviceLinkLoss: {
      devices::Sensor& s = home_->bus().sensor(action.sensor);
      auto key = std::make_pair(action.sensor, action.b);
      if (action.value < 0.0) {
        auto it = base_link_loss_.find(key);
        if (it != base_link_loss_.end()) {
          s.set_link_loss(action.b, it->second);
          base_link_loss_.erase(it);
        } else {
          applied = false;  // restore without a preceding override
        }
      } else {
        base_link_loss_.emplace(key, s.link_loss(action.b));
        s.set_link_loss(action.b, action.value);
      }
      break;
    }
    case FaultKind::kDeviceCrash: {
      devices::Sensor& s = home_->bus().sensor(action.sensor);
      if (!s.crashed())
        s.crash();
      else
        applied = false;
      break;
    }
    case FaultKind::kDeviceRecover: {
      devices::Sensor& s = home_->bus().sensor(action.sensor);
      if (s.crashed())
        s.recover();
      else
        applied = false;
      break;
    }
    case FaultKind::kQuiesceBegin:
      home_->heal_all();
      restore_device_links();
      corrupt_pid_.reset();  // a corrupt host behaves during the window
      window_start_ = home_->sim().now();
      break;
    case FaultKind::kQuiesceEnd:
      break;
    case FaultKind::kSpoofEvent: {
      // Forge an event "from" the sensor at the victim's adapter. The seq
      // is far above anything the device will genuinely emit and the MAC
      // is random garbage, so an armed receiver rejects it as a spoof; an
      // unarmed one ingests it like any fresh reading.
      if (!home_->process(action.b).up()) {
        applied = false;
        break;
      }
      const devices::Sensor& s = home_->bus().sensor(action.sensor);
      devices::SensorEvent e;
      e.id = EventId{action.sensor, action.seq};
      e.epoch = 0;
      e.emitted_at = home_->sim().now();
      e.poll_based = false;
      e.value = action.value;
      e.payload_size = s.spec().payload_size;
      e.chain = byz_rng_.next();
      e.mac = byz_rng_.next();
      ++attacks_;
      if (trace::active(trace::Component::kChaos)) {
        trace::emit(home_->sim().now(), action.b, trace::Component::kChaos,
                    trace::Kind::kByzantine, provenance_of(e.id),
                    trace::fu(trace::Key::kFaultId, fault_id),
                    trace::fs(trace::Key::kText, "spoof"),
                    trace::fe(trace::Key::kEvent, e.id),
                    trace::fp(trace::Key::kDst, action.b));
      }
      home_->bus().inject_event(action.b, e);
      break;
    }
    case FaultKind::kReplayEvent: {
      // Re-deliver a genuine past emission to the victim. Only events the
      // victim already ingested are eligible when verification is armed:
      // replaying a frame the victim never saw is indistinguishable from
      // first delivery and outside the detector's claims (DESIGN §12).
      if (!home_->process(action.b).up()) {
        applied = false;
        break;
      }
      const devices::Sensor& s = home_->bus().sensor(action.sensor);
      const core::RivuletProcess& tgt = home_->process(action.b);
      std::vector<const devices::SensorEvent*> eligible;
      for (const devices::SensorEvent& e : s.recent_events()) {
        if (!integrity_ || tgt.device_seq_seen(action.sensor, e.id.seq))
          eligible.push_back(&e);
      }
      if (eligible.empty()) {
        applied = false;
        break;
      }
      const devices::SensorEvent& e =
          *eligible[action.seq % eligible.size()];
      ++attacks_;
      if (trace::active(trace::Component::kChaos)) {
        trace::emit(home_->sim().now(), action.b, trace::Component::kChaos,
                    trace::Kind::kByzantine, provenance_of(e.id),
                    trace::fu(trace::Key::kFaultId, fault_id),
                    trace::fs(trace::Key::kText, "replay"),
                    trace::fe(trace::Key::kEvent, e.id),
                    trace::fp(trace::Key::kDst, action.b));
      }
      home_->bus().inject_event(action.b, e);
      break;
    }
    case FaultKind::kCorruptBegin:
      if (home_->process(action.a).up() && !corrupt_pid_) {
        corrupt_pid_ = action.a;
        corrupt_fault_id_ = fault_id;
      } else {
        applied = false;
      }
      break;
    case FaultKind::kCorruptEnd:
      if (corrupt_pid_ && *corrupt_pid_ == action.a)
        corrupt_pid_.reset();
      else
        applied = false;  // window already closed by a quiesce heal
      break;
  }

  if (applied)
    ++injected_;
  else
    ++noops_;
  std::string what = to_string(action);
  if (!applied) what += " (noop)";
  trace_->record(home_->sim().now(), what);
  if (trace::active(trace::Component::kChaos)) {
    // The leading fault id lets trace_analyze blame tail events on a
    // specific injected fault ("fault #7 partition ...").
    trace::emit(home_->sim().now(), ProcessId{0}, trace::Component::kChaos,
                trace::Kind::kFault, trace::fu(trace::Key::kFaultId, fault_id),
                trace::fs(trace::Key::kText, what));
  }

  if (action.kind == FaultKind::kQuiesceEnd && on_quiesce_end_)
    on_quiesce_end_(window_start_);
}

}  // namespace riv::chaos
