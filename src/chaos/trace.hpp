// Fault-trace recording for the deterministic chaos engine.
//
// Every fault the injector applies is appended here with its virtual
// timestamp; at the end of a run the engine appends a summary line with
// the observable end-state (delivered/emitted counts, log sizes). The
// FNV-1a hash over the whole trace is the run's determinism fingerprint:
// two runs of the same seed must produce byte-identical traces, so a
// hash mismatch proves nondeterminism somewhere in the stack (a container
// iterated in address order, an unseeded random source, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace riv::chaos {

class TraceRecorder {
 public:
  // Append one line, prefixed with the virtual timestamp.
  void record(TimePoint at, const std::string& line);
  // Append a raw line (headers, summaries).
  void record(const std::string& line);

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t size() const { return lines_.size(); }

  // FNV-1a over every line (with a separator), order-sensitive.
  std::uint64_t hash() const;
  // hash() rendered as fixed-width hex, for display and comparison.
  std::string digest() const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace riv::chaos
