// FaultInjector: applies a FaultPlan to a live HomeDeployment.
//
// Every action is scheduled on the deployment's simulation at its planned
// virtual time and recorded in the trace as it is applied (with an `(noop)`
// marker when home state made the action redundant — e.g. an edge-up
// landing inside a quiescence window that already healed the edge). The
// injector is the ONLY component that mutates fault state during a chaos
// run; together with the plan's seed-determinism this makes the recorded
// trace a complete, reproducible account of everything that went wrong.
#pragma once

#include <functional>
#include <map>
#include <utility>

#include "chaos/fault_plan.hpp"
#include "chaos/trace.hpp"
#include "workload/deployment.hpp"

namespace riv::chaos {

class FaultInjector {
 public:
  // `on_quiesce_end(window_start)` fires at each kQuiesceEnd mark, after
  // the home has had a full quiescence window to converge — the hook the
  // invariant checker uses for converged-state checks.
  using QuiesceHook = std::function<void(TimePoint window_start)>;

  FaultInjector(workload::HomeDeployment& home, TraceRecorder& trace);

  // Schedule every action of `plan`. Call once, before or after
  // HomeDeployment::start(), but before running the simulation.
  void arm(const FaultPlan& plan, QuiesceHook on_quiesce_end = {});

  std::size_t injected() const { return injected_; }

 private:
  void apply(const FaultAction& action);
  // Restore every device link touched by a loss ramp to its baseline.
  void restore_device_links();

  workload::HomeDeployment* home_;
  TraceRecorder* trace_;
  QuiesceHook on_quiesce_end_;
  // Baseline loss of device links, snapshotted before the first override.
  std::map<std::pair<SensorId, ProcessId>, double> base_link_loss_;
  TimePoint window_start_{};
  std::size_t injected_{0};
};

}  // namespace riv::chaos
