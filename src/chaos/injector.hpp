// FaultInjector: applies a FaultPlan to a live HomeDeployment.
//
// Every action is scheduled on the deployment's simulation at its planned
// virtual time and recorded in the trace as it is applied (with an `(noop)`
// marker when home state made the action redundant — e.g. an edge-up
// landing inside a quiescence window that already healed the edge). The
// injector is the ONLY component that mutates fault state during a chaos
// run; together with the plan's seed-determinism this makes the recorded
// trace a complete, reproducible account of everything that went wrong.
//
// Byzantine actions (DESIGN.md §12) go through the same funnel: spoofed
// and replayed device events are injected at the victim's adapter, and a
// corrupt-process window installs the SimNetwork interposer so frames the
// compromised host forwards can be mutated, duplicated, or eaten. Every
// attack the injector actually performs emits a ground-truth kByzantine
// trace marker carrying the fault id, which is what trace_analyze --audit
// matches detector evidence against.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "chaos/fault_plan.hpp"
#include "chaos/trace.hpp"
#include "common/rng.hpp"
#include "workload/deployment.hpp"

namespace riv::chaos {

class FaultInjector {
 public:
  // `on_quiesce_end(window_start)` fires at each kQuiesceEnd mark, after
  // the home has had a full quiescence window to converge — the hook the
  // invariant checker uses for converged-state checks.
  using QuiesceHook = std::function<void(TimePoint window_start)>;

  FaultInjector(workload::HomeDeployment& home, TraceRecorder& trace);

  // Tell the injector whether the deployment's tamper-evidence layer is
  // armed. Mutation attacks are only launched when it is: an unverified
  // receiver would feed corrupt bytes to the strict internal decoders,
  // which is outside the simulated threat model (the attacker wants to
  // stay plausible, not to crash the victim). Replay eligibility also
  // widens when verification is off — see apply().
  void set_integrity_armed(bool armed) { integrity_ = armed; }

  // Schedule every action of `plan`, each shifted by `offset` (zero for a
  // normal run; fork-per-seed sweeps arm after a shared warm-up). Call
  // once, before or after HomeDeployment::start(), but before running the
  // simulation past the first shifted action.
  void arm(const FaultPlan& plan, QuiesceHook on_quiesce_end = {},
           Duration offset = {});

  // Actions that changed home state when applied.
  std::size_t injected() const { return injected_; }
  // Actions that landed on already-satisfied state (recorded "(noop)").
  std::size_t noops() const { return noops_; }
  // Byzantine attacks actually performed (spoof/replay injections plus
  // interposer mutate/dup/drop events) — each emitted a kByzantine marker.
  std::size_t attacks() const { return attacks_; }

  // Serialize the injector's plan cursors — action sequence, applied/noop
  // split, attack randomness stream, quiescence window, link-loss
  // baselines, corrupt-window state — for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const {
    w.u64(seq_);
    w.u64(injected_);
    w.u64(noops_);
    w.u64(attacks_);
    w.u8(integrity_ ? 1 : 0);
    for (std::uint64_t word : byz_rng_.state()) w.u64(word);
    w.time_point(window_start_);
    w.u8(corrupt_pid_.has_value() ? 1 : 0);
    if (corrupt_pid_.has_value()) w.process_id(*corrupt_pid_);
    w.u64(corrupt_fault_id_);
    w.u64(base_link_loss_.size());
    for (const auto& [link, loss] : base_link_loss_) {
      w.sensor_id(link.first);
      w.process_id(link.second);
      w.f64(loss);
    }
  }

 private:
  void apply(const FaultAction& action);
  // Restore every device link touched by a loss ramp to its baseline.
  void restore_device_links();
  // SimNetwork hook for the corrupt-process window; returns the number of
  // copies to transmit (0 eats the frame).
  int interpose(net::Message& msg);
  void mark_net_attack(const net::Message& msg, const char* what);

  workload::HomeDeployment* home_;
  TraceRecorder* trace_;
  QuiesceHook on_quiesce_end_;
  // Baseline loss of device links, snapshotted before the first override.
  std::map<std::pair<SensorId, ProcessId>, double> base_link_loss_;
  TimePoint window_start_{};
  // seq_ numbers EVERY action in plan order (applied or noop): it is the
  // fault id attacks and audit attribution reference, and must stay
  // stable across accounting changes. injected_/noops_ split the same
  // total into "changed state" vs "(noop)".
  std::size_t seq_{0};
  std::size_t injected_{0};
  std::size_t noops_{0};
  std::size_t attacks_{0};
  bool integrity_{false};
  // Attack-time randomness (mutation byte picks, interposer rolls); forked
  // deterministically from the plan seed in arm().
  Rng byz_rng_{0};
  std::optional<ProcessId> corrupt_pid_;
  std::size_t corrupt_fault_id_{0};
};

}  // namespace riv::chaos
