#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace riv::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashProcess:   return "crash";
    case FaultKind::kRecoverProcess: return "recover";
    case FaultKind::kPartition:      return "partition";
    case FaultKind::kHealPartition:  return "heal-partition";
    case FaultKind::kEdgeDown:       return "edge-down";
    case FaultKind::kEdgeUp:         return "edge-up";
    case FaultKind::kEdgeDelay:      return "edge-delay";
    case FaultKind::kEdgeDelayClear: return "edge-delay-clear";
    case FaultKind::kEdgeLoss:       return "edge-loss";
    case FaultKind::kEdgeLossClear:  return "edge-loss-clear";
    case FaultKind::kDeviceLinkLoss: return "device-link-loss";
    case FaultKind::kDeviceCrash:    return "device-crash";
    case FaultKind::kDeviceRecover:  return "device-recover";
    case FaultKind::kQuiesceBegin:   return "quiesce-begin";
    case FaultKind::kQuiesceEnd:     return "quiesce-end";
    case FaultKind::kSpoofEvent:     return "spoof-event";
    case FaultKind::kReplayEvent:    return "replay-event";
    case FaultKind::kCorruptBegin:   return "corrupt-begin";
    case FaultKind::kCorruptEnd:     return "corrupt-end";
  }
  return "?";
}

std::string to_string(const FaultAction& action) {
  std::string out = to_string(action.kind);
  switch (action.kind) {
    case FaultKind::kCrashProcess:
    case FaultKind::kRecoverProcess:
      out += " " + to_string(action.a);
      break;
    case FaultKind::kPartition: {
      out += " A={";
      bool first = true;
      for (ProcessId p : action.group) {
        if (!first) out += ",";
        out += to_string(p);
        first = false;
      }
      out += "}";
      break;
    }
    case FaultKind::kHealPartition:
    case FaultKind::kQuiesceBegin:
    case FaultKind::kQuiesceEnd:
      break;
    case FaultKind::kEdgeDown:
    case FaultKind::kEdgeUp:
    case FaultKind::kEdgeDelayClear:
    case FaultKind::kEdgeLossClear:
      out += " " + to_string(action.a) + "->" + to_string(action.b);
      break;
    case FaultKind::kEdgeDelay:
      out += " " + to_string(action.a) + "->" + to_string(action.b) +
             " extra=" + std::to_string(action.dur.us) + "us";
      break;
    case FaultKind::kEdgeLoss:
      out += " " + to_string(action.a) + "->" + to_string(action.b) +
             " p=" + std::to_string(action.value);
      break;
    case FaultKind::kDeviceLinkLoss:
      out += " " + to_string(action.sensor) + "->" + to_string(action.b);
      out += action.value < 0.0 ? std::string(" restore")
                                : " p=" + std::to_string(action.value);
      break;
    case FaultKind::kDeviceCrash:
    case FaultKind::kDeviceRecover:
      out += " " + to_string(action.sensor);
      break;
    case FaultKind::kSpoofEvent:
      out += " " + to_string(action.sensor) + "#" +
             std::to_string(action.seq) + " dst=" + to_string(action.b);
      break;
    case FaultKind::kReplayEvent:
      out += " " + to_string(action.sensor) + " dst=" + to_string(action.b) +
             " idx=" + std::to_string(action.seq);
      break;
    case FaultKind::kCorruptBegin:
    case FaultKind::kCorruptEnd:
      out += " " + to_string(action.a);
      break;
  }
  return out;
}

namespace {

// Fault categories the generator can pick from at one instant.
enum Category {
  kCatCrash,
  kCatRecover,
  kCatPartition,
  kCatAsym,
  kCatDelay,
  kCatLoss,
  kCatDeviceLoss,
  kCatDeviceCrash,
  kCatSpoof,
  kCatReplay,
  kCatCorrupt,
};

}  // namespace

FaultPlan generate_plan(std::uint64_t seed, PlanOptions options) {
  RIV_ASSERT(options.n_processes >= 1, "plan needs at least one process");
  FaultPlan plan;
  plan.seed = seed;
  plan.options = options;

  // Decouple the plan stream from the simulation seed so running the plan
  // does not perturb workload randomness derived from the same seed.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL ^ 0xc5a0d9f4752ad11bULL);

  const int n = options.n_processes;
  auto pid = [](int i) {
    return ProcessId{static_cast<std::uint16_t>(i + 1)};
  };

  // --- generator's model of home state -------------------------------
  std::vector<bool> up(static_cast<std::size_t>(n), true);
  int up_count = n;
  bool partition_active = false;
  // Per-edge / per-device "busy until": while a timed fault (sever, delay
  // spike, loss, device crash) is outstanding on an entity, no new fault
  // of the same kind targets it, so down/up pairs never interleave.
  std::map<std::pair<int, int>, TimePoint> sever_busy, delay_busy, loss_busy;
  std::map<std::pair<SensorId, ProcessId>, TimePoint> dev_link_busy;
  std::map<SensorId, TimePoint> device_busy;
  // At most one compromised process at a time; crashes are suppressed
  // while a corrupt span is open so the victim is never the last correct
  // (up and honest) process.
  int corrupt_idx = -1;
  TimePoint corrupt_until{};
  std::uint32_t spoof_seq = 0;

  auto emit = [&plan](FaultAction a) { plan.actions.push_back(std::move(a)); };
  auto make = [](TimePoint at, FaultKind kind) {
    FaultAction a;
    a.at = at;
    a.kind = kind;
    return a;
  };

  auto rand_duration = [&rng](Duration lo, Duration hi) {
    return Duration{static_cast<std::int64_t>(rng.uniform(
        static_cast<double>(lo.us), static_cast<double>(hi.us)))};
  };
  auto rand_pair = [&]() {
    int a = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(n)));
    int b = static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(n - 1)));
    if (b >= a) ++b;
    return std::make_pair(a, b);
  };

  const TimePoint horizon_end = TimePoint{} + options.horizon;
  TimePoint t{};
  TimePoint next_quiesce = t + options.quiesce_every;
  auto advance = [&] {
    Duration gap{static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(options.mean_gap.us)))};
    t = t + std::max(milliseconds(50), gap);
  };
  advance();

  while (t < horizon_end) {
    // Partial-quiescence window: heal everything, let the home converge,
    // then resume chaos. The injector runs converged-state invariant
    // checks at the kQuiesceEnd mark.
    if (corrupt_idx >= 0 && t >= corrupt_until) corrupt_idx = -1;

    if (options.quiesce_every.us > 0 && t >= next_quiesce) {
      emit(make(t, FaultKind::kQuiesceBegin));
      std::fill(up.begin(), up.end(), true);
      up_count = n;
      partition_active = false;
      corrupt_idx = -1;  // quiesce heals compromised processes too
      t = t + options.quiesce_len;
      emit(make(t, FaultKind::kQuiesceEnd));
      next_quiesce = t + options.quiesce_every;
      advance();
      continue;
    }

    std::vector<Category> cats;
    if (options.crashes && up_count > 1 && corrupt_idx < 0)
      cats.push_back(kCatCrash);
    if (options.crashes && up_count < n) cats.push_back(kCatRecover);
    if (options.partitions && n >= 2) cats.push_back(kCatPartition);
    if (options.asym_partitions && n >= 2) cats.push_back(kCatAsym);
    if (options.delay_spikes && n >= 2) cats.push_back(kCatDelay);
    if (options.edge_loss && n >= 2) cats.push_back(kCatLoss);
    if (options.device_link_loss && !options.device_links.empty())
      cats.push_back(kCatDeviceLoss);
    if (options.device_crashes && !options.devices.empty())
      cats.push_back(kCatDeviceCrash);
    if (options.spoof_events && !options.device_links.empty())
      cats.push_back(kCatSpoof);
    if (options.replay_events && !options.device_links.empty())
      cats.push_back(kCatReplay);
    if (options.corrupt_process && up_count >= 2 && corrupt_idx < 0)
      cats.push_back(kCatCorrupt);
    if (cats.empty()) {
      advance();
      continue;
    }

    switch (cats[rng.uniform_int(cats.size())]) {
      case kCatCrash: {
        int victim;
        do {
          victim = static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(n)));
        } while (!up[static_cast<std::size_t>(victim)]);
        up[static_cast<std::size_t>(victim)] = false;
        --up_count;
        FaultAction a = make(t, FaultKind::kCrashProcess);
        a.a = pid(victim);
        emit(std::move(a));
        break;
      }
      case kCatRecover: {
        int victim;
        do {
          victim = static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(n)));
        } while (up[static_cast<std::size_t>(victim)]);
        up[static_cast<std::size_t>(victim)] = true;
        ++up_count;
        FaultAction a = make(t, FaultKind::kRecoverProcess);
        a.a = pid(victim);
        emit(std::move(a));
        break;
      }
      case kCatPartition: {
        if (partition_active) {
          emit(make(t, FaultKind::kHealPartition));
          partition_active = false;
          break;
        }
        std::vector<ProcessId> side_a;
        while (side_a.empty() || static_cast<int>(side_a.size()) == n) {
          side_a.clear();
          for (int i = 0; i < n; ++i) {
            if (rng.bernoulli(0.5)) side_a.push_back(pid(i));
          }
        }
        FaultAction a = make(t, FaultKind::kPartition);
        a.group = std::move(side_a);
        emit(std::move(a));
        partition_active = true;
        break;
      }
      case kCatAsym: {
        auto [ai, bi] = rand_pair();
        auto key = std::make_pair(ai, bi);
        auto it = sever_busy.find(key);
        if (it != sever_busy.end() && it->second > t) break;
        Duration hold = rand_duration(seconds(1), options.max_fault_hold);
        sever_busy[key] = t + hold;
        FaultAction down = make(t, FaultKind::kEdgeDown);
        down.a = pid(ai);
        down.b = pid(bi);
        down.dur = hold;
        emit(std::move(down));
        FaultAction rest = make(t + hold, FaultKind::kEdgeUp);
        rest.a = pid(ai);
        rest.b = pid(bi);
        emit(std::move(rest));
        break;
      }
      case kCatDelay: {
        auto [ai, bi] = rand_pair();
        auto key = std::make_pair(ai, bi);
        auto it = delay_busy.find(key);
        if (it != delay_busy.end() && it->second > t) break;
        Duration hold = rand_duration(seconds(1), options.max_fault_hold);
        delay_busy[key] = t + hold;
        FaultAction spike = make(t, FaultKind::kEdgeDelay);
        spike.a = pid(ai);
        spike.b = pid(bi);
        spike.dur = rand_duration(milliseconds(20), options.max_delay_spike);
        emit(std::move(spike));
        FaultAction clear = make(t + hold, FaultKind::kEdgeDelayClear);
        clear.a = pid(ai);
        clear.b = pid(bi);
        emit(std::move(clear));
        break;
      }
      case kCatLoss: {
        auto [ai, bi] = rand_pair();
        auto key = std::make_pair(ai, bi);
        auto it = loss_busy.find(key);
        if (it != loss_busy.end() && it->second > t) break;
        Duration hold = rand_duration(seconds(1), options.max_fault_hold);
        loss_busy[key] = t + hold;
        FaultAction lossy = make(t, FaultKind::kEdgeLoss);
        lossy.a = pid(ai);
        lossy.b = pid(bi);
        lossy.value = rng.uniform(0.15, options.max_edge_loss);
        emit(std::move(lossy));
        FaultAction clear = make(t + hold, FaultKind::kEdgeLossClear);
        clear.a = pid(ai);
        clear.b = pid(bi);
        emit(std::move(clear));
        break;
      }
      case kCatDeviceLoss: {
        const auto& link = options.device_links[rng.uniform_int(
            options.device_links.size())];
        auto it = dev_link_busy.find(link);
        if (it != dev_link_busy.end() && it->second > t) break;
        Duration hold = rand_duration(seconds(2), options.max_fault_hold);
        dev_link_busy[link] = t + hold;
        // Loss ramp: step to a moderate level, spike, then restore the
        // pre-chaos baseline (§2.1's interference episodes).
        double mid = rng.uniform(0.2, options.max_device_link_loss / 2);
        double high =
            rng.uniform(options.max_device_link_loss / 2,
                        options.max_device_link_loss);
        FaultAction step = make(t, FaultKind::kDeviceLinkLoss);
        step.sensor = link.first;
        step.b = link.second;
        step.value = mid;
        emit(std::move(step));
        FaultAction spike = make(t + hold / 2, FaultKind::kDeviceLinkLoss);
        spike.sensor = link.first;
        spike.b = link.second;
        spike.value = high;
        emit(std::move(spike));
        FaultAction restore = make(t + hold, FaultKind::kDeviceLinkLoss);
        restore.sensor = link.first;
        restore.b = link.second;
        restore.value = -1.0;
        emit(std::move(restore));
        break;
      }
      case kCatDeviceCrash: {
        SensorId dev =
            options.devices[rng.uniform_int(options.devices.size())];
        auto it = device_busy.find(dev);
        if (it != device_busy.end() && it->second > t) break;
        Duration hold = rand_duration(seconds(1), options.max_fault_hold);
        device_busy[dev] = t + hold;
        FaultAction crash = make(t, FaultKind::kDeviceCrash);
        crash.sensor = dev;
        crash.dur = hold;
        emit(std::move(crash));
        FaultAction rec = make(t + hold, FaultKind::kDeviceRecover);
        rec.sensor = dev;
        emit(std::move(rec));
        break;
      }
      case kCatSpoof: {
        const auto& link = options.device_links[rng.uniform_int(
            options.device_links.size())];
        FaultAction a = make(t, FaultKind::kSpoofEvent);
        a.sensor = link.first;
        a.b = link.second;
        // Forged sequence numbers live far above anything a real sensor
        // reaches in a run, so a spoof is never accidentally well-formed.
        a.seq = (1u << 20) + spoof_seq++;
        a.value = rng.uniform(0.0, 1.0);
        emit(std::move(a));
        break;
      }
      case kCatReplay: {
        const auto& link = options.device_links[rng.uniform_int(
            options.device_links.size())];
        FaultAction a = make(t, FaultKind::kReplayEvent);
        a.sensor = link.first;
        a.b = link.second;
        // Raw draw; the injector reduces it modulo the sensor's recent
        // emission window at apply time.
        a.seq = static_cast<std::uint32_t>(rng.next() & 0xffffu);
        emit(std::move(a));
        break;
      }
      case kCatCorrupt: {
        int victim;
        do {
          victim = static_cast<int>(
              rng.uniform_int(static_cast<std::uint64_t>(n)));
        } while (!up[static_cast<std::size_t>(victim)]);
        Duration hold = rand_duration(seconds(1), options.max_fault_hold);
        corrupt_idx = victim;
        corrupt_until = t + hold;
        FaultAction begin = make(t, FaultKind::kCorruptBegin);
        begin.a = pid(victim);
        begin.dur = hold;
        emit(std::move(begin));
        FaultAction end = make(t + hold, FaultKind::kCorruptEnd);
        end.a = pid(victim);
        emit(std::move(end));
        break;
      }
    }
    advance();
  }

  // Close the plan with a full heal so the drain phase starts from a
  // fault-free home.
  emit(make(horizon_end, FaultKind::kQuiesceBegin));

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  return plan;
}

}  // namespace riv::chaos
