#include "chaos/invariants.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>

namespace riv::chaos {

std::string to_string(const Violation& v) {
  return "[" + v.invariant + "] at t=" + std::to_string(v.at.us) + "us: " +
         v.detail;
}

namespace {

std::string delivered_counter(AppId app) {
  return "app" + std::to_string(app.value) + ".delivered";
}

std::string ingest_counter(ProcessId p, SensorId s) {
  return "ingest.p" + std::to_string(p.value) + ".s" +
         std::to_string(s.value);
}

// Events of `sensor` in `p`'s log for `app` emitted at or before `cutoff`
// (everything when `final_check`).
std::uint64_t log_count(core::RivuletProcess& p, AppId app, SensorId sensor,
                        TimePoint cutoff, bool final_check) {
  core::EventLog* log = p.event_log(app);
  if (log == nullptr) return 0;
  if (final_check) return log->size(sensor);
  std::uint64_t n = 0;
  for (const core::StoredEvent* se :
       log->events_after(sensor, TimePoint{-1})) {
    if (se->event.emitted_at <= cutoff) ++n;
  }
  return n;
}

}  // namespace

void NoDuplicateDelivery::check(const CheckContext& ctx,
                                std::vector<Violation>& out) const {
  workload::HomeDeployment& home = *ctx.home;
  std::uint64_t dups = home.metrics().counter_value(
      "app" + std::to_string(ctx.app.value) + ".dup_instance_delivery");
  if (dups > reported_) {
    out.push_back({name(), home.sim().now(),
                   std::to_string(dups - reported_) +
                       " duplicate event(s) fed to a logic instance"});
    reported_ = dups;
  }
}

void NoOverDelivery::check(const CheckContext& ctx,
                           std::vector<Violation>& out) const {
  workload::HomeDeployment& home = *ctx.home;
  std::uint64_t delivered =
      home.metrics().counter_value(delivered_counter(ctx.app));
  std::uint64_t emitted = home.bus().sensor(ctx.sensor).events_emitted();
  if (delivered > emitted) {
    out.push_back({name(), home.sim().now(),
                   "delivered=" + std::to_string(delivered) + " > emitted=" +
                       std::to_string(emitted)});
  }
}

void SingleActiveLogic::check(const CheckContext& ctx,
                              std::vector<Violation>& out) const {
  workload::HomeDeployment& home = *ctx.home;
  int actives = 0;
  std::string who;
  for (ProcessId p : home.processes()) {
    core::RivuletProcess& proc = home.process(p);
    if (proc.up() && proc.logic_active(ctx.app)) {
      ++actives;
      if (!who.empty()) who += ",";
      who += to_string(p);
    }
  }
  if (actives != 1) {
    out.push_back({name(), home.sim().now(),
                   "expected exactly one active logic node, have " +
                       std::to_string(actives) + " {" + who + "}"});
  }
}

void LogSetConvergence::check(const CheckContext& ctx,
                              std::vector<Violation>& out) const {
  workload::HomeDeployment& home = *ctx.home;
  std::uint64_t lo = UINT64_MAX, hi = 0;
  std::string counts;
  for (ProcessId p : home.processes()) {
    core::RivuletProcess& proc = home.process(p);
    if (!proc.up()) continue;
    std::uint64_t n =
        log_count(proc, ctx.app, ctx.sensor, ctx.cutoff, ctx.final_check);
    lo = std::min(lo, n);
    hi = std::max(hi, n);
    if (!counts.empty()) counts += " ";
    counts += to_string(p) + "=" + std::to_string(n);
  }
  if (lo != hi) {
    out.push_back({name(), home.sim().now(),
                   std::string("live logs disagree") +
                       (ctx.final_check
                            ? ""
                            : " for events emitted before t=" +
                                  std::to_string(ctx.cutoff.us) + "us") +
                       ": " + counts});
  }
}

void GaplessPostIngest::check(const CheckContext& ctx,
                              std::vector<Violation>& out) const {
  if (!ctx.final_check) return;  // delivery counters are cumulative
  workload::HomeDeployment& home = *ctx.home;
  std::uint64_t delivered =
      home.metrics().counter_value(delivered_counter(ctx.app));
  std::uint64_t ingested_anywhere = 0;
  std::uint64_t union_log = 0;
  for (ProcessId p : home.processes()) {
    ingested_anywhere =
        std::max(ingested_anywhere,
                 home.metrics().counter_value(ingest_counter(p, ctx.sensor)));
    union_log = std::max(
        union_log,
        log_count(home.process(p), ctx.app, ctx.sensor, {}, true));
  }
  if (delivered < ingested_anywhere) {
    out.push_back({name(), home.sim().now(),
                   "delivered=" + std::to_string(delivered) +
                       " < ingested=" + std::to_string(ingested_anywhere)});
  }
  if (delivered < union_log) {
    out.push_back({name(), home.sim().now(),
                   "delivered=" + std::to_string(delivered) +
                       " < replicated-log=" + std::to_string(union_log)});
  }
}

void NoForgedActuation::check(const CheckContext& ctx,
                              std::vector<Violation>& out) const {
  workload::HomeDeployment& home = *ctx.home;
  devices::HomeBus& bus = home.bus();
  const std::vector<SensorId> sensors = bus.sensors();
  for (ActuatorId aid : bus.actuators()) {
    const auto& history = bus.actuator(aid).history();
    std::size_t& cursor = scanned_[aid];
    for (; cursor < history.size(); ++cursor) {
      const ProvenanceId cause = history[cursor].cause;
      if (!cause.valid()) continue;
      // Only sensor-origin provenance is judgeable here (logic-derived
      // origins carry 0xffff and no per-device emission history).
      SensorId origin{cause.origin};
      if (std::find(sensors.begin(), sensors.end(), origin) ==
          sensors.end())
        continue;
      // Device seqs are 1-based: after N emissions the genuine seqs are
      // exactly 1..N, so anything above events_emitted() is fabricated.
      if (cause.seq > bus.sensor(origin).events_emitted()) {
        out.push_back(
            {name(), home.sim().now(),
             to_string(aid) + " actuated on " + to_string(origin) + "#" +
                 std::to_string(cause.seq) + " which " + to_string(origin) +
                 " never emitted (emitted " +
                 std::to_string(bus.sensor(origin).events_emitted()) + ")"});
      }
    }
  }
}

void NoOriginSeqRegression::check(const CheckContext& ctx,
                                  std::vector<Violation>& out) const {
  workload::HomeDeployment& home = *ctx.home;
  if (!home.config().integrity) return;
  for (ProcessId p : home.processes()) {
    core::RivuletProcess& proc = home.process(p);
    std::uint64_t ingested =
        home.metrics().counter_value(ingest_counter(p, ctx.sensor));
    std::uint64_t distinct = proc.device_seqs_seen_count(ctx.sensor);
    if (ingested > distinct) {
      out.push_back({name(), home.sim().now(),
                     to_string(p) + " ingested " + std::to_string(ingested) +
                         " events from " + to_string(ctx.sensor) +
                         " but only " + std::to_string(distinct) +
                         " distinct seqs — a repeated seq was accepted"});
    }
  }
}

InvariantChecker::InvariantChecker(workload::HomeDeployment& home, AppId app,
                                   SensorId sensor)
    : home_(&home), app_(app), sensor_(sensor) {}

InvariantChecker::~InvariantChecker() {
  if (alive_) *alive_ = false;
}

void InvariantChecker::add(std::unique_ptr<Invariant> invariant) {
  invariants_.push_back(std::move(invariant));
}

CheckContext InvariantChecker::context(TimePoint cutoff, bool final_check) {
  CheckContext ctx;
  ctx.home = home_;
  ctx.app = app_;
  ctx.sensor = sensor_;
  ctx.cutoff = cutoff;
  ctx.final_check = final_check;
  return ctx;
}

void InvariantChecker::start(Duration interval) {
  alive_ = std::make_shared<bool>(true);
  std::shared_ptr<bool> alive = alive_;
  sim::Simulation& sim = home_->sim();
  // The closure lives in tick_, not in a shared_ptr it captures (which
  // would never be reclaimed); queued copies check `alive` before
  // touching `this`, so destruction mid-run is harmless.
  tick_ = [this, alive, interval, &sim] {
    if (!*alive) return;
    check_continuous();
    sim.schedule_after(interval, tick_);
  };
  sim.schedule_after(interval, tick_);
}

void InvariantChecker::check_continuous() {
  ++checks_run_;
  CheckContext ctx = context({}, false);
  for (const auto& inv : invariants_) {
    if (inv->continuous()) inv->check(ctx, violations_);
  }
}

void InvariantChecker::check_converged(TimePoint cutoff, bool final_check) {
  ++checks_run_;
  CheckContext ctx = context(cutoff, final_check);
  for (const auto& inv : invariants_) inv->check(ctx, violations_);
}

}  // namespace riv::chaos
