#include "membership/failure_detector.hpp"

#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::membership {

FailureDetector::FailureDetector(sim::ProcessTimers& timers,
                                 net::Transport& transport,
                                 std::vector<ProcessId> all_processes,
                                 Config config)
    : timers_(&timers),
      transport_(&transport),
      self_(transport.local()),
      all_(std::move(all_processes)),
      config_(config) {}

void FailureDetector::start() {
  if (started_) return;
  started_ = true;
  // Optimistic initial view: all configured processes presumed alive.
  TimePoint now = timers_->now();
  for (ProcessId p : all_) {
    if (p != self_) last_heard_[p] = now;
  }
  recompute_view();
  tick();
}

void FailureDetector::tick() {
  // Send keep-alives. The frame is identical for every peer (same
  // timestamp, same piggyback), so encode once and share the buffer.
  std::vector<std::byte> extra;
  if (provider_) extra = provider_();
  BinaryWriter w;
  w.time_point(timers_->now());
  w.bytes(extra);
  net::Payload payload = w.take();
  for (ProcessId p : all_) {
    if (p == self_) continue;
    transport_->send(p, net::MsgType::kKeepAlive, payload);
  }
  recompute_view();
  tick_timer_ = timers_->schedule_after(config_.period, [this] { tick(); });
}

void FailureDetector::clone_state(BinaryWriter& w) const {
  w.u8(started_ ? 1 : 0);
  w.u64(last_heard_.size());
  for (const auto& [p, t] : last_heard_) {
    w.process_id(p);
    w.time_point(t);
  }
  w.u64(view_flat_.size());
  for (ProcessId p : view_flat_) w.process_id(p);
  TimePoint t;
  std::uint64_t seq;
  bool ticking = tick_timer_ != 0 &&
                 timers_->sim().timer_info(tick_timer_, &t, &seq);
  w.u8(ticking ? 1 : 0);
  if (ticking) {
    w.u64(tick_timer_);
    w.time_point(t);
    w.u64(seq);
  }
}

void FailureDetector::restore_clone(BinaryReader& r) {
  started_ = r.u8() != 0;
  last_heard_.clear();
  const std::uint64_t n_heard = r.u64();
  for (std::uint64_t i = 0; i < n_heard; ++i) {
    ProcessId p = r.process_id();
    last_heard_[p] = r.time_point();
  }
  view_flat_.clear();
  const std::uint64_t n_view = r.u64();
  for (std::uint64_t i = 0; i < n_view; ++i)
    view_flat_.push_back(r.process_id());
  view_.clear();
  view_.insert(view_flat_.begin(), view_flat_.end());
  if (r.u8() != 0) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    tick_timer_ = timers_->restore_at(tid, t, seq, [this] { tick(); });
  }
}

void FailureDetector::on_keepalive(const net::Message& msg) {
  last_heard_[msg.src] = timers_->now();
  if (handler_) {
    BinaryReader r(msg.payload);
    (void)r.time_point();  // sender timestamp (unused; clocks are synced)
    // The piggyback is length-prefixed; decode it in place from the frame
    // buffer instead of copying it out first.
    std::uint32_t extra_len = r.u32();
    if (extra_len > 0) handler_(msg.src, r);
  }
  recompute_view();
}

void FailureDetector::recompute_view() {
  // Build the candidate view into a scratch vector — sorted for free,
  // since last_heard_ iterates in ProcessId order and self_ is merged at
  // its rank — and only materialize the std::set when membership changed.
  scratch_.clear();
  TimePoint now = timers_->now();
  bool self_placed = false;
  for (const auto& [p, heard] : last_heard_) {
    if (p == self_) continue;  // p_i never suspects itself (§4.1)
    if (!self_placed && self_ < p) {
      scratch_.push_back(self_);
      self_placed = true;
    }
    if (now - heard <= config_.timeout) scratch_.push_back(p);
  }
  if (!self_placed) scratch_.push_back(self_);
  if (scratch_ != view_flat_) {
    view_flat_ = scratch_;
    view_.clear();
    view_.insert(scratch_.begin(), scratch_.end());
    RIV_DEBUG("membership", riv::to_string(self_) << " view size "
                                                  << view_.size());
    if (trace::active(trace::Component::kMembership)) {
      // view_flat_ is sorted, so packing it matches the set's rendering.
      trace::emit(now, self_, trace::Component::kMembership,
                  trace::Kind::kView,
                  trace::fv(trace::Key::kView, view_flat_));
    }
    if (on_view_change_) on_view_change_(view_);
  }
}

}  // namespace riv::membership
