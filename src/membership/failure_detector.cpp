#include "membership/failure_detector.hpp"

#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::membership {

FailureDetector::FailureDetector(sim::ProcessTimers& timers,
                                 net::Transport& transport,
                                 std::vector<ProcessId> all_processes,
                                 Config config)
    : timers_(&timers),
      transport_(&transport),
      self_(transport.local()),
      all_(std::move(all_processes)),
      config_(config) {}

void FailureDetector::start() {
  if (started_) return;
  started_ = true;
  // Optimistic initial view: all configured processes presumed alive.
  TimePoint now = timers_->now();
  for (ProcessId p : all_) {
    if (p != self_) last_heard_[p] = now;
  }
  recompute_view();
  tick();
}

void FailureDetector::tick() {
  // Send keep-alives.
  std::vector<std::byte> extra;
  if (provider_) extra = provider_();
  for (ProcessId p : all_) {
    if (p == self_) continue;
    BinaryWriter w;
    w.time_point(timers_->now());
    w.bytes(extra);
    transport_->send(p, net::MsgType::kKeepAlive, w.take());
  }
  recompute_view();
  timers_->schedule_after(config_.period, [this] { tick(); });
}

void FailureDetector::on_keepalive(const net::Message& msg) {
  last_heard_[msg.src] = timers_->now();
  if (handler_) {
    BinaryReader r(msg.payload);
    (void)r.time_point();  // sender timestamp (unused; clocks are synced)
    std::vector<std::byte> extra = r.bytes();
    if (!extra.empty()) {
      BinaryReader pr(extra);
      handler_(msg.src, pr);
    }
  }
  recompute_view();
}

void FailureDetector::recompute_view() {
  std::set<ProcessId> next;
  next.insert(self_);  // p_i never suspects itself (§4.1)
  TimePoint now = timers_->now();
  for (const auto& [p, heard] : last_heard_) {
    if (now - heard <= config_.timeout) next.insert(p);
  }
  if (next != view_) {
    view_ = std::move(next);
    RIV_DEBUG("membership", riv::to_string(self_) << " view size "
                                                  << view_.size());
    if (trace::active(trace::Component::kMembership)) {
      std::string detail = "view=";
      bool first = true;
      for (ProcessId p : view_) {
        if (!first) detail += "+";
        detail += riv::to_string(p);
        first = false;
      }
      trace::emit(now, self_, trace::Component::kMembership,
                  trace::Kind::kView, std::move(detail));
    }
    if (on_view_change_) on_view_change_(view_);
  }
}

}  // namespace riv::membership
