// Keep-alive failure detection and local views (§4.1).
//
// Every process broadcasts a keep-alive every `period` to all other
// configured processes and maintains a *local* view v_i: itself plus every
// process heard from within `timeout`. The paper is explicit that
// majority-based membership cannot be used in a home (there may be only
// one or two processes), so views are purely local and may disagree across
// processes — the delivery protocols are designed to tolerate that.
//
// Keep-alives also piggyback a small application payload (Rivulet uses it
// to gossip per-app processed watermarks, which bounds the backlog a newly
// promoted logic node replays — the ~20-event spike of Fig 7). The payload
// provider/handler hooks keep this module independent of the runtime.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/codec.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace riv::membership {

struct Config {
  Duration period{milliseconds(500)};
  Duration timeout{seconds(2)};  // §8.4: failure-detection threshold 2 s
};

class FailureDetector {
 public:
  using ViewChangeFn = std::function<void(const std::set<ProcessId>& view)>;
  using PayloadProvider = std::function<std::vector<std::byte>()>;
  using PayloadHandler = std::function<void(ProcessId from, BinaryReader& r)>;

  FailureDetector(sim::ProcessTimers& timers, net::Transport& transport,
                  std::vector<ProcessId> all_processes, Config config);

  void set_on_view_change(ViewChangeFn fn) { on_view_change_ = std::move(fn); }
  void set_payload_provider(PayloadProvider fn) { provider_ = std::move(fn); }
  void set_payload_handler(PayloadHandler fn) { handler_ = std::move(fn); }

  // Begin heartbeating. Initial view is optimistic (everyone alive), per
  // the prototype: a fresh process assumes peers are up until proven dead.
  void start();

  // Feed an incoming keep-alive (the runtime demultiplexes messages).
  void on_keepalive(const net::Message& msg);

  const std::set<ProcessId>& view() const { return view_; }
  bool alive(ProcessId p) const { return view_.count(p) != 0; }
  ProcessId self() const { return self_; }
  const std::vector<ProcessId>& all_processes() const { return all_; }

  // Serialize membership state (the local view and the last-heard table
  // behind it) for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const {
    w.u8(started_ ? 1 : 0);
    w.u64(last_heard_.size());
    for (const auto& [p, t] : last_heard_) {
      w.process_id(p);
      w.time_point(t);
    }
    w.u64(view_.size());
    for (ProcessId p : view_) w.process_id(p);
  }

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Full state including the heartbeat timer's (id, t, seq) identity.
  // Restore requires a constructed-but-not-started detector with its
  // hooks already installed (the runtime re-wires closures first).
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  void tick();
  void recompute_view();

  sim::ProcessTimers* timers_;
  net::Transport* transport_;
  ProcessId self_;
  std::vector<ProcessId> all_;
  Config config_;

  std::map<ProcessId, TimePoint> last_heard_;
  std::set<ProcessId> view_;
  // Sorted mirror of view_ plus a scratch buffer: recompute_view() runs on
  // every received keep-alive, and the common "nothing changed" case must
  // not rebuild a std::set just to compare and discard it.
  std::vector<ProcessId> view_flat_;
  std::vector<ProcessId> scratch_;
  ViewChangeFn on_view_change_;
  PayloadProvider provider_;
  PayloadHandler handler_;
  bool started_{false};
  sim::TimerId tick_timer_{0};
};

}  // namespace riv::membership
