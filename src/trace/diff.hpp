// Structural trace diffing: find and explain the first divergence.
//
// A hash mismatch proves two runs differ but says nothing about where; the
// golden-trace harness and tools/trace_diff need the first divergent
// record with enough context to read the story around it. diff() walks the
// two record sequences in lockstep and reports index + field of the first
// difference; render() formats it with surrounding records from both
// sides.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace riv::trace {

struct Divergence {
  bool identical{true};
  // Index of the first record that differs (or the length of the shorter
  // trace when one is a strict prefix of the other).
  std::size_t index{0};
  // Which field diverged first: "at", "process", "component", "kind",
  // "detail" — or "length" when one side ran out of records.
  std::string field;
};

Divergence diff(const std::vector<Record>& a, const std::vector<Record>& b);

// Human-readable report: the divergent record from both sides plus up to
// `context` preceding records (which are identical by construction).
// Returns "traces identical (N records)" when there is no divergence.
std::string render(const std::vector<Record>& a,
                   const std::vector<Record>& b, const Divergence& d,
                   std::size_t context = 5);

}  // namespace riv::trace
