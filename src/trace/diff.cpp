#include "trace/diff.hpp"

#include <algorithm>

namespace riv::trace {
namespace {

// Field-level comparison so reports can say *what* changed, not just that
// something did.
std::string first_differing_field(const Record& a, const Record& b) {
  if (a.at != b.at) return "at";
  if (a.process != b.process) return "process";
  if (a.component != b.component) return "component";
  if (a.kind != b.kind) return "kind";
  if (a.prov != b.prov) return "prov";
  if (a.detail != b.detail) return "detail";
  return "";
}

}  // namespace

Divergence diff(const std::vector<Record>& a, const std::vector<Record>& b) {
  Divergence d;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::string field = first_differing_field(a[i], b[i]);
    if (!field.empty()) {
      d.identical = false;
      d.index = i;
      d.field = std::move(field);
      return d;
    }
  }
  if (a.size() != b.size()) {
    d.identical = false;
    d.index = n;
    d.field = "length";
  }
  return d;
}

std::string render(const std::vector<Record>& a,
                   const std::vector<Record>& b, const Divergence& d,
                   std::size_t context) {
  if (d.identical) {
    return "traces identical (" + std::to_string(a.size()) + " records)";
  }
  std::string out;
  out += "first divergence at record " + std::to_string(d.index) +
         " (field: " + d.field + ")\n";
  const std::size_t from = d.index > context ? d.index - context : 0;
  for (std::size_t i = from; i < d.index; ++i) {
    out += "    [" + std::to_string(i) + "] " + to_string(a[i]) + "\n";
  }
  auto side = [&](const char* label, const std::vector<Record>& t) {
    if (d.index < t.size()) {
      out += std::string(label) + " [" + std::to_string(d.index) + "] " +
             to_string(t[d.index]) + "\n";
    } else {
      out += std::string(label) + " [" + std::to_string(d.index) +
             "] <end of trace: " + std::to_string(t.size()) + " records>\n";
    }
  };
  side("  a:", a);
  side("  b:", b);
  return out;
}

}  // namespace riv::trace
