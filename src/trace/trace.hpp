// Flight recorder: a structured, deterministically-ordered event trace
// that every layer of the stack emits into.
//
// Each record is (virtual_time, process, component, kind, detail): the sim
// kernel logs timer dispatch, the network logs send/recv/drop and link
// transitions, membership logs view changes, the delivery service logs
// ingest/fallback/epoch activity, the runtime logs deliveries and logic
// failovers, and the chaos injector logs every fault it applies. Records
// are appended in simulation callback execution order, which the
// discrete-event kernel makes deterministic, so two runs of the same seed
// produce byte-identical traces — the substrate for golden-trace
// regression testing (tests/trace_golden) and replayable chaos artifacts
// (tools/chaos_run --trace).
//
// Recording is scoped, not global configuration: installing a Recorder via
// trace::Scope makes it the current sink; with no recorder installed every
// emit site short-circuits on one branch, so the instrumented hot paths
// cost nothing in benches. The binary encoding (via common/codec) is the
// stable on-disk format, and an FNV-1a hash rolled over each record's
// encoding as it is appended fingerprints the whole trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace riv::trace {

// Which layer emitted the record. Values are part of the on-disk format:
// append only, never renumber.
enum class Component : std::uint8_t {
  kSim = 0,         // discrete-event kernel
  kNet = 1,         // simulated WiFi transport
  kDevice = 2,      // sensors / actuators
  kMembership = 3,  // failure detector
  kDelivery = 4,    // gapless ring / gap chain
  kRuntime = 5,     // execution service, delivery into logic
  kChaos = 6,       // fault injector
};
inline constexpr int kComponentCount = 7;
const char* to_string(Component c);

// What happened. Values are part of the on-disk format: append only.
enum class Kind : std::uint8_t {
  kTimerFire = 0,  // sim dispatched a timer callback
  kSend = 1,       // frame put on the wire
  kRecv = 2,       // frame handed to the destination endpoint
  kDrop = 3,       // frame lost (crash, partition, edge loss, in flight)
  kLink = 4,       // partition / reachability / edge-quality transition
  kEmit = 5,       // sensor emitted an event
  kView = 6,       // membership view changed
  kIngest = 7,     // delivery stream accepted a new event
  kFallback = 8,   // gapless ring stalled; reliable broadcast initiated
  kEpoch = 9,      // coordinated-polling epoch boundary
  kDeliver = 10,   // event fed to the active logic node
  kPromote = 11,   // logic node promoted
  kDemote = 12,    // logic node demoted
  kCommand = 13,   // actuation command submitted to a device
  kFault = 14,     // chaos injector applied a fault action
  kMark = 15,      // free-form scenario annotation
  kAdapterRx = 16,  // process-side adapter received a device frame
  kLogicFire = 17,  // a logic trigger fired (windows evaluated, handler ran)
  kActuated = 18,   // actuator applied a command
  kCrash = 19,      // process crashed
  kRecover = 20,    // process recovered
};
const char* to_string(Kind k);

struct Record {
  TimePoint at{};
  ProcessId process{};  // ProcessId{0} = no single process (global event)
  Component component{Component::kSim};
  Kind kind{Kind::kMark};
  // Causal id of the sensor event this record is about; invalid (all
  // zero) for records that are not scoped to one event (timers, link
  // transitions, views, faults). Typed rather than folded into `detail`
  // so trace_analyze can reconstruct per-event chains without parsing.
  ProvenanceId prov{};
  // Canonical "key=value key=value" payload. Part of the determinism
  // hash and of golden traces, so emit sites must keep it stable:
  // integers and ids only, no pointers, no float formatting surprises.
  std::string detail;

  bool operator==(const Record&) const = default;
};

// One-line rendering: "t=12.345678s p2 net/send type=ring_event ...".
std::string to_string(const Record& r);

// Stable binary encoding of one record (the unit the rolling hash covers).
void encode(BinaryWriter& w, const Record& r);
Record decode_record(BinaryReader& r);

inline constexpr std::uint32_t component_bit(Component c) {
  return 1u << static_cast<std::uint32_t>(c);
}
inline constexpr std::uint32_t kAllComponents =
    (1u << kComponentCount) - 1;

class Recorder {
 public:
  // `mask` selects which components are recorded (bitwise OR of
  // component_bit); everything else is dropped at the emit site.
  explicit Recorder(std::uint32_t mask = kAllComponents) : mask_(mask) {}

  bool wants(Component c) const { return (mask_ & component_bit(c)) != 0; }
  std::uint32_t mask() const { return mask_; }

  // Append one record (assumes wants() was honoured by the caller; a
  // masked-out record appended directly is still dropped).
  void append(Record r);

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  // FNV-1a rolled over each record's binary encoding, in append order.
  std::uint64_t hash() const { return hash_; }
  // hash() as fixed-width hex.
  std::string digest() const;

  // --- on-disk format ----------------------------------------------------
  // magic "RIVT" | version u32 | count u64 | records | hash u64.
  std::vector<std::byte> encode() const;
  // Returns false (and sets *error) on malformed input, bad magic /
  // version, or a footer hash that does not match the records.
  static bool decode(const std::vector<std::byte>& buf, Recorder* out,
                     std::string* error);

  bool save(const std::string& path, std::string* error = nullptr) const;
  static bool load(const std::string& path, Recorder* out,
                   std::string* error = nullptr);

 private:
  std::uint32_t mask_;
  std::vector<Record> records_;
  std::uint64_t hash_{0xcbf29ce484222325ULL};  // FNV offset basis
};

// --- the current recorder ------------------------------------------------
// The simulator is single-threaded, so "current recorder" is one module-
// level pointer. Scope installs a recorder RAII-style (nesting restores
// the previous one), and emit()/active() are the only calls instrumented
// code makes.

Recorder* current();

class Scope {
 public:
  explicit Scope(Recorder& r);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Recorder* prev_;
};

// Fast gate: is a recorder installed and interested in this component?
// Emit sites check this before building detail strings.
bool active(Component c);

// Append to the current recorder; no-op when none is installed or the
// component is masked out.
void emit(TimePoint at, ProcessId process, Component component, Kind kind,
          std::string detail);
// Same, with the causal id of the sensor event the record is about.
void emit(TimePoint at, ProcessId process, Component component, Kind kind,
          ProvenanceId prov, std::string detail);

}  // namespace riv::trace
