// Flight recorder: a structured, deterministically-ordered event trace
// that every layer of the stack emits into.
//
// Each record is (virtual_time, process, component, kind, fields): the sim
// kernel logs timer dispatch, the network logs send/recv/drop and link
// transitions, membership logs view changes, the delivery service logs
// ingest/fallback/epoch activity, the runtime logs deliveries and logic
// failovers, and the chaos injector logs every fault it applies. Records
// are appended in simulation callback execution order, which the
// discrete-event kernel makes deterministic, so two runs of the same seed
// produce byte-identical traces — the substrate for golden-trace
// regression testing (tests/trace_golden) and replayable chaos artifacts
// (tools/chaos_run --trace).
//
// Storage is trace format v3 (see format.hpp): emit sites pass typed
// fields (key id + value) that are packed straight into a chunked
// append-only byte arena owned by the Recorder — no detail-string
// formatting and no per-record allocation on the hot path. The rolling
// FNV-1a determinism hash is folded over the packed bytes as they are
// written. Reading the trace back (records(), trace_diff, trace_analyze)
// decodes lazily, rendering each record's fields into the same canonical
// "key=value key=value" detail string the v2 recorder stored eagerly.
//
// Recording is scoped, not global configuration: installing a Recorder via
// trace::Scope makes it the current sink; with no recorder installed every
// emit site short-circuits on one branch, so the instrumented hot paths
// cost nothing in benches.
//
// Sinks: by default the arena lives in memory. stream_to() switches the
// recorder to a streaming file sink (sealed chunks are flushed and their
// memory reused, so a trace of any length needs one chunk of RAM);
// set_ring_limit() keeps only the most recent N bytes of packed records,
// dropping whole chunks from the front (chaos_run --trace-ring).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "trace/format.hpp"

namespace riv::trace {

// Which layer emitted the record. Values are part of the on-disk format:
// append only, never renumber.
enum class Component : std::uint8_t {
  kSim = 0,         // discrete-event kernel
  kNet = 1,         // simulated WiFi transport
  kDevice = 2,      // sensors / actuators
  kMembership = 3,  // failure detector
  kDelivery = 4,    // gapless ring / gap chain
  kRuntime = 5,     // execution service, delivery into logic
  kChaos = 6,       // fault injector
};
inline constexpr int kComponentCount = 7;
const char* to_string(Component c);

// What happened. Values are part of the on-disk format: append only.
enum class Kind : std::uint8_t {
  kTimerFire = 0,  // sim dispatched a timer callback
  kSend = 1,       // frame put on the wire
  kRecv = 2,       // frame handed to the destination endpoint
  kDrop = 3,       // frame lost (crash, partition, edge loss, in flight)
  kLink = 4,       // partition / reachability / edge-quality transition
  kEmit = 5,       // sensor emitted an event
  kView = 6,       // membership view changed
  kIngest = 7,     // delivery stream accepted a new event
  kFallback = 8,   // gapless ring stalled; reliable broadcast initiated
  kEpoch = 9,      // coordinated-polling epoch boundary
  kDeliver = 10,   // event fed to the active logic node
  kPromote = 11,   // logic node promoted
  kDemote = 12,    // logic node demoted
  kCommand = 13,   // actuation command submitted to a device
  kFault = 14,     // chaos injector applied a fault action
  kMark = 15,      // free-form scenario annotation
  kAdapterRx = 16,  // process-side adapter received a device frame
  kLogicFire = 17,  // a logic trigger fired (windows evaluated, handler ran)
  kActuated = 18,   // actuator applied a command
  kCrash = 19,      // process crashed
  kRecover = 20,    // process recovered
  kTamper = 21,     // integrity check rejected a frame/event (bad MAC,
                    // forged origin, replayed sequence)
  kByzantine = 22,  // chaos injector performed a Byzantine attack
                    // (ground-truth marker for the integrity audit)
};
inline constexpr int kKindCount = 23;
const char* to_string(Kind k);

// The decoded view of one record. The packed arena is the source of
// truth; a Record is materialised on demand by records()/decode, with
// `detail` rendered from the typed fields in the canonical
// "key=value key=value" form (identical to what v2 stored eagerly), so
// diffing, provenance analysis and goldens keep their exact semantics.
struct Record {
  TimePoint at{};
  ProcessId process{};  // ProcessId{0} = no single process (global event)
  Component component{Component::kSim};
  Kind kind{Kind::kMark};
  // Causal id of the sensor event this record is about; invalid (all
  // zero) for records that are not scoped to one event (timers, link
  // transitions, views, faults). Typed rather than folded into `detail`
  // so trace_analyze can reconstruct per-event chains without parsing.
  ProvenanceId prov{};
  // Canonical "key=value key=value" payload, rendered at decode time.
  std::string detail;

  bool operator==(const Record&) const = default;
};

// One-line rendering: "t=12345us p2 net/send type=ring_event ...".
std::string to_string(const Record& r);

inline constexpr std::uint32_t component_bit(Component c) {
  return 1u << static_cast<std::uint32_t>(c);
}
inline constexpr std::uint32_t kAllComponents =
    (1u << kComponentCount) - 1;

// --- typed fields ---------------------------------------------------------
// One Field carries a key id and the value for that key. Emit sites build
// them with the factory helpers below (fu/fi/fp/fs/fe/fc/fa/fv); the
// factories assert in debug builds that the key's declared VType matches.
// Fields are tiny PODs passed by value — nothing here allocates.

struct FieldU {
  Key key;
  std::uint64_t v;
};
struct FieldI {
  Key key;
  std::int64_t v;
};
struct FieldPid {
  Key key;
  ProcessId v;
};
struct FieldStr {
  Key key;
  std::string_view v;  // must outlive the append call (it is copied there)
};
struct FieldEvent {
  Key key;
  EventId v;
};
struct FieldCmd {
  Key key;
  CommandId v;
};
struct FieldAct {
  Key key;
  ActuatorId v;
};
struct FieldView {
  Key key;
  const ProcessId* data;
  std::size_t n;
};

namespace detail_impl {
inline VType type_of(Key k) {
  return kKeyTable[static_cast<std::uint8_t>(k)].type;
}
template <typename T>
inline constexpr bool is_field_v = false;
template <> inline constexpr bool is_field_v<FieldU> = true;
template <> inline constexpr bool is_field_v<FieldI> = true;
template <> inline constexpr bool is_field_v<FieldPid> = true;
template <> inline constexpr bool is_field_v<FieldStr> = true;
template <> inline constexpr bool is_field_v<FieldEvent> = true;
template <> inline constexpr bool is_field_v<FieldCmd> = true;
template <> inline constexpr bool is_field_v<FieldAct> = true;
template <> inline constexpr bool is_field_v<FieldView> = true;
}  // namespace detail_impl

template <typename T>
concept IsField = detail_impl::is_field_v<std::remove_cvref_t<T>>;

inline FieldU fu(Key k, std::uint64_t v) {
  assert(detail_impl::type_of(k) == VType::kU64);
  return {k, v};
}
inline FieldI fi(Key k, std::int64_t v) {
  assert(detail_impl::type_of(k) == VType::kI64);
  return {k, v};
}
inline FieldPid fp(Key k, ProcessId v) {
  assert(detail_impl::type_of(k) == VType::kPid);
  return {k, v};
}
inline FieldStr fs(Key k, std::string_view v) {
  assert(detail_impl::type_of(k) == VType::kStr);
  return {k, v};
}
inline FieldEvent fe(Key k, EventId v) {
  assert(detail_impl::type_of(k) == VType::kEvent);
  return {k, v};
}
inline FieldCmd fc(Key k, CommandId v) {
  assert(detail_impl::type_of(k) == VType::kCmd);
  return {k, v};
}
inline FieldAct fa(Key k, ActuatorId v) {
  assert(detail_impl::type_of(k) == VType::kAct);
  return {k, v};
}
inline FieldView fv(Key k, const std::vector<ProcessId>& v) {
  assert(detail_impl::type_of(k) == VType::kView);
  return {k, v.data(), v.size()};
}

class Recorder {
 public:
  // `mask` selects which components are recorded (bitwise OR of
  // component_bit); everything else is dropped at the emit site.
  explicit Recorder(std::uint32_t mask = kAllComponents);
  ~Recorder();
  Recorder(Recorder&&) noexcept;
  Recorder& operator=(Recorder&&) noexcept;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool wants(Component c) const { return (mask_ & component_bit(c)) != 0; }
  std::uint32_t mask() const { return mask_; }

  // Append one record built from typed fields. This is the hot path: the
  // fields are packed into a scratch buffer, the header is placed
  // directly into the arena once the chunk placement (and therefore the
  // abs-vs-delta time encoding) is known, and the rolling hash is folled
  // over the packed bytes. No allocation in steady state.
  template <IsField... Fields>
  void append(TimePoint at, ProcessId process, Component component,
              Kind kind, ProvenanceId prov, const Fields&... fields) {
    if (!wants(component)) return;
    scratch_used_ = 0;
    (put_field(fields), ...);
    commit(at, process, component, kind, prov,
           static_cast<std::uint8_t>(sizeof...(Fields)));
  }
  template <IsField... Fields>
  void append(TimePoint at, ProcessId process, Component component,
              Kind kind, const Fields&... fields) {
    append(at, process, component, kind, ProvenanceId{}, fields...);
  }

  // Compatibility append for hand-built records (tests, replay tools):
  // the detail string is stored verbatim as a single bare-text field, so
  // it decodes back to an equal Record.
  void append(const Record& r);

  // Decode every retained record out of the arena. By value: each call
  // re-renders from the packed bytes (tools call this once).
  std::vector<Record> records() const;

  // Retained record count (== records().size()).
  std::size_t size() const { return retained_records_; }
  // Packed bytes currently retained (arena) plus already streamed out.
  std::size_t payload_bytes() const;

  // Rolling FNV-1a over every packed record byte ever appended, in
  // append order — the determinism fingerprint. In ring mode this still
  // covers dropped chunks; the file footer written by encode()/finish()
  // always covers exactly the bytes in the file. Hashing is lazy: bytes
  // are mixed in bulk when a chunk seals, and the open chunk's suffix is
  // folded in here — appends stay hash-free on the hot path.
  std::uint64_t hash() const {
    flush_open_hash();
    return stream_hash_.value();
  }
  // hash() as fixed-width hex.
  std::string digest() const { return hash::fnv1a_digest(hash()); }

  // --- on-disk format ----------------------------------------------------
  // magic "RIVT" | version u32 | packed records | 0xFF | count u64 |
  // hash u64 (FNV-1a stream over the packed record bytes in the file).
  std::vector<std::byte> encode() const;
  // Returns false (and sets *error) on malformed input, bad magic, a
  // non-v3 version ("unsupported trace version N (this build reads 3)"),
  // a structurally invalid record stream, trailing garbage, or a footer
  // hash that does not match the payload.
  static bool decode(const std::vector<std::byte>& buf, Recorder* out,
                     std::string* error);

  bool save(const std::string& path, std::string* error = nullptr) const;
  static bool load(const std::string& path, Recorder* out,
                   std::string* error = nullptr);

  // --- sinks --------------------------------------------------------------
  // Switch to the streaming file sink: the header is written now, each
  // chunk is flushed as it seals (its buffer is reused), and finish()
  // writes the footer. Must be called before the first append; after it,
  // records()/encode() see only the not-yet-flushed tail. Returns false
  // (and sets *error) if the file cannot be opened.
  bool stream_to(const std::string& path, std::string* error = nullptr);
  // Flush the tail and write the footer; the stream is closed and further
  // appends are discarded. No-op unless streaming.
  bool finish(std::string* error = nullptr);
  bool streaming() const { return stream_ != nullptr; }

  // Keep only the most recent ~`bytes` of packed records, dropping whole
  // sealed chunks from the front (the first retained record always
  // carries an absolute timestamp, so decoding stays exact). 0 disables.
  void set_ring_limit(std::size_t bytes) { ring_limit_ = bytes; }
  std::size_t ring_limit() const { return ring_limit_; }
  // Records dropped so far by the ring (0 outside ring mode).
  std::uint64_t dropped_records() const { return dropped_records_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::uint32_t capacity{0};
    std::uint32_t used{0};
    std::uint32_t n_records{0};
  };

  static constexpr std::size_t kChunkSize = 64 * 1024;
  // Worst-case packed header: flags + kind + time varint + process
  // varint + prov (2 varints) + nfields.
  static constexpr std::size_t kMaxHeaderBytes = 1 + 1 + 10 + 10 + 20 + 1;

  // -- scratch writers (fields section only; header is written by commit)
  void scratch_reserve(std::size_t extra) {
    if (scratch_used_ + extra > scratch_.size())
      scratch_.resize(scratch_used_ + extra < 2 * scratch_.size()
                          ? 2 * scratch_.size()
                          : scratch_used_ + extra);
  }
  void scratch_u8(std::uint8_t b) {
    scratch_reserve(1);
    scratch_[scratch_used_++] = static_cast<std::byte>(b);
  }
  void scratch_varint(std::uint64_t v) {
    scratch_reserve(kMaxVarintBytes);
    while (v >= 0x80) {
      scratch_[scratch_used_++] =
          static_cast<std::byte>(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    scratch_[scratch_used_++] = static_cast<std::byte>(v);
  }
  void put_field(const FieldU& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.v);
  }
  void put_field(const FieldI& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(zigzag(f.v));
  }
  void put_field(const FieldPid& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.v.value);
  }
  void put_field(const FieldStr& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.v.size());
    if (!f.v.empty()) {
      scratch_reserve(f.v.size());
      std::memcpy(scratch_.data() + scratch_used_, f.v.data(), f.v.size());
      scratch_used_ += f.v.size();
    }
  }
  void put_field(const FieldEvent& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.v.sensor.value);
    scratch_varint(f.v.seq);
  }
  void put_field(const FieldCmd& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.v.origin.value);
    scratch_varint(f.v.seq);
  }
  void put_field(const FieldAct& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.v.value);
  }
  void put_field(const FieldView& f) {
    scratch_u8(static_cast<std::uint8_t>(f.key));
    scratch_varint(f.n);
    for (std::size_t i = 0; i < f.n; ++i) scratch_varint(f.data[i].value);
  }

  // Place header + scratch fields into the arena.
  void commit(TimePoint at, ProcessId process, Component component,
              Kind kind, ProvenanceId prov, std::uint8_t nfields);
  void seal_chunk();            // current chunk is done; next append opens
  void enforce_ring_limit();    // drop front chunks past ring_limit_
  Chunk& writable_chunk(std::size_t need);  // chunk with `need` bytes free
  // Mix the back chunk's not-yet-hashed suffix into stream_hash_.
  // Invariant: every chunk except the back one is fully hashed; the back
  // chunk is hashed up to open_hashed_.
  void flush_open_hash() const;

  std::uint32_t mask_;
  std::vector<Chunk> chunks_;
  bool chunk_open_{false};      // next record continues the current chunk
  TimePoint last_time_{};       // delta-encoding base
  std::size_t retained_records_{0};
  std::uint64_t dropped_records_{0};
  mutable hash::Fnv1aStream stream_hash_;
  mutable std::uint32_t open_hashed_{0};  // hashed bytes of the back chunk

  std::vector<std::byte> scratch_;  // fields section of the in-flight record
  std::size_t scratch_used_{0};

  // streaming sink
  struct StreamState;
  std::unique_ptr<StreamState> stream_;
  std::uint64_t streamed_bytes_{0};
  std::uint64_t streamed_records_{0};
  Chunk spare_;  // recycled buffer for the next chunk after a flush

  std::size_t ring_limit_{0};
};

// --- the current recorder ------------------------------------------------
// The simulator is single-threaded, so "current recorder" is one module-
// level pointer. thread_local so each lane of a parallel seed sweep can
// install its own recorder. Scope installs a recorder RAII-style (nesting
// restores the previous one), and emit()/active() are the only calls
// instrumented code makes.

Recorder* current();
namespace detail_impl {
extern thread_local Recorder* g_current;
}

class Scope {
 public:
  explicit Scope(Recorder& r);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Recorder* prev_;
};

// Fast gate: is a recorder installed and interested in this component?
// Emit sites check this before gathering field values.
bool active(Component c);

// Append to the current recorder; no-op when none is installed or the
// component is masked out.
template <IsField... Fields>
inline void emit(TimePoint at, ProcessId process, Component component,
                 Kind kind, const Fields&... fields) {
  Recorder* r = detail_impl::g_current;
  if (r == nullptr || !r->wants(component)) return;
  r->append(at, process, component, kind, fields...);
}
// Same, with the causal id of the sensor event the record is about.
template <IsField... Fields>
inline void emit(TimePoint at, ProcessId process, Component component,
                 Kind kind, ProvenanceId prov, const Fields&... fields) {
  Recorder* r = detail_impl::g_current;
  if (r == nullptr || !r->wants(component)) return;
  r->append(at, process, component, kind, prov, fields...);
}

// Free-form annotation convenience (scenario marks, link transitions):
// stores the text as one bare kText field.
void emit_text(TimePoint at, ProcessId process, Component component,
               Kind kind, std::string_view text);
void emit_text(TimePoint at, ProcessId process, Component component,
               Kind kind, ProvenanceId prov, std::string_view text);

}  // namespace riv::trace
