// Causal provenance analysis over flight-recorder traces.
//
// Every sensor event carries a ProvenanceId from the moment the device
// emits it, and every pipeline layer stamps that id into its trace
// records. This module reads a recorded trace back and reconstructs, per
// event, the causal chain through the fixed stage pipeline
//
//   generated -> adapter_rx -> ingested -> delivered -> logic_fired
//             -> command_sent -> actuated
//
// from which it derives per-stage ("leg") latency distributions, an
// end-to-end distribution, orphaned events (ingested but never delivered,
// classified by cause: still in flight when the trace ended, or stranded
// on crashed hosts), duplicate deliveries (same event fed twice to the
// same logic incarnation), and fault attribution: tail-latency events
// joined by overlap against the chaos injector's fault records, so a slow
// event can be blamed on the specific fault id that delayed it.
//
// Latency distributions use metrics::Histogram (constant memory, <=6.25%
// relative percentile error), so analysis cost is linear in the trace and
// does not retain per-event samples.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace riv::trace {

// The canonical pipeline stages, in causal order. A chain need not visit
// every stage (a gap-guarantee event skips fallback machinery; an event
// that merely feeds a window fires no command), but the stages it does
// visit must be time-ordered.
enum class Stage : int {
  kGenerated = 0,    // device emitted the event          (kEmit)
  kAdapterRx = 1,    // a process adapter received it     (kAdapterRx)
  kIngested = 2,     // a delivery stream accepted it     (kIngest)
  kDelivered = 3,    // fed to the active logic node      (kDeliver)
  kLogicFired = 4,   // logic trigger fired with it as cause (kLogicFire)
  kCommandSent = 5,  // actuation command submitted       (kCommand)
  kActuated = 6,     // actuator applied the command      (kActuated)
};
inline constexpr int kStageCount = 7;
const char* to_string(Stage s);

// The reconstructed pipeline of one sensor event. Times are microseconds
// of virtual time; -1 marks a stage the event never reached. `first` is
// the stage's earliest occurrence anywhere in the home, which is the
// causal frontier (later occurrences are replication/failover echoes).
struct Chain {
  ProvenanceId id{};
  std::array<std::int64_t, kStageCount> first_us{};
  std::array<std::uint32_t, kStageCount> count{};
  // Every process that ingested the event (orphan classification needs to
  // know whether all of them died).
  std::vector<ProcessId> ingest_processes;

  Chain() { first_us.fill(-1); }
  bool reached(Stage s) const {
    return first_us[static_cast<std::size_t>(s)] >= 0;
  }
  std::int64_t at(Stage s) const {
    return first_us[static_cast<std::size_t>(s)];
  }
  // Latest stage timestamp present (-1 for an empty chain).
  std::int64_t last_activity_us() const;
};

// An event that was ingested by at least one delivery stream but never
// reached the active logic node.
struct Orphan {
  ProvenanceId id{};
  std::int64_t last_activity_us{-1};
  // "in_flight_at_end" — last activity within the grace window of the end
  //   of the trace; delivery was plausibly still in progress.
  // "crashed_host"    — every process that ingested it was down when the
  //   trace ended; the event died with its hosts.
  // "unexplained"     — none of the above; a real delivery bug.
  std::string reason;
  bool explained() const { return reason != "unexplained"; }
};

// The same event fed twice to the same (process, app) logic node within
// one promotion epoch — i.e. not a legitimate failover re-delivery.
struct Duplicate {
  ProvenanceId id{};
  ProcessId process{};
  std::uint32_t app{0};
  std::uint32_t deliveries{0};  // within the offending epoch
};

// One fault the chaos injector applied, parsed from its kFault record
// ("id=N <action...>").
struct FaultSpan {
  int fault_id{0};
  std::int64_t at_us{0};
  std::string what;
};

// A chain whose end-to-end latency reached the tail quantile, joined
// against the faults that overlapped its lifetime.
struct TailEvent {
  ProvenanceId id{};
  std::int64_t e2e_us{0};
  std::vector<int> fault_ids;  // empty = slow for no injected reason
};

struct AnalyzeOptions {
  // Orphans whose last activity is within `grace` of the end of the trace
  // are classed in_flight_at_end (traces routinely end mid-convergence).
  Duration grace{seconds(5)};
  // e2e latency at or above this quantile counts as a tail event.
  double tail_quantile{0.99};
  // A fault is blamed for a tail chain when it fired inside
  // [generated - fault_window, last stage] of that chain.
  Duration fault_window{seconds(10)};
};

struct Analysis {
  std::size_t n_records{0};
  std::size_t n_chains{0};
  std::int64_t trace_end_us{0};

  // How many chains reached each stage.
  std::array<std::uint64_t, kStageCount> stage_chains{};
  // Legs: leg[i] is the stage(i-1) -> stage(i) latency over chains that
  // reached both endpoints (leg[0] is unused). Skipped stages do not
  // contribute (the leg spans only adjacent present stages).
  std::array<metrics::Histogram, kStageCount> leg{};
  // generated -> delivered (the latency bench_fig4 measures).
  metrics::Histogram e2e_delivery;
  // generated -> actuated, over chains that closed the full loop.
  metrics::Histogram e2e_full;

  std::vector<Orphan> orphans;
  std::vector<Duplicate> duplicates;
  std::vector<FaultSpan> faults;
  std::vector<TailEvent> tails;

  // Stage first-occurrence ordering violations ("event s1#7: delivered at
  // 1.2s before ingested at 1.3s"). Empty on a causally sound trace.
  std::vector<std::string> ordering_violations;

  std::size_t unexplained_orphans() const;
  int stages_present() const;  // stages reached by at least one chain
};

// Reconstruct chains and derive the full report from a decoded trace.
Analysis analyze(const std::vector<Record>& records,
                 const AnalyzeOptions& opt = {});

// Human-readable report (multi-line, aligned).
std::string render(const Analysis& a);
// Machine-readable JSON document with the same content.
std::string render_json(const Analysis& a);

// Health verdict used by CI: a trace passes when it has no unexplained
// orphans, no duplicate deliveries, and no stage-ordering violations.
struct CheckResult {
  bool ok{true};
  std::vector<std::string> problems;
};
CheckResult check(const Analysis& a);

// --- Byzantine integrity audit (DESIGN §12) -----------------------------
//
// The chaos injector stamps every attack it performs with a ground-truth
// kByzantine marker carrying the fault id. The audit walks the trace and
// demands that every marker is accounted for by detector evidence:
//
//   spoof  -> a runtime kTamper("spoof")  rejecting that exact event at
//             the targeted process (MAC over all fields + origin chain);
//   replay -> a runtime kTamper("replay") for that event/process (the
//             per-origin seq history refuses the repeat);
//   mutate -> a kTamper("bad_mac") at the destination for that
//             (type, src) frame — or, when the simulated network ate the
//             frame first, the matching kDrop record (classed `lost`, not
//             missed: the attack never reached a detector);
//   dup    -> >= 2 network records for the (type, src, dst) frame at the
//             marker instant (each transmitted copy logs exactly one);
//   drop   -> the kDrop reason=byzantine record the network logs when the
//             interposer eats a frame.
//
// Evidence is consumed greedily in time order, so N attacks need N pieces
// of evidence. Detector records left over after matching (a kTamper or
// byzantine kDrop with no marker) are reported as unattributed — on a
// clean non-adversarial trace both sides are empty by construction, which
// is what CI's golden audit asserts.

// One injected attack (ground-truth marker) and what the audit found.
struct AuditFinding {
  // forged_origin | replayed_seq | mutated_payload | duplicated_forward |
  // dropped_by_corrupt_host
  std::string cls;
  std::uint64_t fault_id{0};
  std::int64_t at_us{0};   // when the attack was performed
  std::string attack;      // human description of the injected attack
  std::string evidence;    // matched trace evidence (empty when missed)
  bool detected{false};    // an integrity detector rejected/witnessed it
  bool lost{false};        // frame provably died in the network first
};

struct Audit {
  std::size_t n_records{0};
  std::size_t attacks{0};               // ground-truth markers seen
  std::vector<AuditFinding> findings;   // one per marker, trace order
  std::size_t detected{0};
  std::size_t lost{0};
  std::size_t missed{0};                // neither detected nor lost
  // Per-class detected counts, keyed by AuditFinding::cls.
  std::map<std::string, std::size_t> by_class;
  // Detector evidence that matched no marker (must be empty: a tamper
  // verdict with no injected cause is either a false positive or an
  // attack the harness does not know about).
  std::vector<std::string> unattributed;
  bool all_accounted() const { return missed == 0 && unattributed.empty(); }
};

// Match every kByzantine marker against detector evidence in the trace.
Audit audit(const std::vector<Record>& records);

std::string render(const Audit& a);
std::string render_json(const Audit& a);

// CI verdict: every injected attack accounted for (detected or provably
// lost in the network) and no unattributed detector evidence.
CheckResult check(const Audit& a);

}  // namespace riv::trace
