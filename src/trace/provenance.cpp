#include "trace/provenance.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

namespace riv::trace {

namespace {

// Pull "key=value" out of a canonical detail string; empty when absent.
std::string_view detail_value(std::string_view detail,
                              std::string_view key) {
  std::size_t pos = 0;
  while (pos < detail.size()) {
    std::size_t end = detail.find(' ', pos);
    if (end == std::string_view::npos) end = detail.size();
    std::string_view token = detail.substr(pos, end - pos);
    if (token.size() > key.size() + 1 &&
        token.substr(0, key.size()) == key && token[key.size()] == '=')
      return token.substr(key.size() + 1);
    pos = end + 1;
  }
  return {};
}

std::uint64_t parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

Stage stage_of(Kind k) {
  switch (k) {
    case Kind::kEmit: return Stage::kGenerated;
    case Kind::kAdapterRx: return Stage::kAdapterRx;
    case Kind::kIngest: return Stage::kIngested;
    case Kind::kDeliver: return Stage::kDelivered;
    case Kind::kLogicFire: return Stage::kLogicFired;
    case Kind::kCommand: return Stage::kCommandSent;
    case Kind::kActuated: return Stage::kActuated;
    default: return static_cast<Stage>(-1);
  }
}

std::string fmt_ms(std::int64_t us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(us) / 1e3);
  return buf;
}

std::string fmt_s(std::int64_t us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs",
                static_cast<double>(us) / 1e6);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void hist_json(std::string& out, const char* name,
               const metrics::Histogram& h) {
  out += '"';
  out += name;
  out += "\":{\"count\":" + std::to_string(h.count());
  out += ",\"p50_us\":" + std::to_string(h.percentile(0.5).us);
  out += ",\"p99_us\":" + std::to_string(h.percentile(0.99).us);
  out += ",\"max_us\":" + std::to_string(h.max().us);
  out += ",\"mean_us\":" + std::to_string(h.mean().us);
  out += '}';
}

}  // namespace

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kGenerated: return "generated";
    case Stage::kAdapterRx: return "adapter_rx";
    case Stage::kIngested: return "ingested";
    case Stage::kDelivered: return "delivered";
    case Stage::kLogicFired: return "logic_fired";
    case Stage::kCommandSent: return "command_sent";
    case Stage::kActuated: return "actuated";
  }
  return "?";
}

std::int64_t Chain::last_activity_us() const {
  std::int64_t last = -1;
  for (std::int64_t t : first_us) last = std::max(last, t);
  return last;
}

std::size_t Analysis::unexplained_orphans() const {
  std::size_t n = 0;
  for (const Orphan& o : orphans)
    if (!o.explained()) ++n;
  return n;
}

int Analysis::stages_present() const {
  int n = 0;
  for (std::uint64_t c : stage_chains)
    if (c > 0) ++n;
  return n;
}

Analysis analyze(const std::vector<Record>& records,
                 const AnalyzeOptions& opt) {
  Analysis a;
  a.n_records = records.size();

  std::map<ProvenanceId, Chain> chains;
  std::map<ProvenanceId, std::int64_t> last_seen;

  // Promotion epochs: failover legitimately re-delivers an event to the
  // newly promoted logic node, so duplicate detection is scoped to one
  // (process, app) promotion epoch.
  std::map<std::pair<std::uint16_t, std::uint32_t>, std::uint32_t> epoch;
  struct DeliverKey {
    ProvenanceId id;
    std::uint16_t process;
    std::uint32_t app;
    std::uint32_t epoch;
    auto operator<=>(const DeliverKey&) const = default;
  };
  std::map<DeliverKey, std::uint32_t> deliver_counts;

  std::set<std::uint16_t> down;  // processes crashed and not yet recovered

  for (const Record& r : records) {
    a.trace_end_us = std::max(a.trace_end_us, r.at.us);

    switch (r.kind) {
      case Kind::kPromote: {
        std::uint32_t app = static_cast<std::uint32_t>(
            parse_u64(detail_value(r.detail, "app")));
        ++epoch[{r.process.value, app}];
        break;
      }
      case Kind::kCrash:
        down.insert(r.process.value);
        break;
      case Kind::kRecover:
        down.erase(r.process.value);
        break;
      case Kind::kFault: {
        std::string_view id = detail_value(r.detail, "id");
        if (!id.empty()) {
          FaultSpan f;
          f.fault_id = static_cast<int>(parse_u64(id));
          f.at_us = r.at.us;
          std::size_t sp = r.detail.find(' ');
          f.what = sp == std::string::npos ? std::string{}
                                          : r.detail.substr(sp + 1);
          a.faults.push_back(std::move(f));
        }
        break;
      }
      default:
        break;
    }

    if (!r.prov.valid()) continue;
    Stage s = stage_of(r.kind);
    if (static_cast<int>(s) < 0) continue;

    Chain& c = chains[r.prov];
    c.id = r.prov;
    std::size_t si = static_cast<std::size_t>(s);
    if (c.first_us[si] < 0) c.first_us[si] = r.at.us;
    ++c.count[si];
    last_seen[r.prov] = std::max(last_seen[r.prov], r.at.us);

    if (s == Stage::kIngested) {
      if (std::find(c.ingest_processes.begin(), c.ingest_processes.end(),
                    r.process) == c.ingest_processes.end())
        c.ingest_processes.push_back(r.process);
    }
    if (s == Stage::kDelivered) {
      std::uint32_t app = static_cast<std::uint32_t>(
          parse_u64(detail_value(r.detail, "app")));
      DeliverKey key{r.prov, r.process.value, app,
                     epoch[{r.process.value, app}]};
      ++deliver_counts[key];
    }
  }

  a.n_chains = chains.size();

  for (const auto& [key, n] : deliver_counts) {
    if (n <= 1) continue;
    Duplicate d;
    d.id = key.id;
    d.process = ProcessId{key.process};
    d.app = key.app;
    d.deliveries = n;
    a.duplicates.push_back(d);
  }

  // Per-chain derivations: stage coverage, leg latencies, e2e, ordering,
  // orphan classification.
  for (const auto& [id, c] : chains) {
    for (int i = 0; i < kStageCount; ++i)
      if (c.first_us[static_cast<std::size_t>(i)] >= 0)
        ++a.stage_chains[static_cast<std::size_t>(i)];

    for (int i = 1; i < kStageCount; ++i) {
      Stage cur = static_cast<Stage>(i);
      Stage prev = static_cast<Stage>(i - 1);
      if (c.reached(cur) && c.reached(prev))
        a.leg[static_cast<std::size_t>(i)].record_us(c.at(cur) -
                                                     c.at(prev));
    }
    if (c.reached(Stage::kGenerated) && c.reached(Stage::kDelivered))
      a.e2e_delivery.record_us(c.at(Stage::kDelivered) -
                               c.at(Stage::kGenerated));
    if (c.reached(Stage::kGenerated) && c.reached(Stage::kActuated))
      a.e2e_full.record_us(c.at(Stage::kActuated) -
                           c.at(Stage::kGenerated));

    std::int64_t prev_t = -1;
    Stage prev_s = Stage::kGenerated;
    for (int i = 0; i < kStageCount; ++i) {
      Stage s = static_cast<Stage>(i);
      if (!c.reached(s)) continue;
      if (prev_t >= 0 && c.at(s) < prev_t) {
        a.ordering_violations.push_back(
            "event " + riv::to_string(id) + ": " + to_string(s) +
            " at " + fmt_s(c.at(s)) + " before " + to_string(prev_s) +
            " at " + fmt_s(prev_t));
      }
      prev_t = c.at(s);
      prev_s = s;
    }

    if (c.reached(Stage::kIngested) && !c.reached(Stage::kDelivered)) {
      Orphan o;
      o.id = id;
      auto it = last_seen.find(id);
      o.last_activity_us = it == last_seen.end() ? c.last_activity_us()
                                                 : it->second;
      if (o.last_activity_us >= a.trace_end_us - opt.grace.us) {
        o.reason = "in_flight_at_end";
      } else {
        bool all_down = !c.ingest_processes.empty();
        for (ProcessId p : c.ingest_processes)
          if (down.count(p.value) == 0) all_down = false;
        o.reason = all_down ? "crashed_host" : "unexplained";
      }
      a.orphans.push_back(std::move(o));
    }
  }

  // Tail attribution: chains whose delivery e2e reached the tail quantile,
  // joined against faults overlapping [generated - window, last stage].
  std::int64_t threshold =
      a.e2e_delivery.percentile(opt.tail_quantile).us;
  if (!a.e2e_delivery.empty()) {
    for (const auto& [id, c] : chains) {
      if (!c.reached(Stage::kGenerated) || !c.reached(Stage::kDelivered))
        continue;
      std::int64_t e2e = c.at(Stage::kDelivered) - c.at(Stage::kGenerated);
      if (e2e < threshold) continue;
      TailEvent t;
      t.id = id;
      t.e2e_us = e2e;
      std::int64_t lo = c.at(Stage::kGenerated) - opt.fault_window.us;
      std::int64_t hi = c.last_activity_us();
      for (const FaultSpan& f : a.faults)
        if (f.at_us >= lo && f.at_us <= hi) t.fault_ids.push_back(f.fault_id);
      a.tails.push_back(std::move(t));
    }
    std::sort(a.tails.begin(), a.tails.end(),
              [](const TailEvent& x, const TailEvent& y) {
                if (x.e2e_us != y.e2e_us) return x.e2e_us > y.e2e_us;
                return x.id < y.id;
              });
  }

  return a;
}

std::string render(const Analysis& a) {
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf),
                "trace: %zu records, %zu event chains, ends at %s\n",
                a.n_records, a.n_chains, fmt_s(a.trace_end_us).c_str());
  out += buf;

  out += "stage coverage (chains reaching each stage):\n";
  for (int i = 0; i < kStageCount; ++i) {
    std::snprintf(buf, sizeof(buf), "  %-13s %8llu\n",
                  to_string(static_cast<Stage>(i)),
                  static_cast<unsigned long long>(
                      a.stage_chains[static_cast<std::size_t>(i)]));
    out += buf;
  }

  out += "per-stage latency (p50 / p99 / max):\n";
  std::int64_t sum_medians = 0;
  for (int i = 1; i < kStageCount; ++i) {
    const metrics::Histogram& h = a.leg[static_cast<std::size_t>(i)];
    if (h.empty()) continue;
    std::snprintf(buf, sizeof(buf),
                  "  %-11s -> %-13s %12s / %12s / %12s  (n=%zu)\n",
                  to_string(static_cast<Stage>(i - 1)),
                  to_string(static_cast<Stage>(i)),
                  fmt_ms(h.percentile(0.5).us).c_str(),
                  fmt_ms(h.percentile(0.99).us).c_str(),
                  fmt_ms(h.max().us).c_str(), h.count());
    out += buf;
    if (i <= static_cast<int>(Stage::kDelivered))
      sum_medians += h.percentile(0.5).us;
  }

  if (!a.e2e_delivery.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "e2e generated -> delivered: p50 %s  p99 %s  max %s  "
                  "(n=%zu)\n",
                  fmt_ms(a.e2e_delivery.percentile(0.5).us).c_str(),
                  fmt_ms(a.e2e_delivery.percentile(0.99).us).c_str(),
                  fmt_ms(a.e2e_delivery.max().us).c_str(),
                  a.e2e_delivery.count());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  sum of leg medians on the delivery path: %s\n",
                  fmt_ms(sum_medians).c_str());
    out += buf;
  }
  if (!a.e2e_full.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "e2e generated -> actuated : p50 %s  p99 %s  max %s  "
                  "(n=%zu)\n",
                  fmt_ms(a.e2e_full.percentile(0.5).us).c_str(),
                  fmt_ms(a.e2e_full.percentile(0.99).us).c_str(),
                  fmt_ms(a.e2e_full.max().us).c_str(),
                  a.e2e_full.count());
    out += buf;
  }

  std::size_t in_flight = 0, crashed = 0;
  for (const Orphan& o : a.orphans) {
    if (o.reason == "in_flight_at_end") ++in_flight;
    if (o.reason == "crashed_host") ++crashed;
  }
  std::snprintf(buf, sizeof(buf),
                "orphans: %zu (%zu in_flight_at_end, %zu crashed_host, "
                "%zu unexplained)\n",
                a.orphans.size(), in_flight, crashed,
                a.unexplained_orphans());
  out += buf;
  for (const Orphan& o : a.orphans) {
    if (o.explained()) continue;
    out += "  UNEXPLAINED " + riv::to_string(o.id) + " last activity " +
           fmt_s(o.last_activity_us) + "\n";
  }

  std::snprintf(buf, sizeof(buf), "duplicate deliveries: %zu\n",
                a.duplicates.size());
  out += buf;
  for (const Duplicate& d : a.duplicates) {
    std::snprintf(buf, sizeof(buf),
                  "  DUPLICATE %s delivered %u times to p%u app %u within "
                  "one promotion epoch\n",
                  riv::to_string(d.id).c_str(), d.deliveries,
                  d.process.value, d.app);
    out += buf;
  }

  std::snprintf(buf, sizeof(buf), "faults injected: %zu\n",
                a.faults.size());
  out += buf;

  std::size_t attributed = 0;
  for (const TailEvent& t : a.tails)
    if (!t.fault_ids.empty()) ++attributed;
  std::snprintf(buf, sizeof(buf),
                "tail events (e2e >= p99): %zu, %zu attributed to faults\n",
                a.tails.size(), attributed);
  out += buf;
  std::size_t shown = 0;
  for (const TailEvent& t : a.tails) {
    if (shown++ >= 10) {
      std::snprintf(buf, sizeof(buf), "  ... %zu more\n",
                    a.tails.size() - 10);
      out += buf;
      break;
    }
    out += "  " + riv::to_string(t.id) + " e2e=" + fmt_ms(t.e2e_us) +
           " faults=[";
    for (std::size_t i = 0; i < t.fault_ids.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(t.fault_ids[i]);
    }
    out += "]\n";
  }

  if (!a.ordering_violations.empty()) {
    std::snprintf(buf, sizeof(buf), "stage-ordering violations: %zu\n",
                  a.ordering_violations.size());
    out += buf;
    for (const std::string& v : a.ordering_violations)
      out += "  " + v + "\n";
  }

  return out;
}

std::string render_json(const Analysis& a) {
  std::string out = "{";
  out += "\"records\":" + std::to_string(a.n_records);
  out += ",\"chains\":" + std::to_string(a.n_chains);
  out += ",\"trace_end_us\":" + std::to_string(a.trace_end_us);
  out += ",\"stages\":{";
  for (int i = 0; i < kStageCount; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += to_string(static_cast<Stage>(i));
    out += "\":" +
           std::to_string(a.stage_chains[static_cast<std::size_t>(i)]);
  }
  out += "},\"legs\":{";
  bool first = true;
  for (int i = 1; i < kStageCount; ++i) {
    const metrics::Histogram& h = a.leg[static_cast<std::size_t>(i)];
    if (h.empty()) continue;
    if (!first) out += ',';
    first = false;
    std::string name = std::string(to_string(static_cast<Stage>(i - 1))) +
                       "->" + to_string(static_cast<Stage>(i));
    hist_json(out, name.c_str(), h);
  }
  out += "},";
  hist_json(out, "e2e_delivery", a.e2e_delivery);
  out += ',';
  hist_json(out, "e2e_full", a.e2e_full);

  out += ",\"orphans\":[";
  for (std::size_t i = 0; i < a.orphans.size(); ++i) {
    const Orphan& o = a.orphans[i];
    if (i > 0) out += ',';
    out += "{\"event\":\"" + json_escape(riv::to_string(o.id)) +
           "\",\"last_activity_us\":" +
           std::to_string(o.last_activity_us) + ",\"reason\":\"" +
           json_escape(o.reason) + "\"}";
  }
  out += "],\"duplicates\":[";
  for (std::size_t i = 0; i < a.duplicates.size(); ++i) {
    const Duplicate& d = a.duplicates[i];
    if (i > 0) out += ',';
    out += "{\"event\":\"" + json_escape(riv::to_string(d.id)) +
           "\",\"process\":" + std::to_string(d.process.value) +
           ",\"app\":" + std::to_string(d.app) +
           ",\"deliveries\":" + std::to_string(d.deliveries) + "}";
  }
  out += "],\"faults\":[";
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    const FaultSpan& f = a.faults[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(f.fault_id) +
           ",\"at_us\":" + std::to_string(f.at_us) + ",\"what\":\"" +
           json_escape(f.what) + "\"}";
  }
  out += "],\"tails\":[";
  for (std::size_t i = 0; i < a.tails.size(); ++i) {
    const TailEvent& t = a.tails[i];
    if (i > 0) out += ',';
    out += "{\"event\":\"" + json_escape(riv::to_string(t.id)) +
           "\",\"e2e_us\":" + std::to_string(t.e2e_us) + ",\"faults\":[";
    for (std::size_t j = 0; j < t.fault_ids.size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(t.fault_ids[j]);
    }
    out += "]}";
  }
  out += "],\"ordering_violations\":[";
  for (std::size_t i = 0; i < a.ordering_violations.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(a.ordering_violations[i]) + '"';
  }
  out += "]}";
  return out;
}

CheckResult check(const Analysis& a) {
  CheckResult r;
  for (const Orphan& o : a.orphans) {
    if (o.explained()) continue;
    r.problems.push_back("unexplained orphan " + riv::to_string(o.id) +
                         " (ingested, never delivered, hosts alive)");
  }
  for (const Duplicate& d : a.duplicates) {
    r.problems.push_back(
        "duplicate delivery of " + riv::to_string(d.id) + " to p" +
        std::to_string(d.process.value) + " app " + std::to_string(d.app) +
        " (" + std::to_string(d.deliveries) + "x in one epoch)");
  }
  for (const std::string& v : a.ordering_violations)
    r.problems.push_back("stage ordering: " + v);
  r.ok = r.problems.empty();
  return r;
}

// --- Byzantine integrity audit ------------------------------------------

namespace {

// The kText field renders bare (no "name=" prefix), so the attack /
// verdict word is the one token without '=' in a canonical detail string.
std::string_view bare_text(std::string_view detail) {
  std::size_t pos = 0;
  while (pos < detail.size()) {
    std::size_t end = detail.find(' ', pos);
    if (end == std::string_view::npos) end = detail.size();
    std::string_view token = detail.substr(pos, end - pos);
    if (!token.empty() && token.find('=') == std::string_view::npos)
      return token;
    pos = end + 1;
  }
  return {};
}

// "pN" -> N (0 when absent/malformed).
std::uint64_t parse_pid(std::string_view s) {
  if (s.size() < 2 || s[0] != 'p') return 0;
  return parse_u64(s.substr(1));
}

// A ground-truth kByzantine marker, fields parsed once.
struct Marker {
  std::int64_t at{0};
  std::uint64_t fault_id{0};
  std::string what;        // spoof|replay|mutate|dup|drop
  ProvenanceId prov{};     // device attacks (spoof/replay)
  std::string type;        // net attacks (mutate/dup/drop)
  std::uint64_t src{0};
  std::uint64_t dst{0};
};

// A runtime kTamper verdict awaiting attribution.
struct TamperRec {
  std::int64_t at{0};
  std::uint64_t process{0};  // the rejecting process
  std::string what;          // spoof|replay|bad_mac
  ProvenanceId prov{};       // spoof/replay
  std::string type;          // bad_mac
  std::uint64_t src{0};      // bad_mac
  bool used{false};
};

// One network-layer record for a frame: a transmitted copy (kSend or an
// at-send kDrop) or a loss/byzantine drop.
struct NetRec {
  std::int64_t at{0};
  bool is_drop{false};
  std::string reason;  // empty for kSend
  bool used{false};
};

std::string fmt_at(std::int64_t us) { return "t=" + fmt_s(us); }

}  // namespace

Audit audit(const std::vector<Record>& records) {
  Audit a;
  a.n_records = records.size();

  std::vector<Marker> markers;
  std::vector<TamperRec> tampers;
  // Byzantine drops and per-frame transmission records, keyed by the
  // frame tuple. Vectors stay time-ordered (records are).
  using FrameKey = std::tuple<std::string, std::uint64_t, std::uint64_t>;
  std::map<FrameKey, std::vector<NetRec>> frames;

  for (const Record& r : records) {
    if (r.kind == Kind::kByzantine) {
      Marker m;
      m.at = r.at.us;
      m.fault_id = parse_u64(detail_value(r.detail, "id"));
      m.what = std::string(bare_text(r.detail));
      m.prov = r.prov;
      m.type = std::string(detail_value(r.detail, "type"));
      m.src = parse_pid(detail_value(r.detail, "src"));
      m.dst = parse_pid(detail_value(r.detail, "dst"));
      markers.push_back(std::move(m));
    } else if (r.kind == Kind::kTamper) {
      TamperRec t;
      t.at = r.at.us;
      t.process = r.process.value;
      t.what = std::string(bare_text(r.detail));
      t.prov = r.prov;
      t.type = std::string(detail_value(r.detail, "type"));
      t.src = parse_pid(detail_value(r.detail, "src"));
      tampers.push_back(std::move(t));
    } else if (r.component == Component::kNet &&
               (r.kind == Kind::kSend || r.kind == Kind::kDrop)) {
      std::string type(detail_value(r.detail, "type"));
      if (type.empty()) continue;
      NetRec n;
      n.at = r.at.us;
      n.is_drop = r.kind == Kind::kDrop;
      if (n.is_drop) n.reason = std::string(detail_value(r.detail, "reason"));
      frames[{std::move(type), parse_pid(detail_value(r.detail, "src")),
              parse_pid(detail_value(r.detail, "dst"))}]
          .push_back(std::move(n));
    }
  }

  a.attacks = markers.size();

  // Match each marker greedily in trace order, consuming evidence so N
  // identical attacks demand N independent pieces of evidence. Mutates
  // are only classified here; their evidence is resolved in a second
  // pass below, which needs the full per-key marker set at once.
  std::map<FrameKey, std::vector<std::size_t>> mutate_idx;
  for (const Marker& m : markers) {
    AuditFinding f;
    f.fault_id = m.fault_id;
    f.at_us = m.at;

    auto claim_tamper = [&](const char* verdict,
                            auto&& match) -> TamperRec* {
      for (TamperRec& t : tampers) {
        if (t.used || t.what != verdict || t.at < m.at) continue;
        if (!match(t)) continue;
        t.used = true;
        return &t;
      }
      return nullptr;
    };

    if (m.what == "spoof" || m.what == "replay") {
      f.cls = m.what == "spoof" ? "forged_origin" : "replayed_seq";
      f.attack = m.what + " of " + riv::to_string(m.prov) + " -> p" +
                 std::to_string(m.dst);
      // Device dispatch is synchronous: the verdict lands at the marker
      // instant, at the targeted process, for that exact event.
      if (TamperRec* t = claim_tamper(m.what.c_str(), [&](const TamperRec& t) {
            return t.process == m.dst && t.prov == m.prov;
          })) {
        f.detected = true;
        f.evidence = "rejected by p" + std::to_string(t->process) + " (" +
                     t->what + ", " + fmt_at(t->at) + ")";
      }
    } else if (m.what == "mutate") {
      f.cls = "mutated_payload";
      f.attack = "mutate " + m.type + " p" + std::to_string(m.src) + " -> p" +
                 std::to_string(m.dst);
      mutate_idx[{m.type, m.src, m.dst}].push_back(a.findings.size());
    } else if (m.what == "dup") {
      f.cls = "duplicated_forward";
      f.attack = "duplicate " + m.type + " p" + std::to_string(m.src) +
                 " -> p" + std::to_string(m.dst);
      // Each transmitted copy logs exactly one at-send record (kSend, or
      // kDrop unreachable/edge_loss) at the marker instant; two copies on
      // the wire is the attack's network-visible signature.
      auto it = frames.find({m.type, m.src, m.dst});
      std::size_t copies = 0;
      if (it != frames.end()) {
        for (NetRec& n : it->second) {
          if (n.used || n.at != m.at) continue;
          if (n.is_drop && n.reason != "edge_loss" &&
              n.reason != "unreachable")
            continue;
          n.used = true;
          if (++copies == 2) break;
        }
      }
      if (copies >= 2) {
        f.detected = true;
        f.evidence = "2 copies on the air at " + fmt_at(m.at);
      }
    } else if (m.what == "drop") {
      f.cls = "dropped_by_corrupt_host";
      f.attack = "drop " + m.type + " p" + std::to_string(m.src) + " -> p" +
                 std::to_string(m.dst);
      auto it = frames.find({m.type, m.src, m.dst});
      if (it != frames.end()) {
        for (NetRec& n : it->second) {
          if (n.used || !n.is_drop || n.at != m.at ||
              n.reason != "byzantine")
            continue;
          n.used = true;
          f.detected = true;
          f.evidence = "kDrop reason=byzantine at " + fmt_at(n.at);
          break;
        }
      }
    } else {
      f.cls = "unknown_attack";
      f.attack = m.what;
    }

    a.findings.push_back(std::move(f));
  }

  // Resolve mutate markers per frame key. A bad_mac verdict can ONLY
  // come from a mutated frame (a genuinely sealed frame never fails the
  // MAC), so every verdict belongs to some marker — assign each verdict
  // to the LATEST still-open marker at or before it. Assigning earliest-
  // first instead would let a marker whose frame died in the network
  // swallow a verdict belonging to a later attack, whose own loss drops
  // all lie in the past — misreporting a detected attack as missed.
  for (auto& [key, idxs] : mutate_idx) {
    for (TamperRec& t : tampers) {
      if (t.used || t.what != "bad_mac") continue;
      if (t.process != std::get<2>(key) || t.src != std::get<1>(key) ||
          t.type != std::get<0>(key))
        continue;
      std::size_t* best = nullptr;
      for (std::size_t& i : idxs) {
        if (a.findings[i].detected || a.findings[i].lost) continue;
        if (a.findings[i].at_us > t.at) break;  // idxs are time-ordered
        best = &i;
      }
      if (best == nullptr) continue;  // leave unattributed
      t.used = true;
      AuditFinding& f = a.findings[*best];
      f.detected = true;
      f.evidence = "bad_mac rejected by p" + std::to_string(t.process) +
                   " (" + fmt_at(t.at) + ")";
    }
    // Markers with no verdict: the frame must have died in the simulated
    // network before reaching a receive gate. Claim the matching drop.
    auto fit = frames.find(key);
    for (std::size_t i : idxs) {
      AuditFinding& f = a.findings[i];
      if (f.detected || fit == frames.end()) continue;
      for (NetRec& n : fit->second) {
        if (n.used || !n.is_drop || n.at < f.at_us) continue;
        if (n.reason != "edge_loss" && n.reason != "unreachable" &&
            n.reason != "in_flight")
          continue;
        n.used = true;
        f.lost = true;
        f.evidence = "frame lost in network (" + n.reason + ", " +
                     fmt_at(n.at) + ")";
        break;
      }
    }
  }

  for (const AuditFinding& f : a.findings) {
    if (f.detected) {
      ++a.detected;
      ++a.by_class[f.cls];
    } else if (f.lost) {
      ++a.lost;
    } else {
      ++a.missed;
    }
  }

  // Whatever detector evidence is left matched no injected attack.
  for (const TamperRec& t : tampers) {
    if (t.used) continue;
    std::string d = "tamper " + t.what + " at p" + std::to_string(t.process) +
                    " (" + fmt_at(t.at) + ")";
    if (t.prov.valid()) d += " event " + riv::to_string(t.prov);
    if (!t.type.empty())
      d += " frame " + t.type + " from p" + std::to_string(t.src);
    a.unattributed.push_back(std::move(d));
  }
  for (const auto& [key, recs] : frames) {
    for (const NetRec& n : recs) {
      if (n.used || !n.is_drop || n.reason != "byzantine") continue;
      a.unattributed.push_back(
          "kDrop reason=byzantine " + std::get<0>(key) + " p" +
          std::to_string(std::get<1>(key)) + " -> p" +
          std::to_string(std::get<2>(key)) + " (" + fmt_at(n.at) + ")");
    }
  }
  return a;
}

std::string render(const Audit& a) {
  std::string out = "== integrity audit ==\n";
  out += "records:  " + std::to_string(a.n_records) + "\n";
  out += "attacks:  " + std::to_string(a.attacks) + " injected; " +
         std::to_string(a.detected) + " detected, " +
         std::to_string(a.lost) + " lost in network, " +
         std::to_string(a.missed) + " missed\n";
  if (!a.by_class.empty()) {
    out += "by class:\n";
    for (const auto& [cls, n] : a.by_class)
      out += "  " + cls + ": " + std::to_string(n) + "\n";
  }
  for (const AuditFinding& f : a.findings) {
    out += "[" + f.cls + "] fault id=" + std::to_string(f.fault_id) + " " +
           fmt_at(f.at_us) + ": " + f.attack + "\n";
    if (f.detected || f.lost)
      out += "    " + f.evidence + "\n";
    else
      out += "    MISSED: no detector evidence in trace\n";
  }
  if (!a.unattributed.empty()) {
    out += "unattributed detector evidence (" +
           std::to_string(a.unattributed.size()) + "):\n";
    for (const std::string& u : a.unattributed) out += "  " + u + "\n";
  }
  out += a.all_accounted()
             ? "verdict:  all attacks accounted for\n"
             : "verdict:  AUDIT FAILED\n";
  return out;
}

std::string render_json(const Audit& a) {
  std::string out = "{";
  out += "\"records\":" + std::to_string(a.n_records);
  out += ",\"attacks\":" + std::to_string(a.attacks);
  out += ",\"detected\":" + std::to_string(a.detected);
  out += ",\"lost\":" + std::to_string(a.lost);
  out += ",\"missed\":" + std::to_string(a.missed);
  out += ",\"by_class\":{";
  bool first = true;
  for (const auto& [cls, n] : a.by_class) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(cls) + "\":" + std::to_string(n);
  }
  out += "},\"findings\":[";
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    const AuditFinding& f = a.findings[i];
    if (i > 0) out += ',';
    out += "{\"class\":\"" + json_escape(f.cls) + "\"";
    out += ",\"fault_id\":" + std::to_string(f.fault_id);
    out += ",\"at_us\":" + std::to_string(f.at_us);
    out += ",\"attack\":\"" + json_escape(f.attack) + "\"";
    out += ",\"detected\":" + std::string(f.detected ? "true" : "false");
    out += ",\"lost\":" + std::string(f.lost ? "true" : "false");
    out += ",\"evidence\":\"" + json_escape(f.evidence) + "\"}";
  }
  out += "],\"unattributed\":[";
  for (std::size_t i = 0; i < a.unattributed.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(a.unattributed[i]) + '"';
  }
  out += "],\"ok\":" + std::string(a.all_accounted() ? "true" : "false");
  out += "}";
  return out;
}

CheckResult check(const Audit& a) {
  CheckResult r;
  for (const AuditFinding& f : a.findings) {
    if (f.detected || f.lost) continue;
    r.problems.push_back("undetected attack: [" + f.cls + "] fault id=" +
                         std::to_string(f.fault_id) + " " + f.attack);
  }
  for (const std::string& u : a.unattributed)
    r.problems.push_back("unattributed detector evidence: " + u);
  r.ok = r.problems.empty();
  return r;
}

}  // namespace riv::trace
