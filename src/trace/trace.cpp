#include "trace/trace.hpp"

#include <fstream>

namespace riv::trace {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// v2 added the typed provenance id to every record; v1 files cannot be
// read back (the rolling hash is recomputed from the v2 encoding on
// load), so old traces must be regenerated, matching the one-time
// golden re-bless documented in DESIGN.md §10.
constexpr std::uint32_t kFormatVersion = 2;
constexpr char kMagic[4] = {'R', 'I', 'V', 'T'};

// thread_local so each lane of a parallel seed sweep (chaos_run --jobs,
// bench_util::parallel_map) can install its own recorder: a Scope on one
// worker thread never bleeds records into — or observes — another lane.
thread_local Recorder* g_current = nullptr;

std::uint64_t fnv1a(std::uint64_t h, const std::vector<std::byte>& bytes) {
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint8_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* to_string(Component c) {
  switch (c) {
    case Component::kSim: return "sim";
    case Component::kNet: return "net";
    case Component::kDevice: return "device";
    case Component::kMembership: return "membership";
    case Component::kDelivery: return "delivery";
    case Component::kRuntime: return "runtime";
    case Component::kChaos: return "chaos";
  }
  return "unknown";
}

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kTimerFire: return "timer_fire";
    case Kind::kSend: return "send";
    case Kind::kRecv: return "recv";
    case Kind::kDrop: return "drop";
    case Kind::kLink: return "link";
    case Kind::kEmit: return "emit";
    case Kind::kView: return "view";
    case Kind::kIngest: return "ingest";
    case Kind::kFallback: return "fallback";
    case Kind::kEpoch: return "epoch";
    case Kind::kDeliver: return "deliver";
    case Kind::kPromote: return "promote";
    case Kind::kDemote: return "demote";
    case Kind::kCommand: return "command";
    case Kind::kFault: return "fault";
    case Kind::kMark: return "mark";
    case Kind::kAdapterRx: return "adapter_rx";
    case Kind::kLogicFire: return "logic_fire";
    case Kind::kActuated: return "actuated";
    case Kind::kCrash: return "crash";
    case Kind::kRecover: return "recover";
  }
  return "unknown";
}

std::string to_string(const Record& r) {
  std::string out = "t=" + std::to_string(r.at.us) + "us ";
  out += r.process.value == 0 ? "-" : riv::to_string(r.process);
  out += " ";
  out += to_string(r.component);
  out += "/";
  out += to_string(r.kind);
  if (r.prov.valid()) {
    out += " ev=";
    out += riv::to_string(r.prov);
  }
  if (!r.detail.empty()) {
    out += " ";
    out += r.detail;
  }
  return out;
}

void encode(BinaryWriter& w, const Record& r) {
  w.time_point(r.at);
  w.process_id(r.process);
  w.u8(static_cast<std::uint8_t>(r.component));
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.provenance_id(r.prov);
  w.str(r.detail);
}

Record decode_record(BinaryReader& r) {
  Record out;
  out.at = r.time_point();
  out.process = r.process_id();
  out.component = static_cast<Component>(r.u8());
  out.kind = static_cast<Kind>(r.u8());
  out.prov = r.provenance_id();
  out.detail = r.str();
  return out;
}

void Recorder::append(Record r) {
  if (!wants(r.component)) return;
  BinaryWriter w;
  trace::encode(w, r);
  hash_ = fnv1a(hash_, w.data());
  records_.push_back(std::move(r));
}

std::string Recorder::digest() const {
  static const char* hex = "0123456789abcdef";
  std::uint64_t h = hash_;
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::vector<std::byte> Recorder::encode() const {
  BinaryWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kFormatVersion);
  w.u64(records_.size());
  for (const Record& r : records_) trace::encode(w, r);
  w.u64(hash_);
  return w.take();
}

bool Recorder::decode(const std::vector<std::byte>& buf, Recorder* out,
                      std::string* error) {
  BinaryReader r(buf);
  for (char c : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) {
      if (error) *error = "bad magic (not a rivtrace file)";
      return false;
    }
  }
  std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    if (error) *error = "unsupported version " + std::to_string(version);
    return false;
  }
  std::uint64_t count = r.u64();
  Recorder decoded;
  for (std::uint64_t i = 0; i < count; ++i) {
    decoded.append(decode_record(r));
    if (!r.ok()) {
      if (error) *error = "truncated at record " + std::to_string(i);
      return false;
    }
  }
  std::uint64_t footer = r.u64();
  if (!r.ok()) {
    if (error) *error = "truncated footer";
    return false;
  }
  if (footer != decoded.hash()) {
    if (error) *error = "footer hash mismatch (corrupt trace)";
    return false;
  }
  *out = std::move(decoded);
  return true;
}

bool Recorder::save(const std::string& path, std::string* error) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  std::vector<std::byte> buf = encode();
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool Recorder::load(const std::string& path, Recorder* out,
                    std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> buf(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    buf[i] = static_cast<std::byte>(raw[i]);
  return decode(buf, out, error);
}

Recorder* current() { return g_current; }

Scope::Scope(Recorder& r) : prev_(g_current) { g_current = &r; }
Scope::~Scope() { g_current = prev_; }

bool active(Component c) {
  return g_current != nullptr && g_current->wants(c);
}

void emit(TimePoint at, ProcessId process, Component component, Kind kind,
          std::string detail) {
  if (g_current == nullptr || !g_current->wants(component)) return;
  g_current->append(
      Record{at, process, component, kind, ProvenanceId{}, std::move(detail)});
}

void emit(TimePoint at, ProcessId process, Component component, Kind kind,
          ProvenanceId prov, std::string detail) {
  if (g_current == nullptr || !g_current->wants(component)) return;
  g_current->append(
      Record{at, process, component, kind, prov, std::move(detail)});
}

}  // namespace riv::trace
