#include "trace/trace.hpp"

#include <fstream>

namespace riv::trace {

namespace detail_impl {
// thread_local so each lane of a parallel seed sweep (chaos_run --jobs,
// bench_util::parallel_map) can install its own recorder: a Scope on one
// worker thread never bleeds records into — or observes — another lane.
thread_local Recorder* g_current = nullptr;
}  // namespace detail_impl

const char* to_string(Component c) {
  switch (c) {
    case Component::kSim: return "sim";
    case Component::kNet: return "net";
    case Component::kDevice: return "device";
    case Component::kMembership: return "membership";
    case Component::kDelivery: return "delivery";
    case Component::kRuntime: return "runtime";
    case Component::kChaos: return "chaos";
  }
  return "unknown";
}

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kTimerFire: return "timer_fire";
    case Kind::kSend: return "send";
    case Kind::kRecv: return "recv";
    case Kind::kDrop: return "drop";
    case Kind::kLink: return "link";
    case Kind::kEmit: return "emit";
    case Kind::kView: return "view";
    case Kind::kIngest: return "ingest";
    case Kind::kFallback: return "fallback";
    case Kind::kEpoch: return "epoch";
    case Kind::kDeliver: return "deliver";
    case Kind::kPromote: return "promote";
    case Kind::kDemote: return "demote";
    case Kind::kCommand: return "command";
    case Kind::kFault: return "fault";
    case Kind::kMark: return "mark";
    case Kind::kAdapterRx: return "adapter_rx";
    case Kind::kLogicFire: return "logic_fire";
    case Kind::kActuated: return "actuated";
    case Kind::kCrash: return "crash";
    case Kind::kRecover: return "recover";
    case Kind::kTamper: return "tamper";
    case Kind::kByzantine: return "byzantine";
  }
  return "unknown";
}

std::string to_string(const Record& r) {
  std::string out = "t=" + std::to_string(r.at.us) + "us ";
  out += r.process.value == 0 ? "-" : riv::to_string(r.process);
  out += " ";
  out += to_string(r.component);
  out += "/";
  out += to_string(r.kind);
  if (r.prov.valid()) {
    out += " ev=";
    out += riv::to_string(r.prov);
  }
  if (!r.detail.empty()) {
    out += " ";
    out += r.detail;
  }
  return out;
}

// --- packed-stream reading ------------------------------------------------

namespace {

// A bounds-checked cursor over packed v3 bytes. Every read funnels
// through here so a truncated / corrupt / adversarial stream can only
// ever produce ok()==false, never an out-of-bounds access (the fuzz
// tests lean on this).
struct PackedReader {
  const std::byte* p;
  const std::byte* end;
  bool ok_ = true;

  bool ok() const { return ok_; }
  std::size_t remaining() const {
    return static_cast<std::size_t>(end - p);
  }

  std::uint8_t u8() {
    if (p >= end) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (int i = 0; i < kMaxVarintBytes; ++i) {
      if (p >= end) {
        ok_ = false;
        return 0;
      }
      std::uint8_t b = static_cast<std::uint8_t>(*p++);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    ok_ = false;  // over-long varint
    return 0;
  }
  std::uint64_t u64le() {
    if (remaining() < 8) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
           << (8 * i);
    p += 8;
    return v;
  }
  std::string_view str(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string_view v(reinterpret_cast<const char*>(p), n);
    p += n;
    return v;
  }
};

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

// Render one field's value in the canonical v2 textual form.
bool render_value(PackedReader& r, VType type, std::string& out) {
  switch (type) {
    case VType::kU64:
      append_u64(out, r.varint());
      return r.ok();
    case VType::kI64:
      out += std::to_string(unzigzag(r.varint()));
      return r.ok();
    case VType::kPid:
      out += 'p';
      append_u64(out, r.varint());
      return r.ok();
    case VType::kStr: {
      std::uint64_t n = r.varint();
      if (!r.ok() || n > r.remaining()) return false;
      out += r.str(static_cast<std::size_t>(n));
      return r.ok();
    }
    case VType::kEvent: {
      out += 's';
      append_u64(out, r.varint());
      out += '#';
      append_u64(out, r.varint());
      return r.ok();
    }
    case VType::kCmd: {
      out += 'p';
      append_u64(out, r.varint());
      out += '!';
      append_u64(out, r.varint());
      return r.ok();
    }
    case VType::kAct:
      out += 'a';
      append_u64(out, r.varint());
      return r.ok();
    case VType::kView: {
      std::uint64_t n = r.varint();
      if (!r.ok() || n > r.remaining()) return false;
      for (std::uint64_t i = 0; i < n; ++i) {
        if (i != 0) out += '+';
        out += 'p';
        append_u64(out, r.varint());
      }
      return r.ok();
    }
  }
  return false;
}

// Decode one packed record. Returns false on any structural problem
// (bad flags/kind/key, truncation, over-long varint). `last_time` is the
// delta base, updated on success.
bool decode_one(PackedReader& r, TimePoint& last_time, Record& out) {
  std::uint8_t flags = r.u8();
  if (!r.ok()) return false;
  std::uint8_t comp = flags & kFlagComponentMask;
  if (comp >= kComponentCount ||
      (flags & ~(kFlagComponentMask | kFlagProv | kFlagAbsTime)) != 0)
    return false;
  out.component = static_cast<Component>(comp);
  std::uint8_t kind = r.u8();
  if (!r.ok() || kind >= kKindCount) return false;
  out.kind = static_cast<Kind>(kind);
  std::int64_t t = unzigzag(r.varint());
  if (!r.ok()) return false;
  out.at.us = (flags & kFlagAbsTime) != 0 ? t : last_time.us + t;
  last_time = out.at;
  out.process.value = static_cast<std::uint16_t>(r.varint());
  if (!r.ok()) return false;
  if ((flags & kFlagProv) != 0) {
    out.prov.origin = static_cast<std::uint16_t>(r.varint());
    out.prov.seq = static_cast<std::uint32_t>(r.varint());
    if (!r.ok()) return false;
  } else {
    out.prov = ProvenanceId{};
  }
  std::uint8_t nfields = r.u8();
  if (!r.ok()) return false;
  out.detail.clear();
  for (std::uint8_t i = 0; i < nfields; ++i) {
    std::uint8_t key = r.u8();
    if (!r.ok() || key >= kKeyCount) return false;
    const KeyInfo& info = kKeyTable[key];
    if (i != 0) out.detail += ' ';
    if (info.name[0] != '\0') {
      out.detail += info.name;
      out.detail += '=';
    }
    if (!render_value(r, info.type, out.detail)) return false;
  }
  return true;
}

}  // namespace

// --- Recorder -------------------------------------------------------------

struct Recorder::StreamState {
  std::ofstream file;
  std::string path;
  bool finished = false;
};

Recorder::Recorder(std::uint32_t mask) : mask_(mask) {
  scratch_.resize(512);
}
Recorder::~Recorder() = default;
Recorder::Recorder(Recorder&&) noexcept = default;
Recorder& Recorder::operator=(Recorder&&) noexcept = default;

void Recorder::flush_open_hash() const {
  if (chunks_.empty()) return;
  const Chunk& c = chunks_.back();
  if (c.used > open_hashed_) {
    stream_hash_.put(c.data.get() + open_hashed_, c.used - open_hashed_);
    open_hashed_ = c.used;
  }
}

Recorder::Chunk& Recorder::writable_chunk(std::size_t need) {
  if (chunk_open_ && !chunks_.empty()) {
    Chunk& back = chunks_.back();
    if (back.capacity - back.used >= need) return back;
    seal_chunk();
  } else {
    // Pushing a fresh chunk retires the current back chunk (e.g. the
    // verbatim chunk decode() built) — catch its hash up first.
    flush_open_hash();
  }
  // Open a fresh chunk (oversized records get a chunk of their own).
  std::size_t cap = need > kChunkSize ? need : kChunkSize;
  Chunk c;
  if (spare_.data != nullptr && spare_.capacity >= cap) {
    c = std::move(spare_);
    c.used = 0;
    c.n_records = 0;
  } else {
    c.data = std::make_unique<std::byte[]>(cap);
    c.capacity = static_cast<std::uint32_t>(cap);
  }
  chunks_.push_back(std::move(c));
  chunk_open_ = true;
  open_hashed_ = 0;
  return chunks_.back();
}

void Recorder::seal_chunk() {
  chunk_open_ = false;
  if (chunks_.empty()) return;
  // The sealed chunk's bytes may be flushed to disk or dropped by the
  // ring; either way the rolling hash must cover them first. One bulk
  // word-wise sweep here replaces per-record hashing on the hot path.
  flush_open_hash();
  if (stream_ != nullptr && !stream_->finished) {
    // Streaming sink: flush the sealed chunk and recycle its buffer.
    Chunk& c = chunks_.back();
    stream_->file.write(reinterpret_cast<const char*>(c.data.get()),
                        static_cast<std::streamsize>(c.used));
    streamed_bytes_ += c.used;
    streamed_records_ += c.n_records;
    retained_records_ -= c.n_records;
    spare_ = std::move(c);
    chunks_.pop_back();
    return;
  }
  enforce_ring_limit();
}

void Recorder::enforce_ring_limit() {
  if (ring_limit_ == 0) return;
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.used;
  std::size_t drop = 0;
  while (drop + 1 < chunks_.size() && total > ring_limit_) {
    total -= chunks_[drop].used;
    retained_records_ -= chunks_[drop].n_records;
    dropped_records_ += chunks_[drop].n_records;
    ++drop;
  }
  if (drop > 0)
    chunks_.erase(chunks_.begin(),
                  chunks_.begin() + static_cast<std::ptrdiff_t>(drop));
}

void Recorder::commit(TimePoint at, ProcessId process, Component component,
                      Kind kind, ProvenanceId prov, std::uint8_t nfields) {
  if (stream_ != nullptr && stream_->finished) return;
  // Header worst case + packed fields — the whole record must land in one
  // chunk so ring mode can drop whole chunks and decoding never straddles.
  Chunk& c = writable_chunk(kMaxHeaderBytes + scratch_used_);
  bool abs = c.n_records == 0;
  std::byte* base = c.data.get() + c.used;
  std::byte* w = base;
  std::uint8_t flags = static_cast<std::uint8_t>(component);
  if (prov.valid()) flags |= kFlagProv;
  if (abs) flags |= kFlagAbsTime;
  *w++ = static_cast<std::byte>(flags);
  *w++ = static_cast<std::byte>(kind);
  auto varint = [&w](std::uint64_t v) {
    while (v >= 0x80) {
      *w++ = static_cast<std::byte>(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    *w++ = static_cast<std::byte>(v);
  };
  varint(zigzag(abs ? at.us : at.us - last_time_.us));
  varint(process.value);
  if (prov.valid()) {
    varint(prov.origin);
    varint(prov.seq);
  }
  *w++ = static_cast<std::byte>(nfields);
  std::memcpy(w, scratch_.data(), scratch_used_);
  w += scratch_used_;
  std::size_t total = static_cast<std::size_t>(w - base);
  c.used += static_cast<std::uint32_t>(total);
  c.n_records += 1;
  last_time_ = at;
  retained_records_ += 1;
}

void Recorder::append(const Record& r) {
  if (!wants(r.component)) return;
  scratch_used_ = 0;
  std::uint8_t nfields = 0;
  if (!r.detail.empty()) {
    put_field(FieldStr{Key::kText, r.detail});
    nfields = 1;
  }
  commit(r.at, r.process, r.component, r.kind, r.prov, nfields);
}

std::vector<Record> Recorder::records() const {
  std::vector<Record> out;
  out.reserve(retained_records_);
  TimePoint last{};
  for (const Chunk& c : chunks_) {
    PackedReader r{c.data.get(), c.data.get() + c.used};
    for (std::uint32_t i = 0; i < c.n_records; ++i) {
      Record rec;
      if (!decode_one(r, last, rec)) return out;  // cannot happen: we wrote it
      out.push_back(std::move(rec));
    }
  }
  return out;
}

std::size_t Recorder::payload_bytes() const {
  std::size_t total = static_cast<std::size_t>(streamed_bytes_);
  for (const Chunk& c : chunks_) total += c.used;
  return total;
}

std::vector<std::byte> Recorder::encode() const {
  std::size_t payload = 0;
  for (const Chunk& c : chunks_) payload += c.used;
  std::vector<std::byte> out;
  out.reserve(4 + 4 + payload + 1 + 8 + 8);
  for (char ch : kMagic) out.push_back(static_cast<std::byte>(ch));
  std::uint32_t v = kFormatVersion;
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  hash::Fnv1aStream h;
  for (const Chunk& c : chunks_) {
    out.insert(out.end(), c.data.get(), c.data.get() + c.used);
    h.put(c.data.get(), c.used);
  }
  out.push_back(static_cast<std::byte>(kFooterMarker));
  std::uint64_t count = retained_records_;
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((count >> (8 * i)) & 0xff));
  // The footer hash covers exactly the payload bytes written above; in
  // ring mode that is the retained suffix, not everything ever appended.
  std::uint64_t digest = h.value();
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((digest >> (8 * i)) & 0xff));
  return out;
}

bool Recorder::decode(const std::vector<std::byte>& buf, Recorder* out,
                      std::string* error) {
  PackedReader r{buf.data(), buf.data() + buf.size()};
  for (char ch : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(ch) || !r.ok()) {
      if (error) *error = "bad magic (not a rivtrace file)";
      return false;
    }
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i)
    version |= static_cast<std::uint32_t>(r.u8()) << (8 * i);
  if (!r.ok()) {
    if (error) *error = "truncated header";
    return false;
  }
  if (version != kFormatVersion) {
    if (error)
      *error = "unsupported trace version " + std::to_string(version) +
               " (this build reads " + std::to_string(kFormatVersion) + ")";
    return false;
  }
  const std::byte* payload_begin = r.p;
  // Structurally walk every record up to the footer marker, validating
  // flags / kinds / keys / bounds as we go.
  std::uint64_t walked = 0;
  TimePoint last{};
  Record scratch_rec;
  while (true) {
    if (r.remaining() == 0) {
      if (error) *error = "truncated: missing footer";
      return false;
    }
    if (static_cast<std::uint8_t>(*r.p) == kFooterMarker) {
      ++r.p;
      break;
    }
    if (!decode_one(r, last, scratch_rec)) {
      if (error)
        *error = "malformed record " + std::to_string(walked);
      return false;
    }
    ++walked;
  }
  const std::byte* payload_end = r.p - 1;  // excludes the footer marker
  std::uint64_t count = r.u64le();
  std::uint64_t footer_hash = r.u64le();
  if (!r.ok()) {
    if (error) *error = "truncated footer";
    return false;
  }
  if (r.remaining() != 0) {
    if (error) *error = "trailing bytes after footer";
    return false;
  }
  if (count != walked) {
    if (error)
      *error = "record count mismatch (footer says " +
               std::to_string(count) + ", stream holds " +
               std::to_string(walked) + ")";
    return false;
  }
  std::size_t payload_size =
      static_cast<std::size_t>(payload_end - payload_begin);
  hash::Fnv1aStream h;
  h.put(payload_begin, payload_size);
  if (h.value() != footer_hash) {
    if (error) *error = "footer hash mismatch (corrupt trace)";
    return false;
  }
  // Store the payload verbatim as one fully-used chunk: re-encoding a
  // loaded trace reproduces the input byte for byte, and the rolling
  // hash state matches a recorder that appended the same records.
  Recorder decoded(out->mask());
  if (payload_size != 0) {
    Chunk c;
    c.data = std::make_unique<std::byte[]>(payload_size);
    std::memcpy(c.data.get(), payload_begin, payload_size);
    c.capacity = static_cast<std::uint32_t>(payload_size);
    c.used = static_cast<std::uint32_t>(payload_size);
    c.n_records = static_cast<std::uint32_t>(count);
    decoded.chunks_.push_back(std::move(c));
  }
  decoded.chunk_open_ = false;  // appends after load start a fresh chunk
  decoded.retained_records_ = static_cast<std::size_t>(count);
  decoded.last_time_ = last;
  decoded.stream_hash_ = h;
  decoded.open_hashed_ = static_cast<std::uint32_t>(payload_size);
  *out = std::move(decoded);
  return true;
}

bool Recorder::save(const std::string& path, std::string* error) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  std::vector<std::byte> buf = encode();
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool Recorder::load(const std::string& path, Recorder* out,
                    std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> buf(raw.size());
  if (!raw.empty()) std::memcpy(buf.data(), raw.data(), raw.size());
  return decode(buf, out, error);
}

bool Recorder::stream_to(const std::string& path, std::string* error) {
  auto st = std::make_unique<StreamState>();
  st->file.open(path, std::ios::binary | std::ios::trunc);
  if (!st->file) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  st->path = path;
  char header[8];
  std::memcpy(header, kMagic, 4);
  std::uint32_t v = kFormatVersion;
  for (int i = 0; i < 4; ++i)
    header[4 + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  st->file.write(header, 8);
  stream_ = std::move(st);
  return true;
}

bool Recorder::finish(std::string* error) {
  if (stream_ == nullptr || stream_->finished) return true;
  flush_open_hash();  // catch the rolling hash up with the tail chunk
  // Flush the open tail chunk (bypass seal_chunk's recycling — we are
  // done appending).
  for (const Chunk& c : chunks_) {
    stream_->file.write(reinterpret_cast<const char*>(c.data.get()),
                        static_cast<std::streamsize>(c.used));
    streamed_bytes_ += c.used;
    streamed_records_ += c.n_records;
  }
  retained_records_ = 0;
  chunks_.clear();
  chunk_open_ = false;
  char footer[17];
  footer[0] = static_cast<char>(kFooterMarker);
  std::uint64_t count = streamed_records_;
  // All appended bytes went to the file, so the rolling hash is exactly
  // the footer hash.
  std::uint64_t digest = stream_hash_.value();
  for (int i = 0; i < 8; ++i) {
    footer[1 + i] = static_cast<char>((count >> (8 * i)) & 0xff);
    footer[9 + i] = static_cast<char>((digest >> (8 * i)) & 0xff);
  }
  stream_->file.write(footer, 17);
  stream_->file.flush();
  bool ok = static_cast<bool>(stream_->file);
  if (!ok && error) *error = "short write to " + stream_->path;
  stream_->file.close();
  stream_->finished = true;
  return ok;
}

Recorder* current() { return detail_impl::g_current; }

Scope::Scope(Recorder& r) : prev_(detail_impl::g_current) {
  detail_impl::g_current = &r;
}
Scope::~Scope() { detail_impl::g_current = prev_; }

bool active(Component c) {
  return detail_impl::g_current != nullptr &&
         detail_impl::g_current->wants(c);
}

void emit_text(TimePoint at, ProcessId process, Component component,
               Kind kind, std::string_view text) {
  emit(at, process, component, kind, fs(Key::kText, text));
}
void emit_text(TimePoint at, ProcessId process, Component component,
               Kind kind, ProvenanceId prov, std::string_view text) {
  emit(at, process, component, kind, prov, fs(Key::kText, text));
}

}  // namespace riv::trace
