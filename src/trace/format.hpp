// Trace format v3: the packed, typed, allocation-free record encoding.
//
// v1/v2 records carried a heap-allocated "key=value key=value" detail
// string built by std::to_string concatenation at every emit site. v3
// replaces the string with schema'd fields: a u8 key id drawn from the
// static interned key table below, followed by a value whose wire shape
// (varint, zigzag varint, id, inline string, ...) is fixed per key. Emit
// sites write fields straight into the recorder's byte arena — no
// formatting, no allocation — and rendering reconstructs the exact v2
// detail string lazily at decode time, so trace_diff / trace_analyze /
// golden comparisons keep their semantics byte for byte.
//
// Packed record layout (all multi-byte values are LEB128 varints):
//
//   flags   u8   bits 0..2 component, bit 3 prov present, bit 4 time is
//                absolute (set on the first record of each arena chunk;
//                otherwise time is a delta from the previous record)
//   kind    u8
//   time    zigzag varint (absolute or delta microseconds, see flags)
//   process varint (ProcessId.value)
//   prov    [varint origin, varint seq]   only when bit 3 set
//   nfields u8
//   fields  nfields x { key u8, value per kKeyTable[key].type }
//
// File layout:  "RIVT" | u32 version=3 | packed records | 0xFF footer
// marker | u64 record count | u64 FNV-1a stream hash of the packed bytes.
// The flags byte can never be 0xFF (component <= 6), so the footer marker
// is unambiguous. Key ids, value types and the footer layout are part of
// the on-disk format: append new keys, never renumber.
#pragma once

#include <cstdint>

namespace riv::trace {

inline constexpr std::uint32_t kFormatVersion = 3;
inline constexpr char kMagic[4] = {'R', 'I', 'V', 'T'};

// Record-header flag bits (share the byte with the 3-bit component).
inline constexpr std::uint8_t kFlagComponentMask = 0x07;
inline constexpr std::uint8_t kFlagProv = 0x08;
inline constexpr std::uint8_t kFlagAbsTime = 0x10;
// A flags byte of 0xFF marks the footer instead of a record.
inline constexpr std::uint8_t kFooterMarker = 0xFF;

// How a field's value is encoded (and rendered).
enum class VType : std::uint8_t {
  kU64,    // varint;               rendered as decimal
  kI64,    // zigzag varint;        rendered as (signed) decimal
  kPid,    // varint ProcessId;     rendered "pN"
  kStr,    // varint length + raw bytes; rendered verbatim
  kEvent,  // varint sensor + varint seq; rendered "sN#M"
  kCmd,    // varint origin + varint seq; rendered "pN!M"
  kAct,    // varint ActuatorId;    rendered "aN"
  kView,   // varint count + count x varint ProcessId; rendered "p1+p2+.."
};

// The static interned key table. A key id is one byte on the wire; its
// name and value type are fixed here. kText is special: it renders bare
// (no "name=" prefix) and carries free-form annotations (marks, fault
// descriptions, link-transition verbs). Two ids may share a rendered
// name with different types (kSrc/kSrcName) — renderings stay identical
// to the v2 strings either way.
enum class Key : std::uint8_t {
  kText = 0,      // ""        kStr   bare free-form text
  kType = 1,      // "type"    kStr   net frame message type
  kSrc = 2,       // "src"     kPid   frame source process
  kDst = 3,       // "dst"     kPid   frame destination process
  kReason = 4,    // "reason"  kStr   drop reason
  kUp = 5,        // "up"      kU64   0/1 liveness flag
  kExtraUs = 6,   // "extra_us" kI64  injected edge delay
  kPermille = 7,  // "permille" kI64  injected edge loss
  kTimer = 8,     // "timer"   kU64   sim TimerId
  kEvent = 9,     // "event"   kEvent EventId
  kEpoch = 10,    // "epoch"   kU64   polling epoch
  kPoll = 11,     // "poll"    kU64   0/1 poll-based emission
  kCmd = 12,      // "cmd"     kCmd   CommandId
  kActuator = 13, // "actuator" kAct  ActuatorId
  kAccepted = 14, // "accepted" kU64  0/1 actuation accepted
  kDup = 15,      // "dup"     kU64   0/1 duplicate delivery
  kView = 16,     // "view"    kView  membership view
  kApp = 17,      // "app"     kU64   AppId
  kSeen = 18,     // "S"       kU64   ring S-set size
  kNeed = 19,     // "V"       kU64   ring V-set size
  kOp = 20,       // "op"      kStr   logic operator name
  kFaultId = 21,  // "id"      kU64   chaos fault sequence number
  kSrcName = 22,  // "src"     kStr   ingest source tag (device|ring|rb|..)
  kChain = 23,    // "chain"   kU64   per-origin hash-chain digest
};
inline constexpr int kKeyCount = 24;

struct KeyInfo {
  const char* name;
  VType type;
};
inline constexpr KeyInfo kKeyTable[kKeyCount] = {
    {"", VType::kStr},          // kText
    {"type", VType::kStr},      // kType
    {"src", VType::kPid},       // kSrc
    {"dst", VType::kPid},       // kDst
    {"reason", VType::kStr},    // kReason
    {"up", VType::kU64},        // kUp
    {"extra_us", VType::kI64},  // kExtraUs
    {"permille", VType::kI64},  // kPermille
    {"timer", VType::kU64},     // kTimer
    {"event", VType::kEvent},   // kEvent
    {"epoch", VType::kU64},     // kEpoch
    {"poll", VType::kU64},      // kPoll
    {"cmd", VType::kCmd},       // kCmd
    {"actuator", VType::kAct},  // kActuator
    {"accepted", VType::kU64},  // kAccepted
    {"dup", VType::kU64},       // kDup
    {"view", VType::kView},     // kView
    {"app", VType::kU64},       // kApp
    {"S", VType::kU64},         // kSeen
    {"V", VType::kU64},         // kNeed
    {"op", VType::kStr},        // kOp
    {"id", VType::kU64},        // kFaultId
    {"src", VType::kStr},       // kSrcName
    {"chain", VType::kU64},     // kChain
};

// --- varint primitives ---------------------------------------------------

inline constexpr int kMaxVarintBytes = 10;  // 64 bits / 7 per byte

inline constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace riv::trace
