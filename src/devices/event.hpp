// Sensor events and actuation commands — the payloads everything carries.
//
// Wire layout of an encoded SensorEvent (see codec.hpp for primitives):
//   event id (6 B) | epoch (4 B) | emitted_at (8 B) | flags (1 B)
//   | payload length (4 B) | payload (payload_size B)
// The payload carries the sensed value in exactly `payload_size` bytes,
// matching Table 3 of the paper (small sensors: 4–8 B; camera frames /
// microphone batches: 1–20 KB). Values in payloads narrower than 8 bytes
// are fixed-point quantized (milli-units), which loses nothing relevant
// for door/motion/temperature-class sensors.
#pragma once

#include <cstdint>

#include "common/codec.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace riv::devices {

struct SensorEvent {
  EventId id{};              // sensor + per-sensor sequence number
  std::uint32_t epoch{0};    // polling epoch tag; 0 for push-based sensors
  TimePoint emitted_at{};    // device-side emission time
  bool poll_based{false};
  double value{0.0};
  std::uint32_t payload_size{4};  // bytes of sensed payload on the wire

  // Tamper evidence (in-memory only, NOT part of the 23-byte encoding —
  // process-to-process hops carry them in the wire integrity trailer, so
  // frame sizes and timing are untouched when integrity is off). `chain`
  // is the origin's hash-chained sequence digest at this emission; `mac`
  // authenticates the device->process radio hop. Both zero when the
  // integrity layer is disarmed.
  std::uint64_t chain{0};
  std::uint64_t mac{0};

  std::size_t wire_size() const { return 23 + payload_size; }
};

void encode(BinaryWriter& w, const SensorEvent& e);
SensorEvent decode_event(BinaryReader& r);

// Snapshot-clone encoding (DESIGN.md §16): unlike the 23-byte wire form
// this carries every in-memory field (unquantized value, payload size,
// integrity trailer) so restored state is byte-for-byte the original.
void encode_clone(BinaryWriter& w, const SensorEvent& e);
SensorEvent decode_clone_event(BinaryReader& r);

// Keyed MAC authenticating the device->process radio hop of one event:
// FNV-1a over (key, event id, epoch, emission time, flags, value bits,
// chain). A forged event fails it; a replayed event passes it (the frame
// is genuine) and is caught by the receiver's per-origin sequence history
// instead.
std::uint64_t event_mac(std::uint64_t key, const SensorEvent& e);

// An actuation command produced by a logic node for one actuator.
// Wire layout: command id (6 B) | actuator (2 B) | flags (1 B)
//   | expected (8 B) | value (8 B) | issued_at (8 B) | cause (6 B)
//   => 39 B.
// `cause` is appended at the end so the layout stays a strict extension
// of the pre-provenance encoding (additive wire evolution).
struct Command {
  CommandId id{};
  ActuatorId actuator{};
  bool test_and_set{false};  // §5: non-idempotent actuators require T&S
  double expected{0.0};      // T&S precondition (ignored otherwise)
  double value{0.0};
  TimePoint issued_at{};
  ProvenanceId cause{};  // the sensor reading this command reacts to

  static constexpr std::size_t kWireSize = 39;
};

void encode(BinaryWriter& w, const Command& c);
Command decode_command(BinaryReader& r);

}  // namespace riv::devices
