#include "devices/event.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace riv::devices {
namespace {

constexpr std::uint8_t kFlagPollBased = 0x1;

// Fixed-point quantization for narrow payloads: milli-units in `n` bytes,
// two's complement, little-endian.
void write_quantized(BinaryWriter& w, double value, std::uint32_t n) {
  auto scaled = static_cast<std::int64_t>(std::llround(value * 1000.0));
  for (std::uint32_t i = 0; i < n; ++i) {
    w.u8(static_cast<std::uint8_t>(scaled & 0xff));
    scaled >>= 8;
  }
}

double read_quantized(BinaryReader& r, std::uint32_t n) {
  // n == 0 only arrives from corrupt input (encode asserts >= 1, and a
  // truncated buffer reads payload_size as 0); the caller's consumed()
  // check rejects the message, so any value works — but the sign-extend
  // below must not shift by -1.
  if (n == 0) return 0.0;
  std::uint64_t raw = 0;
  for (std::uint32_t i = 0; i < n; ++i)
    raw |= static_cast<std::uint64_t>(r.u8()) << (8 * i);
  // Sign-extend from n bytes.
  if (n < 8) {
    std::uint64_t sign_bit = 1ULL << (8 * n - 1);
    if (raw & sign_bit) raw |= ~((sign_bit << 1) - 1);
  }
  return static_cast<double>(static_cast<std::int64_t>(raw)) / 1000.0;
}

}  // namespace

void encode(BinaryWriter& w, const SensorEvent& e) {
  RIV_ASSERT(e.payload_size >= 1, "sensor payload must be at least 1 byte");
  w.event_id(e.id);
  w.u32(e.epoch);
  w.time_point(e.emitted_at);
  w.u8(e.poll_based ? kFlagPollBased : 0);
  w.u32(e.payload_size);
  if (e.payload_size >= 8) {
    w.f64(e.value);
    w.opaque(e.payload_size - 8);
  } else {
    write_quantized(w, e.value, e.payload_size);
  }
}

SensorEvent decode_event(BinaryReader& r) {
  SensorEvent e;
  e.id = r.event_id();
  e.epoch = r.u32();
  e.emitted_at = r.time_point();
  e.poll_based = (r.u8() & kFlagPollBased) != 0;
  e.payload_size = r.u32();
  if (e.payload_size >= 8) {
    e.value = r.f64();
    r.skip_opaque(e.payload_size - 8);
  } else {
    e.value = read_quantized(r, e.payload_size);
  }
  return e;
}

void encode_clone(BinaryWriter& w, const SensorEvent& e) {
  w.event_id(e.id);
  w.u32(e.epoch);
  w.time_point(e.emitted_at);
  w.u8(e.poll_based ? 1 : 0);
  w.f64(e.value);
  w.u32(e.payload_size);
  w.u64(e.chain);
  w.u64(e.mac);
}

SensorEvent decode_clone_event(BinaryReader& r) {
  SensorEvent e;
  e.id = r.event_id();
  e.epoch = r.u32();
  e.emitted_at = r.time_point();
  e.poll_based = r.u8() != 0;
  e.value = r.f64();
  e.payload_size = r.u32();
  e.chain = r.u64();
  e.mac = r.u64();
  return e;
}

std::uint64_t event_mac(std::uint64_t key, const SensorEvent& e) {
  hash::Fnv1aStream h;
  h.put(&key, sizeof key);
  std::uint16_t sensor = e.id.sensor.value;
  h.put(&sensor, sizeof sensor);
  h.put(&e.id.seq, sizeof e.id.seq);
  h.put(&e.epoch, sizeof e.epoch);
  h.put(&e.emitted_at.us, sizeof e.emitted_at.us);
  std::uint8_t flags = e.poll_based ? 1 : 0;
  h.put(&flags, sizeof flags);
  h.put(&e.value, sizeof e.value);
  h.put(&e.chain, sizeof e.chain);
  return h.value();
}

void encode(BinaryWriter& w, const Command& c) {
  w.command_id(c.id);
  w.actuator_id(c.actuator);
  w.u8(c.test_and_set ? 1 : 0);
  w.f64(c.expected);
  w.f64(c.value);
  w.time_point(c.issued_at);
  w.provenance_id(c.cause);
}

Command decode_command(BinaryReader& r) {
  Command c;
  c.id = r.command_id();
  c.actuator = r.actuator_id();
  c.test_and_set = r.u8() != 0;
  c.expected = r.f64();
  c.value = r.f64();
  c.issued_at = r.time_point();
  c.cause = r.provenance_id();
  return c;
}

}  // namespace riv::devices
