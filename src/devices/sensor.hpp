// Simulated physical sensors.
//
// Models the device behaviours the paper's protocols are built around:
//   * push sensors emit spontaneously (periodic or Poisson processes,
//     optionally bursty) and *multicast* each event over every attached
//     sensor->process link; each link independently loses the event with
//     its configured probability (§2.1's interference/obstruction skew);
//   * poll sensors respond to poll requests after a device-specific
//     latency, and — crucially for §8.5 — support only ONE outstanding
//     poll: concurrent requests are silently dropped;
//   * sensors crash and recover (§3.1): a crashed sensor emits nothing and
//     ignores polls.
// Battery accounting: every poll request that reaches the sensor costs one
// unit (Fig 8 argues uncoordinated polling drains 1.5–2.5x more battery).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "devices/adapters.hpp"
#include "devices/event.hpp"
#include "sim/simulation.hpp"

namespace riv::devices {

enum class SensorKind : std::uint8_t {
  kTemperature,
  kHumidity,
  kLuminance,
  kUv,
  kMotion,
  kDoor,
  kMoisture,
  kSmoke,
  kCo2,
  kEnergy,
  kVibration,
  kCamera,
  kMicrophone,
  kWearable,
};

const char* to_string(SensorKind kind);

enum class EmitPattern : std::uint8_t {
  kPeriodic,  // fixed inter-event gap = 1/rate
  kPoisson,   // exponential inter-event gaps with mean 1/rate
  kBurst,     // Poisson bursts of `burst_size` back-to-back events
};

struct SensorSpec {
  SensorId id{};
  std::string name;
  SensorKind kind{SensorKind::kTemperature};
  Technology tech{Technology::kIp};
  bool push{true};
  std::uint32_t payload_size{4};  // Table 3: 4–8 B small, 1–20 KB large

  // Push behaviour.
  double rate_hz{1.0};
  EmitPattern pattern{EmitPattern::kPeriodic};
  int burst_size{3};

  // Poll behaviour (used when push == false). poll_latency is the device
  // response time; §8.5 measured 500–600 ms for Z-Wave sensors. Real
  // Z-Wave stacks occasionally retransmit, producing a long latency tail:
  // with probability poll_tail_prob the response takes poll_tail_factor
  // times longer (this is what makes coordinated polling slightly
  // sub-optimal in Fig 8 — a late response spills into the next slot).
  Duration poll_latency{milliseconds(500)};
  double poll_jitter{0.15};
  double poll_tail_prob{0.0};
  double poll_tail_factor{2.0};

  // Value model: base + amplitude * sin(2*pi*t/period) + uniform noise.
  // Binary kinds (motion/door/...) toggle 0/1 instead.
  double value_base{21.0};
  double value_amplitude{3.0};
  Duration value_period{hours(24)};
  double value_noise{0.2};
};

// One sensor->process radio link.
struct LinkParams {
  double loss_prob{0.0};     // Bernoulli loss per transmission
  Duration latency{};        // defaults to the technology profile if zero
  double jitter_frac{-1.0};  // < 0 means: use the technology profile
};

class Sensor {
 public:
  // Called when an event transmission survives the link to `process`.
  using DeliveryFn = std::function<void(ProcessId, const SensorEvent&)>;

  Sensor(sim::Simulation& sim, SensorSpec spec, Rng rng);

  const SensorSpec& spec() const { return spec_; }
  SensorId id() const { return spec_.id; }

  void add_link(ProcessId process, LinkParams params);
  // Drop a link (wearable moved out of range, §2.1's user mobility).
  // Harmless if absent; transmissions already in the air still land.
  void remove_link(ProcessId process);
  void set_link_loss(ProcessId process, double loss_prob);
  double link_loss(ProcessId process) const;
  std::vector<ProcessId> linked_processes() const;
  bool linked_to(ProcessId process) const;

  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }

  // Begin autonomous emission (push sensors only; no-op for poll sensors).
  void start();
  void stop();

  void crash();
  void recover();
  bool crashed() const { return crashed_; }

  // Issue a poll on behalf of `from`; the response event (tagged with
  // `epoch_tag`) travels back over that process's link only. Silently
  // dropped when the sensor is busy or crashed (§8.5).
  void poll(ProcessId from, std::uint32_t epoch_tag);
  bool busy() const { return busy_; }

  // Test hook: emit one push event immediately.
  void emit_now();

  // --- Tamper evidence (Byzantine chaos) -----------------------------
  // Arm the integrity layer: every emission folds into the per-origin
  // hash chain, carries a keyed MAC for the radio hop, and is retained
  // in a small recent-emissions window (the injection source for replay
  // attacks). Disarmed sensors emit with chain == mac == 0 and keep no
  // window, so the default path is untouched.
  void enable_integrity(std::uint64_t key);
  bool integrity_enabled() const { return integrity_; }
  const std::vector<SensorEvent>& recent_events() const { return recent_; }

  // Statistics.
  std::uint64_t events_emitted() const { return events_emitted_; }
  std::uint64_t polls_received() const { return polls_received_; }
  std::uint64_t polls_dropped() const { return polls_dropped_; }
  std::uint64_t polls_served() const { return polls_served_; }
  std::uint64_t battery_drain() const { return polls_received_; }

  // Serialize device state (links, RNG stream, emission cursor, integrity
  // chain and replay window, counters) for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // While tracking is on, transmissions in the air are remembered as
  // (timer id, destination, event) so clone_state can serialize them.
  // Off by default; the normal emission path stays bookkeeping-free.
  void set_clone_tracking(bool on);
  // Full-state serialization for the clone path: RNG stream, links,
  // emission cursor, integrity window, counters, plus the emission-loop
  // timer, a pending poll response, and in-flight deliveries — each with
  // its (id, t, seq) timer identity. Requires clone tracking on.
  void clone_state(BinaryWriter& w) const;
  // Restore into a freshly built sensor of the same spec (asserted);
  // timers are re-created via ProcessTimers::restore_at.
  void restore_clone(BinaryReader& r);

  // Fork-divergence lever: replace the RNG stream with a salted child
  // stream. Two forked copies of a warm deployment perturbed with
  // different salts diverge from here on (loss draws, jitter, emission
  // gaps) while sharing the identical warm-up — the replicate axis of
  // fork-per-seed sweeps. Deterministic: same salt, same continuation.
  void perturb(std::uint64_t salt) { rng_ = rng_.fork(salt); }

 private:
  struct Link {
    LinkParams params;
  };

  void schedule_next_emission();
  void emit(std::uint32_t epoch_tag, bool poll_based,
            ProcessId poll_target = ProcessId{0xffff});
  void transmit(ProcessId process, const Link& link, const SensorEvent& e);
  double sample_value();
  Duration link_latency(const Link& link);

  sim::Simulation* sim_;
  SensorSpec spec_;
  Rng rng_;
  sim::ProcessTimers timers_;
  std::map<ProcessId, Link> links_;
  DeliveryFn deliver_;

  bool running_{false};
  bool crashed_{false};
  bool busy_{false};
  std::uint32_t next_seq_{1};
  int burst_remaining_{0};

  static constexpr std::size_t kRecentWindow = 64;
  bool integrity_{false};
  std::uint64_t integrity_key_{0};
  std::uint64_t chain_{hash::kFnvOffsetBasis};
  std::vector<SensorEvent> recent_;
  std::size_t recent_pos_{0};

  std::uint64_t events_emitted_{0};
  std::uint64_t polls_received_{0};
  std::uint64_t polls_dropped_{0};
  std::uint64_t polls_served_{0};

  // Clone tracking (set_clone_tracking): the emission-loop timer and the
  // pending poll response track their ids always (a member store is
  // free); in-flight deliveries keep a (timer, dst, event) list only
  // while tracking is on, pruned lazily as timers fire.
  struct InFlight {
    sim::TimerId timer;
    ProcessId process;
    SensorEvent event;
  };
  void track_delivery(sim::TimerId id, ProcessId process,
                      const SensorEvent& e);
  bool clone_tracking_{false};
  sim::TimerId emission_timer_{0};
  sim::TimerId poll_timer_{0};
  ProcessId poll_from_{};
  std::uint32_t poll_epoch_{0};
  std::vector<InFlight> in_flight_;
};

// True for sensor kinds whose value is a 0/1 indicator.
bool is_binary_kind(SensorKind kind);

}  // namespace riv::devices
