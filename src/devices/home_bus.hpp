// HomeBus: the wiring layer between devices and Rivulet processes.
//
// Owns every sensor and actuator in the simulated home, knows which host
// has which radio adapters (§7), and which device links exist. The Rivulet
// runtime queries it to decide active vs. shadow node placement (§3.3):
// a process gets an active node for a device iff it has an adapter for the
// device's technology AND a link to the device exists (in range).
//
// This is the moral equivalent of the adapter layer + physical air in the
// paper's testbed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "devices/actuator.hpp"
#include "devices/sensor.hpp"

namespace riv::devices {

class HomeBus {
 public:
  using EventHandler = std::function<void(const SensorEvent&)>;

  explicit HomeBus(sim::Simulation& sim);

  // --- Construction of the home -------------------------------------
  Sensor& add_sensor(const SensorSpec& spec);
  Actuator& add_actuator(const ActuatorSpec& spec);
  void add_adapter(ProcessId process, Technology tech);
  bool has_adapter(ProcessId process, Technology tech) const;
  // The adapter instance (frame counters) of a process's radio.
  Adapter& adapter(ProcessId process, Technology tech);

  // Wire a device link. Requires a matching adapter on the process.
  void link_sensor(SensorId sensor, ProcessId process, LinkParams params = {});
  void link_actuator(ActuatorId actuator, ProcessId process,
                     double loss_prob = 0.0);

  // --- Runtime interface --------------------------------------------
  // All events any linked sensor delivers to `process` flow to `handler`.
  void subscribe(ProcessId process, EventHandler handler);
  void unsubscribe(ProcessId process);  // crashed process hears nothing

  bool sensor_in_range(ProcessId process, SensorId sensor) const;
  bool actuator_in_range(ProcessId process, ActuatorId actuator) const;
  std::vector<ProcessId> processes_in_range(SensorId sensor) const;
  std::vector<ProcessId> processes_in_range(ActuatorId actuator) const;

  void poll(ProcessId from, SensorId sensor, std::uint32_t epoch_tag);
  void actuate(ProcessId from, const Command& cmd);

  // Chaos-only injection hook: hand a (possibly forged or replayed)
  // sensor event straight to `process`'s adapter, as if it had arrived
  // over the radio. The Byzantine injector is the only caller — real
  // devices always go through Sensor::transmit.
  void inject_event(ProcessId process, const SensorEvent& e);

  // --- Access ---------------------------------------------------------
  Sensor& sensor(SensorId id);
  const Sensor& sensor(SensorId id) const;
  Actuator& actuator(ActuatorId id);
  const Actuator& actuator(ActuatorId id) const;
  std::vector<SensorId> sensors() const;
  std::vector<ActuatorId> actuators() const;

  // Start autonomous emission on every push sensor.
  void start_all();

  sim::Simulation& sim() { return *sim_; }

  // Serialize every device, adapter frame counters, and which processes
  // are currently subscribed (handlers are closures; their presence is
  // the state) for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Forwarded to every sensor and actuator (in-flight tracking).
  void set_clone_tracking(bool on);
  // Devices + adapter counters. Subscriptions are NOT serialized here:
  // a restored process re-subscribes as part of its own restore, and the
  // sampled attestation (checkpoint_state byte-compare) covers the set.
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

  // Fork-divergence lever: salt every sensor's RNG stream (and the
  // kernel's) so a forked copy of a warm home diverges deterministically
  // — see Sensor::perturb.
  void perturb(std::uint64_t salt);

 private:
  void dispatch(ProcessId process, const SensorEvent& e);

  sim::Simulation* sim_;
  std::map<SensorId, std::unique_ptr<Sensor>> sensors_;
  std::map<ActuatorId, std::unique_ptr<Actuator>> actuators_;
  std::map<std::pair<ProcessId, Technology>, Adapter> adapters_;
  std::map<ProcessId, EventHandler> handlers_;
};

}  // namespace riv::devices
