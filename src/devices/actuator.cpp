#include "devices/actuator.hpp"

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace riv::devices {

Actuator::Actuator(sim::Simulation& sim, ActuatorSpec spec, Rng rng)
    : sim_(&sim),
      spec_(std::move(spec)),
      rng_(rng),
      timers_(sim),
      state_(spec_.initial_state) {}

void Actuator::add_link(ProcessId process, double loss_prob) {
  links_[process] = loss_prob;
}

bool Actuator::linked_to(ProcessId process) const {
  return links_.count(process) != 0;
}

std::vector<ProcessId> Actuator::linked_processes() const {
  std::vector<ProcessId> out;
  out.reserve(links_.size());
  for (const auto& [p, loss] : links_) out.push_back(p);
  return out;
}

void Actuator::crash() {
  crashed_ = true;
  timers_.cancel_all();
}

void Actuator::submit(ProcessId from, const Command& cmd) {
  auto it = links_.find(from);
  if (it == links_.end()) return;  // out of range
  if (rng_.bernoulli(it->second)) return;  // lost on the device link
  const TechProfile& prof = profile(spec_.tech);
  Duration delay = prof.link_latency + spec_.actuate_latency;
  sim::TimerId tid = timers_.schedule_after(delay, [this, cmd] {
    if (!crashed_) apply(cmd);
  });
  if (clone_tracking_) track_delivery(tid, cmd);
}

void Actuator::apply(const Command& cmd) {
  bool duplicate = !seen_.insert(cmd.id).second;
  if (duplicate) ++duplicate_deliveries_;

  bool accepted = true;
  if (cmd.test_and_set) {
    RIV_ASSERT(spec_.supports_test_and_set,
               "Test&Set command sent to a device without support");
    accepted = state_ == cmd.expected;
    if (!accepted) ++rejected_tas_;
  }
  if (accepted) {
    state_ = cmd.value;
    ++actions_;
    // A duplicate delivery that is accepted and the device is not
    // idempotent: a real-world double dispense / double brew.
    if (duplicate && !spec_.idempotent) ++unwarranted_actions_;
  }
  if (trace::active(trace::Component::kDevice)) {
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kDevice,
                trace::Kind::kActuated, cmd.cause,
                trace::fc(trace::Key::kCmd, cmd.id),
                trace::fa(trace::Key::kActuator, cmd.actuator),
                trace::fu(trace::Key::kAccepted, accepted ? 1 : 0),
                trace::fu(trace::Key::kDup, duplicate ? 1 : 0));
  }
  history_.push_back(
      Applied{cmd.id, cmd.value, sim_->now(), accepted, cmd.cause});
}

void Actuator::checkpoint_state(BinaryWriter& w) const {
  w.actuator_id(spec_.id);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(links_.size());
  for (const auto& [p, loss] : links_) {
    w.process_id(p);
    w.f64(loss);
  }
  w.u8(crashed_ ? 1 : 0);
  w.f64(state_);
  w.u64(seen_.size());
  for (CommandId id : seen_) w.command_id(id);
  w.u64(history_.size());
  for (const Applied& a : history_) {
    w.command_id(a.id);
    w.f64(a.value);
    w.time_point(a.at);
    w.u8(a.accepted ? 1 : 0);
    w.provenance_id(a.cause);
  }
  w.u64(actions_);
  w.u64(duplicate_deliveries_);
  w.u64(unwarranted_actions_);
  w.u64(rejected_tas_);
}

void Actuator::set_clone_tracking(bool on) {
  clone_tracking_ = on;
  if (!on) {
    in_flight_.clear();
    in_flight_.shrink_to_fit();
  }
}

void Actuator::track_delivery(sim::TimerId id, const Command& cmd) {
  if (in_flight_.size() >= 16) {
    TimePoint t;
    std::uint64_t seq;
    std::erase_if(in_flight_, [&](const InFlight& f) {
      return !sim_->timer_info(f.timer, &t, &seq);
    });
  }
  in_flight_.push_back({id, cmd});
}

void Actuator::clone_state(BinaryWriter& w) const {
  RIV_ASSERT(clone_tracking_, "Actuator::clone_state requires clone tracking");
  w.actuator_id(spec_.id);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(links_.size());
  for (const auto& [p, loss] : links_) {
    w.process_id(p);
    w.f64(loss);
  }
  w.u8(crashed_ ? 1 : 0);
  w.f64(state_);
  w.u64(seen_.size());
  for (CommandId id : seen_) w.command_id(id);
  w.u64(history_.size());
  for (const Applied& a : history_) {
    w.command_id(a.id);
    w.f64(a.value);
    w.time_point(a.at);
    w.u8(a.accepted ? 1 : 0);
    w.provenance_id(a.cause);
  }
  w.u64(actions_);
  w.u64(duplicate_deliveries_);
  w.u64(unwarranted_actions_);
  w.u64(rejected_tas_);

  TimePoint t;
  std::uint64_t seq;
  std::size_t live = 0;
  for (const InFlight& f : in_flight_)
    if (sim_->timer_info(f.timer, &t, &seq)) ++live;
  w.u64(live);
  for (const InFlight& f : in_flight_) {
    if (!sim_->timer_info(f.timer, &t, &seq)) continue;
    w.u64(f.timer);
    w.time_point(t);
    w.u64(seq);
    encode(w, f.cmd);
  }
}

void Actuator::restore_clone(BinaryReader& r) {
  ActuatorId id = r.actuator_id();
  RIV_ASSERT(id == spec_.id, "clone restore: actuator identity mismatch");
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng_.set_state(state);
  links_.clear();
  const std::uint64_t n_links = r.u64();
  for (std::uint64_t i = 0; i < n_links; ++i) {
    ProcessId p = r.process_id();
    links_[p] = r.f64();
  }
  crashed_ = r.u8() != 0;
  state_ = r.f64();
  seen_.clear();
  const std::uint64_t n_seen = r.u64();
  for (std::uint64_t i = 0; i < n_seen; ++i) seen_.insert(r.command_id());
  history_.clear();
  const std::uint64_t n_hist = r.u64();
  history_.reserve(n_hist);
  for (std::uint64_t i = 0; i < n_hist; ++i) {
    Applied a;
    a.id = r.command_id();
    a.value = r.f64();
    a.at = r.time_point();
    a.accepted = r.u8() != 0;
    a.cause = r.provenance_id();
    history_.push_back(a);
  }
  actions_ = r.u64();
  duplicate_deliveries_ = r.u64();
  unwarranted_actions_ = r.u64();
  rejected_tas_ = r.u64();

  const std::uint64_t n_flight = r.u64();
  for (std::uint64_t i = 0; i < n_flight; ++i) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    Command cmd = decode_command(r);
    timers_.restore_at(tid, t, seq, [this, cmd] {
      if (!crashed_) apply(cmd);
    });
    if (clone_tracking_) track_delivery(tid, cmd);
  }
}

}  // namespace riv::devices
