#include "devices/actuator.hpp"

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace riv::devices {

Actuator::Actuator(sim::Simulation& sim, ActuatorSpec spec, Rng rng)
    : sim_(&sim),
      spec_(std::move(spec)),
      rng_(rng),
      timers_(sim),
      state_(spec_.initial_state) {}

void Actuator::add_link(ProcessId process, double loss_prob) {
  links_[process] = loss_prob;
}

bool Actuator::linked_to(ProcessId process) const {
  return links_.count(process) != 0;
}

std::vector<ProcessId> Actuator::linked_processes() const {
  std::vector<ProcessId> out;
  out.reserve(links_.size());
  for (const auto& [p, loss] : links_) out.push_back(p);
  return out;
}

void Actuator::crash() {
  crashed_ = true;
  timers_.cancel_all();
}

void Actuator::submit(ProcessId from, const Command& cmd) {
  auto it = links_.find(from);
  if (it == links_.end()) return;  // out of range
  if (rng_.bernoulli(it->second)) return;  // lost on the device link
  const TechProfile& prof = profile(spec_.tech);
  Duration delay = prof.link_latency + spec_.actuate_latency;
  timers_.schedule_after(delay, [this, cmd] {
    if (!crashed_) apply(cmd);
  });
}

void Actuator::apply(const Command& cmd) {
  bool duplicate = !seen_.insert(cmd.id).second;
  if (duplicate) ++duplicate_deliveries_;

  bool accepted = true;
  if (cmd.test_and_set) {
    RIV_ASSERT(spec_.supports_test_and_set,
               "Test&Set command sent to a device without support");
    accepted = state_ == cmd.expected;
    if (!accepted) ++rejected_tas_;
  }
  if (accepted) {
    state_ = cmd.value;
    ++actions_;
    // A duplicate delivery that is accepted and the device is not
    // idempotent: a real-world double dispense / double brew.
    if (duplicate && !spec_.idempotent) ++unwarranted_actions_;
  }
  if (trace::active(trace::Component::kDevice)) {
    trace::emit(sim_->now(), ProcessId{0}, trace::Component::kDevice,
                trace::Kind::kActuated, cmd.cause,
                trace::fc(trace::Key::kCmd, cmd.id),
                trace::fa(trace::Key::kActuator, cmd.actuator),
                trace::fu(trace::Key::kAccepted, accepted ? 1 : 0),
                trace::fu(trace::Key::kDup, duplicate ? 1 : 0));
  }
  history_.push_back(
      Applied{cmd.id, cmd.value, sim_->now(), accepted, cmd.cause});
}

void Actuator::checkpoint_state(BinaryWriter& w) const {
  w.actuator_id(spec_.id);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(links_.size());
  for (const auto& [p, loss] : links_) {
    w.process_id(p);
    w.f64(loss);
  }
  w.u8(crashed_ ? 1 : 0);
  w.f64(state_);
  w.u64(seen_.size());
  for (CommandId id : seen_) w.command_id(id);
  w.u64(history_.size());
  for (const Applied& a : history_) {
    w.command_id(a.id);
    w.f64(a.value);
    w.time_point(a.at);
    w.u8(a.accepted ? 1 : 0);
    w.provenance_id(a.cause);
  }
  w.u64(actions_);
  w.u64(duplicate_deliveries_);
  w.u64(unwarranted_actions_);
  w.u64(rejected_tas_);
}

}  // namespace riv::devices
