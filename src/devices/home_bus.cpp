#include "devices/home_bus.hpp"

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace riv::devices {

HomeBus::HomeBus(sim::Simulation& sim) : sim_(&sim) {}

Sensor& HomeBus::add_sensor(const SensorSpec& spec) {
  RIV_ASSERT(sensors_.count(spec.id) == 0, "duplicate sensor id");
  auto sensor = std::make_unique<Sensor>(*sim_, spec,
                                         sim_->rng().fork(spec.id.value));
  sensor->set_delivery([this](ProcessId p, const SensorEvent& e) {
    dispatch(p, e);
  });
  Sensor& ref = *sensor;
  sensors_.emplace(spec.id, std::move(sensor));
  return ref;
}

Actuator& HomeBus::add_actuator(const ActuatorSpec& spec) {
  RIV_ASSERT(actuators_.count(spec.id) == 0, "duplicate actuator id");
  auto act = std::make_unique<Actuator>(
      *sim_, spec, sim_->rng().fork(0x4000u + spec.id.value));
  Actuator& ref = *act;
  actuators_.emplace(spec.id, std::move(act));
  return ref;
}

void HomeBus::add_adapter(ProcessId process, Technology tech) {
  adapters_.emplace(std::make_pair(process, tech), Adapter(tech));
}

bool HomeBus::has_adapter(ProcessId process, Technology tech) const {
  return adapters_.count({process, tech}) != 0;
}

Adapter& HomeBus::adapter(ProcessId process, Technology tech) {
  auto it = adapters_.find({process, tech});
  RIV_ASSERT(it != adapters_.end(), "no such adapter");
  return it->second;
}

void HomeBus::link_sensor(SensorId sensor_id, ProcessId process,
                          LinkParams params) {
  Sensor& s = sensor(sensor_id);
  RIV_ASSERT(has_adapter(process, s.spec().tech),
             "process lacks the adapter for this sensor's technology");
  s.add_link(process, params);
}

void HomeBus::link_actuator(ActuatorId actuator_id, ProcessId process,
                            double loss_prob) {
  Actuator& a = actuator(actuator_id);
  RIV_ASSERT(has_adapter(process, a.spec().tech),
             "process lacks the adapter for this actuator's technology");
  a.add_link(process, loss_prob);
}

void HomeBus::subscribe(ProcessId process, EventHandler handler) {
  handlers_[process] = std::move(handler);
}

void HomeBus::unsubscribe(ProcessId process) { handlers_.erase(process); }

bool HomeBus::sensor_in_range(ProcessId process, SensorId sensor_id) const {
  auto it = sensors_.find(sensor_id);
  return it != sensors_.end() && it->second->linked_to(process);
}

bool HomeBus::actuator_in_range(ProcessId process,
                                ActuatorId actuator_id) const {
  auto it = actuators_.find(actuator_id);
  return it != actuators_.end() && it->second->linked_to(process);
}

std::vector<ProcessId> HomeBus::processes_in_range(SensorId sensor_id) const {
  auto it = sensors_.find(sensor_id);
  RIV_ASSERT(it != sensors_.end(), "unknown sensor");
  return it->second->linked_processes();
}

std::vector<ProcessId> HomeBus::processes_in_range(
    ActuatorId actuator_id) const {
  auto it = actuators_.find(actuator_id);
  RIV_ASSERT(it != actuators_.end(), "unknown actuator");
  return it->second->linked_processes();
}

void HomeBus::poll(ProcessId from, SensorId sensor_id,
                   std::uint32_t epoch_tag) {
  Sensor& s = sensor(sensor_id);
  auto it = adapters_.find({from, s.spec().tech});
  if (it != adapters_.end()) it->second.count_tx_frame();
  s.poll(from, epoch_tag);
}

void HomeBus::inject_event(ProcessId process, const SensorEvent& e) {
  dispatch(process, e);
}

void HomeBus::actuate(ProcessId from, const Command& cmd) {
  Actuator& a = actuator(cmd.actuator);
  auto it = adapters_.find({from, a.spec().tech});
  if (it != adapters_.end()) it->second.count_tx_frame();
  a.submit(from, cmd);
}

Sensor& HomeBus::sensor(SensorId id) {
  auto it = sensors_.find(id);
  RIV_ASSERT(it != sensors_.end(), "unknown sensor");
  return *it->second;
}

const Sensor& HomeBus::sensor(SensorId id) const {
  auto it = sensors_.find(id);
  RIV_ASSERT(it != sensors_.end(), "unknown sensor");
  return *it->second;
}

Actuator& HomeBus::actuator(ActuatorId id) {
  auto it = actuators_.find(id);
  RIV_ASSERT(it != actuators_.end(), "unknown actuator");
  return *it->second;
}

const Actuator& HomeBus::actuator(ActuatorId id) const {
  auto it = actuators_.find(id);
  RIV_ASSERT(it != actuators_.end(), "unknown actuator");
  return *it->second;
}

std::vector<SensorId> HomeBus::sensors() const {
  std::vector<SensorId> out;
  out.reserve(sensors_.size());
  for (const auto& [id, s] : sensors_) out.push_back(id);
  return out;
}

std::vector<ActuatorId> HomeBus::actuators() const {
  std::vector<ActuatorId> out;
  out.reserve(actuators_.size());
  for (const auto& [id, a] : actuators_) out.push_back(id);
  return out;
}

void HomeBus::start_all() {
  for (auto& [id, s] : sensors_) s->start();
}

void HomeBus::dispatch(ProcessId process, const SensorEvent& e) {
  auto ait = adapters_.find({process, sensor(e.id.sensor).spec().tech});
  if (ait != adapters_.end()) ait->second.count_rx_frame();
  auto it = handlers_.find(process);
  bool up = it != handlers_.end() && it->second;
  if (trace::active(trace::Component::kDevice)) {
    trace::emit(sim_->now(), process, trace::Component::kDevice,
                trace::Kind::kAdapterRx, provenance_of(e.id),
                trace::fe(trace::Key::kEvent, e.id),
                trace::fu(trace::Key::kUp, up ? 1 : 0));
  }
  if (up) it->second(e);
}

void HomeBus::perturb(std::uint64_t salt) {
  sim_->rng() = sim_->rng().fork(salt);
  std::uint64_t i = 1;
  for (auto& [id, sensor] : sensors_) sensor->perturb(salt ^ (i++ << 32));
}

void HomeBus::checkpoint_state(BinaryWriter& w) const {
  w.u64(sensors_.size());
  for (const auto& [id, sensor] : sensors_) sensor->checkpoint_state(w);
  w.u64(actuators_.size());
  for (const auto& [id, actuator] : actuators_) actuator->checkpoint_state(w);
  w.u64(adapters_.size());
  for (const auto& [key, adapter] : adapters_) {
    w.process_id(key.first);
    w.u8(static_cast<std::uint8_t>(key.second));
    w.u64(adapter.frames_received());
    w.u64(adapter.frames_sent());
  }
  w.u64(handlers_.size());
  for (const auto& [p, handler] : handlers_) w.process_id(p);
}

void HomeBus::set_clone_tracking(bool on) {
  for (auto& [id, sensor] : sensors_) sensor->set_clone_tracking(on);
  for (auto& [id, actuator] : actuators_) actuator->set_clone_tracking(on);
}

void HomeBus::clone_state(BinaryWriter& w) const {
  w.u64(sensors_.size());
  for (const auto& [id, sensor] : sensors_) sensor->clone_state(w);
  w.u64(actuators_.size());
  for (const auto& [id, actuator] : actuators_) actuator->clone_state(w);
  w.u64(adapters_.size());
  for (const auto& [key, adapter] : adapters_) {
    w.process_id(key.first);
    w.u8(static_cast<std::uint8_t>(key.second));
    w.u64(adapter.frames_received());
    w.u64(adapter.frames_sent());
  }
}

void HomeBus::restore_clone(BinaryReader& r) {
  RIV_ASSERT(r.u64() == sensors_.size(),
             "clone restore: sensor count mismatch (different scenario?)");
  for (auto& [id, sensor] : sensors_) sensor->restore_clone(r);
  RIV_ASSERT(r.u64() == actuators_.size(),
             "clone restore: actuator count mismatch");
  for (auto& [id, actuator] : actuators_) actuator->restore_clone(r);
  RIV_ASSERT(r.u64() == adapters_.size(),
             "clone restore: adapter count mismatch");
  for (auto& [key, adapter] : adapters_) {
    ProcessId pid = r.process_id();
    auto tech = static_cast<Technology>(r.u8());
    RIV_ASSERT(pid == key.first && tech == key.second,
               "clone restore: adapter identity mismatch");
    std::uint64_t rx = r.u64();
    std::uint64_t tx = r.u64();
    adapter.restore_counts(rx, tx);
  }
}

}  // namespace riv::devices
