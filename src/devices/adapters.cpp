#include "devices/adapters.hpp"

#include "common/assert.hpp"

namespace riv::devices {

const TechProfile& profile(Technology tech) {
  // Ranges per §2.1; latencies representative of the respective stacks
  // (Z-Wave/Zigbee serial command round-trips are tens of ms; the IP
  // software sensor of §8.1 rides the WiFi LAN at ~1 ms).
  // Bandwidths: Z-Wave ~100 kb/s, Zigbee ~250 kb/s, BLE ~1 Mb/s,
  // IP-over-WiFi ~50 Mb/s effective.
  static const TechProfile kZWave{Technology::kZWave, 40.0, true,
                                  milliseconds(12), 0.3, 0.001, 12, 0.0125};
  static const TechProfile kZigbee{Technology::kZigbee, 15.0, true,
                                   milliseconds(8), 0.3, 0.001, 10, 0.03125};
  static const TechProfile kBle{Technology::kBle, 100.0, false,
                                milliseconds(4), 0.2, 0.0005, 8, 0.125};
  static const TechProfile kIp{Technology::kIp, 1e9, true, microseconds(800),
                               0.2, 0.0, 28, 6.25};
  switch (tech) {
    case Technology::kZWave: return kZWave;
    case Technology::kZigbee: return kZigbee;
    case Technology::kBle: return kBle;
    case Technology::kIp: return kIp;
  }
  RIV_ASSERT(false, "unknown technology");
  return kIp;
}

}  // namespace riv::devices
