// Simulated physical actuators (§5).
//
// Two device classes matter to the execution service:
//   * idempotent actuators (bulbs, switches, sirens, thermostats, locks):
//     re-applying a command is harmless — set(state) twice equals once;
//   * non-idempotent actuators (water dispensers, coffee makers): every
//     accepted command performs a physical action, so duplicates are
//     "unwarranted actions". Devices that support Test&Set accept a
//     command only when the device state matches the command's expected
//     value, which is how concurrent logic nodes avoid duplicates.
// The actuator records everything it does so tests and benches can count
// duplicate deliveries and unwarranted actions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "devices/adapters.hpp"
#include "devices/event.hpp"
#include "sim/simulation.hpp"

namespace riv::devices {

struct ActuatorSpec {
  ActuatorId id{};
  std::string name;
  Technology tech{Technology::kIp};
  bool idempotent{true};
  bool supports_test_and_set{false};
  Duration actuate_latency{milliseconds(15)};  // command -> physical effect
  double initial_state{0.0};
};

class Actuator {
 public:
  struct Applied {
    CommandId id{};
    double value{0.0};
    TimePoint at{};
    bool accepted{false};
    ProvenanceId cause{};  // the sensor reading the command reacted to
  };

  Actuator(sim::Simulation& sim, ActuatorSpec spec, Rng rng);

  const ActuatorSpec& spec() const { return spec_; }
  ActuatorId id() const { return spec_.id; }

  void add_link(ProcessId process, double loss_prob = 0.0);
  bool linked_to(ProcessId process) const;
  std::vector<ProcessId> linked_processes() const;

  // Submit a command over `from`'s link; takes effect after the link and
  // device latencies unless the actuator is crashed (§3.1: a faulty
  // actuator simply does not respond).
  void submit(ProcessId from, const Command& cmd);

  void crash();
  void recover() { crashed_ = false; }
  bool crashed() const { return crashed_; }

  double state() const { return state_; }
  const std::vector<Applied>& history() const { return history_; }

  // Number of accepted commands that caused a physical action.
  std::uint64_t actions() const { return actions_; }
  // Same CommandId applied more than once (harmless iff idempotent).
  std::uint64_t duplicate_deliveries() const { return duplicate_deliveries_; }
  // Duplicate physical actions on a non-idempotent device — the failure
  // mode §5's Test&Set discussion is about.
  std::uint64_t unwarranted_actions() const { return unwarranted_actions_; }
  std::uint64_t rejected_test_and_set() const { return rejected_tas_; }

  // Serialize device state (links, RNG stream, physical state, command
  // dedup set, applied history, counters) for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Mirrors Sensor: while tracking is on, commands in flight to the
  // device are remembered as (timer id, Command) so clone_state can
  // serialize them with their timer identity.
  void set_clone_tracking(bool on);
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  struct InFlight {
    sim::TimerId timer;
    Command cmd;
  };

  void apply(const Command& cmd);
  void track_delivery(sim::TimerId id, const Command& cmd);

  sim::Simulation* sim_;
  ActuatorSpec spec_;
  Rng rng_;
  sim::ProcessTimers timers_;
  std::map<ProcessId, double> links_;  // process -> loss probability

  bool crashed_{false};
  double state_;
  std::set<CommandId> seen_;
  std::vector<Applied> history_;
  std::uint64_t actions_{0};
  std::uint64_t duplicate_deliveries_{0};
  std::uint64_t unwarranted_actions_{0};
  std::uint64_t rejected_tas_{0};

  bool clone_tracking_{false};
  std::vector<InFlight> in_flight_;
};

}  // namespace riv::devices
