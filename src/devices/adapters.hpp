// Protocol adapters (§7).
//
// In the Java prototype, adapters (OpenZWave, EmberZNet, IP-camera REST,
// Android SensorManager) encapsulate technology-specific communication.
// Here each technology is an emulated profile capturing the properties the
// paper depends on (§2.1, §3.1):
//   * communication range — determines which processes get active nodes,
//   * multicast capability — whether one emission can reach several
//     processes (Z-Wave mesh: yes; BLE: single bonded host),
//   * link latency and a loss floor from radio interference.
// A process owns one Adapter per technology it has hardware for; a process
// without a Z-Wave radio can never create an active node for a Z-Wave
// sensor no matter how close it is.
#pragma once

#include <cstdint>
#include <set>

#include "common/time.hpp"
#include "common/types.hpp"

namespace riv::devices {

enum class Technology : std::uint8_t { kZWave = 0, kZigbee = 1, kBle = 2, kIp = 3 };

inline const char* to_string(Technology t) {
  switch (t) {
    case Technology::kZWave: return "zwave";
    case Technology::kZigbee: return "zigbee";
    case Technology::kBle: return "ble";
    case Technology::kIp: return "ip";
  }
  return "unknown";
}

struct TechProfile {
  Technology tech;
  double range_m;          // §2.1: Zigbee 10–20 m, Z-Wave 40 m, BLE 100 m
  bool multicast;          // can one emission reach multiple processes?
  Duration link_latency;   // sensor -> process one-way, size-independent
  double link_jitter;      // uniform fraction of link_latency
  double loss_floor;       // irreducible radio loss probability
  std::size_t frame_overhead;  // tech framing bytes on the device link
  double bandwidth_bytes_per_us;  // transmission time = size / bandwidth
};

const TechProfile& profile(Technology tech);

// Per-process, per-technology adapter. Tracks frame counts so experiments
// can report device-link traffic separately from WiFi traffic.
class Adapter {
 public:
  explicit Adapter(Technology tech) : tech_(tech) {}

  Technology tech() const { return tech_; }
  const TechProfile& prof() const { return profile(tech_); }

  void count_rx_frame() { ++frames_received_; }
  void count_tx_frame() { ++frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  // Snapshot-clone restore (DESIGN.md §16).
  void restore_counts(std::uint64_t rx, std::uint64_t tx) {
    frames_received_ = rx;
    frames_sent_ = tx;
  }

 private:
  Technology tech_;
  std::uint64_t frames_received_{0};
  std::uint64_t frames_sent_{0};
};

// The set of technologies a host has radios for.
using AdapterSet = std::set<Technology>;

}  // namespace riv::devices
