#include "devices/sensor.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::devices {

const char* to_string(SensorKind kind) {
  switch (kind) {
    case SensorKind::kTemperature: return "temperature";
    case SensorKind::kHumidity: return "humidity";
    case SensorKind::kLuminance: return "luminance";
    case SensorKind::kUv: return "uv";
    case SensorKind::kMotion: return "motion";
    case SensorKind::kDoor: return "door";
    case SensorKind::kMoisture: return "moisture";
    case SensorKind::kSmoke: return "smoke";
    case SensorKind::kCo2: return "co2";
    case SensorKind::kEnergy: return "energy";
    case SensorKind::kVibration: return "vibration";
    case SensorKind::kCamera: return "camera";
    case SensorKind::kMicrophone: return "microphone";
    case SensorKind::kWearable: return "wearable";
  }
  return "unknown";
}

bool is_binary_kind(SensorKind kind) {
  switch (kind) {
    case SensorKind::kMotion:
    case SensorKind::kDoor:
    case SensorKind::kMoisture:
    case SensorKind::kSmoke:
    case SensorKind::kVibration:
    case SensorKind::kWearable:
      return true;
    default:
      return false;
  }
}

Sensor::Sensor(sim::Simulation& sim, SensorSpec spec, Rng rng)
    : sim_(&sim), spec_(std::move(spec)), rng_(rng), timers_(sim) {}

void Sensor::add_link(ProcessId process, LinkParams params) {
  links_[process] = Link{params};
}

void Sensor::remove_link(ProcessId process) { links_.erase(process); }

void Sensor::set_link_loss(ProcessId process, double loss_prob) {
  auto it = links_.find(process);
  RIV_ASSERT(it != links_.end(), "no such link");
  it->second.params.loss_prob = loss_prob;
}

double Sensor::link_loss(ProcessId process) const {
  auto it = links_.find(process);
  RIV_ASSERT(it != links_.end(), "no such link");
  return it->second.params.loss_prob;
}

std::vector<ProcessId> Sensor::linked_processes() const {
  std::vector<ProcessId> out;
  out.reserve(links_.size());
  for (const auto& [p, link] : links_) out.push_back(p);
  return out;
}

bool Sensor::linked_to(ProcessId process) const {
  return links_.count(process) != 0;
}

void Sensor::start() {
  if (!spec_.push || running_) return;
  running_ = true;
  schedule_next_emission();
}

void Sensor::stop() {
  running_ = false;
  timers_.cancel_all();
}

void Sensor::crash() {
  crashed_ = true;
  busy_ = false;
  timers_.cancel_all();
}

void Sensor::recover() {
  if (!crashed_) return;
  crashed_ = false;
  if (running_ && spec_.push) schedule_next_emission();
}

void Sensor::schedule_next_emission() {
  if (!running_ || crashed_ || !spec_.push) return;
  RIV_ASSERT(spec_.rate_hz > 0, "push sensor needs a positive rate");
  Duration gap{};
  const double mean_us = 1e6 / spec_.rate_hz;
  switch (spec_.pattern) {
    case EmitPattern::kPeriodic:
      gap = Duration{static_cast<std::int64_t>(mean_us)};
      break;
    case EmitPattern::kPoisson:
      gap = Duration{static_cast<std::int64_t>(rng_.exponential(mean_us))};
      break;
    case EmitPattern::kBurst:
      if (burst_remaining_ > 0) {
        --burst_remaining_;
        gap = milliseconds(30);  // back-to-back within a burst
      } else {
        burst_remaining_ = spec_.burst_size - 1;
        gap = Duration{static_cast<std::int64_t>(
            rng_.exponential(mean_us * spec_.burst_size))};
      }
      break;
  }
  emission_timer_ = timers_.schedule_after(gap, [this] {
    emit(0, /*poll_based=*/false);
    schedule_next_emission();
  });
}

void Sensor::emit_now() {
  RIV_ASSERT(spec_.push, "emit_now is for push sensors");
  if (!crashed_) emit(0, /*poll_based=*/false);
}

void Sensor::enable_integrity(std::uint64_t key) {
  integrity_ = true;
  integrity_key_ = key;
}

double Sensor::sample_value() {
  if (is_binary_kind(spec_.kind)) {
    // Alternate open/close, motion/clear — apps only care about edges.
    return static_cast<double>(next_seq_ % 2);
  }
  const double t = static_cast<double>(sim_->now().us);
  const double period = static_cast<double>(spec_.value_period.us);
  double v = spec_.value_base +
             spec_.value_amplitude * std::sin(2.0 * M_PI * t / period);
  v += rng_.uniform(-spec_.value_noise, spec_.value_noise);
  return v;
}

Duration Sensor::link_latency(const Link& link) {
  const TechProfile& prof = profile(spec_.tech);
  Duration base =
      link.params.latency.us > 0 ? link.params.latency : prof.link_latency;
  double jitter =
      link.params.jitter_frac >= 0 ? link.params.jitter_frac : prof.link_jitter;
  double us = static_cast<double>(base.us) * (1.0 + rng_.uniform(0.0, jitter));
  // Transmission time for the payload plus technology framing.
  us += static_cast<double>(spec_.payload_size + prof.frame_overhead) /
        prof.bandwidth_bytes_per_us;
  return Duration{static_cast<std::int64_t>(us)};
}

void Sensor::transmit(ProcessId process, const Link& link,
                      const SensorEvent& e) {
  const TechProfile& prof = profile(spec_.tech);
  double loss = std::max(link.params.loss_prob, prof.loss_floor);
  if (rng_.bernoulli(loss)) return;  // lost on the air
  Duration lat = link_latency(link);
  sim::TimerId tid = timers_.schedule_after(lat, [this, process, e] {
    if (deliver_) deliver_(process, e);
  });
  if (clone_tracking_) track_delivery(tid, process, e);
}

void Sensor::emit(std::uint32_t epoch_tag, bool poll_based,
                  ProcessId poll_target) {
  SensorEvent e;
  e.id = EventId{spec_.id, next_seq_++};
  e.epoch = epoch_tag;
  e.emitted_at = sim_->now();
  e.poll_based = poll_based;
  e.value = sample_value();
  e.payload_size = spec_.payload_size;
  if (integrity_) {
    // Fold this emission into the per-origin hash chain; the digest
    // commits to the full (seq, epoch, value) history up to this event.
    chain_ = hash::fnv1a(chain_, &e.id.seq, sizeof e.id.seq);
    chain_ = hash::fnv1a(chain_, &e.epoch, sizeof e.epoch);
    chain_ = hash::fnv1a(chain_, &e.value, sizeof e.value);
    e.chain = chain_;
    e.mac = event_mac(integrity_key_, e);
    if (recent_.size() < kRecentWindow) {
      recent_.push_back(e);
    } else {
      recent_[recent_pos_] = e;
      recent_pos_ = (recent_pos_ + 1) % kRecentWindow;
    }
  }
  ++events_emitted_;
  if (trace::active(trace::Component::kDevice)) {
    if (integrity_) {
      trace::emit(sim_->now(), poll_based ? poll_target : ProcessId{0},
                  trace::Component::kDevice, trace::Kind::kEmit,
                  provenance_of(e.id), trace::fe(trace::Key::kEvent, e.id),
                  trace::fu(trace::Key::kEpoch, e.epoch),
                  trace::fu(trace::Key::kPoll, poll_based ? 1 : 0),
                  trace::fu(trace::Key::kChain, e.chain));
    } else {
      trace::emit(sim_->now(), poll_based ? poll_target : ProcessId{0},
                  trace::Component::kDevice, trace::Kind::kEmit,
                  provenance_of(e.id), trace::fe(trace::Key::kEvent, e.id),
                  trace::fu(trace::Key::kEpoch, e.epoch),
                  trace::fu(trace::Key::kPoll, poll_based ? 1 : 0));
    }
  }

  if (poll_based) {
    // A poll response travels only over the requesting process's link.
    auto it = links_.find(poll_target);
    if (it != links_.end()) transmit(poll_target, it->second, e);
    return;
  }
  const TechProfile& prof = profile(spec_.tech);
  if (prof.multicast) {
    for (const auto& [process, link] : links_) transmit(process, link, e);
  } else if (!links_.empty()) {
    // Non-multicast technology (BLE): only the bonded process — the first
    // attached link — receives emissions.
    const auto& [process, link] = *links_.begin();
    transmit(process, link, e);
  }
}

void Sensor::poll(ProcessId from, std::uint32_t epoch_tag) {
  if (crashed_) return;
  if (links_.find(from) == links_.end()) return;  // out of range
  ++polls_received_;
  if (busy_) {
    // §8.5: one outstanding request; the rest are dropped silently.
    ++polls_dropped_;
    return;
  }
  busy_ = true;
  double scale = 1.0 + rng_.uniform(-spec_.poll_jitter, spec_.poll_jitter);
  if (spec_.poll_tail_prob > 0.0 && rng_.bernoulli(spec_.poll_tail_prob))
    scale *= spec_.poll_tail_factor;  // stack-level retransmission
  auto latency = static_cast<std::int64_t>(
      static_cast<double>(spec_.poll_latency.us) * scale);
  poll_from_ = from;
  poll_epoch_ = epoch_tag;
  poll_timer_ = timers_.schedule_after(Duration{latency}, [this, from,
                                                          epoch_tag] {
    busy_ = false;
    ++polls_served_;
    emit(epoch_tag, /*poll_based=*/true, from);
  });
}

void Sensor::checkpoint_state(BinaryWriter& w) const {
  w.sensor_id(spec_.id);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(links_.size());
  for (const auto& [p, link] : links_) {
    w.process_id(p);
    w.f64(link.params.loss_prob);
    w.duration(link.params.latency);
    w.f64(link.params.jitter_frac);
  }
  w.u8(running_ ? 1 : 0);
  w.u8(crashed_ ? 1 : 0);
  w.u8(busy_ ? 1 : 0);
  w.u32(next_seq_);
  w.u32(static_cast<std::uint32_t>(burst_remaining_));
  w.u8(integrity_ ? 1 : 0);
  w.u64(chain_);
  w.u64(recent_.size());
  w.u64(recent_pos_);
  for (const SensorEvent& e : recent_) {
    w.event_id(e.id);
    w.time_point(e.emitted_at);
  }
  w.u64(events_emitted_);
  w.u64(polls_received_);
  w.u64(polls_dropped_);
  w.u64(polls_served_);
}

void Sensor::set_clone_tracking(bool on) {
  clone_tracking_ = on;
  if (!on) {
    in_flight_.clear();
    in_flight_.shrink_to_fit();
  }
}

void Sensor::track_delivery(sim::TimerId id, ProcessId process,
                            const SensorEvent& e) {
  // Lazy prune: drop fired entries once the list is mostly dead.
  if (in_flight_.size() >= 16) {
    TimePoint t;
    std::uint64_t seq;
    std::erase_if(in_flight_, [&](const InFlight& f) {
      return !sim_->timer_info(f.timer, &t, &seq);
    });
  }
  in_flight_.push_back({id, process, e});
}

void Sensor::clone_state(BinaryWriter& w) const {
  RIV_ASSERT(clone_tracking_, "Sensor::clone_state requires clone tracking");
  w.sensor_id(spec_.id);
  for (std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(links_.size());
  for (const auto& [p, link] : links_) {
    w.process_id(p);
    w.f64(link.params.loss_prob);
    w.duration(link.params.latency);
    w.f64(link.params.jitter_frac);
  }
  w.u8(running_ ? 1 : 0);
  w.u8(crashed_ ? 1 : 0);
  w.u8(busy_ ? 1 : 0);
  w.u32(next_seq_);
  w.u32(static_cast<std::uint32_t>(burst_remaining_));
  w.u8(integrity_ ? 1 : 0);
  w.u64(integrity_key_);
  w.u64(chain_);
  w.u64(recent_.size());
  w.u64(recent_pos_);
  for (const SensorEvent& e : recent_) encode_clone(w, e);
  w.u64(events_emitted_);
  w.u64(polls_received_);
  w.u64(polls_dropped_);
  w.u64(polls_served_);

  TimePoint t;
  std::uint64_t seq;
  bool emitting = emission_timer_ != 0 &&
                  sim_->timer_info(emission_timer_, &t, &seq);
  w.u8(emitting ? 1 : 0);
  if (emitting) {
    w.u64(emission_timer_);
    w.time_point(t);
    w.u64(seq);
  }
  bool polling = poll_timer_ != 0 && sim_->timer_info(poll_timer_, &t, &seq);
  w.u8(polling ? 1 : 0);
  if (polling) {
    w.u64(poll_timer_);
    w.time_point(t);
    w.u64(seq);
    w.process_id(poll_from_);
    w.u32(poll_epoch_);
  }
  std::size_t live = 0;
  for (const InFlight& f : in_flight_)
    if (sim_->timer_info(f.timer, &t, &seq)) ++live;
  w.u64(live);
  for (const InFlight& f : in_flight_) {
    if (!sim_->timer_info(f.timer, &t, &seq)) continue;
    w.u64(f.timer);
    w.time_point(t);
    w.u64(seq);
    w.process_id(f.process);
    encode_clone(w, f.event);
  }
}

void Sensor::restore_clone(BinaryReader& r) {
  SensorId id = r.sensor_id();
  RIV_ASSERT(id == spec_.id, "clone restore: sensor identity mismatch");
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng_.set_state(state);
  links_.clear();
  const std::uint64_t n_links = r.u64();
  for (std::uint64_t i = 0; i < n_links; ++i) {
    ProcessId p = r.process_id();
    LinkParams params;
    params.loss_prob = r.f64();
    params.latency = r.duration();
    params.jitter_frac = r.f64();
    links_[p] = Link{params};
  }
  running_ = r.u8() != 0;
  crashed_ = r.u8() != 0;
  busy_ = r.u8() != 0;
  next_seq_ = r.u32();
  burst_remaining_ = static_cast<int>(r.u32());
  integrity_ = r.u8() != 0;
  integrity_key_ = r.u64();
  chain_ = r.u64();
  const std::uint64_t n_recent = r.u64();
  recent_pos_ = r.u64();
  recent_.clear();
  recent_.reserve(n_recent);
  for (std::uint64_t i = 0; i < n_recent; ++i)
    recent_.push_back(decode_clone_event(r));
  events_emitted_ = r.u64();
  polls_received_ = r.u64();
  polls_dropped_ = r.u64();
  polls_served_ = r.u64();

  if (r.u8() != 0) {  // emission-loop timer
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    emission_timer_ = timers_.restore_at(tid, t, seq, [this] {
      emit(0, /*poll_based=*/false);
      schedule_next_emission();
    });
  }
  if (r.u8() != 0) {  // pending poll response
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    ProcessId from = r.process_id();
    std::uint32_t epoch_tag = r.u32();
    poll_from_ = from;
    poll_epoch_ = epoch_tag;
    poll_timer_ = timers_.restore_at(tid, t, seq, [this, from, epoch_tag] {
      busy_ = false;
      ++polls_served_;
      emit(epoch_tag, /*poll_based=*/true, from);
    });
  }
  const std::uint64_t n_flight = r.u64();
  for (std::uint64_t i = 0; i < n_flight; ++i) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    ProcessId process = r.process_id();
    SensorEvent e = decode_clone_event(r);
    timers_.restore_at(tid, t, seq, [this, process, e] {
      if (deliver_) deliver_(process, e);
    });
    if (clone_tracking_) track_delivery(tid, process, e);
  }
}

}  // namespace riv::devices
