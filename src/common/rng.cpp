#include "common/rng.hpp"

#include <cmath>

namespace riv {

double Rng::log_(double x) { return std::log(x); }

}  // namespace riv
