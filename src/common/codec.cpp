#include "common/codec.hpp"

#include <cstring>

namespace riv {

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

double BinaryReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace riv
