// Deterministic random number generation.
//
// Every source of randomness in an experiment derives from a single
// user-supplied seed so that runs are reproducible bit-for-bit. We use
// xoshiro256** (public-domain, Blackman & Vigna) seeded via SplitMix64,
// which also serves to derive independent child streams ("fork") for
// per-entity randomness without correlation.
#pragma once

#include <array>
#include <cstdint>

namespace riv {

// The SplitMix64 finalizer (Steele, Lea & Flood / Stafford mix13): an
// invertible bit-mixing bijection over u64. Shared by Rng seeding and
// fleet seed derivation.
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Derive the index-th child seed of a root seed, SplitMix64-style: one
// golden-ratio stride per index, then the finalizer. Collision-free by
// construction — for a fixed root, (index + 1) * GOLDEN is injective in
// `index` (odd multiplier mod 2^64) and the mix is a bijection, so all
// 2^64 indices map to distinct seeds. The fleet layer leans on this: one
// fleet seed fans out into a million per-home seeds with zero
// coordination, and test_fleet pins the mapping's digest so it can never
// silently change (every per-home workload would shift with it).
constexpr std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
  return splitmix64_mix(root + (index + 1) * 0x9e3779b97f4a7c15ULL);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      s = splitmix64_mix(x);
    }
  }

  // Next raw 64-bit value (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's unbiased bounded integer method (simple rejection variant).
    std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  // Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Exponentially distributed duration with the given mean (for Poisson
  // arrival processes). Returns a strictly positive value.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 1e-18;
    // -mean * ln(u); ln via std would pull in <cmath>; acceptable here.
    return -mean * log_(u);
  }

  // Derive an independent child generator; `salt` distinguishes children.
  Rng fork(std::uint64_t salt) {
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

  // The raw xoshiro256** state, exposed read-only so checkpoints can
  // serialize a generator mid-stream (the state fully determines every
  // future draw).
  const std::array<std::uint64_t, 4>& state() const { return state_; }

  // Resume a generator mid-stream from a serialized state (the snapshot
  // clone path, DESIGN.md §16). The state fully determines every future
  // draw, so a restored generator continues the source's exact sequence.
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double log_(double x);

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace riv
