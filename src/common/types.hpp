// Fundamental identifier types shared by every Rivulet module.
//
// All ids are small strong types wrapping integers so that a SensorId can
// never be passed where a ProcessId is expected. Wire encodings are fixed
// width (see codec.hpp) and documented next to each type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace riv {

// Identifies one Rivulet process (one per host: TV, fridge, hub, ...).
// Encoded as 2 bytes on the wire; a home has at most a few dozen hosts.
struct ProcessId {
  std::uint16_t value{0};
  constexpr auto operator<=>(const ProcessId&) const = default;
};

// Identifies one physical sensor. Encoded as 2 bytes on the wire.
struct SensorId {
  std::uint16_t value{0};
  constexpr auto operator<=>(const SensorId&) const = default;
};

// Identifies one physical actuator. Encoded as 2 bytes on the wire.
struct ActuatorId {
  std::uint16_t value{0};
  constexpr auto operator<=>(const ActuatorId&) const = default;
};

// Identifies one deployed application graph. Encoded as 2 bytes.
struct AppId {
  std::uint16_t value{0};
  constexpr auto operator<=>(const AppId&) const = default;
};

// Globally unique identity of a sensor event: the emitting sensor plus a
// per-sensor sequence number assigned at the device. Dedup in the delivery
// service is keyed on this. 6 bytes on the wire.
struct EventId {
  SensorId sensor{};
  std::uint32_t seq{0};
  constexpr auto operator<=>(const EventId&) const = default;
};

// Globally unique identity of an actuation command: issuing process plus a
// per-process sequence number. 6 bytes on the wire.
struct CommandId {
  ProcessId origin{};
  std::uint32_t seq{0};
  constexpr auto operator<=>(const CommandId&) const = default;
};

// Compact causal id carried end-to-end with a sensor event: the origin
// (the emitting sensor's id; 0xffff for logic-derived events) plus the
// per-origin sequence number. For a sensor event this is its EventId
// re-expressed, so no new number is minted anywhere — the point of the
// type is that actuator commands and trace records can say *which
// reading caused this* without dragging the whole event along. 6 bytes
// on the wire. A default-constructed id means "no known cause".
struct ProvenanceId {
  std::uint16_t origin{0};
  std::uint32_t seq{0};
  constexpr bool valid() const { return origin != 0 || seq != 0; }
  constexpr auto operator<=>(const ProvenanceId&) const = default;
};

constexpr ProvenanceId provenance_of(EventId e) {
  return {e.sensor.value, e.seq};
}

inline std::string to_string(ProcessId p) { return "p" + std::to_string(p.value); }
inline std::string to_string(SensorId s) { return "s" + std::to_string(s.value); }
inline std::string to_string(ActuatorId a) { return "a" + std::to_string(a.value); }
inline std::string to_string(EventId e) {
  return to_string(e.sensor) + "#" + std::to_string(e.seq);
}
inline std::string to_string(CommandId c) {
  return to_string(c.origin) + "!" + std::to_string(c.seq);
}
// Renders identically to the EventId it was derived from ("s1#17"), so
// detail strings and analyzer joins line up textually.
inline std::string to_string(ProvenanceId p) {
  return "s" + std::to_string(p.origin) + "#" + std::to_string(p.seq);
}

}  // namespace riv

namespace std {
template <>
struct hash<riv::ProcessId> {
  size_t operator()(riv::ProcessId p) const noexcept { return p.value; }
};
template <>
struct hash<riv::SensorId> {
  size_t operator()(riv::SensorId s) const noexcept { return s.value; }
};
template <>
struct hash<riv::ActuatorId> {
  size_t operator()(riv::ActuatorId a) const noexcept { return a.value; }
};
template <>
struct hash<riv::AppId> {
  size_t operator()(riv::AppId a) const noexcept { return a.value; }
};
template <>
struct hash<riv::EventId> {
  size_t operator()(riv::EventId e) const noexcept {
    return (static_cast<size_t>(e.sensor.value) << 32) ^ e.seq;
  }
};
template <>
struct hash<riv::CommandId> {
  size_t operator()(riv::CommandId c) const noexcept {
    return (static_cast<size_t>(c.origin.value) << 32) ^ c.seq;
  }
};
template <>
struct hash<riv::ProvenanceId> {
  size_t operator()(riv::ProvenanceId p) const noexcept {
    return (static_cast<size_t>(p.origin) << 32) ^ p.seq;
  }
};
}  // namespace std
