// Binary wire format primitives.
//
// Rivulet uses a custom compact serialization (the paper's prototype does
// the same on top of Netty). Everything on the wire is little-endian and
// fixed width. Network-overhead results (Fig 5) are measured from the byte
// counts these encoders produce, so sizes here are part of the model:
//   u8/u16/u32/u64  — exact width
//   ids             — see types.hpp for widths
//   TimePoint       — 8 bytes (microsecond ticks)
//   bytes           — u32 length prefix + payload
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace riv {

class BinaryWriter {
 public:
  BinaryWriter() = default;
  // Reuse an existing buffer's capacity: contents are discarded, the
  // allocation is kept. Hot capture paths (warm-fleet snapshots) encode
  // into the same scratch repeatedly instead of reallocating per home.
  explicit BinaryWriter(std::vector<std::byte>&& reuse)
      : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);

  void process_id(ProcessId p) { u16(p.value); }
  void sensor_id(SensorId s) { u16(s.value); }
  void actuator_id(ActuatorId a) { u16(a.value); }
  void app_id(AppId a) { u16(a.value); }
  void event_id(EventId e) {
    sensor_id(e.sensor);
    u32(e.seq);
  }
  void command_id(CommandId c) {
    process_id(c.origin);
    u32(c.seq);
  }
  void provenance_id(ProvenanceId p) {
    u16(p.origin);
    u32(p.seq);
  }
  void time_point(TimePoint t) { i64(t.us); }
  void duration(Duration d) { i64(d.us); }

  void bytes(const std::vector<std::byte>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (char c : s) buf_.push_back(static_cast<std::byte>(c));
  }

  // Reserve `n` opaque payload bytes without materializing content. Large
  // simulated events (e.g. 20 KB camera frames) use this: the bytes count
  // toward the frame size but carry no information.
  void opaque(std::size_t n) { buf_.resize(buf_.size() + n); }

  // Encoders that know their message size up front reserve it exactly, so
  // the buffer grows once instead of doubling through the encode.
  void reserve(std::size_t n) { buf_.reserve(n); }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// Bounds-checked reader over an encoded buffer. Any out-of-bounds read sets
// the error flag and subsequent reads return zero values; callers check
// ok() once after decoding a whole message (torn frames cannot occur on the
// reliable transport, so failure here is a programming error and asserts in
// message-level decoders).
class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<std::byte>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }
  std::uint16_t u16() {
    std::uint16_t lo = u8(), hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    std::uint32_t lo = u16(), hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    std::uint64_t lo = u32(), hi = u32();
    return lo | (hi << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();

  ProcessId process_id() { return {u16()}; }
  SensorId sensor_id() { return {u16()}; }
  ActuatorId actuator_id() { return {u16()}; }
  AppId app_id() { return {u16()}; }
  EventId event_id() {
    EventId e;
    e.sensor = sensor_id();
    e.seq = u32();
    return e;
  }
  CommandId command_id() {
    CommandId c;
    c.origin = process_id();
    c.seq = u32();
    return c;
  }
  ProvenanceId provenance_id() {
    ProvenanceId p;
    p.origin = u16();
    p.seq = u32();
    return p;
  }
  TimePoint time_point() { return {i64()}; }
  Duration duration() { return {i64()}; }

  std::vector<std::byte> bytes() {
    std::uint32_t n = u32();
    if (!ensure(n)) return {};
    std::vector<std::byte> out(buf_.begin() + static_cast<long>(pos_),
                               buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    std::uint32_t n = u32();
    if (!ensure(n)) return {};
    std::string out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      out.push_back(static_cast<char>(buf_[pos_ + i]));
    pos_ += n;
    return out;
  }
  void skip_opaque(std::size_t n) {
    if (ensure(n)) pos_ += n;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool ensure(std::size_t n) {
    if (pos_ + n > buf_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::vector<std::byte>& buf_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace riv
