// Minimal leveled logger stamped with simulated time.
//
// Logging is off by default (experiments produce a lot of events); tests
// and debugging sessions enable it per level. The logger is a process-wide
// singleton; the active Clock is registered by the simulation so messages
// carry virtual timestamps.
#pragma once

#include <sstream>
#include <string>

#include "common/time.hpp"

namespace riv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  void set_clock(const Clock* clock) { clock_ = clock; }

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::kOff};
  const Clock* clock_{nullptr};
};

}  // namespace riv

#define RIV_LOG(level, component, expr)                                  \
  do {                                                                   \
    auto& riv_logger = ::riv::Logger::instance();                        \
    if (riv_logger.enabled(level)) {                                     \
      std::ostringstream riv_log_os;                                     \
      riv_log_os << expr;                                                \
      riv_logger.write(level, component, riv_log_os.str());              \
    }                                                                    \
  } while (0)

#define RIV_DEBUG(component, expr) RIV_LOG(::riv::LogLevel::kDebug, component, expr)
#define RIV_INFO(component, expr) RIV_LOG(::riv::LogLevel::kInfo, component, expr)
#define RIV_WARN(component, expr) RIV_LOG(::riv::LogLevel::kWarn, component, expr)
#define RIV_ERROR(component, expr) RIV_LOG(::riv::LogLevel::kError, component, expr)
