// FNV-1a, the repo's one hash for determinism fingerprints.
//
// Both trace layers (the flight recorder's rolling record-stream hash and
// the chaos engine's fault-trace hash) fingerprint a run with FNV-1a; the
// constants and the byte-at-a-time update live here so the two can never
// drift apart. FNV-1a is not cryptographic — it is chosen because it is
// trivially incremental (one xor + one multiply per byte, so a hash can
// be rolled forward as bytes are appended) and stable across platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace riv::hash {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// Roll one byte into a running FNV-1a state.
inline constexpr std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

// Roll a buffer into a running state (pass kFnvOffsetBasis to start).
inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = fnv1a_byte(h, p[i]);
  return h;
}

// One-shot convenience over a whole buffer.
inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  return fnv1a(kFnvOffsetBasis, data, n);
}

// A 64-bit state rendered as fixed-width lowercase hex — the one-line
// digest format printed by chaos_run and the trace tools.
inline std::string fnv1a_digest(std::uint64_t h) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}

// Incremental FNV-1a over 8-byte little-endian lanes: one xor+multiply
// per word instead of per byte, for rolling hashes on hot paths (the
// flight recorder fingerprints every packed trace byte with this). Bytes
// are buffered until a full word is available; value() folds the pending
// tail and the total stream length, so the state is a pure function of
// the byte sequence and can be read at any point. ~8x fewer multiplies
// than byte-wise FNV-1a, same stability guarantees (not cryptographic).
class Fnv1aStream {
 public:
  void put(std::uint8_t b) {
    pend_ |= static_cast<std::uint64_t>(b) << (8 * npend_);
    if (++npend_ == 8) {
      h_ = (h_ ^ pend_) * kFnvPrime;
      pend_ = 0;
      npend_ = 0;
    }
    ++len_;
  }
  void put(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t i = 0;
    // Drain the pending partial word first, then mix whole words.
    while (npend_ != 0 && i < n) put(p[i++]);
    for (; i + 8 <= n; i += 8) {
      std::uint64_t w = 0;
      for (int b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(p[i + static_cast<std::size_t>(b)])
             << (8 * b);
      h_ = (h_ ^ w) * kFnvPrime;
      len_ += 8;
    }
    while (i < n) put(p[i++]);
  }
  std::uint64_t value() const {
    std::uint64_t h = h_;
    if (npend_ != 0) h = (h ^ pend_) * kFnvPrime;
    return (h ^ len_) * kFnvPrime;
  }

 private:
  std::uint64_t h_{kFnvOffsetBasis};
  std::uint64_t pend_{0};
  unsigned npend_{0};
  std::uint64_t len_{0};
};

}  // namespace riv::hash
