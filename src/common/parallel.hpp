// Shared-nothing fan-out of independent deterministic work items.
//
// parallel_map began life in bench/bench_util.hpp as the seed-sweep
// helper; the fleet layer (src/fleet) promotes it here because fleet runs
// shard millions of independent home simulations across cores and every
// CLI (`chaos_run --jobs`, `fleet_run --jobs`, bench_kernel) wants the
// same contract:
//
//   * items are claimed from an atomic-counter dynamic work queue, one at
//     a time, so heterogeneous item costs (a 2-process home next to an
//     8-process one) never leave a worker idle while another drags a
//     statically assigned chunk;
//   * results come back indexed exactly like the inputs, so a parallel
//     run is a drop-in replacement for the serial loop and — because each
//     item is a fully self-contained simulation — byte-identical to it;
//   * jobs == 0 auto-detects hardware_concurrency();
//   * an exception thrown by any item is re-thrown on the calling thread
//     (first one wins; remaining workers stop claiming new items).
//
// Workers come from a lazily created process-wide WorkerPool rather than
// being spawned per call: a multi-campaign bench issues thousands of
// parallel_map calls, and thread create/join per call is measurable
// against sub-millisecond shards. The pool is invisible to the contract
// above — the claim queue, result indexing, and exception propagation
// are unchanged, so results stay byte-identical to the serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace riv {

// 0 → one worker per hardware thread (at least 1); positive values pass
// through untouched. The CLIs expose this as `--jobs 0`.
inline int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Process-wide pool of persistent worker threads behind parallel_map.
// Threads are created on first parallel use (a serial run never starts
// one) and grow to the largest concurrency ever requested; they block on
// a condition variable between runs. run() executes one type-erased
// claim-loop on N pool threads plus the caller. Re-entrant or concurrent
// run() calls degrade to inline execution on the calling thread — the
// claim loop drains the whole queue itself, so this is the serial
// fallback, not an error.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Run `loop` on `extra` pool threads and the calling thread; returns
  // when every participant's loop has returned. `loop` must not throw
  // (parallel_map's claim loop catches per-item exceptions itself).
  void run(std::size_t extra, const std::function<void()>& loop) {
    if (extra == 0) {
      loop();
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (busy_) {
        lock.unlock();
        loop();
        return;
      }
      busy_ = true;
      while (threads_.size() < extra)
        threads_.emplace_back([this] { worker(); });
      task_ = &loop;
      pending_ = extra;
      running_ = extra;
      ++generation_;
    }
    cv_.notify_all();
    loop();
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return running_ == 0; });
      task_ = nullptr;
      busy_ = false;
    }
  }

  // Threads alive right now (tests; 0 until the first parallel run).
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu_);
    return threads_.size();
  }

 private:
  WorkerPool() = default;
  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void worker() {
    std::unique_lock<std::mutex> lock(mu_);
    // Generation this thread last participated in. Starts at 0 — one
    // below the first run's generation — so a thread spawned by an
    // in-flight run() joins that very run (run() cannot return until all
    // `extra` participants have, including freshly created ones).
    std::uint64_t served = 0;
    for (;;) {
      cv_.wait(lock, [&] {
        return stop_ || (pending_ > 0 && generation_ != served);
      });
      if (stop_) return;
      served = generation_;
      --pending_;
      const std::function<void()>* task = task_;
      lock.unlock();
      (*task)();
      lock.lock();
      if (--running_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       // wakes idle workers for a new run
  std::condition_variable done_cv_;  // wakes run() when workers finish
  std::vector<std::thread> threads_;
  const std::function<void()>* task_{nullptr};
  std::size_t pending_{0};  // workers still to pick up the current run
  std::size_t running_{0};  // workers still executing the current run
  std::uint64_t generation_{0};
  bool busy_{false};
  bool stop_{false};
};

// Run fn(0..n-1) across `jobs` worker threads (0 = auto-detect) and
// return the results in input order. fn must be callable concurrently
// from multiple threads on distinct indices; each invocation should be a
// self-contained deterministic unit (own Simulation, Registry,
// thread-local trace recorder) so the result vector is bit-identical to
// the jobs=1 serial loop.
template <typename R, typename Fn>
std::vector<R> parallel_map(int jobs, std::size_t n, Fn&& fn) {
  jobs = resolve_jobs(jobs);
  std::vector<R> results(n);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  std::function<void()> worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) error = std::current_exception();
        return;
      }
    }
  };
  const std::size_t participants =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  WorkerPool::instance().run(participants - 1, worker);
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace riv
