// Shared-nothing fan-out of independent deterministic work items.
//
// parallel_map began life in bench/bench_util.hpp as the seed-sweep
// helper; the fleet layer (src/fleet) promotes it here because fleet runs
// shard millions of independent home simulations across cores and every
// CLI (`chaos_run --jobs`, `fleet_run --jobs`, bench_kernel) wants the
// same contract:
//
//   * items are claimed from an atomic-counter dynamic work queue, one at
//     a time, so heterogeneous item costs (a 2-process home next to an
//     8-process one) never leave a worker idle while another drags a
//     statically assigned chunk;
//   * results come back indexed exactly like the inputs, so a parallel
//     run is a drop-in replacement for the serial loop and — because each
//     item is a fully self-contained simulation — byte-identical to it;
//   * jobs == 0 auto-detects hardware_concurrency();
//   * an exception thrown by any item is re-thrown on the calling thread
//     (first one wins; remaining workers stop claiming new items).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace riv {

// 0 → one worker per hardware thread (at least 1); positive values pass
// through untouched. The CLIs expose this as `--jobs 0`.
inline int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Run fn(0..n-1) across `jobs` worker threads (0 = auto-detect) and
// return the results in input order. fn must be callable concurrently
// from multiple threads on distinct indices; each invocation should be a
// self-contained deterministic unit (own Simulation, Registry,
// thread-local trace recorder) so the result vector is bit-identical to
// the jobs=1 serial loop.
template <typename R, typename Fn>
std::vector<R> parallel_map(int jobs, std::size_t n, Fn&& fn) {
  jobs = resolve_jobs(jobs);
  std::vector<R> results(n);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  std::size_t spawn = std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  pool.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace riv
