// Internal invariant checking.
//
// RIV_ASSERT is active in all build types (experiments must not silently
// run with violated invariants); it prints the failing expression and
// aborts. Use for programmer errors, not for recoverable runtime errors.
#pragma once

#include <cstdio>
#include <cstdlib>

#define RIV_ASSERT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "RIV_ASSERT failed at %s:%d: %s — %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
