// Simulated time.
//
// All Rivulet code is written against these types rather than std::chrono
// clocks so that the same protocol code runs identically under the
// discrete-event simulator (deterministic virtual time) and could run under
// a wall-clock implementation in a real deployment.
//
// Resolution is one microsecond; a signed 64-bit tick count covers ~292k
// years of simulated time, far beyond any experiment.
#pragma once

#include <cstdint>
#include <string>

namespace riv {

// A span of simulated time, in microseconds.
struct Duration {
  std::int64_t us{0};

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {us + o.us}; }
  constexpr Duration operator-(Duration o) const { return {us - o.us}; }
  constexpr Duration operator*(std::int64_t k) const { return {us * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {us / k}; }
  constexpr Duration& operator+=(Duration o) {
    us += o.us;
    return *this;
  }
  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
  constexpr double millis() const { return static_cast<double>(us) / 1e3; }
};

// An instant of simulated time (microseconds since simulation start).
struct TimePoint {
  std::int64_t us{0};

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return {us + d.us}; }
  constexpr Duration operator-(TimePoint o) const { return {us - o.us}; }
  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
};

constexpr Duration microseconds(std::int64_t v) { return {v}; }
constexpr Duration milliseconds(std::int64_t v) { return {v * 1000}; }
constexpr Duration seconds(std::int64_t v) { return {v * 1'000'000}; }
constexpr Duration seconds_f(double v) {
  return {static_cast<std::int64_t>(v * 1e6)};
}
constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }
constexpr Duration hours(std::int64_t v) { return minutes(v * 60); }
constexpr Duration days(std::int64_t v) { return hours(v * 24); }

inline std::string to_string(TimePoint t) {
  return std::to_string(t.seconds()) + "s";
}
inline std::string to_string(Duration d) {
  return std::to_string(d.millis()) + "ms";
}

// Read-only clock interface. Implemented by sim::Simulation.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

}  // namespace riv
