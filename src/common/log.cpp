#include "common/log.hpp"

#include <cstdio>

namespace riv {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  double t = clock_ != nullptr ? clock_->now().seconds() : 0.0;
  std::fprintf(stderr, "[%10.6f] %-5s %-12s %s\n", t,
               kNames[static_cast<int>(level)], component.c_str(),
               message.c_str());
}

}  // namespace riv
