// Small sorted set of process ids.
//
// The ring protocol's S (seen) and V (must-see) sets ride on every Gapless
// message and every stored log entry, so they are copied, merged, and
// compared on the simulation hot path. A home has a handful of processes,
// which makes a sorted inline vector strictly better than std::set here:
// a copy is one contiguous allocation instead of a node tree, membership
// is a binary search, and iteration order — and hence the wire encoding —
// is identical to the ordered set it replaces.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace riv {

class PidSet {
 public:
  using const_iterator = std::vector<ProcessId>::const_iterator;

  PidSet() = default;
  PidSet(std::initializer_list<ProcessId> init) {
    v_.reserve(init.size());
    for (ProcessId p : init) insert(p);
  }
  template <typename It>
  PidSet(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }
  // Ordered sets convert freely (tests, local-view snapshots); both
  // containers iterate in the same ascending order.
  PidSet(const std::set<ProcessId>& s)  // NOLINT(google-explicit-constructor)
      : v_(s.begin(), s.end()) {}

  void reserve(std::size_t n) { v_.reserve(n); }

  bool insert(ProcessId p) {
    auto it = std::lower_bound(v_.begin(), v_.end(), p);
    if (it != v_.end() && *it == p) return false;
    v_.insert(it, p);
    return true;
  }
  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  std::size_t count(ProcessId p) const {
    return std::binary_search(v_.begin(), v_.end(), p) ? 1 : 0;
  }
  bool contains(ProcessId p) const { return count(p) != 0; }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }
  void clear() { v_.clear(); }

  friend bool operator==(const PidSet& a, const PidSet& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const PidSet& a, const PidSet& b) {
    return a.v_ != b.v_;
  }

 private:
  std::vector<ProcessId> v_;  // sorted, unique
};

}  // namespace riv
