#include "core/delivery/gapless_stream.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::core {

GaplessStream::GaplessStream(StreamContext ctx) : ctx_(std::move(ctx)) {
  RIV_ASSERT(ctx_.log != nullptr, "Gapless needs an event log");
}

std::optional<ProcessId> GaplessStream::ring_successor() const {
  const std::set<ProcessId>& view = ctx_.view();
  if (view.size() <= 1) return std::nullopt;
  auto it = view.upper_bound(ctx_.self);
  if (it == view.end()) it = view.begin();
  if (*it == ctx_.self) return std::nullopt;
  return *it;
}

void GaplessStream::on_device_event(const devices::SensorEvent& e) {
  if (ctx_.log->seen(e.id)) return;  // duplicate device delivery
  ++ingested_;
  const std::set<ProcessId>& view = ctx_.view();
  accept_new_event(e, {ctx_.self}, {view.begin(), view.end()}, "device");
}

void GaplessStream::accept_new_event(const devices::SensorEvent& e,
                                     PidSet seen, PidSet need,
                                     const char* src) {
  if (trace::active(trace::Component::kDelivery)) {
    trace::emit(ctx_.timers->now(), ctx_.self, trace::Component::kDelivery,
                trace::Kind::kIngest, provenance_of(e.id),
                trace::fu(trace::Key::kApp, ctx_.app.value),
                trace::fe(trace::Key::kEvent, e.id),
                trace::fs(trace::Key::kSrcName, src),
                trace::fu(trace::Key::kSeen, seen.size()),
                trace::fu(trace::Key::kNeed, need.size()));
  }
  ctx_.log->append(e, seen, need);
  note_epoch(e);
  ctx_.deliver(e);
  forward_to_successor(e, seen, need);
}

void GaplessStream::forward_to_successor(const devices::SensorEvent& e,
                                         const PidSet& seen,
                                         const PidSet& need) {
  std::optional<ProcessId> succ = ring_successor();
  if (!succ) return;
  wire::RingPayload p;
  p.app = ctx_.app;
  p.sensor = e.id.sensor;
  p.seen = seen;
  p.need = need;
  p.event = e;
  ++ring_forwards_;
  std::vector<std::byte> buf = wire::encode(p);
  if (ctx_.seal) ctx_.seal(buf, e.chain);
  ctx_.send(*succ, net::MsgType::kRingEvent, std::move(buf));
}

void GaplessStream::on_ring(ProcessId from, const wire::RingPayload& p) {
  (void)from;
  const devices::SensorEvent& e = p.event;
  if (!ctx_.log->seen(e.id)) {
    // First sight: extend S with ourselves, V with our local view, deliver
    // and keep the ring moving.
    PidSet seen = p.seen;
    seen.insert(ctx_.self);
    PidSet need = p.need;
    const std::set<ProcessId>& view = ctx_.view();
    need.insert(view.begin(), view.end());
    accept_new_event(e, std::move(seen), std::move(need), "ring");
    return;
  }

  // Already seen. Remember any S/V knowledge the message carries.
  ctx_.log->merge_sets(e.id, p.seen, p.need);
  const bool incomplete = p.seen != p.need;
  const bool we_forwarded = p.seen.count(ctx_.self) != 0;
  if (incomplete && we_forwarded) {
    // The event went around at least once and someone in V still misses
    // it: the optimistic ring is stuck (crash/partition mid-circulation),
    // fall back to reliable broadcast (§4.1).
    initiate_reliable_broadcast(e.id);
  }
  // Otherwise: ignore the duplicate.
}

void GaplessStream::initiate_reliable_broadcast(EventId id) {
  if (rb_done_.count(id) != 0) return;  // broadcast at most once per event
  rb_done_.insert(id);
  const StoredEvent* stored = ctx_.log->find(id);
  RIV_ASSERT(stored != nullptr, "broadcasting an event we do not hold");
  ++rb_initiated_;
  if (trace::active(trace::Component::kDelivery)) {
    trace::emit(ctx_.timers->now(), ctx_.self, trace::Component::kDelivery,
                trace::Kind::kFallback,
                trace::fu(trace::Key::kApp, ctx_.app.value),
                trace::fe(trace::Key::kEvent, id));
  }

  PidSet targets = stored->need;
  const std::set<ProcessId>& view = ctx_.view();
  targets.insert(view.begin(), view.end());

  wire::EventPayload p;
  p.app = ctx_.app;
  p.sensor = id.sensor;
  p.event = stored->event;
  std::vector<std::byte> buf = wire::encode_event_payload(p);
  if (ctx_.seal) ctx_.seal(buf, stored->event.chain);
  net::Payload payload = std::move(buf);  // shared by all targets
  for (ProcessId t : targets) {
    if (t == ctx_.self) continue;
    ctx_.send(t, net::MsgType::kRbEvent, payload);
  }
}

void GaplessStream::on_rb(ProcessId from, const wire::EventPayload& p) {
  const devices::SensorEvent& e = p.event;
  if (!ctx_.log->seen(e.id)) {
    const std::set<ProcessId>& view = ctx_.view();
    PidSet need(view.begin(), view.end());
    if (trace::active(trace::Component::kDelivery)) {
      trace::emit(ctx_.timers->now(), ctx_.self, trace::Component::kDelivery,
                  trace::Kind::kIngest, provenance_of(e.id),
                  trace::fu(trace::Key::kApp, ctx_.app.value),
                  trace::fe(trace::Key::kEvent, e.id),
                  trace::fs(trace::Key::kSrcName, "rb"));
    }
    ctx_.log->append(e, {ctx_.self, from}, std::move(need));
    note_epoch(e);
    ctx_.deliver(e);
    // Eager re-flood once: guarantees delivery to every correct process
    // even if the initiator crashes mid-broadcast [Boichat & Guerraoui].
    reflood(from, p);
  }
}

void GaplessStream::reflood(ProcessId origin, const wire::EventPayload& p) {
  if (rb_done_.count(p.event.id) != 0) return;
  rb_done_.insert(p.event.id);
  std::vector<std::byte> buf = wire::encode_event_payload(p);
  if (ctx_.seal) ctx_.seal(buf, p.event.chain);
  net::Payload payload = std::move(buf);  // shared by all targets
  for (ProcessId t : ctx_.view()) {
    if (t == ctx_.self || t == origin) continue;
    ctx_.send(t, net::MsgType::kRbEvent, payload);
  }
}

void GaplessStream::sync_successor(ProcessId successor,
                                   TimePoint their_high_water) {
  // Re-send every stored event the new successor has not received, as
  // ring messages carrying our best S/V knowledge (so the protocol's
  // stall detection keeps working across the re-sent suffix).
  const std::vector<const StoredEvent*> missing =
      ctx_.log->events_after(ctx_.edge.sensor, their_high_water);
  if (missing.empty()) return;
  // The view cannot change while this loop runs; snapshot it once, and
  // reuse one payload object so the per-event cost is only the copies the
  // wire format actually needs.
  const PidSet view(ctx_.view());
  wire::RingPayload p;
  p.app = ctx_.app;
  p.sensor = ctx_.edge.sensor;
  for (const StoredEvent* se : missing) {
    p.seen = se->seen;
    p.seen.insert(ctx_.self);
    p.need = se->need;
    p.need.insert(view.begin(), view.end());
    p.event = se->event;
    ++ring_forwards_;
    std::vector<std::byte> buf = wire::encode(p);
    if (ctx_.seal) ctx_.seal(buf, se->event.chain);
    ctx_.send(successor, net::MsgType::kRingEvent, std::move(buf));
  }
}

// --- coordinated polling ------------------------------------------------

void GaplessStream::note_epoch(const devices::SensorEvent& e) {
  if (!ctx_.edge.polling.poll_based()) return;
  epochs_seen_.insert(e.epoch);
  // Bound the set; epochs only grow.
  while (epochs_seen_.size() > 1024) epochs_seen_.erase(epochs_seen_.begin());
}

bool GaplessStream::epoch_seen(std::uint32_t epoch) const {
  return epochs_seen_.count(epoch) != 0;
}

std::uint32_t GaplessStream::current_epoch() const {
  return static_cast<std::uint32_t>(ctx_.timers->now().us /
                                    ctx_.edge.polling.epoch.us);
}

void GaplessStream::start() {
  if (!ctx_.edge.polling.poll_based()) return;
  first_epoch_ = current_epoch() + 1;
  schedule_epoch(first_epoch_);
}

void GaplessStream::schedule_epoch(std::uint32_t epoch) {
  const Duration e = ctx_.edge.polling.epoch;
  const TimePoint boundary{static_cast<std::int64_t>(epoch) * e.us};
  epoch_pending_ = epoch;
  epoch_timer_ = ctx_.timers->schedule_at(
      boundary, [this, epoch] { on_epoch_boundary(epoch); });
}

void GaplessStream::on_epoch_boundary(std::uint32_t epoch) {
  const Duration e = ctx_.edge.polling.epoch;
  const TimePoint boundary{static_cast<std::int64_t>(epoch) * e.us};
  if (trace::active(trace::Component::kDelivery)) {
    trace::emit(boundary, ctx_.self, trace::Component::kDelivery,
                trace::Kind::kEpoch,
                trace::fu(trace::Key::kApp, ctx_.app.value),
                trace::fu(trace::Key::kEpoch, epoch));
  }
  // Poll slot: rank among the *alive* active sensor nodes is computed at
  // the epoch boundary, so slot assignment adapts to failures without any
  // coordination messages (§4.1).
  if (ctx_.in_range) {
    std::vector<ProcessId> pollers;
    const std::set<ProcessId>& view = ctx_.view();
    for (ProcessId p : ctx_.in_range_processes) {
      if (view.count(p) != 0) pollers.push_back(p);
    }
    auto it = std::find(pollers.begin(), pollers.end(), ctx_.self);
    if (it != pollers.end()) {
      const auto rank = static_cast<std::int64_t>(it - pollers.begin());
      const auto n = static_cast<std::int64_t>(pollers.size());
      TimePoint slot = boundary + Duration{rank * e.us / n};
      slot_epoch_ = epoch;
      slot_timer_ = ctx_.timers->schedule_at(
          slot, [this, epoch] { on_poll_slot(epoch); });
    }
  }
  // Staleness check for the *previous* epoch (only epochs we actually
  // scheduled polls for — the partial startup epoch does not count).
  if (epoch > first_epoch_) {
    std::uint32_t prev = epoch - 1;
    if (!epoch_seen(prev) && ctx_.logic_active_here()) {
      ++staleness_reports_;
      ctx_.staleness(prev);
    }
  }
  schedule_epoch(epoch + 1);
}

void GaplessStream::on_poll_slot(std::uint32_t epoch) {
  if (!epoch_seen(epoch)) {
    ++polls_issued_;
    ctx_.poll(epoch);
  }
}

void GaplessStream::clone_state(BinaryWriter& w) const {
  checkpoint_state(w);
  sim::Simulation& sim = ctx_.timers->sim();
  TimePoint t;
  std::uint64_t seq;
  bool epoch_live = epoch_timer_ != 0 &&
                    sim.timer_info(epoch_timer_, &t, &seq);
  w.u8(epoch_live ? 1 : 0);
  if (epoch_live) {
    w.u64(epoch_timer_);
    w.time_point(t);
    w.u64(seq);
    w.u32(epoch_pending_);
  }
  bool slot_live = slot_timer_ != 0 && sim.timer_info(slot_timer_, &t, &seq);
  w.u8(slot_live ? 1 : 0);
  if (slot_live) {
    w.u64(slot_timer_);
    w.time_point(t);
    w.u64(seq);
    w.u32(slot_epoch_);
  }
}

void GaplessStream::restore_clone(BinaryReader& r) {
  first_epoch_ = r.u32();
  epochs_seen_.clear();
  const std::uint64_t n_epochs = r.u64();
  // Sorted on the wire: end-hinted inserts keep restore O(n) — rb_done_
  // holds one entry per event broadcast and dominates a long prefix.
  for (std::uint64_t i = 0; i < n_epochs; ++i)
    epochs_seen_.insert(epochs_seen_.end(), r.u32());
  rb_done_.clear();
  const std::uint64_t n_rb = r.u64();
  for (std::uint64_t i = 0; i < n_rb; ++i)
    rb_done_.insert(rb_done_.end(), r.event_id());
  ingested_ = r.u64();
  ring_forwards_ = r.u64();
  rb_initiated_ = r.u64();
  polls_issued_ = r.u64();
  staleness_reports_ = r.u64();
  if (r.u8() != 0) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    std::uint32_t epoch = r.u32();
    epoch_pending_ = epoch;
    epoch_timer_ = ctx_.timers->restore_at(
        tid, t, seq, [this, epoch] { on_epoch_boundary(epoch); });
  }
  if (r.u8() != 0) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    std::uint32_t epoch = r.u32();
    slot_epoch_ = epoch;
    slot_timer_ = ctx_.timers->restore_at(
        tid, t, seq, [this, epoch] { on_poll_slot(epoch); });
  }
}

}  // namespace riv::core
