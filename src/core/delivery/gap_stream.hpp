// Gap delivery (§4.2): best-effort chain forwarding.
//
// All sensor nodes of a stream form one logical chain — we use the app's
// placement order, so the app-bearing process is the chain head. Exactly
// one process is responsible for getting events to the active logic node:
//   * if the app-bearing process hosts an active (in-range) sensor node,
//     it simply delivers its own receipts;
//   * otherwise the *closest* alive in-range process in chain order
//     forwards its receipts to the app-bearing process; every other
//     receiving node discards.
// No recovery of lost events is attempted: a sensor-process link loss on
// the forwarder's link, or a crash inside the detection window, produces a
// gap — that is the contract.
//
// Polling: only the forwarder polls, once per epoch (optimal overhead,
// Fig 8); when it crashes, the next in-range process in the chain takes
// over after failure detection.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>

#include "core/delivery/stream_context.hpp"
#include "core/wire.hpp"

namespace riv::core {

class GapStream {
 public:
  GapStream(StreamContext ctx, std::size_t dedup_window);

  void start();

  void on_device_event(const devices::SensorEvent& e);
  void on_forward(ProcessId from, const wire::EventPayload& p);

  std::uint64_t ingested() const { return ingested_; }
  std::uint64_t forwards() const { return forwards_; }
  std::uint64_t discarded() const { return discarded_; }
  std::uint64_t polls_issued() const { return polls_issued_; }
  std::uint64_t staleness_reports() const { return staleness_reports_; }

  // Serialize protocol state (dedup window in arrival order, epoch
  // tracking, counters) for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const {
    w.u32(first_epoch_);
    w.u64(recent_order_.size());
    for (EventId id : recent_order_) w.event_id(id);
    w.u64(epochs_seen_.size());
    for (std::uint32_t e : epochs_seen_) w.u32(e);
    w.u64(ingested_);
    w.u64(forwards_);
    w.u64(discarded_);
    w.u64(polls_issued_);
    w.u64(staleness_reports_);
  }

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Checkpoint fields plus the epoch-boundary timer (poll streams only).
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  // The process hosting the active logic node, per our local view.
  std::optional<ProcessId> app_bearing() const;
  // The alive in-range sensor node closest to the chain head.
  std::optional<ProcessId> forwarder() const;
  void deliver_dedup(const devices::SensorEvent& e, const char* src);
  void note_epoch(const devices::SensorEvent& e);
  void schedule_epoch(std::uint32_t epoch);
  void on_epoch_boundary(std::uint32_t epoch);
  std::uint32_t current_epoch() const;

  StreamContext ctx_;
  std::uint32_t first_epoch_{0};
  std::size_t dedup_window_;
  std::set<EventId> recent_;
  std::deque<EventId> recent_order_;
  std::set<std::uint32_t> epochs_seen_;

  std::uint64_t ingested_{0};
  std::uint64_t forwards_{0};
  std::uint64_t discarded_{0};
  std::uint64_t polls_issued_{0};
  std::uint64_t staleness_reports_{0};

  sim::TimerId epoch_timer_{0};
  std::uint32_t epoch_pending_{0};
};

}  // namespace riv::core
