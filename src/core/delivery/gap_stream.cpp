#include "core/delivery/gap_stream.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "trace/trace.hpp"

namespace riv::core {

GapStream::GapStream(StreamContext ctx, std::size_t dedup_window)
    : ctx_(std::move(ctx)), dedup_window_(dedup_window) {}

std::optional<ProcessId> GapStream::app_bearing() const {
  return first_alive(ctx_.chain(), ctx_.view());
}

std::optional<ProcessId> GapStream::forwarder() const {
  const std::set<ProcessId>& view = ctx_.view();
  for (ProcessId p : ctx_.chain()) {
    if (view.count(p) == 0) continue;
    if (std::find(ctx_.in_range_processes.begin(),
                  ctx_.in_range_processes.end(),
                  p) != ctx_.in_range_processes.end())
      return p;
  }
  return std::nullopt;
}

void GapStream::on_device_event(const devices::SensorEvent& e) {
  ++ingested_;
  std::optional<ProcessId> bearer = app_bearing();
  if (bearer && *bearer == ctx_.self) {
    deliver_dedup(e, "device");
    return;
  }
  if (forwarder() == ctx_.self && bearer) {
    wire::EventPayload p;
    p.app = ctx_.app;
    p.sensor = e.id.sensor;
    p.event = e;
    ++forwards_;
    std::vector<std::byte> buf = wire::encode_event_payload(p);
    if (ctx_.seal) ctx_.seal(buf, e.chain);
    ctx_.send(*bearer, net::MsgType::kGapForward, std::move(buf));
    return;
  }
  ++discarded_;
}

void GapStream::on_forward(ProcessId from, const wire::EventPayload& p) {
  (void)from;
  // Deliver if our logic node is active; if the sender's view was stale
  // and we are a shadow, the event is simply dropped — Gap permits it.
  deliver_dedup(p.event, "forward");
}

void GapStream::deliver_dedup(const devices::SensorEvent& e,
                              const char* src) {
  if (recent_.count(e.id) != 0) return;
  if (trace::active(trace::Component::kDelivery)) {
    trace::emit(ctx_.timers->now(), ctx_.self, trace::Component::kDelivery,
                trace::Kind::kIngest, provenance_of(e.id),
                trace::fu(trace::Key::kApp, ctx_.app.value),
                trace::fe(trace::Key::kEvent, e.id),
                trace::fs(trace::Key::kSrcName, src));
  }
  recent_.insert(e.id);
  recent_order_.push_back(e.id);
  while (recent_order_.size() > dedup_window_) {
    recent_.erase(recent_order_.front());
    recent_order_.pop_front();
  }
  note_epoch(e);
  ctx_.deliver(e);
}

// --- polling -------------------------------------------------------------

void GapStream::note_epoch(const devices::SensorEvent& e) {
  if (!ctx_.edge.polling.poll_based()) return;
  epochs_seen_.insert(e.epoch);
  while (epochs_seen_.size() > 1024) epochs_seen_.erase(epochs_seen_.begin());
}

std::uint32_t GapStream::current_epoch() const {
  return static_cast<std::uint32_t>(ctx_.timers->now().us /
                                    ctx_.edge.polling.epoch.us);
}

void GapStream::start() {
  if (!ctx_.edge.polling.poll_based()) return;
  first_epoch_ = current_epoch() + 1;
  schedule_epoch(first_epoch_);
}

void GapStream::schedule_epoch(std::uint32_t epoch) {
  const Duration e = ctx_.edge.polling.epoch;
  const TimePoint boundary{static_cast<std::int64_t>(epoch) * e.us};
  epoch_pending_ = epoch;
  epoch_timer_ = ctx_.timers->schedule_at(
      boundary, [this, epoch] { on_epoch_boundary(epoch); });
}

void GapStream::on_epoch_boundary(std::uint32_t epoch) {
  const Duration e = ctx_.edge.polling.epoch;
  const TimePoint boundary{static_cast<std::int64_t>(epoch) * e.us};
  if (trace::active(trace::Component::kDelivery)) {
    trace::emit(boundary, ctx_.self, trace::Component::kDelivery,
                trace::Kind::kEpoch,
                trace::fu(trace::Key::kApp, ctx_.app.value),
                trace::fu(trace::Key::kEpoch, epoch));
  }
  if (forwarder() == ctx_.self) {
    ++polls_issued_;
    ctx_.poll(epoch);
  }
  // The app-bearing process reports a staleness violation when the
  // previous epoch produced nothing (Gap may legitimately have gaps).
  if (epoch > first_epoch_ && ctx_.logic_active_here() &&
      epochs_seen_.count(epoch - 1) == 0) {
    ++staleness_reports_;
    ctx_.staleness(epoch - 1);
  }
  schedule_epoch(epoch + 1);
}

void GapStream::clone_state(BinaryWriter& w) const {
  checkpoint_state(w);
  TimePoint t;
  std::uint64_t seq;
  bool epoch_live = epoch_timer_ != 0 &&
                    ctx_.timers->sim().timer_info(epoch_timer_, &t, &seq);
  w.u8(epoch_live ? 1 : 0);
  if (epoch_live) {
    w.u64(epoch_timer_);
    w.time_point(t);
    w.u64(seq);
    w.u32(epoch_pending_);
  }
}

void GapStream::restore_clone(BinaryReader& r) {
  first_epoch_ = r.u32();
  recent_order_.clear();
  recent_.clear();
  const std::uint64_t n_recent = r.u64();
  for (std::uint64_t i = 0; i < n_recent; ++i) {
    EventId id = r.event_id();
    recent_order_.push_back(id);
    recent_.insert(id);
  }
  epochs_seen_.clear();
  const std::uint64_t n_epochs = r.u64();
  for (std::uint64_t i = 0; i < n_epochs; ++i)
    epochs_seen_.insert(epochs_seen_.end(), r.u32());
  ingested_ = r.u64();
  forwards_ = r.u64();
  discarded_ = r.u64();
  polls_issued_ = r.u64();
  staleness_reports_ = r.u64();
  if (r.u8() != 0) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    std::uint32_t epoch = r.u32();
    epoch_pending_ = epoch;
    epoch_timer_ = ctx_.timers->restore_at(
        tid, t, seq, [this, epoch] { on_epoch_boundary(epoch); });
  }
}

}  // namespace riv::core
