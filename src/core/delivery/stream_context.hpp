// Shared environment handed by the runtime to per-stream delivery state
// machines (GaplessStream / GapStream).
//
// The hooks isolate the protocols from the runtime: a stream never touches
// the transport, membership, logic instance, or device bus directly, which
// keeps the protocol classes independently testable.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "appmodel/graph.hpp"
#include "core/event_log.hpp"
#include "devices/event.hpp"
#include "net/message.hpp"
#include "sim/simulation.hpp"

namespace riv::core {

struct StreamContext {
  ProcessId self{};
  AppId app{};
  appmodel::SensorEdge edge{};
  bool in_range{false};  // does this process host an *active* sensor node?

  // All processes running the app, and the static subset with active
  // sensor nodes for this stream (the home's topology).
  std::vector<ProcessId> all_processes;
  std::vector<ProcessId> in_range_processes;

  // Live queries answered by the runtime.
  std::function<const std::set<ProcessId>&()> view;
  std::function<std::vector<ProcessId>()> chain;  // app placement order
  std::function<bool()> logic_active_here;

  // Actions performed by the runtime.
  std::function<void(const devices::SensorEvent&)> deliver;  // to local logic
  // Payload converts from std::vector<std::byte>; fan-out paths build one
  // Payload and hand it to every target so the buffer is shared, not
  // re-copied per peer.
  std::function<void(ProcessId, net::MsgType, net::Payload)> send;
  std::function<void(std::uint32_t epoch)> staleness;  // epoch had no event
  std::function<void(std::uint32_t epoch)> poll;       // issue a device poll
  // Tamper evidence: bound by the runtime to wire::seal (with the
  // deployment key) when the integrity layer is armed, null otherwise.
  // Streams call it on every encoded event-bearing payload before send;
  // `chain` is the event's per-origin hash-chain digest.
  std::function<void(std::vector<std::byte>&, std::uint64_t chain)> seal;

  sim::ProcessTimers* timers{nullptr};
  EventLog* log{nullptr};  // Gapless only
};

// First process in `order` that is alive per `view`; nullopt if none.
inline std::optional<ProcessId> first_alive(
    const std::vector<ProcessId>& order, const std::set<ProcessId>& view) {
  for (ProcessId p : order) {
    if (view.count(p) != 0) return p;
  }
  return std::nullopt;
}

}  // namespace riv::core
