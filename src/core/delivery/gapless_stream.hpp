// Gapless delivery (§4.1): ring protocol with reliable-broadcast fallback
// and coordinated polling.
//
// Invariant provided (post-ingest): any event received from the sensor by
// at least one correct process is eventually replicated at every available
// process, and hence delivered to the active logic node wherever it ends
// up after failures.
//
// Protocol summary, exactly as in the paper:
//   * ingest: first receipt of event e at p_i sends (e : {p_i} : v_i) to
//     p_i's ring successor per its local view, and delivers e locally;
//   * forward: an unseen (e:S:V) is re-sent to the successor as
//     (e : S ∪ {p_i} : V ∪ v_i);
//   * a *seen* (e:S:V) with S ≠ V and p_i ∈ S means the ring stalled after
//     p_i already forwarded it — p_i falls back to reliable broadcast;
//   * on gaining a new ring successor, p_i synchronizes it Bayou-style
//     (handled app-wide by the runtime via the event log's high-water
//     marks; the stream re-sends the missing suffix).
//
// Coordinated polling: the active sensor nodes in the local view pick
// disjoint slots i*e/n inside each epoch of length e without communicating
// (§4.1); a node skips its slot when an event for the epoch was already
// seen (own poll or ring forward).
#pragma once

#include <cstdint>
#include <optional>
#include <set>

#include "core/delivery/stream_context.hpp"
#include "core/wire.hpp"

namespace riv::core {

class GaplessStream {
 public:
  explicit GaplessStream(StreamContext ctx);

  // Arm epoch timers for poll-based sensors; no-op for push sensors.
  void start();

  // An event arrived over the device link (push emission or poll reply).
  void on_device_event(const devices::SensorEvent& e);

  // Ring / reliable-broadcast messages routed here by the runtime.
  void on_ring(ProcessId from, const wire::RingPayload& p);
  void on_rb(ProcessId from, const wire::EventPayload& p);

  // The runtime resolved a sync response from the new successor: re-send
  // every stored event newer than the successor's high-water mark.
  void sync_successor(ProcessId successor, TimePoint their_high_water);

  // Statistics.
  std::uint64_t ingested() const { return ingested_; }
  std::uint64_t ring_forwards() const { return ring_forwards_; }
  std::uint64_t rb_initiated() const { return rb_initiated_; }
  std::uint64_t polls_issued() const { return polls_issued_; }
  std::uint64_t staleness_reports() const { return staleness_reports_; }

  // Serialize protocol state (epoch tracking, broadcast dedup, counters)
  // for a checkpoint; event content lives in the EventLog.
  void checkpoint_state(BinaryWriter& w) const {
    w.u32(first_epoch_);
    w.u64(epochs_seen_.size());
    for (std::uint32_t e : epochs_seen_) w.u32(e);
    w.u64(rb_done_.size());
    for (EventId id : rb_done_) w.event_id(id);
    w.u64(ingested_);
    w.u64(ring_forwards_);
    w.u64(rb_initiated_);
    w.u64(polls_issued_);
    w.u64(staleness_reports_);
  }

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Checkpoint fields plus the epoch-boundary and poll-slot timers with
  // their (id, t, seq) identities (poll streams only; push streams hold
  // no timers).
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  std::optional<ProcessId> ring_successor() const;
  void accept_new_event(const devices::SensorEvent& e, PidSet seen,
                        PidSet need, const char* src);
  void forward_to_successor(const devices::SensorEvent& e,
                            const PidSet& seen, const PidSet& need);
  void initiate_reliable_broadcast(EventId id);
  void reflood(ProcessId origin, const wire::EventPayload& p);
  void note_epoch(const devices::SensorEvent& e);
  bool epoch_seen(std::uint32_t epoch) const;
  void schedule_epoch(std::uint32_t epoch);
  void on_epoch_boundary(std::uint32_t epoch);
  void on_poll_slot(std::uint32_t epoch);
  std::uint32_t current_epoch() const;

  StreamContext ctx_;
  std::uint32_t first_epoch_{0};
  std::set<std::uint32_t> epochs_seen_;
  std::set<EventId> rb_done_;  // events already broadcast/re-flooded here

  std::uint64_t ingested_{0};
  std::uint64_t ring_forwards_{0};
  std::uint64_t rb_initiated_{0};
  std::uint64_t polls_issued_{0};
  std::uint64_t staleness_reports_{0};

  sim::TimerId epoch_timer_{0};
  std::uint32_t epoch_pending_{0};  // epoch the boundary timer will open
  sim::TimerId slot_timer_{0};
  std::uint32_t slot_epoch_{0};
};

}  // namespace riv::core
