// Payload formats of Rivulet's protocol messages.
//
// Sizes here feed the network-overhead numbers (Fig 5), so each struct
// documents its encoded size. Process-id sets (the ring protocol's S and V)
// are encoded as a 1-byte count plus 2 bytes per id — the metadata the
// paper says makes Gapless costlier than plain broadcast at one receiving
// process.
// Each message type has two decoders: decode_* asserts on corrupt input
// (internal paths where the payload was produced by our own encoder) and
// try_decode_* returns std::nullopt instead — the boundary-safe variant
// for anything that might see truncated or damaged bytes.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/codec.hpp"
#include "common/pid_set.hpp"
#include "devices/event.hpp"

namespace riv::core::wire {

void write_pid_set(BinaryWriter& w, const PidSet& s);
PidSet read_pid_set(BinaryReader& r);

// kRingEvent: app (2) | sensor (2) | S (1 + 2|S|) | V (1 + 2|V|) | event.
struct RingPayload {
  AppId app{};
  SensorId sensor{};
  PidSet seen;  // S
  PidSet need;  // V
  devices::SensorEvent event{};
};
std::vector<std::byte> encode(const RingPayload& p);
RingPayload decode_ring(const std::vector<std::byte>& buf);
std::optional<RingPayload> try_decode_ring(const std::vector<std::byte>& buf);
// Decode into a caller-owned payload, reusing its S/V vector capacity.
// Ring events are the most frequent message on a Gapless deployment, so
// the receive path keeps a scratch payload instead of allocating per
// message. Returns false on corrupt input (payload left unspecified).
bool decode_ring_into(const std::vector<std::byte>& buf, RingPayload& p);

// kRbEvent / kGapForward: app (2) | sensor (2) | event.
struct EventPayload {
  AppId app{};
  SensorId sensor{};
  devices::SensorEvent event{};
};
std::vector<std::byte> encode_event_payload(const EventPayload& p);
EventPayload decode_event_payload(const std::vector<std::byte>& buf);
std::optional<EventPayload> try_decode_event_payload(
    const std::vector<std::byte>& buf);

// kSyncRequest: app (2).
std::vector<std::byte> encode_sync_request(AppId app);
AppId decode_sync_request(const std::vector<std::byte>& buf);
std::optional<AppId> try_decode_sync_request(
    const std::vector<std::byte>& buf);

// kSyncResponse: app (2) | count (2) | (sensor (2), high-water (8))*.
struct SyncResponse {
  AppId app{};
  std::vector<std::pair<SensorId, TimePoint>> high_waters;
};
std::vector<std::byte> encode(const SyncResponse& p);
SyncResponse decode_sync_response(const std::vector<std::byte>& buf);
std::optional<SyncResponse> try_decode_sync_response(
    const std::vector<std::byte>& buf);

// kCommand: app (2) | guarantee (1) | command (33).
struct CommandPayload {
  AppId app{};
  std::uint8_t guarantee{0};
  devices::Command command{};
};
std::vector<std::byte> encode(const CommandPayload& p);
CommandPayload decode_command_payload(const std::vector<std::byte>& buf);
std::optional<CommandPayload> try_decode_command_payload(
    const std::vector<std::byte>& buf);

// kPromote / kDemote: app (2).
std::vector<std::byte> encode_role_change(AppId app);
AppId decode_role_change(const std::vector<std::byte>& buf);
std::optional<AppId> try_decode_role_change(
    const std::vector<std::byte>& buf);

// kCommandAck: app (2) | command id (6).
struct CommandAck {
  AppId app{};
  CommandId command{};
};
std::vector<std::byte> encode(const CommandAck& p);
CommandAck decode_command_ack(const std::vector<std::byte>& buf);
std::optional<CommandAck> try_decode_command_ack(
    const std::vector<std::byte>& buf);

// --- Tamper evidence: integrity trailer ----------------------------------
// When the deployment's integrity layer is armed (Byzantine chaos), the
// event-bearing payloads (kRingEvent, kRbEvent, kGapForward, kCommand)
// carry trailing bytes appended after the base encoding — additive wire
// evolution, exactly like the command `cause` append:
//   marker 0x5A (1 B) | chain digest (8 B LE) | keyed MAC (8 B LE)
// `chain` is the sender's per-origin hash-chained sequence digest (each
// origin folds every emission into a rolling FNV-1a state, so a digest
// commits to the entire emission history up to that event). `mac` is
// FNV-1a over (key, body bytes, chain, body length) — a cheap keyed MAC
// in the simulator's one-hash spirit: not cryptographic, but any
// single-byte change to a sealed frame fails verification.
//
// Receivers that know integrity is armed REQUIRE the trailer: a frame
// without it (or with any mismatching byte) is rejected before the base
// decoder runs, so the strict consumed-exactly decoders never see the
// trailer and the unsealed wire format is untouched.
inline constexpr std::size_t kIntegrityTrailerBytes = 17;
inline constexpr std::uint8_t kIntegrityMarker = 0x5A;

struct IntegrityTrailer {
  std::uint64_t chain{0};
  std::uint64_t mac{0};
};

// The keyed MAC over a payload body and its chain digest.
std::uint64_t compute_mac(std::uint64_t key, const std::byte* body,
                          std::size_t n, std::uint64_t chain);

// Append the integrity trailer to an encoded payload.
void seal(std::vector<std::byte>& buf, std::uint64_t key,
          std::uint64_t chain);

// Verify a sealed payload and split it: on success the base bytes are
// copied into `body` (capacity reused across calls) and the trailer into
// `out`; returns false on short input, marker mismatch, or MAC mismatch.
bool verify_and_strip(const std::vector<std::byte>& buf, std::uint64_t key,
                      std::vector<std::byte>& body, IntegrityTrailer* out);

}  // namespace riv::core::wire
