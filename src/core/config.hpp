// Runtime configuration knobs.
#pragma once

#include <map>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "core/exec/placement.hpp"
#include "membership/failure_detector.hpp"

namespace riv::core {

struct Config {
  membership::Config membership{};  // keep-alive every 500 ms, 2 s timeout

  // How logic nodes are placed (chains computed per app in deploy order).
  PlacementPolicy placement_policy{PlacementPolicy::kMaxActiveDevices};

  // Bound on the per-stream event log (oldest entries evicted beyond it);
  // generous relative to the 200 s experiment runs.
  std::size_t event_log_cap{100000};

  // Gap delivery keeps a small dedup window of recently delivered events
  // to absorb duplicate forwards during view disagreement.
  std::size_t gap_dedup_window{256};

  // Period of the Bayou-style anti-entropy with the ring successor (§4.1).
  // A sync also fires immediately whenever the successor changes; the
  // periodic pass guarantees convergence when a one-shot sync is lost to
  // a concurrent crash or partition.
  Duration sync_period{seconds(5)};

  // Optional explicit placement chains per app (highest priority first).
  // When absent, the placement function of §7 is used.
  std::map<AppId, std::vector<ProcessId>> placement_override;

  // Tamper evidence (DESIGN.md §12). When armed, event-bearing frames
  // carry the integrity trailer (wire::seal) and receivers verify and
  // strip it before any decoder runs; device events are checked against
  // their radio MAC and a per-origin sequence history. Off by default so
  // non-adversarial runs keep byte-identical frames, sizes and timing.
  bool integrity{false};
  std::uint64_t integrity_key{0};
};

}  // namespace riv::core
