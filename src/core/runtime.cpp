#include "core/runtime.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/exec/placement.hpp"
#include "core/wire.hpp"
#include "trace/trace.hpp"

namespace riv::core {
namespace {

// Next process after `self` in the sorted circular order of `view`.
std::optional<ProcessId> ring_successor(ProcessId self,
                                        const std::set<ProcessId>& view) {
  if (view.size() <= 1) return std::nullopt;
  auto it = view.upper_bound(self);
  if (it == view.end()) it = view.begin();
  if (*it == self) return std::nullopt;
  return *it;
}

}  // namespace

RivuletProcess::RivuletProcess(sim::Simulation& sim, net::SimNetwork& net,
                               devices::HomeBus& bus, ProcessId self,
                               std::vector<ProcessId> all, Config config,
                               metrics::Registry& metrics)
    : sim_(&sim),
      net_(&net),
      bus_(&bus),
      self_(self),
      all_(std::move(all)),
      config_(config),
      metrics_(&metrics) {
  std::sort(all_.begin(), all_.end());
}

RivuletProcess::~RivuletProcess() {
  if (up_) crash();
}

void RivuletProcess::deploy(
    std::shared_ptr<const appmodel::AppGraph> graph) {
  RIV_ASSERT(graph != nullptr, "null app graph");
  graph->validate();
  deployed_.push_back(std::move(graph));
  if (up_) {
    // Hot deploy: rebuild app state for the new graph only, counting the
    // load the already-running apps impose.
    const auto& g = deployed_.back();
    std::map<ProcessId, int> load;
    for (const auto& [id, existing] : apps_) {
      if (!existing.chain.empty()) ++load[existing.chain.front()];
    }
    AppState& app = apps_[g->id];
    app.graph = g;
    build_app_state(app, load);
    evaluate_role(g->id, app);
  }
}

void RivuletProcess::start() {
  RIV_ASSERT(!up_, "process already running");
  up_ = true;
  started_ = true;
  net_->set_process_up(self_, true);
  build_state();
}

void RivuletProcess::crash() {
  if (!up_) return;
  up_ = false;
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kCrash);
  }
  net_->set_process_up(self_, false);
  teardown_state();
}

void RivuletProcess::recover() {
  RIV_ASSERT(started_, "recover() before first start()");
  if (up_) return;
  up_ = true;
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kRecover);
  }
  net_->set_process_up(self_, true);
  build_state();
}

void RivuletProcess::teardown_state() {
  bus_->unsubscribe(self_);
  net_->endpoint(self_).set_handler({});
  // Logic instances and streams own no timers beyond timers_ /
  // their LogicInstance-internal ones; destroying them cancels everything.
  apps_.clear();
  kv_.reset();
  fd_.reset();
  timers_.reset();
  periodic_ = nullptr;
}

store::ReplicatedStore& RivuletProcess::kv() {
  RIV_ASSERT(kv_ != nullptr, "kv() on a crashed process");
  return *kv_;
}

void RivuletProcess::build_state() {
  build_volatile_shell();

  fd_->start();
  kv_->start();
  for (auto& [id, app] : apps_) {
    for (auto& [sensor, stream] : app.streams) {
      if (stream.gapless) stream.gapless->start();
      if (stream.gap) stream.gap->start();
    }
    evaluate_role(id, app);
  }

  // Initial sync plus periodic anti-entropy (see Config::sync_period).
  sync_rings(/*force=*/true);
  periodic_timer_ = timers_->schedule_after(config_.sync_period, periodic_);
}

void RivuletProcess::build_volatile_shell() {
  timers_ = std::make_unique<sim::ProcessTimers>(*sim_);

  fd_ = std::make_unique<membership::FailureDetector>(
      *timers_, net_->endpoint(self_), all_, config_.membership);
  fd_->set_on_view_change([this](const std::set<ProcessId>&) {
    on_view_change();
  });
  fd_->set_payload_provider([this] { return keepalive_payload(); });
  fd_->set_payload_handler([this](ProcessId from, BinaryReader& r) {
    on_keepalive_payload(from, r);
  });

  store::ReplicatedStore::Hooks kv_hooks;
  kv_hooks.self = self_;
  kv_hooks.send = [this](ProcessId dst, bool is_sync,
                         std::vector<std::byte> payload) {
    net_->endpoint(self_).send(
        dst, is_sync ? net::MsgType::kStoreSync : net::MsgType::kStorePut,
        std::move(payload));
  };
  kv_hooks.view = [this]() -> const std::set<ProcessId>& {
    return fd_->view();
  };
  kv_hooks.timers = timers_.get();
  kv_hooks.stable = &store_;
  kv_hooks.sync_period = config_.sync_period;
  kv_ = std::make_unique<store::ReplicatedStore>(std::move(kv_hooks));

  apps_.clear();
  // Chains are computed in deploy order with a running load count, so the
  // kLoadBalanced policy spreads apps deterministically and every process
  // derives identical chains.
  std::map<ProcessId, int> load;
  for (const auto& graph : deployed_) {
    AppState& app = apps_[graph->id];
    app.graph = graph;
    build_app_state(app, load);
    if (!app.chain.empty()) ++load[app.chain.front()];
  }

  net_->endpoint(self_).set_handler(
      [this](const net::Message& msg) { on_message(msg); });
  bus_->subscribe(self_, [this](const devices::SensorEvent& e) {
    on_device_event(e);
  });

  // The anti-entropy/retry closure lives in periodic_ (not in a shared_ptr
  // it captures, which would be an unreclaimable cycle); queued copies
  // capture only `this`, and teardown_state() cancels the timers before
  // `this` can die. Scheduling happens in build_state()/restore_clone().
  periodic_ = [this] {
    sync_rings(/*force=*/true);
    retry_pending_commands();
    periodic_timer_ = timers_->schedule_after(config_.sync_period, periodic_);
  };
}

void RivuletProcess::build_app_state(AppState& app,
                                     const std::map<ProcessId, int>& load) {
  const appmodel::AppGraph& graph = *app.graph;
  auto it = config_.placement_override.find(graph.id);
  app.chain = it != config_.placement_override.end()
                  ? it->second
                  : placement_chain(graph, *bus_, all_,
                                    config_.placement_policy, load);

  app.log = std::make_unique<EventLog>(graph.id, &store_,
                                       config_.event_log_cap);
  app.log->recover();
  app.last_successor.reset();
  app.commands_seen.clear();
  app.pending_commands.clear();
  app.delivered = 0;
  app.logic.reset();

  // One delivery stream per distinct sensor; if several edges reference
  // the same sensor the strongest guarantee wins and the first poll-based
  // policy applies.
  app.streams.clear();
  for (const appmodel::SensorEdge& edge : graph.sensor_edges) {
    auto sit = app.streams.find(edge.sensor);
    if (sit == app.streams.end()) {
      app.streams.emplace(edge.sensor, make_stream(app, edge));
    } else if (edge.guarantee == appmodel::Guarantee::kGapless &&
               sit->second.edge.guarantee == appmodel::Guarantee::kGap) {
      app.streams.erase(sit);
      app.streams.emplace(edge.sensor, make_stream(app, edge));
    }
  }
}

RivuletProcess::StreamState RivuletProcess::make_stream(
    AppState& app, const appmodel::SensorEdge& edge) {
  const AppId app_id = app.graph->id;

  StreamContext ctx;
  ctx.self = self_;
  ctx.app = app_id;
  ctx.edge = edge;
  ctx.in_range = bus_->sensor_in_range(self_, edge.sensor);
  ctx.all_processes = all_;
  std::vector<ProcessId> in_range;
  for (ProcessId p : bus_->processes_in_range(edge.sensor)) {
    if (std::find(all_.begin(), all_.end(), p) != all_.end())
      in_range.push_back(p);
  }
  std::sort(in_range.begin(), in_range.end());
  ctx.in_range_processes = std::move(in_range);

  ctx.view = [this]() -> const std::set<ProcessId>& { return fd_->view(); };
  ctx.chain = [&app] { return app.chain; };
  ctx.logic_active_here = [&app] { return app.logic != nullptr; };
  ctx.deliver = [this, app_id, &app](const devices::SensorEvent& e) {
    if (app.logic) deliver_to_logic(app_id, app, e);
  };
  ctx.send = [this](ProcessId dst, net::MsgType type,
                    std::vector<std::byte> payload) {
    net_->endpoint(self_).send(dst, type, std::move(payload));
  };
  SensorId sensor = edge.sensor;
  // Both callbacks fire repeatedly; resolve their counters once.
  ctx.staleness = [this, app_id, &app, sensor,
                   c = static_cast<metrics::Counter*>(nullptr)](
                      std::uint32_t epoch) mutable {
    if (c == nullptr)
      c = &metrics_->counter(metric_prefix(app_id) + ".staleness");
    c->add(1);
    if (app.logic) app.logic->on_staleness_violation(sensor, epoch);
  };
  ctx.poll = [this, sensor, c = static_cast<metrics::Counter*>(nullptr)](
                 std::uint32_t epoch) mutable {
    if (c == nullptr)
      c = &metrics_->counter("polls.issued.s" +
                             std::to_string(sensor.value));
    c->add(1);
    bus_->poll(self_, sensor, epoch);
  };
  if (config_.integrity) {
    ctx.seal = [this](std::vector<std::byte>& buf, std::uint64_t chain) {
      wire::seal(buf, config_.integrity_key, chain);
    };
  }
  ctx.timers = timers_.get();
  ctx.log = app.log.get();

  StreamState state;
  state.edge = edge;
  if (edge.guarantee == appmodel::Guarantee::kGapless) {
    state.gapless = std::make_unique<GaplessStream>(std::move(ctx));
  } else {
    state.gap =
        std::make_unique<GapStream>(std::move(ctx), config_.gap_dedup_window);
  }
  return state;
}

// --- device ingest -------------------------------------------------------

void RivuletProcess::on_device_event(const devices::SensorEvent& e) {
  if (config_.integrity) {
    // Radio-hop authenticity: a forged event fails the keyed MAC (it
    // commits to every field plus the origin's chain digest)...
    if (devices::event_mac(config_.integrity_key, e) != e.mac) {
      if (trace::active(trace::Component::kRuntime)) {
        trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                    trace::Kind::kTamper, provenance_of(e.id),
                    trace::fe(trace::Key::kEvent, e.id),
                    trace::fs(trace::Key::kText, "spoof"));
      }
      return;
    }
    // ...while a replayed genuine event passes it and is caught here:
    // every sensor emission carries a fresh seq (polls included), so a
    // seq this process already ingested can only be a re-injection.
    if (!device_seqs_seen_[e.id.sensor].insert(e.id.seq).second) {
      if (trace::active(trace::Component::kRuntime)) {
        trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                    trace::Kind::kTamper, provenance_of(e.id),
                    trace::fe(trace::Key::kEvent, e.id),
                    trace::fs(trace::Key::kText, "replay"));
      }
      return;
    }
  }
  metrics::Counter*& ingest = ingest_counters_[e.id.sensor];
  if (ingest == nullptr) {
    ingest = &metrics_->counter("ingest.p" + std::to_string(self_.value) +
                                ".s" + std::to_string(e.id.sensor.value));
  }
  ingest->add(1);
  for (auto& [id, app] : apps_) {
    auto it = app.streams.find(e.id.sensor);
    if (it == app.streams.end()) continue;
    if (it->second.gapless)
      it->second.gapless->on_device_event(e);
    else
      it->second.gap->on_device_event(e);
  }
}

// --- message dispatch ----------------------------------------------------

void RivuletProcess::on_message(const net::Message& msg) {
  switch (msg.type) {
    case net::MsgType::kKeepAlive:
      fd_->on_keepalive(msg);
      return;
    case net::MsgType::kRingEvent: {
      // Scratch payload: ring events dominate message traffic, and the
      // handlers below never re-enter this decode (sends only schedule
      // future deliveries), so the S/V buffers can be reused across
      // messages. thread_local for the parallel seed-sweep runner.
      thread_local wire::RingPayload p;
      if (config_.integrity) {
        wire::IntegrityTrailer tr;
        if (!unseal(msg, &tr)) return;
        RIV_ASSERT(wire::decode_ring_into(unseal_scratch_, p),
                   "corrupt ring payload");
        // chain travels only in the trailer (the base encoding is
        // untouched); restore it so onward forwards re-seal correctly.
        p.event.chain = tr.chain;
      } else {
        RIV_ASSERT(wire::decode_ring_into(msg.payload, p),
                   "corrupt ring payload");
      }
      auto ait = apps_.find(p.app);
      if (ait == apps_.end()) return;
      auto sit = ait->second.streams.find(p.sensor);
      if (sit == ait->second.streams.end() || !sit->second.gapless) return;
      sit->second.gapless->on_ring(msg.src, p);
      return;
    }
    case net::MsgType::kRbEvent: {
      wire::EventPayload p;
      if (config_.integrity) {
        wire::IntegrityTrailer tr;
        if (!unseal(msg, &tr)) return;
        p = wire::decode_event_payload(unseal_scratch_);
        p.event.chain = tr.chain;
      } else {
        p = wire::decode_event_payload(msg.payload);
      }
      auto ait = apps_.find(p.app);
      if (ait == apps_.end()) return;
      auto sit = ait->second.streams.find(p.sensor);
      if (sit == ait->second.streams.end() || !sit->second.gapless) return;
      sit->second.gapless->on_rb(msg.src, p);
      return;
    }
    case net::MsgType::kGapForward: {
      wire::EventPayload p;
      if (config_.integrity) {
        wire::IntegrityTrailer tr;
        if (!unseal(msg, &tr)) return;
        p = wire::decode_event_payload(unseal_scratch_);
        p.event.chain = tr.chain;
      } else {
        p = wire::decode_event_payload(msg.payload);
      }
      auto ait = apps_.find(p.app);
      if (ait == apps_.end()) return;
      auto sit = ait->second.streams.find(p.sensor);
      if (sit == ait->second.streams.end() || !sit->second.gap) return;
      sit->second.gap->on_forward(msg.src, p);
      return;
    }
    case net::MsgType::kSyncRequest:
      handle_sync_request(msg);
      return;
    case net::MsgType::kSyncResponse:
      handle_sync_response(msg);
      return;
    case net::MsgType::kCommand:
      handle_command(msg);
      return;
    case net::MsgType::kCommandAck: {
      wire::CommandAck ack = wire::decode_command_ack(msg.payload);
      auto ait = apps_.find(ack.app);
      if (ait != apps_.end()) ait->second.pending_commands.erase(ack.command);
      return;
    }
    case net::MsgType::kStorePut:
      kv_->on_update(msg.payload);
      return;
    case net::MsgType::kStoreSync:
      kv_->on_sync(msg.payload);
      return;
    case net::MsgType::kPromote:
      handle_role_change(msg, /*promote=*/true);
      return;
    case net::MsgType::kDemote:
      handle_role_change(msg, /*promote=*/false);
      return;
  }
}

// --- membership reactions --------------------------------------------------

void RivuletProcess::on_view_change() {
  for (auto& [id, app] : apps_) evaluate_role(id, app);
  sync_rings(/*force=*/false);
}

void RivuletProcess::sync_rings(bool force) {
  const std::set<ProcessId>& view = fd_->view();
  for (auto& [id, app] : apps_) {
    bool any_gapless = false;
    for (const auto& [sensor, stream] : app.streams)
      any_gapless |= stream.gapless != nullptr;
    if (!any_gapless) continue;
    std::optional<ProcessId> succ = ring_successor(self_, view);
    bool changed = succ != app.last_successor;
    app.last_successor = succ;
    if (succ && (changed || force)) {
      net_->endpoint(self_).send(*succ, net::MsgType::kSyncRequest,
                                 wire::encode_sync_request(id));
    }
  }
}

void RivuletProcess::handle_sync_request(const net::Message& msg) {
  AppId id = wire::decode_sync_request(msg.payload);
  auto ait = apps_.find(id);
  if (ait == apps_.end()) return;
  wire::SyncResponse resp;
  resp.app = id;
  for (const auto& [sensor, stream] : ait->second.streams) {
    if (stream.gapless)
      resp.high_waters.emplace_back(
          sensor, ait->second.log->prefix_high_water(sensor));
  }
  net_->endpoint(self_).send(msg.src, net::MsgType::kSyncResponse,
                             wire::encode(resp));
}

void RivuletProcess::handle_sync_response(const net::Message& msg) {
  wire::SyncResponse resp = wire::decode_sync_response(msg.payload);
  auto ait = apps_.find(resp.app);
  if (ait == apps_.end()) return;
  for (const auto& [sensor, hw] : resp.high_waters) {
    auto sit = ait->second.streams.find(sensor);
    if (sit != ait->second.streams.end() && sit->second.gapless)
      sit->second.gapless->sync_successor(msg.src, hw);
  }
}

// --- execution service -----------------------------------------------------

std::size_t RivuletProcess::rank_of(const AppState& app, ProcessId p) const {
  auto it = std::find(app.chain.begin(), app.chain.end(), p);
  return it == app.chain.end()
             ? app.chain.size()
             : static_cast<std::size_t>(it - app.chain.begin());
}

void RivuletProcess::evaluate_role(AppId id, AppState& app) {
  std::optional<ProcessId> cand = first_alive(app.chain, fd_->view());
  if (!cand) return;  // we are not even in the chain
  if (*cand == self_ && app.logic == nullptr) {
    promote(id, app);
  } else if (*cand != self_ && app.logic != nullptr) {
    demote(id, app);
  }
}

void RivuletProcess::make_logic(AppId id, AppState& app) {
  appmodel::LogicInstance::Callbacks cb;
  cb.self = self_;
  cb.next_command_id = [this] {
    return CommandId{self_, next_cmd_seq_++};
  };
  cb.kv_put = [this](const std::string& key, double value) {
    kv_->put(key, value);
  };
  cb.kv_get = [this](const std::string& key) { return kv_->get(key); };
  cb.command_sink = [this, id, &app](const appmodel::ActuatorEdge& edge,
                                     const devices::Command& cmd) {
    route_command(id, app, edge, cmd);
  };
  app.logic = std::make_unique<appmodel::LogicInstance>(*app.graph, *sim_,
                                                        std::move(cb));
}

void RivuletProcess::promote(AppId id, AppState& app) {
  RIV_INFO("exec", to_string(self_) << " promotes logic for app "
                                    << app.graph->name);
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kPromote, trace::fu(trace::Key::kApp, id.value));
  }
  make_logic(id, app);
  app.instance_delivered.clear();  // fresh instance epoch
  app.logic->start();
  metrics_->counter(metric_prefix(id) + ".promotions").add(1);
  replay_backlog(id, app);
  net::Payload rc = wire::encode_role_change(id);  // shared by all peers
  for (ProcessId p : fd_->view()) {
    if (p != self_)
      net_->endpoint(self_).send(p, net::MsgType::kPromote, rc);
  }
}

void RivuletProcess::demote(AppId id, AppState& app) {
  RIV_INFO("exec", to_string(self_) << " demotes logic for app "
                                    << app.graph->name);
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kDemote, trace::fu(trace::Key::kApp, id.value));
  }
  app.logic.reset();
  metrics_->counter(metric_prefix(id) + ".demotions").add(1);
  net::Payload rc = wire::encode_role_change(id);  // shared by all peers
  for (ProcessId p : fd_->view()) {
    if (p != self_)
      net_->endpoint(self_).send(p, net::MsgType::kDemote, rc);
  }
}

void RivuletProcess::replay_backlog(AppId id, AppState& app) {
  // Deliver every Gapless event past the gossiped processed watermark —
  // the "spike" of Fig 7. Gap streams replay nothing by design.
  for (auto& [sensor, stream] : app.streams) {
    if (!stream.gapless) continue;
    TimePoint hw = app.log->processed_watermark(sensor);
    for (const StoredEvent* se : app.log->events_after(sensor, hw))
      deliver_to_logic(id, app, se->event);
  }
}

void RivuletProcess::handle_role_change(const net::Message& msg,
                                        bool promote_msg) {
  AppId id = wire::decode_role_change(msg.payload);
  auto ait = apps_.find(id);
  if (ait == apps_.end()) return;
  AppState& app = ait->second;
  if (promote_msg) {
    if (app.logic != nullptr) {
      if (rank_of(app, msg.src) < rank_of(app, self_)) {
        // A higher-priority process asserted itself: step down (§5).
        demote(id, app);
      } else {
        // We outrank the sender; re-assert so it steps down (bully).
        net_->endpoint(self_).send(msg.src, net::MsgType::kPromote,
                                   wire::encode_role_change(id));
      }
    }
  } else {
    evaluate_role(id, app);
  }
}

// --- delivery to logic -------------------------------------------------------

void RivuletProcess::deliver_to_logic(AppId id, AppState& app,
                                      const devices::SensorEvent& e) {
  RIV_ASSERT(app.logic != nullptr, "delivering to a shadow logic node");
  ++app.delivered;
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kDeliver, provenance_of(e.id),
                trace::fu(trace::Key::kApp, id.value),
                trace::fe(trace::Key::kEvent, e.id));
  }
  if (!app.instance_delivered.insert(e.id).second) {
    if (app.m_dup_instance == nullptr)
      app.m_dup_instance =
          &metrics_->counter(metric_prefix(id) + ".dup_instance_delivery");
    app.m_dup_instance->add(1);
  }
  if (app.m_delivered == nullptr) {
    const std::string prefix = metric_prefix(id);
    app.m_delivered = &metrics_->counter(prefix + ".delivered");
    app.m_delay = &metrics_->latency(prefix + ".delay");
    app.m_delivered_ts = &metrics_->series(prefix + ".delivered_ts");
  }
  app.m_delivered->add(1);
  app.m_delay->record(sim_->now() - e.emitted_at);
  app.m_delivered_ts->append(sim_->now(),
                             static_cast<double>(app.m_delivered->value()));

  auto sit = app.streams.find(e.id.sensor);
  if (sit != app.streams.end() && sit->second.gapless)
    app.log->advance_processed_watermark(e.id.sensor, e.emitted_at);

  app.logic->on_sensor_event(e);
}

// --- actuation ---------------------------------------------------------------

std::vector<ProcessId> RivuletProcess::actuator_targets(
    ActuatorId actuator) const {
  std::vector<ProcessId> targets;
  for (ProcessId p : bus_->processes_in_range(actuator)) {
    if (std::find(all_.begin(), all_.end(), p) != all_.end() &&
        fd_->alive(p))
      targets.push_back(p);
  }
  std::sort(targets.begin(), targets.end());
  return targets;
}

void RivuletProcess::route_command(AppId id, AppState& app,
                                   const appmodel::ActuatorEdge& edge,
                                   const devices::Command& cmd) {
  std::vector<ProcessId> targets = actuator_targets(edge.actuator);
  if (targets.empty()) {
    metrics_->counter(metric_prefix(id) + ".commands_dropped").add(1);
    return;
  }

  const bool local = std::find(targets.begin(), targets.end(), self_) !=
                     targets.end();
  if (local) {
    // We host an active actuator node: actuate directly.
    submit_command_locally(app, cmd);
    return;
  }

  wire::CommandPayload payload;
  payload.app = id;
  payload.guarantee = static_cast<std::uint8_t>(edge.guarantee);
  payload.command = cmd;
  std::vector<std::byte> buf = wire::encode(payload);
  // Commands have no per-origin chain; sealed with chain 0 they still get
  // the keyed MAC, so a corrupted forwarder cannot mutate them unnoticed.
  if (config_.integrity) wire::seal(buf, config_.integrity_key, 0);
  net::Payload bytes = std::move(buf);  // shared across all targets
  if (edge.guarantee == appmodel::Guarantee::kGapless) {
    // Replicate to every active actuator node and keep the command
    // pending until one of them acknowledges; the device's idempotence or
    // Test&Set support absorbs duplicates (§5).
    app.pending_commands[cmd.id] =
        PendingCommand{payload, sim_->now(), sim_->now()};
    for (ProcessId p : targets)
      net_->endpoint(self_).send(p, net::MsgType::kCommand, bytes);
  } else {
    net_->endpoint(self_).send(targets.front(), net::MsgType::kCommand,
                               std::move(bytes));
  }
}

void RivuletProcess::retry_pending_commands() {
  // Commands older than one detection window that nobody acknowledged are
  // re-sent to the currently alive actuator nodes; stale ones expire.
  const Duration retry_after = config_.membership.timeout;
  const Duration expire_after = retry_after * 10;
  for (auto& [id, app] : apps_) {
    for (auto it = app.pending_commands.begin();
         it != app.pending_commands.end();) {
      PendingCommand& pending = it->second;
      if (sim_->now() - pending.first_sent > expire_after) {
        metrics_->counter(metric_prefix(id) + ".commands_expired").add(1);
        it = app.pending_commands.erase(it);
        continue;
      }
      if (sim_->now() - pending.last_sent >= retry_after) {
        pending.last_sent = sim_->now();
        std::vector<ProcessId> targets =
            actuator_targets(pending.payload.command.actuator);
        std::vector<std::byte> buf = wire::encode(pending.payload);
        if (config_.integrity) wire::seal(buf, config_.integrity_key, 0);
        net::Payload bytes = std::move(buf);  // shared buffer
        bool local = false;
        for (ProcessId p : targets) {
          if (p == self_) {
            submit_command_locally(app, pending.payload.command);
            local = true;
          } else {
            net_->endpoint(self_).send(p, net::MsgType::kCommand, bytes);
          }
        }
        metrics_->counter(metric_prefix(id) + ".commands_retried").add(1);
        if (local) {  // local submission is its own acknowledgement
          it = app.pending_commands.erase(it);
          continue;
        }
      }
      ++it;
    }
  }
}

void RivuletProcess::submit_command_locally(AppState& app,
                                            const devices::Command& cmd) {
  if (!app.commands_seen.insert(cmd.id).second) return;
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kCommand, cmd.cause,
                trace::fc(trace::Key::kCmd, cmd.id),
                trace::fa(trace::Key::kActuator, cmd.actuator));
  }
  bus_->actuate(self_, cmd);
}

void RivuletProcess::handle_command(const net::Message& msg) {
  wire::CommandPayload p;
  if (config_.integrity) {
    wire::IntegrityTrailer tr;
    if (!unseal(msg, &tr)) return;
    p = wire::decode_command_payload(unseal_scratch_);
  } else {
    p = wire::decode_command_payload(msg.payload);
  }
  auto ait = apps_.find(p.app);
  if (ait == apps_.end()) return;
  if (!bus_->actuator_in_range(self_, p.command.actuator)) return;
  submit_command_locally(ait->second, p.command);
  if (p.guarantee ==
      static_cast<std::uint8_t>(appmodel::Guarantee::kGapless)) {
    wire::CommandAck ack;
    ack.app = p.app;
    ack.command = p.command.id;
    net_->endpoint(self_).send(msg.src, net::MsgType::kCommandAck,
                               wire::encode(ack));
  }
}

// --- tamper evidence -----------------------------------------------------------

bool RivuletProcess::unseal(const net::Message& msg,
                            wire::IntegrityTrailer* tr) {
  if (wire::verify_and_strip(msg.payload, config_.integrity_key,
                             unseal_scratch_, tr))
    return true;
  if (trace::active(trace::Component::kRuntime)) {
    trace::emit(sim_->now(), self_, trace::Component::kRuntime,
                trace::Kind::kTamper,
                trace::fs(trace::Key::kType, net::to_string(msg.type)),
                trace::fp(trace::Key::kSrc, msg.src),
                trace::fs(trace::Key::kText, "bad_mac"));
  }
  return false;
}

bool RivuletProcess::device_seq_seen(SensorId sensor,
                                     std::uint32_t seq) const {
  auto it = device_seqs_seen_.find(sensor);
  return it != device_seqs_seen_.end() && it->second.count(seq) != 0;
}

std::size_t RivuletProcess::device_seqs_seen_count(SensorId sensor) const {
  auto it = device_seqs_seen_.find(sensor);
  return it == device_seqs_seen_.end() ? 0 : it->second.size();
}

// --- watermark gossip ---------------------------------------------------------

std::vector<std::byte> RivuletProcess::keepalive_payload() {
  BinaryWriter w;
  std::uint8_t count = 0;
  for (const auto& [id, app] : apps_) {
    if (app.logic != nullptr) ++count;
  }
  w.u8(count);
  for (const auto& [id, app] : apps_) {
    if (app.logic == nullptr) continue;
    w.app_id(id);
    std::uint8_t streams = 0;
    for (const auto& [sensor, stream] : app.streams)
      if (stream.gapless) ++streams;
    w.u8(streams);
    for (const auto& [sensor, stream] : app.streams) {
      if (!stream.gapless) continue;
      w.sensor_id(sensor);
      w.time_point(app.log->processed_watermark(sensor));
    }
  }
  return w.take();
}

void RivuletProcess::on_keepalive_payload(ProcessId from, BinaryReader& r) {
  (void)from;
  std::uint8_t apps = r.u8();
  for (std::uint8_t i = 0; i < apps; ++i) {
    AppId id = r.app_id();
    std::uint8_t streams = r.u8();
    auto ait = apps_.find(id);
    for (std::uint8_t j = 0; j < streams; ++j) {
      SensorId sensor = r.sensor_id();
      TimePoint hw = r.time_point();
      if (ait != apps_.end())
        ait->second.log->advance_processed_watermark(sensor, hw);
    }
  }
}

// --- introspection --------------------------------------------------------------

bool RivuletProcess::logic_active(AppId app) const {
  auto it = apps_.find(app);
  return it != apps_.end() && it->second.logic != nullptr;
}

const appmodel::LogicInstance* RivuletProcess::logic(AppId app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : it->second.logic.get();
}

appmodel::LogicInstance* RivuletProcess::logic(AppId app) {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : it->second.logic.get();
}

std::uint64_t RivuletProcess::delivered(AppId app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.delivered;
}

const std::set<ProcessId>& RivuletProcess::view() const {
  RIV_ASSERT(fd_ != nullptr, "view() on a crashed process");
  return fd_->view();
}

std::vector<ProcessId> RivuletProcess::chain(AppId app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? std::vector<ProcessId>{} : it->second.chain;
}

const GaplessStream* RivuletProcess::gapless_stream(AppId app,
                                                    SensorId sensor) const {
  auto ait = apps_.find(app);
  if (ait == apps_.end()) return nullptr;
  auto sit = ait->second.streams.find(sensor);
  return sit == ait->second.streams.end() ? nullptr
                                          : sit->second.gapless.get();
}

const GapStream* RivuletProcess::gap_stream(AppId app,
                                            SensorId sensor) const {
  auto ait = apps_.find(app);
  if (ait == apps_.end()) return nullptr;
  auto sit = ait->second.streams.find(sensor);
  return sit == ait->second.streams.end() ? nullptr : sit->second.gap.get();
}

EventLog* RivuletProcess::event_log(AppId app) {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : it->second.log.get();
}

std::string RivuletProcess::metric_prefix(AppId id) const {
  return "app" + std::to_string(id.value);
}

void RivuletProcess::checkpoint_state(BinaryWriter& w) const {
  w.process_id(self_);
  w.u8(up_ ? 1 : 0);
  w.u8(started_ ? 1 : 0);
  w.u32(next_cmd_seq_);
  store_.checkpoint_state(w);
  w.u64(device_seqs_seen_.size());
  for (const auto& [sensor, seqs] : device_seqs_seen_) {
    w.sensor_id(sensor);
    w.u64(seqs.size());
    for (std::uint32_t s : seqs) w.u32(s);
  }
  // Volatile state exists only while the process is up.
  w.u8(fd_ != nullptr ? 1 : 0);
  if (fd_ != nullptr) fd_->checkpoint_state(w);
  w.u8(kv_ != nullptr ? 1 : 0);
  if (kv_ != nullptr) kv_->checkpoint_state(w);
  w.u64(apps_.size());
  for (const auto& [id, app] : apps_) {
    w.app_id(id);
    w.u64(app.chain.size());
    for (ProcessId p : app.chain) w.process_id(p);
    w.u8(app.log != nullptr ? 1 : 0);
    if (app.log != nullptr) app.log->checkpoint_state(w);
    w.u64(app.streams.size());
    for (const auto& [sensor, stream] : app.streams) {
      w.sensor_id(sensor);
      w.u8(stream.gapless != nullptr ? 1 : 0);
      if (stream.gapless != nullptr) stream.gapless->checkpoint_state(w);
      w.u8(stream.gap != nullptr ? 1 : 0);
      if (stream.gap != nullptr) stream.gap->checkpoint_state(w);
    }
    w.u8(app.logic != nullptr ? 1 : 0);
    w.u8(app.last_successor.has_value() ? 1 : 0);
    if (app.last_successor.has_value()) w.process_id(*app.last_successor);
    w.u64(app.commands_seen.size());
    for (CommandId c : app.commands_seen) w.command_id(c);
    w.u64(app.pending_commands.size());
    for (const auto& [c, pending] : app.pending_commands) {
      w.command_id(c);
      w.time_point(pending.first_sent);
      w.time_point(pending.last_sent);
    }
    w.u64(app.delivered);
    w.u64(app.instance_delivered.size());
    for (EventId e : app.instance_delivered) w.event_id(e);
  }
}

void RivuletProcess::clone_state(BinaryWriter& w) const {
  w.process_id(self_);
  w.u8(up_ ? 1 : 0);
  w.u8(started_ ? 1 : 0);
  w.u32(next_cmd_seq_);
  store_.checkpoint_state(w);  // full contents; clone reuses the encoding
  w.u64(device_seqs_seen_.size());
  for (const auto& [sensor, seqs] : device_seqs_seen_) {
    w.sensor_id(sensor);
    w.u64(seqs.size());
    for (std::uint32_t s : seqs) w.u32(s);
  }
  if (!up_) return;  // volatile state exists only while the process is up

  fd_->clone_state(w);
  kv_->clone_state(w);
  w.u64(apps_.size());
  for (const auto& [id, app] : apps_) {
    w.app_id(id);
    w.u64(app.chain.size());
    for (ProcessId p : app.chain) w.process_id(p);
    app.log->clone_state(w);
    w.u64(app.streams.size());
    for (const auto& [sensor, stream] : app.streams) {
      w.sensor_id(sensor);
      w.u8(stream.gapless != nullptr ? 1 : 0);
      if (stream.gapless != nullptr)
        stream.gapless->clone_state(w);
      else
        stream.gap->clone_state(w);
    }
    w.u8(app.logic != nullptr ? 1 : 0);
    if (app.logic != nullptr) app.logic->clone_state(w);
    w.u8(app.last_successor.has_value() ? 1 : 0);
    if (app.last_successor.has_value()) w.process_id(*app.last_successor);
    w.u64(app.commands_seen.size());
    for (CommandId c : app.commands_seen) w.command_id(c);
    w.u64(app.pending_commands.size());
    for (const auto& [c, pending] : app.pending_commands) {
      w.command_id(c);
      w.bytes(wire::encode(pending.payload));
      w.time_point(pending.first_sent);
      w.time_point(pending.last_sent);
    }
    w.u64(app.delivered);
    w.u64(app.instance_delivered.size());
    for (EventId e : app.instance_delivered) w.event_id(e);
  }
  TimePoint t;
  std::uint64_t seq;
  bool live =
      periodic_timer_ != 0 && sim_->timer_info(periodic_timer_, &t, &seq);
  w.u8(live ? 1 : 0);
  if (live) {
    w.u64(periodic_timer_);
    w.time_point(t);
    w.u64(seq);
  }
}

void RivuletProcess::restore_clone(BinaryReader& r) {
  RIV_ASSERT(!started_ && !up_,
             "clone restore requires a fresh, never-started process");
  ProcessId pid = r.process_id();
  RIV_ASSERT(pid == self_, "clone restore: process identity mismatch");
  up_ = r.u8() != 0;
  started_ = r.u8() != 0;
  next_cmd_seq_ = r.u32();
  store_.restore_clone(r);
  device_seqs_seen_.clear();
  const std::uint64_t n_devs = r.u64();
  for (std::uint64_t i = 0; i < n_devs; ++i) {
    SensorId sensor = r.sensor_id();
    std::set<std::uint32_t>& seqs = device_seqs_seen_[sensor];
    const std::uint64_t n_seqs = r.u64();
    // Sorted on the wire (encoded by set iteration): end-hinted inserts
    // keep restore O(n) as these per-event sets grow with the prefix.
    for (std::uint64_t j = 0; j < n_seqs; ++j) seqs.insert(seqs.end(), r.u32());
  }
  if (!up_) return;

  build_volatile_shell();
  fd_->restore_clone(r);
  kv_->restore_clone(r);
  const std::uint64_t n_apps = r.u64();
  RIV_ASSERT(n_apps == apps_.size(), "clone restore: app count mismatch");
  for (auto& [id, app] : apps_) {
    RIV_ASSERT(r.app_id() == id, "clone restore: app order mismatch");
    const std::uint64_t n_chain = r.u64();
    RIV_ASSERT(n_chain == app.chain.size(),
               "clone restore: placement chain length mismatch");
    for (ProcessId p : app.chain) {
      RIV_ASSERT(r.process_id() == p,
                 "clone restore: placement chain mismatch");
    }
    app.log->restore_clone(r);
    const std::uint64_t n_streams = r.u64();
    RIV_ASSERT(n_streams == app.streams.size(),
               "clone restore: stream count mismatch");
    for (auto& [sensor, stream] : app.streams) {
      RIV_ASSERT(r.sensor_id() == sensor,
                 "clone restore: stream sensor mismatch");
      const bool is_gapless = r.u8() != 0;
      RIV_ASSERT(is_gapless == (stream.gapless != nullptr),
                 "clone restore: stream guarantee mismatch");
      if (stream.gapless != nullptr)
        stream.gapless->restore_clone(r);
      else
        stream.gap->restore_clone(r);
    }
    if (r.u8() != 0) {
      make_logic(id, app);
      app.logic->restore_clone(r);
    }
    if (r.u8() != 0) app.last_successor = r.process_id();
    app.commands_seen.clear();
    const std::uint64_t n_cmds = r.u64();
    for (std::uint64_t i = 0; i < n_cmds; ++i)
      app.commands_seen.insert(app.commands_seen.end(), r.command_id());
    app.pending_commands.clear();
    const std::uint64_t n_pending = r.u64();
    for (std::uint64_t i = 0; i < n_pending; ++i) {
      CommandId c = r.command_id();
      PendingCommand pending;
      pending.payload = wire::decode_command_payload(r.bytes());
      pending.first_sent = r.time_point();
      pending.last_sent = r.time_point();
      app.pending_commands.emplace(c, std::move(pending));
    }
    app.delivered = r.u64();
    app.instance_delivered.clear();
    const std::uint64_t n_inst = r.u64();
    for (std::uint64_t i = 0; i < n_inst; ++i)
      app.instance_delivered.insert(app.instance_delivered.end(), r.event_id());
  }
  if (r.u8() != 0) {
    sim::TimerId tid = r.u64();
    TimePoint t = r.time_point();
    std::uint64_t seq = r.u64();
    periodic_timer_ = timers_->restore_at(tid, t, seq, periodic_);
  }
}

}  // namespace riv::core
