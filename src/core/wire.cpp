#include "core/wire.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace riv::core::wire {
namespace {

// A decode is accepted only if every read stayed in bounds AND the buffer
// was consumed exactly: truncated frames fail (some read ran off the end)
// and trailing garbage fails too. This is what gives the fuzz test its
// every-strict-prefix-is-rejected property.
bool consumed(const BinaryReader& r) { return r.ok() && r.at_end(); }

}  // namespace

void write_pid_set(BinaryWriter& w, const PidSet& s) {
  RIV_ASSERT(s.size() <= 255, "process-id set too large for the wire");
  w.u8(static_cast<std::uint8_t>(s.size()));
  for (ProcessId p : s) w.process_id(p);
}

namespace {

void read_pid_set_into(BinaryReader& r, PidSet& out) {
  out.clear();
  std::uint8_t n = r.u8();
  out.reserve(n);
  // Encoded sets are already ascending, so each insert is an append.
  for (std::uint8_t i = 0; i < n; ++i) out.insert(r.process_id());
}

}  // namespace

PidSet read_pid_set(BinaryReader& r) {
  PidSet out;
  read_pid_set_into(r, out);
  return out;
}

std::vector<std::byte> encode(const RingPayload& p) {
  BinaryWriter w;
  w.reserve(6 + 2 * (p.seen.size() + p.need.size()) +
            p.event.wire_size());
  w.app_id(p.app);
  w.sensor_id(p.sensor);
  write_pid_set(w, p.seen);
  write_pid_set(w, p.need);
  devices::encode(w, p.event);
  return w.take();
}

bool decode_ring_into(const std::vector<std::byte>& buf, RingPayload& p) {
  BinaryReader r(buf);
  p.app = r.app_id();
  p.sensor = r.sensor_id();
  read_pid_set_into(r, p.seen);
  read_pid_set_into(r, p.need);
  p.event = devices::decode_event(r);
  return consumed(r);
}

std::optional<RingPayload> try_decode_ring(
    const std::vector<std::byte>& buf) {
  RingPayload p;
  if (!decode_ring_into(buf, p)) return std::nullopt;
  return p;
}

RingPayload decode_ring(const std::vector<std::byte>& buf) {
  std::optional<RingPayload> p = try_decode_ring(buf);
  RIV_ASSERT(p.has_value(), "corrupt ring payload");
  return *std::move(p);
}

std::vector<std::byte> encode_event_payload(const EventPayload& p) {
  BinaryWriter w;
  w.reserve(4 + p.event.wire_size());
  w.app_id(p.app);
  w.sensor_id(p.sensor);
  devices::encode(w, p.event);
  return w.take();
}

std::optional<EventPayload> try_decode_event_payload(
    const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  EventPayload p;
  p.app = r.app_id();
  p.sensor = r.sensor_id();
  p.event = devices::decode_event(r);
  if (!consumed(r)) return std::nullopt;
  return p;
}

EventPayload decode_event_payload(const std::vector<std::byte>& buf) {
  std::optional<EventPayload> p = try_decode_event_payload(buf);
  RIV_ASSERT(p.has_value(), "corrupt event payload");
  return *std::move(p);
}

std::vector<std::byte> encode_sync_request(AppId app) {
  BinaryWriter w;
  w.app_id(app);
  return w.take();
}

std::optional<AppId> try_decode_sync_request(
    const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  AppId app = r.app_id();
  if (!consumed(r)) return std::nullopt;
  return app;
}

AppId decode_sync_request(const std::vector<std::byte>& buf) {
  std::optional<AppId> app = try_decode_sync_request(buf);
  RIV_ASSERT(app.has_value(), "corrupt sync request");
  return *app;
}

std::vector<std::byte> encode(const SyncResponse& p) {
  BinaryWriter w;
  w.reserve(4 + 10 * p.high_waters.size());
  w.app_id(p.app);
  w.u16(static_cast<std::uint16_t>(p.high_waters.size()));
  for (const auto& [sensor, hw] : p.high_waters) {
    w.sensor_id(sensor);
    w.time_point(hw);
  }
  return w.take();
}

std::optional<SyncResponse> try_decode_sync_response(
    const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  SyncResponse p;
  p.app = r.app_id();
  std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    SensorId sensor = r.sensor_id();
    TimePoint hw = r.time_point();
    if (!r.ok()) return std::nullopt;
    p.high_waters.emplace_back(sensor, hw);
  }
  if (!consumed(r)) return std::nullopt;
  return p;
}

SyncResponse decode_sync_response(const std::vector<std::byte>& buf) {
  std::optional<SyncResponse> p = try_decode_sync_response(buf);
  RIV_ASSERT(p.has_value(), "corrupt sync response");
  return *std::move(p);
}

std::vector<std::byte> encode(const CommandPayload& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.u8(p.guarantee);
  devices::encode(w, p.command);
  return w.take();
}

std::optional<CommandPayload> try_decode_command_payload(
    const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  CommandPayload p;
  p.app = r.app_id();
  p.guarantee = r.u8();
  p.command = devices::decode_command(r);
  if (!consumed(r)) return std::nullopt;
  return p;
}

CommandPayload decode_command_payload(const std::vector<std::byte>& buf) {
  std::optional<CommandPayload> p = try_decode_command_payload(buf);
  RIV_ASSERT(p.has_value(), "corrupt command payload");
  return *std::move(p);
}

std::vector<std::byte> encode_role_change(AppId app) {
  BinaryWriter w;
  w.app_id(app);
  return w.take();
}

std::optional<AppId> try_decode_role_change(
    const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  AppId app = r.app_id();
  if (!consumed(r)) return std::nullopt;
  return app;
}

AppId decode_role_change(const std::vector<std::byte>& buf) {
  std::optional<AppId> app = try_decode_role_change(buf);
  RIV_ASSERT(app.has_value(), "corrupt role-change payload");
  return *app;
}

std::vector<std::byte> encode(const CommandAck& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.command_id(p.command);
  return w.take();
}

std::optional<CommandAck> try_decode_command_ack(
    const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  CommandAck p;
  p.app = r.app_id();
  p.command = r.command_id();
  if (!consumed(r)) return std::nullopt;
  return p;
}

CommandAck decode_command_ack(const std::vector<std::byte>& buf) {
  std::optional<CommandAck> p = try_decode_command_ack(buf);
  RIV_ASSERT(p.has_value(), "corrupt command ack");
  return *p;
}

namespace {

void put_u64_le(std::vector<std::byte>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64_le(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::uint64_t compute_mac(std::uint64_t key, const std::byte* body,
                          std::size_t n, std::uint64_t chain) {
  hash::Fnv1aStream h;
  h.put(&key, sizeof key);
  h.put(body, n);
  h.put(&chain, sizeof chain);
  std::uint64_t len = n;
  h.put(&len, sizeof len);
  return h.value();
}

void seal(std::vector<std::byte>& buf, std::uint64_t key,
          std::uint64_t chain) {
  std::uint64_t mac = compute_mac(key, buf.data(), buf.size(), chain);
  buf.reserve(buf.size() + kIntegrityTrailerBytes);
  buf.push_back(static_cast<std::byte>(kIntegrityMarker));
  put_u64_le(buf, chain);
  put_u64_le(buf, mac);
}

bool verify_and_strip(const std::vector<std::byte>& buf, std::uint64_t key,
                      std::vector<std::byte>& body, IntegrityTrailer* out) {
  if (buf.size() < kIntegrityTrailerBytes) return false;
  std::size_t base = buf.size() - kIntegrityTrailerBytes;
  const std::byte* t = buf.data() + base;
  if (std::to_integer<std::uint8_t>(t[0]) != kIntegrityMarker) return false;
  IntegrityTrailer tr;
  tr.chain = get_u64_le(t + 1);
  tr.mac = get_u64_le(t + 9);
  if (compute_mac(key, buf.data(), base, tr.chain) != tr.mac) return false;
  body.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(base));
  if (out != nullptr) *out = tr;
  return true;
}

}  // namespace riv::core::wire
