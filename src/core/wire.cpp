#include "core/wire.hpp"

#include "common/assert.hpp"

namespace riv::core::wire {

void write_pid_set(BinaryWriter& w, const std::set<ProcessId>& s) {
  RIV_ASSERT(s.size() <= 255, "process-id set too large for the wire");
  w.u8(static_cast<std::uint8_t>(s.size()));
  for (ProcessId p : s) w.process_id(p);
}

std::set<ProcessId> read_pid_set(BinaryReader& r) {
  std::set<ProcessId> out;
  std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) out.insert(r.process_id());
  return out;
}

std::vector<std::byte> encode(const RingPayload& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.sensor_id(p.sensor);
  write_pid_set(w, p.seen);
  write_pid_set(w, p.need);
  devices::encode(w, p.event);
  return w.take();
}

RingPayload decode_ring(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  RingPayload p;
  p.app = r.app_id();
  p.sensor = r.sensor_id();
  p.seen = read_pid_set(r);
  p.need = read_pid_set(r);
  p.event = devices::decode_event(r);
  RIV_ASSERT(r.ok(), "corrupt ring payload");
  return p;
}

std::vector<std::byte> encode_event_payload(const EventPayload& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.sensor_id(p.sensor);
  devices::encode(w, p.event);
  return w.take();
}

EventPayload decode_event_payload(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  EventPayload p;
  p.app = r.app_id();
  p.sensor = r.sensor_id();
  p.event = devices::decode_event(r);
  RIV_ASSERT(r.ok(), "corrupt event payload");
  return p;
}

std::vector<std::byte> encode_sync_request(AppId app) {
  BinaryWriter w;
  w.app_id(app);
  return w.take();
}

AppId decode_sync_request(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  AppId app = r.app_id();
  RIV_ASSERT(r.ok(), "corrupt sync request");
  return app;
}

std::vector<std::byte> encode(const SyncResponse& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.u16(static_cast<std::uint16_t>(p.high_waters.size()));
  for (const auto& [sensor, hw] : p.high_waters) {
    w.sensor_id(sensor);
    w.time_point(hw);
  }
  return w.take();
}

SyncResponse decode_sync_response(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  SyncResponse p;
  p.app = r.app_id();
  std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    SensorId sensor = r.sensor_id();
    TimePoint hw = r.time_point();
    p.high_waters.emplace_back(sensor, hw);
  }
  RIV_ASSERT(r.ok(), "corrupt sync response");
  return p;
}

std::vector<std::byte> encode(const CommandPayload& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.u8(p.guarantee);
  devices::encode(w, p.command);
  return w.take();
}

CommandPayload decode_command_payload(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  CommandPayload p;
  p.app = r.app_id();
  p.guarantee = r.u8();
  p.command = devices::decode_command(r);
  RIV_ASSERT(r.ok(), "corrupt command payload");
  return p;
}

std::vector<std::byte> encode_role_change(AppId app) {
  BinaryWriter w;
  w.app_id(app);
  return w.take();
}

AppId decode_role_change(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  AppId app = r.app_id();
  RIV_ASSERT(r.ok(), "corrupt role-change payload");
  return app;
}

std::vector<std::byte> encode(const CommandAck& p) {
  BinaryWriter w;
  w.app_id(p.app);
  w.command_id(p.command);
  return w.take();
}

CommandAck decode_command_ack(const std::vector<std::byte>& buf) {
  BinaryReader r(buf);
  CommandAck p;
  p.app = r.app_id();
  p.command = r.command_id();
  RIV_ASSERT(r.ok(), "corrupt command ack");
  return p;
}

}  // namespace riv::core::wire
