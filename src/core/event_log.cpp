#include "core/event_log.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/codec.hpp"

namespace riv::core {
namespace {

void write_pid_set(BinaryWriter& w, const std::set<ProcessId>& s) {
  w.u8(static_cast<std::uint8_t>(s.size()));
  for (ProcessId p : s) w.process_id(p);
}

std::set<ProcessId> read_pid_set(BinaryReader& r) {
  std::set<ProcessId> out;
  std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) out.insert(r.process_id());
  return out;
}

}  // namespace

EventLog::EventLog(AppId app, sim::StableStore* store, std::size_t cap)
    : app_(app), store_(store), cap_(cap) {}

std::string EventLog::event_key(EventId id) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "app%u/ev/%u/%010u", app_.value,
                id.sensor.value, id.seq);
  return buf;
}

std::string EventLog::hw_key(SensorId sensor) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "app%u/hw/%u", app_.value, sensor.value);
  return buf;
}

bool EventLog::seen(EventId id) const {
  auto sit = streams_.find(id.sensor);
  if (sit == streams_.end()) return false;
  return sit->second.count(id.seq) != 0;
}

bool EventLog::append(const devices::SensorEvent& e, std::set<ProcessId> s,
                      std::set<ProcessId> v) {
  auto& stream = streams_[e.id.sensor];
  auto [it, inserted] =
      stream.emplace(e.id.seq, StoredEvent{e, std::move(s), std::move(v)});
  if (!inserted) return false;
  persist(it->second);
  evict(e.id.sensor);
  return true;
}

void EventLog::merge_sets(EventId id, const std::set<ProcessId>& s,
                          const std::set<ProcessId>& v) {
  auto sit = streams_.find(id.sensor);
  if (sit == streams_.end()) return;
  auto it = sit->second.find(id.seq);
  if (it == sit->second.end()) return;
  it->second.seen.insert(s.begin(), s.end());
  it->second.need.insert(v.begin(), v.end());
  persist(it->second);
}

const StoredEvent* EventLog::find(EventId id) const {
  auto sit = streams_.find(id.sensor);
  if (sit == streams_.end()) return nullptr;
  auto it = sit->second.find(id.seq);
  return it == sit->second.end() ? nullptr : &it->second;
}

TimePoint EventLog::high_water(SensorId sensor) const {
  TimePoint hw{};
  auto sit = streams_.find(sensor);
  if (sit == streams_.end()) return hw;
  for (const auto& [seq, se] : sit->second)
    hw = std::max(hw, se.event.emitted_at);
  return hw;
}

std::uint32_t EventLog::first_retained(SensorId sensor) const {
  auto it = first_retained_.find(sensor);
  return it == first_retained_.end() ? 1 : it->second;
}

TimePoint EventLog::prefix_high_water(SensorId sensor) const {
  auto sit = streams_.find(sensor);
  if (sit == streams_.end() || sit->second.empty()) return TimePoint{};
  TimePoint hw{};
  // The prefix must start at the first sequence number this log is still
  // responsible for; a missing head is a hole like any other.
  std::uint32_t expected = first_retained(sensor);
  for (const auto& [seq, se] : sit->second) {
    if (seq != expected) break;  // first hole
    hw = std::max(hw, se.event.emitted_at);
    ++expected;
  }
  return hw;
}

std::vector<const StoredEvent*> EventLog::events_after(SensorId sensor,
                                                       TimePoint after) const {
  std::vector<const StoredEvent*> out;
  auto sit = streams_.find(sensor);
  if (sit == streams_.end()) return out;
  for (const auto& [seq, se] : sit->second) {
    if (se.event.emitted_at > after) out.push_back(&se);
  }
  std::sort(out.begin(), out.end(), [](const StoredEvent* a,
                                       const StoredEvent* b) {
    if (a->event.emitted_at != b->event.emitted_at)
      return a->event.emitted_at < b->event.emitted_at;
    return a->event.id.seq < b->event.id.seq;
  });
  return out;
}

TimePoint EventLog::processed_watermark(SensorId sensor) const {
  auto it = processed_hw_.find(sensor);
  return it == processed_hw_.end() ? TimePoint{} : it->second;
}

void EventLog::advance_processed_watermark(SensorId sensor, TimePoint t) {
  TimePoint& hw = processed_hw_[sensor];
  if (t <= hw) return;
  hw = t;
  if (store_ != nullptr) {
    BinaryWriter w;
    w.time_point(t);
    store_->put(hw_key(sensor), w.take());
  }
}

std::size_t EventLog::size(SensorId sensor) const {
  auto sit = streams_.find(sensor);
  return sit == streams_.end() ? 0 : sit->second.size();
}

std::vector<SensorId> EventLog::sensors() const {
  std::vector<SensorId> out;
  out.reserve(streams_.size());
  for (const auto& [sensor, stream] : streams_) out.push_back(sensor);
  return out;
}

void EventLog::persist(const StoredEvent& se) {
  if (store_ == nullptr) return;
  BinaryWriter w;
  devices::encode(w, se.event);
  write_pid_set(w, se.seen);
  write_pid_set(w, se.need);
  store_->put(event_key(se.event.id), w.take());
}

std::string EventLog::retained_key(SensorId sensor) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "app%u/fr/%u", app_.value, sensor.value);
  return buf;
}

void EventLog::evict(SensorId sensor) {
  auto& stream = streams_[sensor];
  bool evicted = false;
  while (stream.size() > cap_) {
    std::uint32_t seq = stream.begin()->first;
    if (store_ != nullptr)
      store_->erase(event_key(stream.begin()->second.event.id));
    stream.erase(stream.begin());
    std::uint32_t& fr = first_retained_[sensor];
    fr = std::max(fr, seq + 1);
    evicted = true;
  }
  if (evicted && store_ != nullptr) {
    BinaryWriter w;
    w.u32(first_retained_[sensor]);
    store_->put(retained_key(sensor), w.take());
  }
}

void EventLog::recover() {
  if (store_ == nullptr) return;
  streams_.clear();
  processed_hw_.clear();
  first_retained_.clear();
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "app%u/ev/", app_.value);
  for (const std::string& key : store_->keys_with_prefix(prefix)) {
    auto raw = store_->get(key);
    RIV_ASSERT(raw.has_value(), "key listed but missing");
    BinaryReader r(*raw);
    StoredEvent se;
    se.event = devices::decode_event(r);
    se.seen = read_pid_set(r);
    se.need = read_pid_set(r);
    RIV_ASSERT(r.ok(), "corrupt stored event");
    streams_[se.event.id.sensor].emplace(se.event.id.seq, std::move(se));
  }
  std::snprintf(prefix, sizeof(prefix), "app%u/hw/", app_.value);
  for (const std::string& key : store_->keys_with_prefix(prefix)) {
    auto raw = store_->get(key);
    BinaryReader r(*raw);
    SensorId sensor{
        static_cast<std::uint16_t>(std::stoul(key.substr(key.rfind('/') + 1)))};
    processed_hw_[sensor] = r.time_point();
  }
  std::snprintf(prefix, sizeof(prefix), "app%u/fr/", app_.value);
  for (const std::string& key : store_->keys_with_prefix(prefix)) {
    auto raw = store_->get(key);
    BinaryReader r(*raw);
    SensorId sensor{
        static_cast<std::uint16_t>(std::stoul(key.substr(key.rfind('/') + 1)))};
    first_retained_[sensor] = r.u32();
  }
}

}  // namespace riv::core
