#include "core/event_log.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/codec.hpp"

namespace riv::core {
namespace {

void write_pid_set(BinaryWriter& w, const PidSet& s) {
  w.u8(static_cast<std::uint8_t>(s.size()));
  for (ProcessId p : s) w.process_id(p);
}

PidSet read_pid_set(BinaryReader& r) {
  PidSet out;
  std::uint8_t n = r.u8();
  out.reserve(n);
  // Encoded sets are already ascending, so each insert is an append.
  for (std::uint8_t i = 0; i < n; ++i) out.insert(r.process_id());
  return out;
}

}  // namespace

EventLog::EventLog(AppId app, sim::StableStore* store, std::size_t cap)
    : app_(app), store_(store), cap_(cap) {}

std::string EventLog::event_key(EventId id) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "app%u/ev/%u/%010u", app_.value,
                id.sensor.value, id.seq);
  return buf;
}

std::string EventLog::hw_key(SensorId sensor) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "app%u/hw/%u", app_.value, sensor.value);
  return buf;
}

bool EventLog::seen(EventId id) const {
  auto sit = streams_.find(id.sensor);
  if (sit == streams_.end()) return false;
  const Stream& stream = sit->second;
  // Everything inside the contiguous prefix is present by construction;
  // dedup checks (every ring/RB/device delivery) usually land here and
  // skip the tree walk entirely.
  if (id.seq >= stream.first_retained && id.seq < stream.prefix_next)
    return true;
  return stream.events.count(id.seq) != 0;
}

void EventLog::advance_prefix(Stream& stream) {
  auto it = stream.events.lower_bound(stream.prefix_next);
  while (it != stream.events.end() && it->first == stream.prefix_next) {
    ++stream.prefix_next;
    ++it;
  }
}

bool EventLog::append(const devices::SensorEvent& e, PidSet s, PidSet v) {
  Stream& stream = streams_[e.id.sensor];
  auto [it, inserted] = stream.events.emplace(
      e.id.seq, StoredEvent{e, std::move(s), std::move(v)});
  if (!inserted) return false;
  if (stream.monotone) {
    // Out-of-order timestamps (only possible with fabricated events) void
    // the fast-path ordering assumption for this stream.
    if (it != stream.events.begin() &&
        std::prev(it)->second.event.emitted_at > e.emitted_at)
      stream.monotone = false;
    auto nx = std::next(it);
    if (nx != stream.events.end() &&
        e.emitted_at > nx->second.event.emitted_at)
      stream.monotone = false;
  }
  if (e.id.seq == stream.prefix_next) advance_prefix(stream);
  persist(it->second);
  evict(e.id.sensor, stream);
  return true;
}

void EventLog::merge_sets(EventId id, const PidSet& s, const PidSet& v) {
  auto sit = streams_.find(id.sensor);
  if (sit == streams_.end()) return;
  auto it = sit->second.events.find(id.seq);
  if (it == sit->second.events.end()) return;
  StoredEvent& se = it->second;
  // Re-persist only when the merge actually added knowledge; rewriting an
  // identical record (the common duplicate-ring-message case) is a no-op
  // for recovery and pure overhead.
  std::size_t before = se.seen.size() + se.need.size();
  se.seen.insert(s.begin(), s.end());
  se.need.insert(v.begin(), v.end());
  if (se.seen.size() + se.need.size() != before) persist(se);
}

const StoredEvent* EventLog::find(EventId id) const {
  auto sit = streams_.find(id.sensor);
  if (sit == streams_.end()) return nullptr;
  auto it = sit->second.events.find(id.seq);
  return it == sit->second.events.end() ? nullptr : &it->second;
}

TimePoint EventLog::high_water(SensorId sensor) const {
  TimePoint hw{};
  auto sit = streams_.find(sensor);
  if (sit == streams_.end() || sit->second.events.empty()) return hw;
  // Timestamps track sequence order, so the max lives at the tail.
  if (sit->second.monotone)
    return sit->second.events.rbegin()->second.event.emitted_at;
  for (const auto& [seq, se] : sit->second.events)
    hw = std::max(hw, se.event.emitted_at);
  return hw;
}

TimePoint EventLog::prefix_high_water(SensorId sensor) const {
  auto sit = streams_.find(sensor);
  if (sit == streams_.end() || sit->second.events.empty()) return TimePoint{};
  const Stream& stream = sit->second;
  if (stream.monotone) {
    // The prefix counts only when the head of the stream is exactly
    // first_retained (a stray re-ingested pre-eviction entry below it
    // voids the prefix, same as a hole). [first_retained, prefix_next)
    // is the contiguous run; its max timestamp is at its tail.
    if (stream.events.begin()->first != stream.first_retained)
      return TimePoint{};
    return stream.events.find(stream.prefix_next - 1)
        ->second.event.emitted_at;
  }
  TimePoint hw{};
  // The prefix must start at the first sequence number this log is still
  // responsible for; a missing head is a hole like any other.
  std::uint32_t expected = stream.first_retained;
  for (const auto& [seq, se] : stream.events) {
    if (seq != expected) break;  // first hole
    hw = std::max(hw, se.event.emitted_at);
    ++expected;
  }
  return hw;
}

std::vector<const StoredEvent*> EventLog::events_after(SensorId sensor,
                                                       TimePoint after) const {
  std::vector<const StoredEvent*> out;
  auto sit = streams_.find(sensor);
  if (sit == streams_.end()) return out;
  const Stream& stream = sit->second;
  if (stream.monotone) {
    // Matching events form a suffix in sequence order, which is already
    // (emitted_at, seq)-sorted: walk back to the boundary, then emit
    // forward. O(matches) instead of a full scan plus sort.
    auto it = stream.events.end();
    while (it != stream.events.begin() &&
           std::prev(it)->second.event.emitted_at > after)
      --it;
    for (; it != stream.events.end(); ++it) out.push_back(&it->second);
    return out;
  }
  for (const auto& [seq, se] : stream.events) {
    if (se.event.emitted_at > after) out.push_back(&se);
  }
  std::sort(out.begin(), out.end(), [](const StoredEvent* a,
                                       const StoredEvent* b) {
    if (a->event.emitted_at != b->event.emitted_at)
      return a->event.emitted_at < b->event.emitted_at;
    return a->event.id.seq < b->event.id.seq;
  });
  return out;
}

TimePoint EventLog::processed_watermark(SensorId sensor) const {
  auto it = processed_hw_.find(sensor);
  return it == processed_hw_.end() ? TimePoint{} : it->second;
}

void EventLog::advance_processed_watermark(SensorId sensor, TimePoint t) {
  TimePoint& hw = processed_hw_[sensor];
  if (t <= hw) return;
  hw = t;
  if (store_ != nullptr) {
    BinaryWriter w;
    w.time_point(t);
    store_->put(hw_key(sensor), w.take());
  }
}

std::size_t EventLog::size(SensorId sensor) const {
  auto sit = streams_.find(sensor);
  return sit == streams_.end() ? 0 : sit->second.events.size();
}

std::vector<SensorId> EventLog::sensors() const {
  std::vector<SensorId> out;
  out.reserve(streams_.size());
  for (const auto& [sensor, stream] : streams_) {
    // A recovered first-retained marker without surviving events is
    // bookkeeping only, not a stream.
    if (!stream.events.empty()) out.push_back(sensor);
  }
  return out;
}

void EventLog::persist(const StoredEvent& se) {
  if (store_ == nullptr) return;
  BinaryWriter w;
  w.reserve(se.event.wire_size() + 2 +
            2 * (se.seen.size() + se.need.size()));
  devices::encode(w, se.event);
  write_pid_set(w, se.seen);
  write_pid_set(w, se.need);
  store_->put(event_key(se.event.id), w.take());
}

std::string EventLog::retained_key(SensorId sensor) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "app%u/fr/%u", app_.value, sensor.value);
  return buf;
}

void EventLog::evict(SensorId sensor, Stream& stream) {
  bool evicted = false;
  while (stream.events.size() > cap_) {
    std::uint32_t seq = stream.events.begin()->first;
    if (store_ != nullptr)
      store_->erase(event_key(stream.events.begin()->second.event.id));
    stream.events.erase(stream.events.begin());
    stream.first_retained = std::max(stream.first_retained, seq + 1);
    evicted = true;
  }
  if (stream.prefix_next < stream.first_retained) {
    // Eviction jumped first_retained over the old prefix (the evicted
    // head sat above it); restart the run at the new floor.
    stream.prefix_next = stream.first_retained;
    advance_prefix(stream);
  }
  if (evicted && store_ != nullptr) {
    BinaryWriter w;
    w.u32(stream.first_retained);
    store_->put(retained_key(sensor), w.take());
  }
}

void EventLog::recover() {
  if (store_ == nullptr) return;
  streams_.clear();
  processed_hw_.clear();
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "app%u/ev/", app_.value);
  for (const std::string& key : store_->keys_with_prefix(prefix)) {
    auto raw = store_->get(key);
    RIV_ASSERT(raw.has_value(), "key listed but missing");
    BinaryReader r(*raw);
    StoredEvent se;
    se.event = devices::decode_event(r);
    se.seen = read_pid_set(r);
    se.need = read_pid_set(r);
    RIV_ASSERT(r.ok(), "corrupt stored event");
    streams_[se.event.id.sensor].events.emplace(se.event.id.seq,
                                                std::move(se));
  }
  std::snprintf(prefix, sizeof(prefix), "app%u/hw/", app_.value);
  for (const std::string& key : store_->keys_with_prefix(prefix)) {
    auto raw = store_->get(key);
    BinaryReader r(*raw);
    SensorId sensor{
        static_cast<std::uint16_t>(std::stoul(key.substr(key.rfind('/') + 1)))};
    processed_hw_[sensor] = r.time_point();
  }
  std::snprintf(prefix, sizeof(prefix), "app%u/fr/", app_.value);
  for (const std::string& key : store_->keys_with_prefix(prefix)) {
    auto raw = store_->get(key);
    BinaryReader r(*raw);
    SensorId sensor{
        static_cast<std::uint16_t>(std::stoul(key.substr(key.rfind('/') + 1)))};
    streams_[sensor].first_retained = r.u32();
  }
  // Rebuild the derived per-stream bookkeeping the fast paths rely on.
  for (auto& [sensor, stream] : streams_) {
    stream.prefix_next = stream.first_retained;
    advance_prefix(stream);
    TimePoint last{};
    for (const auto& [seq, se] : stream.events) {
      if (se.event.emitted_at < last) {
        stream.monotone = false;
        break;
      }
      last = se.event.emitted_at;
    }
  }
}

void EventLog::checkpoint_state(BinaryWriter& w) const {
  w.app_id(app_);
  w.u64(streams_.size());
  for (const auto& [sensor, stream] : streams_) {
    w.sensor_id(sensor);
    w.u32(stream.first_retained);
    w.u32(stream.prefix_next);
    w.u8(stream.monotone ? 1 : 0);
    w.u64(stream.events.size());
    for (const auto& [seq, se] : stream.events) {
      w.u32(seq);
      w.time_point(se.event.emitted_at);
      w.u32(se.event.epoch);
      w.u8(se.event.poll_based ? 1 : 0);
      w.f64(se.event.value);
      w.u64(se.event.chain);
      write_pid_set(w, se.seen);
      write_pid_set(w, se.need);
    }
  }
  w.u64(processed_hw_.size());
  for (const auto& [sensor, t] : processed_hw_) {
    w.sensor_id(sensor);
    w.time_point(t);
  }
}

void EventLog::clone_state(BinaryWriter& w) const {
  w.app_id(app_);
  w.u64(streams_.size());
  for (const auto& [sensor, stream] : streams_) {
    w.sensor_id(sensor);
    w.u32(stream.first_retained);
    w.u32(stream.prefix_next);
    w.u8(stream.monotone ? 1 : 0);
    w.u64(stream.events.size());
    for (const auto& [seq, se] : stream.events) {
      w.u32(seq);
      w.u32(se.event.epoch);
      w.time_point(se.event.emitted_at);
      w.u8(se.event.poll_based ? 1 : 0);
      w.f64(se.event.value);
      w.u32(se.event.payload_size);
      w.u64(se.event.chain);
      w.u64(se.event.mac);
      write_pid_set(w, se.seen);
      write_pid_set(w, se.need);
    }
  }
  w.u64(processed_hw_.size());
  for (const auto& [sensor, t] : processed_hw_) {
    w.sensor_id(sensor);
    w.time_point(t);
  }
}

void EventLog::restore_clone(BinaryReader& r) {
  AppId app = r.app_id();
  RIV_ASSERT(app == app_, "clone restore: event log app identity mismatch");
  streams_.clear();
  const std::uint64_t n_streams = r.u64();
  for (std::uint64_t i = 0; i < n_streams; ++i) {
    SensorId sensor = r.sensor_id();
    Stream& stream = streams_[sensor];
    stream.first_retained = r.u32();
    stream.prefix_next = r.u32();
    stream.monotone = r.u8() != 0;
    const std::uint64_t n_events = r.u64();
    for (std::uint64_t j = 0; j < n_events; ++j) {
      std::uint32_t seq = r.u32();
      StoredEvent se;
      se.event.id = EventId{sensor, seq};
      se.event.epoch = r.u32();
      se.event.emitted_at = r.time_point();
      se.event.poll_based = r.u8() != 0;
      se.event.value = r.f64();
      se.event.payload_size = r.u32();
      se.event.chain = r.u64();
      se.event.mac = r.u64();
      se.seen = read_pid_set(r);
      se.need = read_pid_set(r);
      stream.events.emplace_hint(stream.events.end(), seq, std::move(se));
    }
  }
  processed_hw_.clear();
  const std::uint64_t n_hw = r.u64();
  for (std::uint64_t i = 0; i < n_hw; ++i) {
    SensorId sensor = r.sensor_id();
    processed_hw_[sensor] = r.time_point();
  }
}

}  // namespace riv::core
