// Per-application replicated event log (Gapless delivery state).
//
// Each process keeps, per Gapless stream, every event it has seen together
// with the protocol's S (seen) and V (must-see) sets, so that:
//   * dedup is exact (an event is delivered to the local logic node at
//     most once per process),
//   * a new ring successor can be synchronized Bayou-style by high-water
//     timestamp (§4.1), re-sending exactly the missing suffix,
//   * a newly promoted logic node can replay the backlog past the gossiped
//     processed watermark (§5, Fig 7's post-failover spike).
//
// Entries are written through to the process's StableStore so they survive
// crash/recover (§3.1's crash-recovery model).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "devices/event.hpp"
#include "sim/stable_store.hpp"

namespace riv::core {

struct StoredEvent {
  devices::SensorEvent event;
  std::set<ProcessId> seen;     // S
  std::set<ProcessId> need;     // V
};

class EventLog {
 public:
  // `store` may be null (volatile log — used by tests); `cap` bounds the
  // number of retained events per stream.
  EventLog(AppId app, sim::StableStore* store, std::size_t cap);

  bool seen(EventId id) const;

  // Insert if new; returns false (and leaves the log unchanged) for
  // duplicates.
  bool append(const devices::SensorEvent& e, std::set<ProcessId> s,
              std::set<ProcessId> v);

  // Merge updated S/V knowledge about an already-stored event.
  void merge_sets(EventId id, const std::set<ProcessId>& s,
                  const std::set<ProcessId>& v);

  const StoredEvent* find(EventId id) const;

  // Largest emitted_at among stored events of `sensor` (zero when empty).
  TimePoint high_water(SensorId sensor) const;

  // Bayou-style sync mark: the timestamp of the last event in the
  // *contiguous* sequence prefix held for `sensor`. Crash-recovery can
  // punch holes in the middle of a log (events missed while down, newer
  // events ingested right after recovery); reporting the prefix mark makes
  // the predecessor re-send everything from the first hole onward, so
  // anti-entropy actually fills holes rather than hiding them behind a
  // fresh maximum timestamp.
  TimePoint prefix_high_water(SensorId sensor) const;

  // Events of `sensor` with emitted_at strictly greater than `after`, in
  // emission order.
  std::vector<const StoredEvent*> events_after(SensorId sensor,
                                               TimePoint after) const;

  // --- processed watermark (gossiped via keep-alives) -----------------
  TimePoint processed_watermark(SensorId sensor) const;
  void advance_processed_watermark(SensorId sensor, TimePoint t);

  std::size_t size(SensorId sensor) const;
  std::vector<SensorId> sensors() const;

  // Rebuild in-memory state from stable storage (crash recovery).
  void recover();

 private:
  std::string event_key(EventId id) const;
  std::string hw_key(SensorId sensor) const;
  std::string retained_key(SensorId sensor) const;
  void persist(const StoredEvent& se);
  void evict(SensorId sensor);
  std::uint32_t first_retained(SensorId sensor) const;

  AppId app_;
  sim::StableStore* store_;
  std::size_t cap_;
  // Per sensor, ordered by sequence number (== emission order per sensor).
  std::map<SensorId, std::map<std::uint32_t, StoredEvent>> streams_;
  std::map<SensorId, TimePoint> processed_hw_;
  // Lowest sequence this log is still expected to hold (raised only by
  // capacity eviction). The contiguous prefix is measured from here, so a
  // node that missed a stream's beginning reports prefix 0 and gets the
  // full history re-sent, instead of hiding the gap.
  std::map<SensorId, std::uint32_t> first_retained_;
};

}  // namespace riv::core
