// Per-application replicated event log (Gapless delivery state).
//
// Each process keeps, per Gapless stream, every event it has seen together
// with the protocol's S (seen) and V (must-see) sets, so that:
//   * dedup is exact (an event is delivered to the local logic node at
//     most once per process),
//   * a new ring successor can be synchronized Bayou-style by high-water
//     timestamp (§4.1), re-sending exactly the missing suffix,
//   * a newly promoted logic node can replay the backlog past the gossiped
//     processed watermark (§5, Fig 7's post-failover spike).
//
// Entries are written through to the process's StableStore so they survive
// crash/recover (§3.1's crash-recovery model).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/pid_set.hpp"
#include "devices/event.hpp"
#include "sim/stable_store.hpp"

namespace riv::core {

struct StoredEvent {
  devices::SensorEvent event;
  PidSet seen;  // S
  PidSet need;  // V
};

class EventLog {
 public:
  // `store` may be null (volatile log — used by tests); `cap` bounds the
  // number of retained events per stream.
  EventLog(AppId app, sim::StableStore* store, std::size_t cap);

  bool seen(EventId id) const;

  // Insert if new; returns false (and leaves the log unchanged) for
  // duplicates.
  bool append(const devices::SensorEvent& e, PidSet s, PidSet v);

  // Merge updated S/V knowledge about an already-stored event.
  void merge_sets(EventId id, const PidSet& s, const PidSet& v);

  const StoredEvent* find(EventId id) const;

  // Largest emitted_at among stored events of `sensor` (zero when empty).
  TimePoint high_water(SensorId sensor) const;

  // Bayou-style sync mark: the timestamp of the last event in the
  // *contiguous* sequence prefix held for `sensor`. Crash-recovery can
  // punch holes in the middle of a log (events missed while down, newer
  // events ingested right after recovery); reporting the prefix mark makes
  // the predecessor re-send everything from the first hole onward, so
  // anti-entropy actually fills holes rather than hiding them behind a
  // fresh maximum timestamp.
  TimePoint prefix_high_water(SensorId sensor) const;

  // Events of `sensor` with emitted_at strictly greater than `after`, in
  // emission order.
  std::vector<const StoredEvent*> events_after(SensorId sensor,
                                               TimePoint after) const;

  // --- processed watermark (gossiped via keep-alives) -----------------
  TimePoint processed_watermark(SensorId sensor) const;
  void advance_processed_watermark(SensorId sensor, TimePoint t);

  std::size_t size(SensorId sensor) const;
  std::vector<SensorId> sensors() const;

  // Rebuild in-memory state from stable storage (crash recovery).
  void recover();

  // Serialize the full log — per-stream retention bounds, every stored
  // event with its S/V sets, and the processed watermarks — for a
  // checkpoint. All containers here are ordered, so this is a pure
  // function of log content.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Unlike checkpoint_state this carries every in-memory event field
  // (payload size, integrity trailer) so re-sends from a restored log
  // are byte-for-byte what the source would have sent. No timers here.
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  // One per-sensor stream plus the bookkeeping that keeps the sync-path
  // queries (prefix_high_water, events_after) off O(n) scans: syncs run
  // every anti-entropy period on every process, so they sit on the
  // simulation hot path (DESIGN.md §9).
  struct Stream {
    // Ordered by sequence number (== emission order per sensor).
    std::map<std::uint32_t, StoredEvent> events;
    // Lowest sequence this log is still expected to hold (raised only by
    // capacity eviction). The contiguous prefix is measured from here, so
    // a node that missed a stream's beginning reports prefix 0 and gets
    // the full history re-sent, instead of hiding the gap.
    std::uint32_t first_retained{1};
    // One past the contiguous run [first_retained, prefix_next): every
    // sequence in that range is present. Maintained incrementally on
    // append/evict so prefix_high_water() is a lookup, not a walk.
    std::uint32_t prefix_next{1};
    // emitted_at is nondecreasing in seq for real sensors (both advance
    // together at emission; anti-entropy re-sends carry the original
    // stamps). The fast paths rely on this; a fabricated out-of-order
    // append flips the flag and queries fall back to full scans.
    bool monotone{true};
  };

  std::string event_key(EventId id) const;
  std::string hw_key(SensorId sensor) const;
  std::string retained_key(SensorId sensor) const;
  void persist(const StoredEvent& se);
  void evict(SensorId sensor, Stream& stream);
  // Advance prefix_next over whatever contiguous run is now present.
  static void advance_prefix(Stream& stream);

  AppId app_;
  sim::StableStore* store_;
  std::size_t cap_;
  std::map<SensorId, Stream> streams_;
  std::map<SensorId, TimePoint> processed_hw_;
};

}  // namespace riv::core
