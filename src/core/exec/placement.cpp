#include "core/exec/placement.hpp"

#include <algorithm>

namespace riv::core {

std::vector<ProcessId> placement_chain(const appmodel::AppGraph& graph,
                                       const devices::HomeBus& bus,
                                       const std::vector<ProcessId>& all,
                                       PlacementPolicy policy,
                                       const std::map<ProcessId, int>& load) {
  struct Ranked {
    ProcessId p;
    int active_devices;
    int load;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(all.size());
  for (ProcessId p : all) {
    int count = 0;
    for (SensorId s : graph.sensors()) {
      if (bus.sensor_in_range(p, s)) ++count;
    }
    for (ActuatorId a : graph.actuators()) {
      if (bus.actuator_in_range(p, a)) ++count;
    }
    auto it = load.find(p);
    ranked.push_back({p, count, it == load.end() ? 0 : it->second});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [policy](const Ranked& a, const Ranked& b) {
                     if (policy == PlacementPolicy::kLoadBalanced &&
                         a.load != b.load)
                       return a.load < b.load;
                     if (a.active_devices != b.active_devices)
                       return a.active_devices > b.active_devices;
                     return a.p < b.p;
                   });
  std::vector<ProcessId> chain;
  chain.reserve(ranked.size());
  for (const Ranked& r : ranked) chain.push_back(r.p);
  return chain;
}

}  // namespace riv::core
