// Logic-node placement (§7).
//
// Rivulet deploys the active logic node on the process with the largest
// number of active sensor and actuator nodes required by the app, which
// minimizes forwarding delay; ties break on process id so every process
// computes the same chain deterministically. The full ordering doubles as
// the failover chain for the execution service (§5) and as the Gap
// protocol's chain (§4.2).
#pragma once

#include <map>
#include <vector>

#include "appmodel/graph.hpp"
#include "devices/home_bus.hpp"

namespace riv::core {

enum class PlacementPolicy {
  // §7: the process with the most active sensor/actuator nodes wins —
  // minimizes forwarding delay but concentrates logic nodes.
  kMaxActiveDevices,
  // Extension (cf. Beam's utilization-aware partitioning): prefer lightly
  // loaded processes, breaking ties by active-device count. Spreads apps
  // so one crash disrupts fewer of them at once.
  kLoadBalanced,
};

// `load` counts logic nodes already headed on each process (used by
// kLoadBalanced; every process derives the same loads deterministically
// from the shared deploy order).
std::vector<ProcessId> placement_chain(
    const appmodel::AppGraph& graph, const devices::HomeBus& bus,
    const std::vector<ProcessId>& all,
    PlacementPolicy policy = PlacementPolicy::kMaxActiveDevices,
    const std::map<ProcessId, int>& load = {});

}  // namespace riv::core
