// RivuletProcess: one instance of the Rivulet runtime (§3.3).
//
// Runs on each host (TV, fridge, hub, ...) and wires together:
//   * membership (keep-alive failure detector, local view),
//   * the delivery service (one GaplessStream or GapStream per sensor the
//     deployed apps use),
//   * the execution service (bully-variant promotion/demotion of logic
//     nodes along the placement chain, §5),
//   * actuation-command routing to processes with active actuator nodes,
//   * processed-watermark gossip piggybacked on keep-alives (bounds the
//     backlog a newly promoted logic node replays).
//
// Crash/recovery (§3.1): crash() halts everything — timers, message
// handling, device subscription. recover() rebuilds volatile state from
// the process's StableStore (event logs, watermarks). Deployed app graphs
// are installed software and survive crashes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "appmodel/logic.hpp"
#include "core/config.hpp"
#include "core/delivery/gap_stream.hpp"
#include "core/delivery/gapless_stream.hpp"
#include "devices/home_bus.hpp"
#include "membership/failure_detector.hpp"
#include "metrics/metrics.hpp"
#include "net/sim_network.hpp"
#include "sim/stable_store.hpp"
#include "store/replicated_store.hpp"

namespace riv::core {

class RivuletProcess {
 public:
  RivuletProcess(sim::Simulation& sim, net::SimNetwork& net,
                 devices::HomeBus& bus, ProcessId self,
                 std::vector<ProcessId> all, Config config,
                 metrics::Registry& metrics);
  ~RivuletProcess();

  RivuletProcess(const RivuletProcess&) = delete;
  RivuletProcess& operator=(const RivuletProcess&) = delete;

  // Install an application (before start(), or at runtime).
  void deploy(std::shared_ptr<const appmodel::AppGraph> graph);

  void start();
  void crash();
  void recover();
  bool up() const { return up_; }
  ProcessId id() const { return self_; }

  // --- Introspection (tests and benches) -----------------------------
  bool logic_active(AppId app) const;
  const appmodel::LogicInstance* logic(AppId app) const;
  appmodel::LogicInstance* logic(AppId app);
  std::uint64_t delivered(AppId app) const;  // events fed to local logic
  const std::set<ProcessId>& view() const;
  std::vector<ProcessId> chain(AppId app) const;
  const GaplessStream* gapless_stream(AppId app, SensorId sensor) const;
  const GapStream* gap_stream(AppId app, SensorId sensor) const;
  EventLog* event_log(AppId app);
  // Has this process ingested device event `seq` from `sensor`? Used by
  // the Byzantine injector to pick replays the target has genuinely seen
  // (a replay of a never-received event would be indistinguishable from a
  // fresh delivery and is out of scope for the detector, see DESIGN §12).
  bool device_seq_seen(SensorId sensor, std::uint32_t seq) const;
  std::size_t device_seqs_seen_count(SensorId sensor) const;
  sim::StableStore& store() { return store_; }
  // Replicated application state shared by every app on this process
  // (extension; trigger handlers reach it via TriggerContext::put/get).
  store::ReplicatedStore& kv();

  // Serialize the full protocol state of this process — stable store,
  // per-origin sequence history, membership, replicated KV, and every
  // app's log/delivery/execution/actuation state — for a checkpoint.
  void checkpoint_state(BinaryWriter& w) const;

  // --- snapshot-clone support (DESIGN.md §16) ------------------------
  // Unlike checkpoint_state (replayed through recover()+re-execution), a
  // clone serializes the complete live runtime — including every pending
  // timer and in-flight protocol artifact — and restore_clone() rebuilds
  // it directly into a freshly constructed, never-started process: the
  // volatile shell (detector, KV, streams, logic) is re-wired exactly as
  // build_state() would, then each component restores its own data and
  // timers. No messages are sent and no fresh timers are scheduled.
  void clone_state(BinaryWriter& w) const;
  void restore_clone(BinaryReader& r);

 private:
  struct StreamState {
    appmodel::SensorEdge edge;  // merged edge (strongest guarantee wins)
    std::unique_ptr<GaplessStream> gapless;
    std::unique_ptr<GapStream> gap;
  };
  // A Gapless command sent to remote actuator nodes, retried until some
  // active actuator node acknowledges it (§4's "delivery of actuation
  // commands is analogous"). Device-level idempotence / Test&Set absorbs
  // the duplicates a retry can cause.
  struct PendingCommand {
    wire::CommandPayload payload;
    TimePoint first_sent{};
    TimePoint last_sent{};
  };
  struct AppState {
    std::shared_ptr<const appmodel::AppGraph> graph;
    std::vector<ProcessId> chain;
    std::unique_ptr<EventLog> log;
    std::map<SensorId, StreamState> streams;
    std::unique_ptr<appmodel::LogicInstance> logic;  // non-null iff active
    std::optional<ProcessId> last_successor;
    std::set<CommandId> commands_seen;
    std::map<CommandId, PendingCommand> pending_commands;
    std::uint64_t delivered{0};
    // Per-event metric handles, resolved lazily on first use (Registry
    // references are stable for its lifetime). deliver_to_logic() runs
    // once per delivered event and must not rebuild "appN.xyz" name
    // strings each time.
    metrics::Counter* m_delivered{nullptr};
    metrics::Counter* m_dup_instance{nullptr};
    metrics::LatencyRecorder* m_delay{nullptr};
    metrics::TimeSeries* m_delivered_ts{nullptr};
    // Events fed to the CURRENT logic instance (cleared on promotion).
    // Feeding one instance the same event twice is a delivery-service bug
    // for both guarantees (§4.2 Gap dedup; Gapless log-exact dedup), so
    // duplicates are charged to the "<app>.dup_instance_delivery" metric,
    // which the chaos invariant checker requires to stay zero.
    std::set<EventId> instance_delivered;
  };

  void build_state();
  // Construct the volatile runtime structures (timers, detector, KV,
  // app/stream/closure wiring) without starting anything — shared by
  // build_state() (which then starts them) and restore_clone() (which
  // then overwrites their data and timers from a snapshot).
  void build_volatile_shell();
  // Construct an app's LogicInstance with runtime callbacks wired, not
  // started. promote() adds start/replay/announcement on top.
  void make_logic(AppId id, AppState& app);
  void teardown_state();
  void build_app_state(AppState& app, const std::map<ProcessId, int>& load);
  StreamState make_stream(AppState& app, const appmodel::SensorEdge& edge);

  // Message plumbing.
  void on_message(const net::Message& msg);
  void on_device_event(const devices::SensorEvent& e);
  void on_view_change();
  // Bayou-style anti-entropy: ask the ring successor for its prefix
  // high-waters; on response, re-send what it misses. `force` syncs even
  // when the successor is unchanged (the periodic pass).
  void sync_rings(bool force);
  void handle_sync_request(const net::Message& msg);
  void handle_sync_response(const net::Message& msg);
  void handle_command(const net::Message& msg);
  void handle_role_change(const net::Message& msg, bool promote);
  // Integrity-armed receive gate: verify and strip the trailer into
  // unseal_scratch_; emits a kTamper("bad_mac") record and returns false
  // when the frame fails (the base decoders never see rejected bytes).
  bool unseal(const net::Message& msg, wire::IntegrityTrailer* tr);

  // Execution service.
  std::size_t rank_of(const AppState& app, ProcessId p) const;
  void evaluate_role(AppId id, AppState& app);
  void promote(AppId id, AppState& app);
  void demote(AppId id, AppState& app);
  void replay_backlog(AppId id, AppState& app);

  // Delivery into the local logic node (metrics + watermark).
  void deliver_to_logic(AppId id, AppState& app,
                        const devices::SensorEvent& e);

  // Actuation.
  void route_command(AppId id, AppState& app,
                     const appmodel::ActuatorEdge& edge,
                     const devices::Command& cmd);
  void submit_command_locally(AppState& app, const devices::Command& cmd);
  // Alive processes hosting an active actuator node for `actuator`.
  std::vector<ProcessId> actuator_targets(ActuatorId actuator) const;
  void retry_pending_commands();

  // Watermark gossip.
  std::vector<std::byte> keepalive_payload();
  void on_keepalive_payload(ProcessId from, BinaryReader& r);

  std::string metric_prefix(AppId id) const;

  sim::Simulation* sim_;
  net::SimNetwork* net_;
  devices::HomeBus* bus_;
  ProcessId self_;
  std::vector<ProcessId> all_;
  Config config_;
  metrics::Registry* metrics_;

  sim::StableStore store_;  // survives crashes
  std::vector<std::shared_ptr<const appmodel::AppGraph>> deployed_;
  // Integrity layer (survives crashes, like store_): per-origin device
  // sequence history for replay detection, and the verify scratch buffer.
  std::map<SensorId, std::set<std::uint32_t>> device_seqs_seen_;
  std::vector<std::byte> unseal_scratch_;

  // Volatile state, torn down on crash.
  std::unique_ptr<sim::ProcessTimers> timers_;
  std::unique_ptr<membership::FailureDetector> fd_;
  std::unique_ptr<store::ReplicatedStore> kv_;
  std::map<AppId, AppState> apps_;
  // Lazily resolved "ingest.pX.sY" counters, one per sensor: device ingest
  // is per-event-hot and must not rebuild the counter name each time.
  // Registry references stay valid across crash/recover cycles.
  std::map<SensorId, metrics::Counter*> ingest_counters_;
  // Periodic anti-entropy + command-retry closure; queued timer copies
  // capture `this` only, so no shared_ptr self-cycle (leak) exists.
  std::function<void()> periodic_;
  sim::TimerId periodic_timer_{0};
  bool up_{false};
  bool started_{false};
  std::uint32_t next_cmd_seq_{1};
};

}  // namespace riv::core
