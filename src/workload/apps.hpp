// The application catalog of Table 1, plus the paper's running examples.
//
// Every application from the paper's survey is implemented as a factory
// returning a deployable AppGraph, with the delivery guarantee Table 1
// mandates. The handlers are deliberately simple (threshold checks,
// presence inference, Marzullo fusion) — the paper's apps are stateless
// stream transformations, and what Rivulet contributes is *delivery and
// execution fault tolerance*, which these graphs exercise fully.
#pragma once

#include <vector>

#include "appmodel/graph.hpp"

namespace riv::workload::apps {

using appmodel::AppGraph;
using appmodel::Guarantee;

// --- Table 1, Gap applications --------------------------------------------

// Set the thermostat set-point based on occupancy [PreHeat].
AppGraph occupancy_hvac(AppId id, std::vector<SensorId> occupancy,
                        ActuatorId thermostat, Duration window);
// Set-point from the user's clothing level seen by a camera [SPOT].
AppGraph user_hvac(AppId id, SensorId camera, ActuatorId thermostat);
// Turn on lights when a user is present (occupancy OR camera OR mic).
AppGraph automated_lighting(AppId id, SensorId occupancy, SensorId camera,
                            SensorId microphone, ActuatorId light);
// Alert when an appliance is on while the home is unoccupied.
AppGraph appliance_alert(AppId id, SensorId appliance_energy,
                         SensorId occupancy, ActuatorId notifier,
                         Duration window, double on_threshold_watts);
// Periodically infer physical activity from microphone frames [SymPhoney].
AppGraph activity_tracking(AppId id, SensorId microphone,
                           ActuatorId notifier, std::size_t frames);

// --- Table 1, Gapless applications ----------------------------------------

// Alert caregivers on a fall-detected event from a wearable [iFall].
AppGraph fall_alert(AppId id, SensorId wearable, ActuatorId notifier);
// Alert when no motion/door activity is seen in a window [Slip&Fall].
AppGraph inactive_alert(AppId id, SensorId motion, SensorId door,
                        ActuatorId notifier, Duration window);
// Alert on water or smoke detection.
AppGraph flood_fire_alert(AppId id, SensorId water, SensorId smoke,
                          ActuatorId notifier);
// Listing 1: siren on any door-open; tolerates n-1 door-sensor failures.
AppGraph intrusion_detection(AppId id, std::vector<SensorId> doors,
                             ActuatorId siren);
// Update the energy cost on every power-consumption event.
AppGraph energy_billing(AppId id, SensorId power, ActuatorId display,
                        Duration window, double price_per_kwh);
// Actuate heating/cooling when a polled temperature crosses thresholds.
AppGraph temperature_hvac(AppId id, SensorId temperature, ActuatorId hvac,
                          Duration epoch, double heat_below,
                          double cool_above);
// Alert when CO2 crosses a threshold.
AppGraph air_monitoring(AppId id, SensorId co2, ActuatorId notifier,
                        Duration epoch, double threshold);
// Record camera frames containing an unknown object.
AppGraph surveillance(AppId id, SensorId camera, ActuatorId recorder,
                      double unknown_threshold);

// --- Running examples -------------------------------------------------------

// §3.2: DoorSensor => TurnLightOnOff => LightActuator.
AppGraph turn_light_on_off(AppId id, SensorId door, ActuatorId light,
                           Guarantee guarantee = Guarantee::kGapless);
// Listing 2: Marzullo-fused average of n temperature sensors every second,
// tolerating floor((n-1)/3) arbitrary sensor faults; drives a thermostat.
// `uncertainty` is the per-sensor accuracy half-width that turns each
// window's [min, max] into the interval reading Marzullo fuses.
AppGraph temperature_averaging(AppId id, std::vector<SensorId> temperatures,
                               ActuatorId thermostat, Duration window,
                               double uncertainty = 0.5);

// --- Table 1 metadata (for printing the catalog) ----------------------------

struct CatalogEntry {
  const char* name;
  const char* primary_function;
  const char* sensor_type;
  const char* category;
  Guarantee guarantee;
};
const std::vector<CatalogEntry>& table1_catalog();

}  // namespace riv::workload::apps
