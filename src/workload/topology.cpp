#include "workload/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace riv::workload {

double distance_m(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

namespace {

double cross(Point o, Point a, Point b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

int sign(double v) { return v > 1e-12 ? 1 : (v < -1e-12 ? -1 : 0); }

}  // namespace

bool segments_intersect(Point a1, Point a2, Point b1, Point b2) {
  int d1 = sign(cross(b1, b2, a1));
  int d2 = sign(cross(b1, b2, a2));
  int d3 = sign(cross(a1, a2, b1));
  int d4 = sign(cross(a1, a2, b2));
  return d1 * d2 < 0 && d3 * d4 < 0;
}

void HomeTopology::add_host(HostPlacement host) {
  hosts_.push_back(std::move(host));
}

void HomeTopology::add_wall(Wall wall) { walls_.push_back(wall); }

void HomeTopology::place_sensor(SensorId sensor, Point position) {
  DevicePlacement d;
  d.sensor = sensor;
  d.position = position;
  devices_.push_back(d);
}

void HomeTopology::place_actuator(ActuatorId actuator, Point position) {
  DevicePlacement d;
  d.actuator = actuator;
  d.position = position;
  devices_.push_back(d);
}

int HomeTopology::walls_between(Point a, Point b) const {
  int count = 0;
  for (const Wall& wall : walls_) {
    if (segments_intersect(a, b, wall.a, wall.b)) ++count;
  }
  return count;
}

LinkEstimate HomeTopology::estimate(Point device_pos,
                                    const HostPlacement& host,
                                    devices::Technology tech) const {
  const devices::TechProfile& prof = devices::profile(tech);
  LinkEstimate est;
  est.distance = distance_m(device_pos, host.position);

  if (host.adapters.count(tech) == 0) return est;  // no radio: unreachable

  // Effective range shrinks per crossed wall, weighted by attenuation.
  double wall_weight = 0.0;
  for (const Wall& wall : walls_) {
    if (segments_intersect(device_pos, host.position, wall.a, wall.b)) {
      ++est.walls_crossed;
      wall_weight += wall.attenuation;
    }
  }
  double range = prof.range_m *
                 std::max(0.05, 1.0 - model_.per_wall_range_penalty *
                                          wall_weight);
  if (est.distance > range) return est;

  est.in_range = true;
  double edge = std::pow(est.distance / range, model_.edge_exponent);
  est.loss_prob = std::min(
      0.95, prof.loss_floor + model_.per_wall_loss * wall_weight +
                model_.edge_loss * edge);
  return est;
}

Point HomeTopology::device_position(SensorId sensor) const {
  for (const DevicePlacement& d : devices_) {
    if (d.sensor == sensor) return d.position;
  }
  RIV_ASSERT(false, "sensor was never placed");
  return {};
}

Point HomeTopology::device_position(ActuatorId actuator) const {
  for (const DevicePlacement& d : devices_) {
    if (d.actuator == actuator) return d.position;
  }
  RIV_ASSERT(false, "actuator was never placed");
  return {};
}

std::vector<std::pair<ProcessId, LinkEstimate>>
HomeTopology::reachable_hosts(SensorId sensor,
                              devices::Technology tech) const {
  std::vector<std::pair<ProcessId, LinkEstimate>> out;
  Point pos = device_position(sensor);
  for (const HostPlacement& host : hosts_) {
    LinkEstimate est = estimate(pos, host, tech);
    if (est.in_range) out.emplace_back(host.process, est);
  }
  return out;
}

std::vector<std::pair<ProcessId, LinkEstimate>>
HomeTopology::reachable_hosts(ActuatorId actuator,
                              devices::Technology tech) const {
  std::vector<std::pair<ProcessId, LinkEstimate>> out;
  Point pos = device_position(actuator);
  for (const HostPlacement& host : hosts_) {
    LinkEstimate est = estimate(pos, host, tech);
    if (est.in_range) out.emplace_back(host.process, est);
  }
  return out;
}

void HomeTopology::wire(devices::HomeBus& bus) const {
  for (const HostPlacement& host : hosts_) {
    for (devices::Technology tech : host.adapters)
      bus.add_adapter(host.process, tech);
  }
  for (const DevicePlacement& d : devices_) {
    if (d.sensor) {
      devices::Technology tech = bus.sensor(*d.sensor).spec().tech;
      for (const auto& [process, est] :
           reachable_hosts(*d.sensor, tech)) {
        devices::LinkParams params;
        params.loss_prob = est.loss_prob;
        bus.link_sensor(*d.sensor, process, params);
      }
    } else if (d.actuator) {
      devices::Technology tech = bus.actuator(*d.actuator).spec().tech;
      for (const auto& [process, est] :
           reachable_hosts(*d.actuator, tech)) {
        bus.link_actuator(*d.actuator, process, est.loss_prob);
      }
    }
  }
}

HomeTopology sample_home(std::vector<ProcessId> processes) {
  RIV_ASSERT(processes.size() >= 3, "sample home expects >= 3 hosts");
  HomeTopology topo;
  devices::AdapterSet all = {
      devices::Technology::kIp, devices::Technology::kZWave,
      devices::Technology::kZigbee, devices::Technology::kBle};
  // A 16 m x 10 m floor plan: hallway in the middle, living room left,
  // kitchen right, bedrooms top.
  topo.add_host({processes[0], "hub(hallway)", {8.0, 4.0}, all});
  topo.add_host({processes[1], "tv(living-room)", {2.5, 3.0}, all});
  topo.add_host({processes[2], "fridge(kitchen)", {14.0, 3.0}, all});
  if (processes.size() > 3)
    topo.add_host({processes[3], "washer(utility)", {15.0, 9.0}, all});
  if (processes.size() > 4)
    topo.add_host({processes[4], "speaker(bedroom)", {3.0, 9.0}, all});

  // Interior walls (light) and one concrete partition near the utility
  // room (heavy — the paper's "concrete slab" effect).
  topo.add_wall({{6.0, 0.0}, {6.0, 6.0}, 1.0});    // living room | hallway
  topo.add_wall({{11.0, 0.0}, {11.0, 6.0}, 1.0});  // hallway | kitchen
  topo.add_wall({{0.0, 6.0}, {16.0, 6.0}, 1.0});   // ground | bedrooms
  topo.add_wall({{12.5, 6.0}, {12.5, 10.0}, 2.5}); // concrete partition
  return topo;
}

}  // namespace riv::workload
