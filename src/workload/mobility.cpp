#include "workload/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace riv::workload {

MobileSensor::MobileSensor(sim::Simulation& sim, HomeTopology& topology,
                           devices::HomeBus& bus, SensorId sensor,
                           std::vector<Point> waypoints, double speed_mps,
                           Duration update_period)
    : sim_(&sim),
      topology_(&topology),
      bus_(&bus),
      sensor_(sensor),
      waypoints_(std::move(waypoints)),
      speed_mps_(speed_mps),
      period_(update_period),
      timers_(sim) {
  RIV_ASSERT(waypoints_.size() >= 2, "a path needs at least two waypoints");
  RIV_ASSERT(speed_mps_ > 0.0, "speed must be positive");
}

double MobileSensor::loop_length() const {
  double total = 0.0;
  for (std::size_t i = 0; i < waypoints_.size(); ++i) {
    total += distance_m(waypoints_[i],
                        waypoints_[(i + 1) % waypoints_.size()]);
  }
  return total;
}

Point MobileSensor::position() const {
  if (!running_) return waypoints_.front();
  double walked = speed_mps_ * (sim_->now() - started_at_).seconds();
  double along = std::fmod(walked, loop_length());
  for (std::size_t i = 0; i < waypoints_.size(); ++i) {
    Point a = waypoints_[i];
    Point b = waypoints_[(i + 1) % waypoints_.size()];
    double seg = distance_m(a, b);
    if (along <= seg && seg > 0.0) {
      double f = along / seg;
      return {a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
    }
    along -= seg;
  }
  return waypoints_.front();
}

void MobileSensor::start() {
  if (running_) return;
  running_ = true;
  started_at_ = sim_->now();
  update_links();
  tick();
}

void MobileSensor::stop() {
  running_ = false;
  timers_.cancel_all();
}

void MobileSensor::tick() {
  timers_.schedule_after(period_, [this] {
    update_links();
    tick();
  });
}

std::vector<ProcessId> MobileSensor::current_links() const {
  return bus_->sensor(sensor_).linked_processes();
}

void MobileSensor::update_links() {
  devices::Sensor& sensor = bus_->sensor(sensor_);
  const devices::Technology tech = sensor.spec().tech;
  const Point pos = position();

  // Desired link set at the current position.
  struct Candidate {
    ProcessId process;
    LinkEstimate estimate;
  };
  std::vector<Candidate> in_range;
  for (const HostPlacement& host : topology_->hosts()) {
    LinkEstimate est = topology_->estimate(pos, host, tech);
    if (est.in_range) in_range.push_back({host.process, est});
  }
  if (!devices::profile(tech).multicast && in_range.size() > 1) {
    // BLE: bonded to the single closest host.
    auto best = std::min_element(
        in_range.begin(), in_range.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.estimate.distance < b.estimate.distance;
        });
    in_range = {*best};
  }

  std::vector<ProcessId> current = sensor.linked_processes();
  bool changed = false;
  for (ProcessId p : current) {
    bool still = std::any_of(in_range.begin(), in_range.end(),
                             [p](const Candidate& c) {
                               return c.process == p;
                             });
    if (!still) {
      sensor.remove_link(p);
      changed = true;
    }
  }
  for (const Candidate& c : in_range) {
    if (std::find(current.begin(), current.end(), c.process) ==
        current.end()) {
      devices::LinkParams params;
      params.loss_prob = c.estimate.loss_prob;
      sensor.add_link(c.process, params);
      changed = true;
    } else {
      sensor.set_link_loss(c.process, c.estimate.loss_prob);
    }
  }
  if (changed) ++relinks_;
}

}  // namespace riv::workload
