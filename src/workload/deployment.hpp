// HomeDeployment: one-stop harness for experiments, tests and examples.
//
// Bundles the full simulated home of §8.1 — virtual time, the WiFi
// network, the device bus, and one RivuletProcess per host — behind a
// small builder API, so a bench can say "five processes, one 4-byte IP
// sensor at 10 ev/s received by p2 and p3 with 10% link loss, this app
// deployed everywhere" in a handful of lines.
#pragma once

#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "devices/home_bus.hpp"
#include "metrics/metrics.hpp"
#include "net/sim_network.hpp"
#include "sim/simulation.hpp"

namespace riv::workload {

class HomeDeployment {
 public:
  struct Options {
    std::uint64_t seed{1};
    int n_processes{5};
    net::WifiModel wifi{};
    core::Config config{};
  };

  explicit HomeDeployment(Options options);
  ~HomeDeployment();

  HomeDeployment(const HomeDeployment&) = delete;
  HomeDeployment& operator=(const HomeDeployment&) = delete;

  // Process ids are 1-based: pid(0) == p1.
  ProcessId pid(int index) const;
  const std::vector<ProcessId>& processes() const { return processes_; }

  // Add a sensor linked to the given processes (same LinkParams each).
  devices::Sensor& add_sensor(const devices::SensorSpec& spec,
                              const std::vector<ProcessId>& linked,
                              devices::LinkParams params = {});
  devices::Actuator& add_actuator(const devices::ActuatorSpec& spec,
                                  const std::vector<ProcessId>& linked);

  // Install an app on every process.
  void deploy(appmodel::AppGraph graph);
  const std::vector<AppId>& deployed_apps() const { return deployed_apps_; }

  // Start all Rivulet processes and all push sensors.
  void start();

  void run_for(Duration d) { sim_.run_for(d); }
  void run_until(TimePoint t) { sim_.run_until(t); }

  // Repair every injected fault: recover crashed processes and devices,
  // heal partitions, clear directed-edge reachability/delay/loss
  // overrides. (Device link-loss baselines are the caller's to restore —
  // the deployment does not know what "normal" loss was.)
  void heal_all();

  // Stop push-sensor emission, repair all faults, then run the simulation
  // until protocol activity no longer changes any event log, delivery
  // counter, or logic-role assignment for `stable_for` of virtual time
  // (covers the anti-entropy period), bounded by `max_wait`. Returns true
  // when the deployment quiesced within the bound. Replaces the old
  // "run 15 more seconds and hope" slack in tests: after a successful
  // drain, convergence assertions can be exact.
  bool drain_to_quiescence(Duration step = milliseconds(500),
                           Duration stable_for = seconds(12),
                           Duration max_wait = seconds(240));

  sim::Simulation& sim() { return sim_; }

  // Deployment-wide aggregate view: the shared registry (network,
  // devices) folded together with every per-process registry. Rebuilt on
  // each call — read it fresh, do not hold the reference across run_for()
  // and expect live values, and never write through it.
  metrics::Registry& metrics();
  // The registry shared by cross-process infrastructure (SimNetwork).
  metrics::Registry& shared_metrics() { return shared_metrics_; }
  // The registry one RivuletProcess writes its own metrics into.
  metrics::Registry& process_metrics(ProcessId p);

  // Capture a SnapshotTimeline row-set (per-process + shared counters)
  // every `period` of virtual time, starting one period from now.
  void enable_metric_snapshots(Duration period);
  const metrics::SnapshotTimeline& metric_snapshots() const {
    return snapshots_;
  }

  net::SimNetwork& net() { return net_; }
  devices::HomeBus& bus() { return bus_; }
  const core::Config& config() const { return config_; }
  core::RivuletProcess& process(ProcessId p);
  core::RivuletProcess& process(int index) { return process(pid(index)); }

  // The process whose logic node for `app` is currently active (nullptr
  // if none — e.g. mid-failover).
  core::RivuletProcess* active_logic_process(AppId app);

 private:
  void schedule_snapshot();

  sim::Simulation sim_;
  metrics::Registry shared_metrics_;
  metrics::Registry merged_;  // scratch for metrics(); rebuilt per call
  net::SimNetwork net_;
  devices::HomeBus bus_;
  core::Config config_;
  std::vector<ProcessId> processes_;
  // One registry per process, declared before procs_ so each
  // RivuletProcess can hold a reference for its whole lifetime.
  std::vector<std::unique_ptr<metrics::Registry>> proc_metrics_;
  std::vector<std::unique_ptr<core::RivuletProcess>> procs_;
  std::vector<AppId> deployed_apps_;
  metrics::SnapshotTimeline snapshots_;
  Duration snapshot_period_{};
};

}  // namespace riv::workload
