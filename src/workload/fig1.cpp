#include "workload/fig1.hpp"

#include <algorithm>
#include <set>

#include "devices/home_bus.hpp"
#include "sim/simulation.hpp"

namespace riv::workload {

std::uint64_t Fig1Result::Row::skew() const {
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& [p, n] : received) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  return received.empty() ? 0 : hi - lo;
}

struct Fig1Deployment::Impl {
  Fig1Options options;
  sim::Simulation sim;
  devices::HomeBus bus;
  std::vector<ProcessId> procs;
  std::map<SensorId, std::size_t> row_of;
  std::map<SensorId, std::map<ProcessId, std::uint64_t>> counts;
  std::set<EventId> received_anywhere;
  std::vector<Fig1Result::Row> rows;

  explicit Impl(const Fig1Options& opt)
      : options(opt), sim(opt.seed), bus(sim) {}
};

Fig1Deployment::Fig1Deployment(const Fig1Options& options)
    : impl_(std::make_unique<Impl>(options)) {
  Impl& im = *impl_;
  for (int i = 0; i < options.n_processes; ++i) {
    ProcessId p{static_cast<std::uint16_t>(i + 1)};
    im.procs.push_back(p);
    im.bus.add_adapter(p, devices::Technology::kZWave);
  }

  // Sensor fleet: name, mean events/day, per-link loss probabilities.
  // Loss rates reflect placement: Door 1 sits behind a concrete wall from
  // p2 (heavy loss), the motion sensors see mild interference skew.
  struct SensorPlan {
    const char* name;
    devices::SensorKind kind;
    double events_per_day;
    std::vector<double> link_loss;  // one per process
  };
  const std::vector<SensorPlan> plan = {
      {"Door 1", devices::SensorKind::kDoor, 820.0, {0.015, 0.205, 0.045}},
      {"Door 2", devices::SensorKind::kDoor, 310.0, {0.010, 0.030, 0.020}},
      {"Motion 1", devices::SensorKind::kMotion, 2600.0,
       {0.004, 0.019, 0.009}},
      {"Motion 2", devices::SensorKind::kMotion, 1900.0,
       {0.006, 0.011, 0.008}},
      {"Motion 3", devices::SensorKind::kMotion, 1400.0,
       {0.003, 0.0042, 0.0048}},
      {"Motion 4", devices::SensorKind::kMotion, 3100.0,
       {0.008, 0.021, 0.013}},
  };

  std::uint16_t next_id = 1;
  for (const SensorPlan& sp : plan) {
    devices::SensorSpec spec;
    spec.id = SensorId{next_id++};
    spec.name = sp.name;
    spec.kind = sp.kind;
    spec.tech = devices::Technology::kZWave;
    spec.push = true;
    spec.payload_size = 4;
    spec.rate_hz = sp.events_per_day / 86400.0;
    spec.pattern = devices::EmitPattern::kPoisson;
    im.bus.add_sensor(spec);
    for (std::size_t i = 0; i < im.procs.size(); ++i) {
      devices::LinkParams link;
      link.loss_prob = sp.link_loss[i % sp.link_loss.size()];
      im.bus.link_sensor(spec.id, im.procs[i], link);
    }
    im.row_of[spec.id] = im.rows.size();
    Fig1Result::Row row;
    row.sensor = sp.name;
    im.rows.push_back(row);
  }

  for (ProcessId p : im.procs) {
    im.bus.subscribe(p, [p, &im](const devices::SensorEvent& e) {
      ++im.counts[e.id.sensor][p];
      im.received_anywhere.insert(e.id);
    });
  }
}

Fig1Deployment::~Fig1Deployment() = default;

void Fig1Deployment::start() { impl_->bus.start_all(); }

void Fig1Deployment::run_to(TimePoint t) { impl_->sim.run_until(t); }

TimePoint Fig1Deployment::now() const { return impl_->sim.now(); }

TimePoint Fig1Deployment::end_time() const {
  return TimePoint{} + impl_->options.duration;
}

sim::Simulation& Fig1Deployment::sim() { return impl_->sim; }

void Fig1Deployment::checkpoint_sim(BinaryWriter& w) const {
  impl_->sim.checkpoint_state(w);
}

void Fig1Deployment::checkpoint_bus(BinaryWriter& w) const {
  impl_->bus.checkpoint_state(w);
}

Fig1Result Fig1Deployment::result() const {
  Impl& im = *impl_;
  Fig1Result result;
  result.rows = im.rows;
  std::uint64_t total_emitted = 0;
  for (const auto& [sensor, idx] : im.row_of) {
    Fig1Result::Row& row = result.rows[idx];
    row.emitted = im.bus.sensor(sensor).events_emitted();
    total_emitted += row.emitted;
    for (ProcessId p : im.procs) row.received[p] = im.counts[sensor][p];
  }
  if (total_emitted > 0) {
    result.all_link_loss_fraction =
        1.0 - static_cast<double>(im.received_anywhere.size()) /
                  static_cast<double>(total_emitted);
  }
  return result;
}

Fig1Result run_fig1_deployment(const Fig1Options& options) {
  Fig1Deployment d(options);
  d.start();
  d.run_to(TimePoint{} + options.duration);
  return d.result();
}

}  // namespace riv::workload
