#include "workload/fig1.hpp"

#include <algorithm>
#include <set>

#include "devices/home_bus.hpp"
#include "sim/simulation.hpp"

namespace riv::workload {

std::uint64_t Fig1Result::Row::skew() const {
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& [p, n] : received) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  return received.empty() ? 0 : hi - lo;
}

Fig1Result run_fig1_deployment(const Fig1Options& options) {
  sim::Simulation sim(options.seed);
  devices::HomeBus bus(sim);

  std::vector<ProcessId> procs;
  for (int i = 0; i < options.n_processes; ++i) {
    ProcessId p{static_cast<std::uint16_t>(i + 1)};
    procs.push_back(p);
    bus.add_adapter(p, devices::Technology::kZWave);
  }

  // Sensor fleet: name, mean events/day, per-link loss probabilities.
  // Loss rates reflect placement: Door 1 sits behind a concrete wall from
  // p2 (heavy loss), the motion sensors see mild interference skew.
  struct SensorPlan {
    const char* name;
    devices::SensorKind kind;
    double events_per_day;
    std::vector<double> link_loss;  // one per process
  };
  const std::vector<SensorPlan> plan = {
      {"Door 1", devices::SensorKind::kDoor, 820.0, {0.015, 0.205, 0.045}},
      {"Door 2", devices::SensorKind::kDoor, 310.0, {0.010, 0.030, 0.020}},
      {"Motion 1", devices::SensorKind::kMotion, 2600.0, {0.004, 0.019, 0.009}},
      {"Motion 2", devices::SensorKind::kMotion, 1900.0, {0.006, 0.011, 0.008}},
      {"Motion 3", devices::SensorKind::kMotion, 1400.0, {0.003, 0.0042, 0.0048}},
      {"Motion 4", devices::SensorKind::kMotion, 3100.0, {0.008, 0.021, 0.013}},
  };

  Fig1Result result;
  std::map<SensorId, std::size_t> row_of;
  std::map<SensorId, std::map<ProcessId, std::uint64_t>> counts;

  std::uint16_t next_id = 1;
  for (const SensorPlan& sp : plan) {
    devices::SensorSpec spec;
    spec.id = SensorId{next_id++};
    spec.name = sp.name;
    spec.kind = sp.kind;
    spec.tech = devices::Technology::kZWave;
    spec.push = true;
    spec.payload_size = 4;
    spec.rate_hz = sp.events_per_day / 86400.0;
    spec.pattern = devices::EmitPattern::kPoisson;
    bus.add_sensor(spec);
    for (std::size_t i = 0; i < procs.size(); ++i) {
      devices::LinkParams link;
      link.loss_prob = sp.link_loss[i % sp.link_loss.size()];
      bus.link_sensor(spec.id, procs[i], link);
    }
    row_of[spec.id] = result.rows.size();
    Fig1Result::Row row;
    row.sensor = sp.name;
    result.rows.push_back(row);
  }

  std::set<EventId> received_anywhere;
  for (ProcessId p : procs) {
    bus.subscribe(p, [p, &counts, &received_anywhere](
                         const devices::SensorEvent& e) {
      ++counts[e.id.sensor][p];
      received_anywhere.insert(e.id);
    });
  }

  bus.start_all();
  sim.run_for(options.duration);

  std::uint64_t total_emitted = 0;
  for (const auto& [sensor, idx] : row_of) {
    Fig1Result::Row& row = result.rows[idx];
    row.emitted = bus.sensor(sensor).events_emitted();
    total_emitted += row.emitted;
    for (ProcessId p : procs) row.received[p] = counts[sensor][p];
  }
  if (total_emitted > 0) {
    result.all_link_loss_fraction =
        1.0 - static_cast<double>(received_anywhere.size()) /
                  static_cast<double>(total_emitted);
  }
  return result;
}

}  // namespace riv::workload
