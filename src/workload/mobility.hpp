// Wearable mobility (§2.1).
//
// "For wearable sensors, a sensor may be in the vicinity of different
// processes at different times due to user mobility." This module moves a
// sensor along a waypoint loop through the home and periodically re-derives
// its radio links from the HomeTopology: multicast technologies get a link
// to every in-range host; a BLE wearable stays bonded to the single
// closest in-range host and re-bonds as the user walks. The delivery
// service needs no special handling — the Gapless ring replicates an event
// no matter which process happened to ingest it — which is exactly the
// paper's point.
#pragma once

#include <cstdint>
#include <vector>

#include "devices/home_bus.hpp"
#include "sim/simulation.hpp"
#include "workload/topology.hpp"

namespace riv::workload {

class MobileSensor {
 public:
  MobileSensor(sim::Simulation& sim, HomeTopology& topology,
               devices::HomeBus& bus, SensorId sensor,
               std::vector<Point> waypoints, double speed_mps,
               Duration update_period = milliseconds(500));

  // Begin walking (and immediately derive the initial links).
  void start();
  void stop();

  Point position() const;

  // Number of link-set changes so far (bond migrations for BLE).
  std::uint64_t relinks() const { return relinks_; }
  std::vector<ProcessId> current_links() const;

 private:
  void tick();
  void update_links();
  double loop_length() const;

  sim::Simulation* sim_;
  HomeTopology* topology_;
  devices::HomeBus* bus_;
  SensorId sensor_;
  std::vector<Point> waypoints_;
  double speed_mps_;
  Duration period_;
  sim::ProcessTimers timers_;
  TimePoint started_at_{};
  bool running_{false};
  std::uint64_t relinks_{0};
};

}  // namespace riv::workload
