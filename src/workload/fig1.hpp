// The preliminary home-deployment study of §2.1 (Figure 1).
//
// Six off-the-shelf Z-Wave sensors (four motion, two door) multicast to
// three processes for 15 days. Radio interference and obstructions give
// each sensor->process link its own loss rate, producing the per-process
// skew the paper reports (e.g. a difference of ~2357 events on Door 1).
// This module regenerates that deployment synthetically: the sensors are
// Poisson emitters and each link has a fixed Bernoulli loss probability
// chosen to be representative of walls/siding/interference.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace riv {
class BinaryWriter;
namespace sim {
class Simulation;
}
namespace devices {
class HomeBus;
}
}  // namespace riv

namespace riv::workload {

struct Fig1Options {
  std::uint64_t seed{42};
  Duration duration{days(15)};
  int n_processes{3};
};

struct Fig1Result {
  struct Row {
    std::string sensor;
    std::uint64_t emitted{0};
    std::map<ProcessId, std::uint64_t> received;  // per process
    std::uint64_t skew() const;                   // max - min received
  };
  std::vector<Row> rows;

  // Fraction of emissions lost on *every* link simultaneously — the events
  // Rivulet can do nothing about (§4.1's post-ingest caveat).
  double all_link_loss_fraction{0.0};
};

Fig1Result run_fig1_deployment(const Fig1Options& options);

// Stepwise form of the same deployment, for checkpointed long runs:
// construct, start(), run_to() in chunks (chunking is behaviourally
// invisible — the kernel's run_until is chunk-equivalent), harvest with
// result() at the end. checkpoint_state() serializes the two layers a
// Fig1 run owns ("sim.kernel" + "bus.devices"), which is what
// bench_fig1_deployment stores per RIVC boundary and byte-compares on
// resume (restore is re-execution + attestation, as everywhere).
class Fig1Deployment {
 public:
  explicit Fig1Deployment(const Fig1Options& options);
  ~Fig1Deployment();
  Fig1Deployment(const Fig1Deployment&) = delete;
  Fig1Deployment& operator=(const Fig1Deployment&) = delete;

  void start();
  void run_to(TimePoint t);
  TimePoint now() const;
  TimePoint end_time() const;

  sim::Simulation& sim();
  // Serialize kernel state; the section split is the caller's business.
  void checkpoint_sim(BinaryWriter& w) const;
  void checkpoint_bus(BinaryWriter& w) const;

  Fig1Result result() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace riv::workload
