#include "workload/apps.hpp"

#include <algorithm>
#include <cmath>

#include "appmodel/marzullo.hpp"

namespace riv::workload::apps {

using appmodel::AppBuilder;
using appmodel::EvictorPolicy;
using appmodel::FTCombiner;
using appmodel::PollingPolicy;
using appmodel::StreamWindow;
using appmodel::TriggerContext;
using appmodel::TriggerPolicy;
using appmodel::WindowSpec;

namespace {

// Mean of the newest events' values across all contributing streams.
double mean_value(const std::vector<StreamWindow>& windows) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const StreamWindow& w : windows) {
    for (const auto& e : w.events) {
      sum += e.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

bool any_value_at_least(const std::vector<StreamWindow>& windows,
                        double threshold) {
  for (const StreamWindow& w : windows) {
    for (const auto& e : w.events) {
      if (e.value >= threshold) return true;
    }
  }
  return false;
}

}  // namespace

AppGraph occupancy_hvac(AppId id, std::vector<SensorId> occupancy,
                        ActuatorId thermostat, Duration window) {
  AppBuilder app(id, "occupancy-hvac");
  auto op = app.add_operator("SetPoint",
                             std::make_unique<FTCombiner>(
                                 occupancy.empty() ? 0 : occupancy.size() - 1));
  for (SensorId s : occupancy)
    op.add_sensor(s, Guarantee::kGap, WindowSpec::time_window(window));
  op.add_actuator(thermostat, Guarantee::kGap);
  op.handle_triggered_window(
      [thermostat](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        // Occupied => comfort set-point, else eco set-point (PreHeat-ish).
        bool occupied = any_value_at_least(w, 1.0);
        ctx.actuate(thermostat, occupied ? 21.0 : 17.0);
      });
  return app.build();
}

AppGraph user_hvac(AppId id, SensorId camera, ActuatorId thermostat) {
  AppBuilder app(id, "user-hvac");
  auto op = app.add_operator("ClothingLevel");
  op.add_sensor(camera, Guarantee::kGap, WindowSpec::count_window(1));
  op.add_actuator(thermostat, Guarantee::kGap);
  op.handle_triggered_window(
      [thermostat](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        // Camera "value" stands in for the inferred clothing level [SPOT]:
        // heavier clothing => lower set-point.
        double clothing = mean_value(w);
        ctx.actuate(thermostat, 23.0 - std::clamp(clothing, 0.0, 1.0) * 3.0);
      });
  return app.build();
}

AppGraph automated_lighting(AppId id, SensorId occupancy, SensorId camera,
                            SensorId microphone, ActuatorId light) {
  AppBuilder app(id, "automated-lighting");
  // Any single modality suffices to infer presence (§2.2): f = 2 of 3.
  auto op = app.add_operator("Presence", std::make_unique<FTCombiner>(2));
  for (SensorId s : {occupancy, camera, microphone})
    op.add_sensor(s, Guarantee::kGap, WindowSpec::count_window(1));
  op.add_actuator(light, Guarantee::kGap);
  op.handle_triggered_window(
      [light](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        ctx.actuate(light, any_value_at_least(w, 0.5) ? 1.0 : 0.0);
      });
  return app.build();
}

AppGraph appliance_alert(AppId id, SensorId appliance_energy,
                         SensorId occupancy, ActuatorId notifier,
                         Duration window, double on_threshold_watts) {
  AppBuilder app(id, "appliance-alert");
  auto op = app.add_operator("LeftOn", std::make_unique<FTCombiner>(1));
  op.add_sensor(appliance_energy, Guarantee::kGap,
                WindowSpec::time_window(window));
  op.add_sensor(occupancy, Guarantee::kGap, WindowSpec::time_window(window));
  op.add_actuator(notifier, Guarantee::kGap);
  op.handle_triggered_window([notifier, appliance_energy, on_threshold_watts](
                                 const std::vector<StreamWindow>& w,
                                 TriggerContext& ctx) {
    bool appliance_on = false;
    bool someone_home = false;
    for (const StreamWindow& sw : w) {
      for (const auto& e : sw.events) {
        if (e.id.sensor == appliance_energy)
          appliance_on |= e.value >= on_threshold_watts;
        else
          someone_home |= e.value >= 1.0;
      }
    }
    if (appliance_on && !someone_home) ctx.actuate(notifier, 1.0);
  });
  return app.build();
}

AppGraph activity_tracking(AppId id, SensorId microphone,
                           ActuatorId notifier, std::size_t frames) {
  AppBuilder app(id, "activity-tracking");
  auto score = app.add_operator("ActivityScore");
  score.add_sensor(microphone, Guarantee::kGap,
                   WindowSpec::count_window(frames));
  score.handle_triggered_window(
      [](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        // Energy of the audio frames stands in for the activity classifier.
        ctx.emit(mean_value(w));
      });
  auto report = app.add_operator("Report");
  report.add_upstream_operator("ActivityScore", WindowSpec::count_window(1));
  report.add_actuator(notifier, Guarantee::kGap);
  report.handle_triggered_window(
      [notifier](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        ctx.actuate(notifier, mean_value(w));
      });
  return app.build();
}

AppGraph fall_alert(AppId id, SensorId wearable, ActuatorId notifier) {
  AppBuilder app(id, "fall-alert");
  auto op = app.add_operator("FallDetect");
  op.add_sensor(wearable, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_actuator(notifier, Guarantee::kGapless);
  op.handle_triggered_window(
      [notifier](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        if (any_value_at_least(w, 1.0)) ctx.actuate(notifier, 1.0);
      });
  return app.build();
}

AppGraph inactive_alert(AppId id, SensorId motion, SensorId door,
                        ActuatorId notifier, Duration window) {
  AppBuilder app(id, "inactive-alert");
  auto op = app.add_operator("Inactivity", std::make_unique<FTCombiner>(1));
  op.add_sensor(motion, Guarantee::kGapless, WindowSpec::time_window(window));
  op.add_sensor(door, Guarantee::kGapless, WindowSpec::time_window(window));
  op.add_actuator(notifier, Guarantee::kGapless);
  op.handle_triggered_window(
      [notifier](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        // Events arrived but none showed activity: the elder is inactive.
        if (!any_value_at_least(w, 1.0)) ctx.actuate(notifier, 1.0);
      });
  return app.build();
}

AppGraph flood_fire_alert(AppId id, SensorId water, SensorId smoke,
                          ActuatorId notifier) {
  AppBuilder app(id, "flood-fire-alert");
  auto op = app.add_operator("Detect", std::make_unique<FTCombiner>(1));
  op.add_sensor(water, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_sensor(smoke, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_actuator(notifier, Guarantee::kGapless);
  op.handle_triggered_window(
      [notifier](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        if (any_value_at_least(w, 1.0)) ctx.actuate(notifier, 1.0);
      });
  return app.build();
}

AppGraph intrusion_detection(AppId id, std::vector<SensorId> doors,
                             ActuatorId siren) {
  // Listing 1, verbatim semantics: FTCombiner(n-1), CountWindow(1),
  // Gapless on every door sensor.
  AppBuilder app(id, "intrusion-detection");
  auto op = app.add_operator(
      "Intrusion",
      std::make_unique<FTCombiner>(doors.empty() ? 0 : doors.size() - 1));
  for (SensorId s : doors)
    op.add_sensor(s, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_actuator(siren, Guarantee::kGapless);
  op.handle_triggered_window(
      [siren](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        if (any_value_at_least(w, 1.0)) ctx.actuate(siren, 1.0);
      });
  return app.build();
}

AppGraph energy_billing(AppId id, SensorId power, ActuatorId display,
                        Duration window, double price_per_kwh) {
  AppBuilder app(id, "energy-billing");
  auto op = app.add_operator("CostUpdate");
  op.add_sensor(power, Guarantee::kGapless, WindowSpec::time_window(window));
  op.add_actuator(display, Guarantee::kGapless);
  op.handle_triggered_window([display, price_per_kwh, window](
                                 const std::vector<StreamWindow>& w,
                                 TriggerContext& ctx) {
    // Integrate power over the window into a cost increment. Missing
    // events would directly corrupt the bill (§2.2) — hence Gapless.
    double kwh = 0.0;
    for (const StreamWindow& sw : w) {
      for (const auto& e : sw.events)
        kwh += e.value * window.seconds() /
               (3600.0 * 1000.0 * static_cast<double>(sw.events.size()));
    }
    ctx.actuate(display, kwh * price_per_kwh);
  });
  return app.build();
}

AppGraph temperature_hvac(AppId id, SensorId temperature, ActuatorId hvac,
                          Duration epoch, double heat_below,
                          double cool_above) {
  AppBuilder app(id, "temperature-hvac");
  auto op = app.add_operator("Thermostat");
  op.add_sensor(temperature, Guarantee::kGapless, WindowSpec::count_window(1),
                PollingPolicy{epoch});
  op.add_actuator(hvac, Guarantee::kGapless);
  op.handle_triggered_window(
      [hvac, heat_below, cool_above](const std::vector<StreamWindow>& w,
                                     TriggerContext& ctx) {
        double t = mean_value(w);
        if (t < heat_below)
          ctx.actuate(hvac, +1.0);  // heat
        else if (t > cool_above)
          ctx.actuate(hvac, -1.0);  // cool
        else
          ctx.actuate(hvac, 0.0);  // idle
      });
  return app.build();
}

AppGraph air_monitoring(AppId id, SensorId co2, ActuatorId notifier,
                        Duration epoch, double threshold) {
  AppBuilder app(id, "air-monitoring");
  auto op = app.add_operator("AirQuality");
  op.add_sensor(co2, Guarantee::kGapless, WindowSpec::count_window(1),
                PollingPolicy{epoch});
  op.add_actuator(notifier, Guarantee::kGapless);
  op.handle_triggered_window(
      [notifier, threshold](const std::vector<StreamWindow>& w,
                            TriggerContext& ctx) {
        if (any_value_at_least(w, threshold)) ctx.actuate(notifier, 1.0);
      });
  return app.build();
}

AppGraph surveillance(AppId id, SensorId camera, ActuatorId recorder,
                      double unknown_threshold) {
  AppBuilder app(id, "surveillance");
  auto op = app.add_operator("UnknownObject");
  op.add_sensor(camera, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_actuator(recorder, Guarantee::kGapless);
  op.handle_triggered_window(
      [recorder, unknown_threshold](const std::vector<StreamWindow>& w,
                                    TriggerContext& ctx) {
        if (any_value_at_least(w, unknown_threshold))
          ctx.actuate(recorder, 1.0);
      });
  return app.build();
}

AppGraph turn_light_on_off(AppId id, SensorId door, ActuatorId light,
                           Guarantee guarantee) {
  AppBuilder app(id, "turn-light-on-off");
  auto op = app.add_operator("TurnLightOnOff");
  op.add_sensor(door, guarantee, WindowSpec::count_window(1));
  op.add_actuator(light, guarantee);
  op.handle_triggered_window(
      [light](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        // Door open (1) => light on; door close (0) => light off.
        for (const StreamWindow& sw : w) {
          for (const auto& e : sw.events)
            ctx.actuate(light, e.value >= 0.5 ? 1.0 : 0.0);
        }
      });
  return app.build();
}

AppGraph temperature_averaging(AppId id,
                               std::vector<SensorId> temperatures,
                               ActuatorId thermostat, Duration window,
                               double uncertainty) {
  // Listing 2: FTCombiner(floor((n-1)/3)), TimeWindow(window), Gap.
  const std::size_t n = temperatures.size();
  AppBuilder app(id, "temperature-averaging");
  auto op = app.add_operator(
      "Averaging",
      std::make_unique<FTCombiner>(appmodel::marzullo_max_arbitrary(n)));
  for (SensorId s : temperatures)
    op.add_sensor(s, Guarantee::kGap, WindowSpec::time_window(window));
  op.add_actuator(thermostat, Guarantee::kGap);
  std::size_t f = appmodel::marzullo_max_arbitrary(n);
  op.handle_triggered_window([thermostat, f, uncertainty](
                                 const std::vector<StreamWindow>& w,
                                 TriggerContext& ctx) {
    // One interval per sensor: [min, max] of its window widened by the
    // sensor's accuracy, fused with Marzullo's algorithm.
    std::vector<appmodel::Interval> readings;
    for (const StreamWindow& sw : w) {
      if (sw.events.empty()) continue;
      double lo = sw.events.front().value, hi = lo;
      for (const auto& e : sw.events) {
        lo = std::min(lo, e.value);
        hi = std::max(hi, e.value);
      }
      readings.push_back({lo - uncertainty, hi + uncertainty});
    }
    auto fused = appmodel::marzullo_fuse(readings, f);
    if (fused) ctx.actuate(thermostat, (fused->lo + fused->hi) / 2.0);
  });
  return app.build();
}

const std::vector<CatalogEntry>& table1_catalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {"Occupancy-based HVAC", "Set thermostat set-point from occupancy",
       "Occupancy", "Efficiency", Guarantee::kGap},
      {"User-based HVAC", "Set-point from user's clothing level", "Camera",
       "Efficiency", Guarantee::kGap},
      {"Automated lighting", "Turn on lights if user is present",
       "Occupancy, camera, microphone", "Convenience", Guarantee::kGap},
      {"Appliance alert", "Alert if appliance left on while unoccupied",
       "Appliance, whole-house energy", "Efficiency", Guarantee::kGap},
      {"Activity tracking", "Infer physical activity from microphone",
       "Microphone", "Convenience", Guarantee::kGap},
      {"Fall alert", "Alert on a fall-detected event", "Wearables",
       "Elder care", Guarantee::kGapless},
      {"Inactive alert", "Alert if motion/activity not detected",
       "Motion, door-open", "Elder care", Guarantee::kGapless},
      {"Flood/fire alert", "Alert on water (or fire) detection",
       "Water, smoke", "Safety", Guarantee::kGapless},
      {"Intrusion-detection", "Record image/alert on door/window-open",
       "Door-window", "Safety", Guarantee::kGapless},
      {"Energy billing", "Update energy cost on power events",
       "Whole-house power", "Billing", Guarantee::kGapless},
      {"Temperature-based HVAC", "Actuate HVAC on temperature thresholds",
       "Temperature", "Efficiency", Guarantee::kGapless},
      {"Air (or light) monitoring", "Alert if CO2/CO surpasses threshold",
       "CO, CO2", "Safety", Guarantee::kGapless},
      {"Surveillance", "Record image if it has an unknown object", "Camera",
       "Safety", Guarantee::kGapless},
  };
  return kCatalog;
}

}  // namespace riv::workload::apps
