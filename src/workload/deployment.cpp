#include "workload/deployment.hpp"

#include "common/assert.hpp"

namespace riv::workload {

HomeDeployment::HomeDeployment(Options options)
    : sim_(options.seed),
      net_(sim_, shared_metrics_, options.wifi),
      bus_(sim_),
      config_(options.config) {
  RIV_ASSERT(options.n_processes >= 1, "need at least one process");
  for (int i = 0; i < options.n_processes; ++i) {
    ProcessId p{static_cast<std::uint16_t>(i + 1)};
    processes_.push_back(p);
    // Every host gets every adapter by default; which devices a host can
    // reach is controlled by link wiring, which is what experiments vary.
    bus_.add_adapter(p, devices::Technology::kIp);
    bus_.add_adapter(p, devices::Technology::kZWave);
    bus_.add_adapter(p, devices::Technology::kZigbee);
    bus_.add_adapter(p, devices::Technology::kBle);
  }
  for (ProcessId p : processes_) {
    proc_metrics_.push_back(std::make_unique<metrics::Registry>());
    procs_.push_back(std::make_unique<core::RivuletProcess>(
        sim_, net_, bus_, p, processes_, config_, *proc_metrics_.back()));
  }
}

HomeDeployment::~HomeDeployment() = default;

ProcessId HomeDeployment::pid(int index) const {
  RIV_ASSERT(index >= 0 &&
                 index < static_cast<int>(processes_.size()),
             "process index out of range");
  return processes_[static_cast<std::size_t>(index)];
}

devices::Sensor& HomeDeployment::add_sensor(
    const devices::SensorSpec& spec, const std::vector<ProcessId>& linked,
    devices::LinkParams params) {
  devices::Sensor& s = bus_.add_sensor(spec);
  for (ProcessId p : linked) bus_.link_sensor(spec.id, p, params);
  return s;
}

devices::Actuator& HomeDeployment::add_actuator(
    const devices::ActuatorSpec& spec, const std::vector<ProcessId>& linked) {
  devices::Actuator& a = bus_.add_actuator(spec);
  for (ProcessId p : linked) bus_.link_actuator(spec.id, p);
  return a;
}

void HomeDeployment::deploy(appmodel::AppGraph graph) {
  auto shared =
      std::make_shared<const appmodel::AppGraph>(std::move(graph));
  deployed_apps_.push_back(shared->id);
  for (auto& proc : procs_) proc->deploy(shared);
}

void HomeDeployment::heal_all() {
  net_.heal_partition();
  net_.clear_reachable_overrides();
  net_.clear_edge_overrides();
  for (auto& proc : procs_) {
    if (!proc->up()) proc->recover();
  }
  for (SensorId s : bus_.sensors()) {
    if (bus_.sensor(s).crashed()) bus_.sensor(s).recover();
  }
}

bool HomeDeployment::drain_to_quiescence(Duration step, Duration stable_for,
                                         Duration max_wait) {
  for (SensorId s : bus_.sensors()) bus_.sensor(s).stop();
  heal_all();

  // Fingerprint of everything the protocols may still be converging:
  // per-process per-app delivered counts and per-sensor log sizes, plus
  // which processes hold an active logic node.
  auto fingerprint = [this] {
    std::vector<std::uint64_t> fp;
    for (auto& proc : procs_) {
      for (AppId app : deployed_apps_) {
        fp.push_back(proc->delivered(app));
        fp.push_back(proc->logic_active(app) ? 1 : 0);
        core::EventLog* log = proc->event_log(app);
        if (log == nullptr) continue;
        for (SensorId s : bus_.sensors())
          fp.push_back(log->size(s));
      }
    }
    return fp;
  };

  TimePoint deadline = sim_.now() + max_wait;
  std::vector<std::uint64_t> last = fingerprint();
  Duration stable{};
  while (sim_.now() < deadline) {
    sim_.run_for(step);
    std::vector<std::uint64_t> cur = fingerprint();
    if (cur == last) {
      stable += step;
      if (stable >= stable_for) return true;
    } else {
      stable = Duration{};
      last = std::move(cur);
    }
  }
  return false;
}

void HomeDeployment::start() {
  for (auto& proc : procs_) proc->start();
  bus_.start_all();
}

metrics::Registry& HomeDeployment::metrics() {
  merged_.reset();
  merged_.merge_from(shared_metrics_);
  for (auto& reg : proc_metrics_) merged_.merge_from(*reg);
  return merged_;
}

metrics::Registry& HomeDeployment::process_metrics(ProcessId p) {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == p) return *proc_metrics_[i];
  }
  RIV_ASSERT(false, "unknown process");
  return *proc_metrics_.front();
}

void HomeDeployment::enable_metric_snapshots(Duration period) {
  RIV_ASSERT(period.us > 0, "snapshot period must be positive");
  if (snapshot_period_.us > 0) {
    snapshot_period_ = period;  // already armed; just change the cadence
    return;
  }
  snapshot_period_ = period;
  schedule_snapshot();
}

void HomeDeployment::schedule_snapshot() {
  sim_.schedule_after(snapshot_period_, [this] {
    TimePoint now = sim_.now();
    for (std::size_t i = 0; i < processes_.size(); ++i)
      snapshots_.capture(now, processes_[i], *proc_metrics_[i]);
    snapshots_.capture(now, ProcessId{0}, shared_metrics_);
    schedule_snapshot();
  });
}

core::RivuletProcess& HomeDeployment::process(ProcessId p) {
  for (auto& proc : procs_) {
    if (proc->id() == p) return *proc;
  }
  RIV_ASSERT(false, "unknown process");
  return *procs_.front();
}

core::RivuletProcess* HomeDeployment::active_logic_process(AppId app) {
  for (auto& proc : procs_) {
    if (proc->up() && proc->logic_active(app)) return proc.get();
  }
  return nullptr;
}

}  // namespace riv::workload
