// Physical home topology: geometry-driven link wiring.
//
// §2.1 attributes sensor-process link quality to physical placement —
// range limits per radio technology (Zigbee 10-20 m, Z-Wave 40 m, BLE
// 100 m), concrete-slab floors, copper siding, walls, interference. This
// module models a home as hosts and devices at 2D positions with
// attenuating walls between rooms, and derives, for every (device, host)
// pair:
//   * whether a link exists at all (inside the technology's range after
//     wall penalties), and
//   * the link's loss probability (a distance + wall loss model anchored
//     at the technology's loss floor).
// HomeTopology::wire() then performs all the HomeBus link wiring, so a
// study like Fig 1's falls out of geometry instead of hand-set loss rates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "devices/home_bus.hpp"

namespace riv::workload {

struct Point {
  double x{0.0};
  double y{0.0};
};

double distance_m(Point a, Point b);

// A wall segment with an attenuation factor: crossing it both shortens
// the effective radio range and raises loss. attenuation 1.0 models a
// light interior wall; concrete or copper-sided walls go higher.
struct Wall {
  Point a{};
  Point b{};
  double attenuation{1.0};
};

// True iff segments (a1,a2) and (b1,b2) properly intersect.
bool segments_intersect(Point a1, Point a2, Point b1, Point b2);

struct HostPlacement {
  ProcessId process{};
  std::string name;
  Point position{};
  devices::AdapterSet adapters;  // radios this host carries
};

struct DevicePlacement {
  // Exactly one of sensor/actuator is meaningful per entry.
  std::optional<SensorId> sensor;
  std::optional<ActuatorId> actuator;
  Point position{};
};

struct LinkEstimate {
  bool in_range{false};
  double loss_prob{0.0};
  int walls_crossed{0};
  double distance{0.0};
};

class HomeTopology {
 public:
  // Loss model knobs; defaults reproduce home-scale behaviour (a few
  // percent loss per wall, steep degradation near the range edge).
  struct Model {
    double per_wall_loss{0.035};       // added loss per crossed wall
    double per_wall_range_penalty{0.25};  // range shrinks 25% per wall
    double edge_exponent{2.0};         // loss ramps as (d/range)^e
    double edge_loss{0.30};            // loss at the very range edge
  };

  HomeTopology() = default;
  explicit HomeTopology(Model model) : model_(model) {}

  void add_host(HostPlacement host);
  void add_wall(Wall wall);
  void place_sensor(SensorId sensor, Point position);
  void place_actuator(ActuatorId actuator, Point position);

  int walls_between(Point a, Point b) const;

  // Link estimate for a device of technology `tech` at `device_pos` as
  // heard by `host`.
  LinkEstimate estimate(Point device_pos, const HostPlacement& host,
                        devices::Technology tech) const;

  // Hosts that can hear the given placed sensor/actuator.
  std::vector<std::pair<ProcessId, LinkEstimate>> reachable_hosts(
      SensorId sensor, devices::Technology tech) const;
  std::vector<std::pair<ProcessId, LinkEstimate>> reachable_hosts(
      ActuatorId actuator, devices::Technology tech) const;

  // Wire every placed device into the bus: links (with the estimated loss)
  // for every in-range host that carries the right adapter. Devices must
  // already have been added to the bus; hosts' adapters are registered.
  void wire(devices::HomeBus& bus) const;

  const std::vector<HostPlacement>& hosts() const { return hosts_; }

 private:
  Point device_position(SensorId sensor) const;
  Point device_position(ActuatorId actuator) const;

  Model model_{};
  std::vector<HostPlacement> hosts_;
  std::vector<Wall> walls_;
  std::vector<DevicePlacement> devices_;
};

// A ready-made three-bedroom home: hub in the hallway, TV in the living
// room, fridge in the kitchen, interior walls plus one concrete partition.
HomeTopology sample_home(std::vector<ProcessId> processes);

}  // namespace riv::workload
