// Figure 6: percentage of emitted events delivered to the application
// under sensor-process link loss, for 2/4/5 event-receiving processes.
//
// Paper expectations (§8.3, 5 processes, 4 B events, 10 events/s):
//   * Gap delivers ~ (1 - loss): it forwards from a single receiving
//     process and never recovers lost events;
//   * Gapless retrieves events across receivers: it delivers roughly the
//     fraction received by at least one process (~ 1 - loss^m), e.g. 99%
//     at 10% loss with 2 receivers, and ~75% / ~87-94% / ~95-97% at 50%
//     loss with 2 / 4 / 5 receivers.
#include "bench_util.hpp"

namespace riv::bench {
namespace {

double delivered_pct(appmodel::Guarantee guarantee, int receivers,
                     double loss, std::uint64_t seed, int runs) {
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices.clear();
    // Receivers farthest from the app-bearing process (§8.3).
    for (int i = 0; i < receivers; ++i)
      opt.receiver_indices.push_back(i + 1 == 5 ? 0 : i + 1);
    opt.link_loss = loss;
    opt.guarantee = guarantee;
    opt.seed = seed + static_cast<std::uint64_t>(r) * 1000;
    auto home = make_scenario(opt);
    home->start();
    home->run_for(seconds(200));
    double emitted =
        static_cast<double>(home->bus().sensor(kSensor).events_emitted());
    double delivered = static_cast<double>(
        home->metrics().counter_value("app1.delivered"));
    sum += 100.0 * delivered / emitted;
  }
  return sum / runs;
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  print_header(
      "Figure 6: % events delivered vs link loss and receiving processes",
      "Gap ~ 100*(1-p); Gapless ~ 100*(1-p^m): 99% at p=0.1,m=2; ~75/94/97% "
      "at p=0.5 with m=2/4/5");
  const double losses[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  std::printf("\n%-9s %-4s", "delivery", "m");
  for (double p : losses) std::printf("   p=%.1f", p);
  std::printf("\n");
  for (auto g : {riv::appmodel::Guarantee::kGap,
                 riv::appmodel::Guarantee::kGapless}) {
    for (int m : {2, 4, 5}) {
      std::printf("%-9s %-4d", to_string(g), m);
      for (double p : losses)
        std::printf("  %6.1f", delivered_pct(g, m, p, 600, 3));
      std::printf("\n");
    }
  }
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1, 2};
    opt.link_loss = 0.3;
    opt.seed = 600;
    dump_reference_run(out, "fig6_linkloss", opt, riv::seconds(60));
  }
  return 0;
}
