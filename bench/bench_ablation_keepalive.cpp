// Ablation (design decision §4.1/§8.4): keep-alive period vs failure-
// detection latency vs membership overhead.
//
// The paper fixes the failure-detection threshold at 2 s (Fig 7) and
// attributes Gap's delay growth with process count to keep-alive traffic
// (Fig 4a). This bench sweeps the keep-alive period (timeout = 4x period)
// and reports (a) the event gap an application suffers across a crash of
// its app-bearing process under Gap delivery, and (b) membership bytes on
// the network per second.
#include "bench_util.hpp"

namespace riv::bench {
namespace {

struct Result {
  double gap_events;        // events permanently lost across the failover
  double keepalive_bps;     // membership bytes per second (whole home)
};

Result run(Duration period, std::uint64_t seed) {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices = {0, 1, 2, 3, 4};
  opt.guarantee = appmodel::Guarantee::kGap;
  opt.seed = seed;

  workload::HomeDeployment::Options home_opt;
  home_opt.seed = opt.seed;
  home_opt.n_processes = opt.n_processes;
  std::vector<ProcessId> chain;
  for (int i = 0; i < opt.n_processes; ++i)
    chain.push_back(ProcessId{static_cast<std::uint16_t>(i + 1)});
  home_opt.config.placement_override[kApp] = chain;
  home_opt.config.membership.period = period;
  home_opt.config.membership.timeout = period * 4;
  workload::HomeDeployment home(home_opt);

  devices::SensorSpec spec;
  spec.id = kSensor;
  spec.name = "software-sensor";
  spec.tech = devices::Technology::kIp;
  spec.payload_size = 4;
  spec.rate_hz = 10.0;
  home.add_sensor(spec, home.processes());
  home.deploy(sink_app(opt.guarantee));
  home.start();
  home.run_for(seconds(60));
  home.process(0).crash();
  home.run_for(seconds(60));

  Result r;
  double emitted =
      static_cast<double>(home.bus().sensor(kSensor).events_emitted());
  double delivered = static_cast<double>(
      home.metrics().counter_value("app1.delivered"));
  r.gap_events = emitted - delivered;
  r.keepalive_bps = static_cast<double>(home.metrics().counter_value(
                        "net.bytes.keepalive")) /
                    120.0;
  return r;
}

}  // namespace
}  // namespace riv::bench

int main() {
  using namespace riv::bench;
  print_header(
      "Ablation: keep-alive period vs detection gap vs membership traffic",
      "shorter periods shrink the Gap failover hole (~10 ev/s x timeout) "
      "but cost proportionally more network chatter");
  std::printf("\n%-12s %-12s %-14s %-16s\n", "period(ms)", "timeout(ms)",
              "gap (events)", "keepalive B/s");
  for (auto period_ms : {125, 250, 500, 1000, 2000}) {
    Result r = run(riv::milliseconds(period_ms),
                   1300 + static_cast<std::uint64_t>(period_ms));
    std::printf("%-12d %-12d %-14.0f %-16.0f\n", period_ms, period_ms * 4,
                r.gap_events, r.keepalive_bps);
  }
  return 0;
}
