// Figure 4: event delivery delay vs. number of processes.
//
//   (a) the event-receiving process is FARTHEST from the application-
//       bearing process: Gap forwards once (delay grows slightly with the
//       process count from keep-alive congestion); Gapless rides the ring
//       for ring-distance (n-1) hops, so its delay grows with n and the
//       extra cost at 2-3 processes is small.
//   (b) the application-bearing process receives directly: ~1-2 ms.
//
// Setup per §8.2: one IP software sensor, 10 events/s, 200 s runs,
// averaged over 5 seeds; event sizes from Table 3 (4 B, 8 B, 1 KB, 20 KB).
#include "bench_util.hpp"
#include "trace/provenance.hpp"
#include "trace/trace.hpp"

namespace riv::bench {
namespace {

double mean_delay_ms(const ScenarioOptions& opt, int runs) {
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    ScenarioOptions o = opt;
    o.seed = opt.seed + static_cast<std::uint64_t>(r) * 1000;
    auto home = make_scenario(o);
    home->start();
    home->run_for(seconds(200));
    sum += home->metrics().latency("app1.delay").mean().millis();
  }
  return sum / runs;
}

void run_placement(const char* label, int receiver_index) {
  const std::uint32_t sizes[] = {4, 8, 1024, 20 * 1024};
  const char* size_names[] = {"4B", "8B", "1KB", "20KB"};
  std::printf("\n--- %s ---\n", label);
  std::printf("%-9s %-6s", "delivery", "size");
  for (int n = 2; n <= 5; ++n) std::printf("  n=%d(ms)", n);
  std::printf("\n");
  for (auto guarantee :
       {appmodel::Guarantee::kGap, appmodel::Guarantee::kGapless}) {
    for (int s = 0; s < 4; ++s) {
      std::printf("%-9s %-6s", to_string(guarantee), size_names[s]);
      for (int n = 2; n <= 5; ++n) {
        ScenarioOptions opt;
        opt.n_processes = n;
        opt.receiver_indices = {receiver_index};
        opt.payload = sizes[s];
        opt.guarantee = guarantee;
        opt.seed = 100 + static_cast<std::uint64_t>(n);
        std::printf("  %7.2f", mean_delay_ms(opt, 5));
      }
      std::printf("\n");
    }
  }
}

// Where the time goes: record one Fig-4a run with the flight recorder on
// and let the provenance analyzer attribute the end-to-end delay to
// pipeline stages. The summed leg medians should account for the e2e
// delay the table above reports for the same configuration.
void run_stage_breakdown() {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices = {1};
  opt.guarantee = appmodel::Guarantee::kGapless;
  opt.seed = 105;
  trace::Recorder rec(trace::kAllComponents &
                      ~trace::component_bit(trace::Component::kSim));
  {
    trace::Scope scope(rec);
    auto home = make_scenario(opt);
    home->start();
    home->run_for(seconds(60));
  }
  std::printf("\n--- per-stage latency attribution "
              "(Gapless, n=5, receiver p2, 60s) ---\n");
  std::printf("%s", trace::render(trace::analyze(rec.records())).c_str());
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  print_header(
      "Figure 4a: delay, receiver farthest from the app-bearing process",
      "Gap: small, slowly increasing with n; Gapless: grows with n "
      "(ring), only a small extra cost at 2-3 processes; both grow with "
      "event size");
  run_placement("Fig 4a (receiver = ring-farthest process p2)", 1);

  print_header(
      "Figure 4b: delay when the app-bearing process receives directly",
      "~1-2 ms for small events, independent of the number of processes");
  run_placement("Fig 4b (receiver = app-bearing process p1)", 0);
  run_stage_breakdown();
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1};
    opt.seed = 105;
    dump_reference_run(out, "fig4_delay", opt, riv::seconds(60));
  }
  return 0;
}
