// Supporting sweep for §8.3's closing claim: "We observe a similar trend
// for other event rates and sizes" — the Gap vs Gapless delivery gap under
// link loss is independent of the event rate and of the event size.
//
// Grid: rates {1, 10, 50} ev/s x sizes {4 B, 1 KB, 20 KB} at 30% loss,
// 5 processes, 3 receiving, receiver farthest from the app process.
#include "bench_util.hpp"

namespace riv::bench {
namespace {

double delivered_pct(appmodel::Guarantee g, double rate,
                     std::uint32_t payload, std::uint64_t seed) {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices = {1, 2, 3};
  opt.link_loss = 0.3;
  opt.rate_hz = rate;
  opt.payload = payload;
  opt.guarantee = g;
  opt.seed = seed;
  auto home = make_scenario(opt);
  home->start();
  home->run_for(seconds(100));
  double emitted =
      static_cast<double>(home->bus().sensor(kSensor).events_emitted());
  return 100.0 *
         static_cast<double>(
             home->metrics().counter_value("app1.delivered")) /
         emitted;
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  print_header(
      "Sweep (§8.3 claim): Gap/Gapless delivery under 30% loss is "
      "insensitive to event rate and size",
      "Gap ~70% and Gapless ~97% (1 - 0.3^3) across the whole grid");
  const double rates[] = {1.0, 10.0, 50.0};
  const std::uint32_t sizes[] = {4, 1024, 20 * 1024};
  const char* size_names[] = {"4B", "1KB", "20KB"};
  std::printf("\n%-8s %-6s %10s %12s\n", "rate", "size", "Gap(%)",
              "Gapless(%)");
  std::uint64_t seed = 1500;
  for (double rate : rates) {
    for (int s = 0; s < 3; ++s) {
      double gap = delivered_pct(riv::appmodel::Guarantee::kGap, rate,
                                 sizes[s], seed++);
      double gapless = delivered_pct(riv::appmodel::Guarantee::kGapless,
                                     rate, sizes[s], seed++);
      std::printf("%-8.0f %-6s %10.1f %12.1f\n", rate, size_names[s], gap,
                  gapless);
    }
  }
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1, 2, 3};
    opt.link_loss = 0.3;
    opt.rate_hz = 10.0;
    opt.seed = 1500;
    dump_reference_run(out, "sweep_rates", opt, riv::seconds(60));
  }
  return 0;
}
