// Supporting sweep for §8.3's closing claim: "We observe a similar trend
// for other event rates and sizes" — the Gap vs Gapless delivery gap under
// link loss is independent of the event rate and of the event size.
//
// Grid: rates {1, 10, 50} ev/s x sizes {4 B, 1 KB, 20 KB} at 30% loss,
// 5 processes, 3 receiving, receiver farthest from the app process.
//
// --fork K runs the grid fork-per-seed: every cell gets K seed
// replicates (mean delivered-% is reported), and each cell's replicates
// share ONE warm deployment — the home is built and run to the 90 s warm
// point once, then fork(2) copies it K times; each child salts the
// device RNG streams (HomeBus::perturb) and finishes the run. The
// from-scratch leg re-executes the identical protocol without fork
// (re-running the 90 s warm-up K times per cell), every replicate is
// checked bit-identical between the two legs, and both wall-clocks are
// printed: the speed-up is eliminated warm-up work, not parallelism, so
// it holds even on one core. EXPERIMENTS.md records the before/after.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "checkpoint/fork.hpp"

namespace riv::bench {
namespace {

constexpr std::int64_t kWarmS = 90;   // shared prefix
constexpr std::int64_t kTailS = 10;   // per-replicate divergent tail

double wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

ScenarioOptions cell_options(appmodel::Guarantee g, double rate,
                             std::uint32_t payload, std::uint64_t seed) {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices = {1, 2, 3};
  opt.link_loss = 0.3;
  opt.rate_hz = rate;
  opt.payload = payload;
  opt.guarantee = g;
  opt.seed = seed;
  return opt;
}

double harvest_pct(workload::HomeDeployment& home) {
  double emitted =
      static_cast<double>(home.bus().sensor(kSensor).events_emitted());
  return 100.0 *
         static_cast<double>(home.metrics().counter_value("app1.delivered")) /
         emitted;
}

double delivered_pct(appmodel::Guarantee g, double rate,
                     std::uint32_t payload, std::uint64_t seed) {
  auto home = make_scenario(cell_options(g, rate, payload, seed));
  home->start();
  home->run_for(seconds(100));
  return harvest_pct(*home);
}

// One replicate of the fork-mode protocol, from scratch: warm 80 s,
// perturb with the replicate salt, finish the last 20 s. A forked child
// that perturbs the same warm state with the same salt must produce this
// exact number — that equality is checked per replicate.
double replicate_pct_fresh(const ScenarioOptions& opt, std::uint64_t salt) {
  auto home = make_scenario(opt);
  home->start();
  home->run_for(seconds(kWarmS));
  home->bus().perturb(salt);
  home->run_for(seconds(kTailS));
  return harvest_pct(*home);
}

std::string fmt_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", pct);
  return buf;
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  int replicates = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fork") == 0 && i + 1 < argc)
      replicates = std::atoi(argv[i + 1]);
  }
  if (replicates > 0 && !riv::checkpoint::fork_supported()) {
    std::fprintf(stderr, "--fork needs fork(2); running serial\n");
    replicates = 0;
  }
  print_header(
      "Sweep (§8.3 claim): Gap/Gapless delivery under 30% loss is "
      "insensitive to event rate and size",
      "Gap ~70% and Gapless ~97% (1 - 0.3^3) across the whole grid");
  const double rates[] = {1.0, 10.0, 50.0};
  const std::uint32_t sizes[] = {4, 1024, 20 * 1024};
  const char* size_names[] = {"4B", "1KB", "20KB"};
  std::printf("\n%-8s %-6s %10s %12s\n", "rate", "size", "Gap(%)",
              "Gapless(%)");
  if (replicates > 0) {
    const std::size_t k = static_cast<std::size_t>(replicates);
    // Leg 1 — from-scratch: every replicate rebuilds and re-warms.
    std::uint64_t seed = 1500;
    std::vector<std::vector<std::string>> fresh;  // [cell][replicate]
    double t0 = wall_now();
    for (double rate : rates) {
      for (int s = 0; s < 3; ++s) {
        for (auto g : {riv::appmodel::Guarantee::kGap,
                       riv::appmodel::Guarantee::kGapless}) {
          ScenarioOptions opt = cell_options(g, rate, sizes[s], seed++);
          std::vector<std::string> reps;
          for (std::size_t r = 0; r < k; ++r)
            reps.push_back(
                fmt_pct(replicate_pct_fresh(opt, 0x5eed0000 + r)));
          fresh.push_back(std::move(reps));
        }
      }
    }
    const double fresh_wall = wall_now() - t0;

    // Leg 2 — forked: warm once per cell, fork K divergent children.
    seed = 1500;
    std::size_t cell = 0, mismatches = 0;
    t0 = wall_now();
    for (double rate : rates) {
      for (int s = 0; s < 3; ++s) {
        double mean[2] = {0, 0};
        int leg = 0;
        for (auto g : {riv::appmodel::Guarantee::kGap,
                       riv::appmodel::Guarantee::kGapless}) {
          ScenarioOptions opt = cell_options(g, rate, sizes[s], seed++);
          auto home = make_scenario(opt);
          home->start();
          home->run_for(riv::seconds(kWarmS));
          std::vector<riv::checkpoint::ForkResult> reps =
              riv::checkpoint::fork_sweep(k, 1, [&home](std::size_t r) {
                home->bus().perturb(0x5eed0000 + r);
                home->run_for(riv::seconds(kTailS));
                return fmt_pct(harvest_pct(*home));
              });
          double sum = 0;
          for (std::size_t r = 0; r < k; ++r) {
            if (!reps[r].ok || reps[r].payload != fresh[cell][r]) {
              ++mismatches;
              std::fprintf(stderr,
                           "replicate mismatch cell %zu rep %zu: "
                           "forked '%s' vs fresh '%s'\n",
                           cell, r, reps[r].payload.c_str(),
                           fresh[cell][r].c_str());
            }
            sum += std::atof(reps[r].payload.c_str());
          }
          mean[leg++] = sum / static_cast<double>(k);
          ++cell;
        }
        std::printf("%-8.0f %-6s %10.1f %12.1f\n", rate, size_names[s],
                    mean[0], mean[1]);
      }
    }
    const double forked_wall = wall_now() - t0;
    std::printf("\nfork-per-seed: 18 cells x %zu replicates "
                "(%llds warm + %llds tail)\n",
                k, static_cast<long long>(kWarmS),
                static_cast<long long>(kTailS));
    std::printf("from-scratch %.2f s   forked (shared warm-up) %.2f s   "
                "speed-up %.2fx\n",
                fresh_wall, forked_wall,
                forked_wall > 0 ? fresh_wall / forked_wall : 0.0);
    std::printf("replicate equality (forked vs from-scratch): %s "
                "(%zu/%zu identical)\n",
                mismatches == 0 ? "ok" : "FAILED",
                18 * k - mismatches, 18 * k);
    if (mismatches != 0) return 1;
  } else {
    const double t0 = wall_now();
    std::uint64_t seed = 1500;
    for (double rate : rates) {
      for (int s = 0; s < 3; ++s) {
        double gap = delivered_pct(riv::appmodel::Guarantee::kGap, rate,
                                   sizes[s], seed++);
        double gapless = delivered_pct(riv::appmodel::Guarantee::kGapless,
                                       rate, sizes[s], seed++);
        std::printf("%-8.0f %-6s %10.1f %12.1f\n", rate, size_names[s], gap,
                    gapless);
      }
    }
    std::printf("\nsweep wall-clock: %.2f s (serial)\n", wall_now() - t0);
  }
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1, 2, 3};
    opt.link_loss = 0.3;
    opt.rate_hz = 10.0;
    opt.seed = 1500;
    dump_reference_run(out, "sweep_rates", opt, riv::seconds(60));
  }
  return 0;
}
