// Microbenchmarks (google-benchmark) of the hot wire-format paths: event
// encode/decode across Table 3 sizes, ring payload encode/decode with
// realistic S/V sets, and the full frame round-trip.
#include <benchmark/benchmark.h>

#include "core/wire.hpp"

namespace {

using namespace riv;

devices::SensorEvent make_event(std::uint32_t payload) {
  devices::SensorEvent e;
  e.id = {SensorId{3}, 12345};
  e.epoch = 17;
  e.emitted_at = TimePoint{987654321};
  e.value = 21.5;
  e.payload_size = payload;
  return e;
}

void BM_EventEncode(benchmark::State& state) {
  devices::SensorEvent e =
      make_event(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    BinaryWriter w;
    devices::encode(w, e);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(e.wire_size()));
}
BENCHMARK(BM_EventEncode)->Arg(4)->Arg(8)->Arg(1024)->Arg(20 * 1024);

void BM_EventDecode(benchmark::State& state) {
  devices::SensorEvent e =
      make_event(static_cast<std::uint32_t>(state.range(0)));
  BinaryWriter w;
  devices::encode(w, e);
  std::vector<std::byte> buf = w.take();
  for (auto _ : state) {
    BinaryReader r(buf);
    devices::SensorEvent d = devices::decode_event(r);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_EventDecode)->Arg(4)->Arg(8)->Arg(1024)->Arg(20 * 1024);

void BM_RingPayloadRoundTrip(benchmark::State& state) {
  core::wire::RingPayload p;
  p.app = AppId{1};
  p.sensor = SensorId{3};
  for (std::uint16_t i = 1; i <= state.range(0); ++i) {
    p.seen.insert(ProcessId{i});
    p.need.insert(ProcessId{i});
  }
  p.event = make_event(4);
  for (auto _ : state) {
    std::vector<std::byte> buf = core::wire::encode(p);
    core::wire::RingPayload d = core::wire::decode_ring(buf);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_RingPayloadRoundTrip)->Arg(2)->Arg(5)->Arg(16);

void BM_CommandRoundTrip(benchmark::State& state) {
  devices::Command c;
  c.id = {ProcessId{2}, 99};
  c.actuator = ActuatorId{7};
  c.test_and_set = true;
  c.expected = 0.0;
  c.value = 1.0;
  c.issued_at = TimePoint{123};
  for (auto _ : state) {
    BinaryWriter w;
    devices::encode(w, c);
    BinaryReader r(w.data());
    devices::Command d = devices::decode_command(r);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CommandRoundTrip);

}  // namespace

BENCHMARK_MAIN();
