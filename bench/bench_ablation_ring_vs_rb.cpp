// Ablation (design decision §4.1): optimistic ring with RB fallback vs.
// always-broadcast, under increasing sensor-process link loss.
//
// The paper's argument: sensor-process link loss is rare, so paying the
// O(m x n) broadcast cost on every event is wasted; the ring costs ~n
// messages and falls back to reliable broadcast only when it stalls.
// This bench quantifies both sides: bytes per event AND delivery
// percentage must match (the ring must not trade reliability for cost).
#include "baseline/broadcast_delivery.hpp"
#include "bench_util.hpp"

namespace riv::bench {
namespace {

struct Result {
  double bytes_per_event;
  double delivered_pct;
};

Result ring(double loss, std::uint64_t seed) {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices = {1, 2, 3};
  opt.link_loss = loss;
  opt.guarantee = appmodel::Guarantee::kGapless;
  opt.seed = seed;
  auto home = make_scenario(opt);
  home->start();
  home->run_for(seconds(200));
  double emitted =
      static_cast<double>(home->bus().sensor(kSensor).events_emitted());
  Result r;
  r.bytes_per_event =
      static_cast<double>(delivery_bytes(home->metrics())) / emitted;
  r.delivered_pct =
      100.0 *
      static_cast<double>(home->metrics().counter_value("app1.delivered")) /
      emitted;
  return r;
}

Result broadcast(double loss, std::uint64_t seed) {
  workload::HomeDeployment::Options home_opt;
  home_opt.seed = seed;
  home_opt.n_processes = 5;
  workload::HomeDeployment home(home_opt);
  devices::SensorSpec spec;
  spec.id = kSensor;
  spec.name = "software-sensor";
  spec.tech = devices::Technology::kIp;
  spec.payload_size = 4;
  spec.rate_hz = 10.0;
  devices::LinkParams link;
  link.loss_prob = loss;
  home.add_sensor(spec, {home.pid(1), home.pid(2), home.pid(3)}, link);

  std::vector<std::unique_ptr<baseline::BroadcastDeliveryNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<baseline::BroadcastDeliveryNode>(
        home.net(), home.bus(), home.pid(i), home.processes(), i == 0));
    nodes.back()->start();
  }
  home.bus().start_all();
  home.run_for(seconds(200));
  double emitted =
      static_cast<double>(home.bus().sensor(kSensor).events_emitted());
  Result r;
  r.bytes_per_event = static_cast<double>(home.metrics().counter_value(
                          "net.bytes.rb_event")) /
                      emitted;
  r.delivered_pct =
      100.0 * static_cast<double>(nodes[0]->delivered_to_app()) / emitted;
  return r;
}

}  // namespace
}  // namespace riv::bench

int main() {
  using namespace riv::bench;
  print_header(
      "Ablation: optimistic ring (+RB fallback) vs always-broadcast",
      "equal delivery %, ring substantially fewer bytes at low loss "
      "(the common case in homes, Fig 1)");
  std::printf("\n%-7s | %-22s | %-22s\n", "loss", "ring B/ev (deliv %)",
              "broadcast B/ev (deliv %)");
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    Result a = ring(loss, 1100 + static_cast<std::uint64_t>(loss * 100));
    Result b =
        broadcast(loss, 1200 + static_cast<std::uint64_t>(loss * 100));
    std::printf("%-7.2f | %8.1f  (%5.1f%%)    | %8.1f  (%5.1f%%)\n", loss,
                a.bytes_per_event, a.delivered_pct, b.bytes_per_event,
                b.delivered_pct);
  }
  return 0;
}
