// Figure 8: polling overhead for poll-based sensors, normalized against
// the optimal one-poll-per-epoch schedule.
//
// Setup per §8.5: 3 processes; four Z-Wave sensors — temperature and
// luminance (600 ms polling period, 1800 ms epochs), relative humidity
// (4 s period, 12 s epochs), UV (5 s period, 15 s epochs). The sensors
// accept one outstanding poll and silently drop the rest.
//
// Paper expectations:
//   * coordinated (Gapless): 4-13% above optimal (ring-propagation delays
//     causing redundant polls, plus failed polls needing re-polls);
//   * uncoordinated: 1.5-2.5x optimal (and correspondingly worse sensor
//     battery life);
//   * Gap: optimal (a single poller), at the cost of epoch gaps under
//     failures.
#include "baseline/uncoordinated_polling.hpp"
#include "bench_util.hpp"

namespace riv::bench {
namespace {

struct SensorPlan {
  const char* name;
  devices::SensorKind kind;
  Duration poll_period;
  Duration epoch;
};

const SensorPlan kPlan[] = {
    {"temperature", devices::SensorKind::kTemperature, milliseconds(600),
     milliseconds(1800)},
    {"luminance", devices::SensorKind::kLuminance, milliseconds(600),
     milliseconds(1800)},
    {"humidity", devices::SensorKind::kHumidity, seconds(4), seconds(12)},
    {"uv", devices::SensorKind::kUv, seconds(5), seconds(15)},
};

devices::SensorSpec make_spec(int idx) {
  const SensorPlan& plan = kPlan[idx];
  devices::SensorSpec spec;
  spec.id = SensorId{static_cast<std::uint16_t>(idx + 1)};
  spec.name = plan.name;
  spec.kind = plan.kind;
  spec.tech = devices::Technology::kZWave;
  spec.push = false;
  spec.payload_size = 4;
  // Polls complete in roughly half the device's polling period, with a
  // retransmission tail that occasionally spills past the next slot.
  spec.poll_latency = plan.poll_period / 2;
  spec.poll_jitter = 0.35;
  spec.poll_tail_prob = 0.10;
  spec.poll_tail_factor = 2.2;
  return spec;
}

constexpr Duration kRunFor = seconds(600);

double optimal_polls(int idx) {
  return static_cast<double>(kRunFor.us) /
         static_cast<double>(kPlan[idx].epoch.us);
}

// Coordinated (Gapless) or single-poller (Gap) via the full runtime.
void rivulet_polls(appmodel::Guarantee guarantee, std::uint64_t seed,
                   double out[4]) {
  workload::HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = 3;
  workload::HomeDeployment home(opt);
  for (int i = 0; i < 4; ++i) home.add_sensor(make_spec(i), home.processes());

  appmodel::AppBuilder app(kApp, "poll-monitor");
  auto op = app.add_operator("Monitor",
                             std::make_unique<appmodel::FTCombiner>(3));
  for (int i = 0; i < 4; ++i) {
    op.add_sensor(SensorId{static_cast<std::uint16_t>(i + 1)}, guarantee,
                  appmodel::WindowSpec::count_window(1),
                  appmodel::PollingPolicy{kPlan[i].epoch});
  }
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>&,
         appmodel::TriggerContext&) {});
  home.deploy(app.build());
  home.start();
  home.run_for(kRunFor);
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<double>(
        home.bus().sensor(SensorId{static_cast<std::uint16_t>(i + 1)})
            .polls_received());
  }
}

void uncoordinated_polls(std::uint64_t seed, double out[4]) {
  workload::HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = 3;
  workload::HomeDeployment home(opt);
  for (int i = 0; i < 4; ++i) home.add_sensor(make_spec(i), home.processes());

  std::vector<std::unique_ptr<baseline::UncoordinatedPoller>> pollers;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 4; ++i) {
      pollers.push_back(std::make_unique<baseline::UncoordinatedPoller>(
          home.sim(), home.bus(), home.pid(p),
          SensorId{static_cast<std::uint16_t>(i + 1)}, kPlan[i].epoch,
          home.sim().rng().fork(static_cast<std::uint64_t>(p * 4 + i))));
    }
  }
  // Even in the uncoordinated case the processes forward received events
  // to each other (§4.1: "once processes receive events from sensors,
  // they can employ event forwarding across the ring") — which is what
  // lets a process cancel its not-yet-issued poll. Local pollers learn of
  // the event immediately, remote ones after a ring-forwarding delay.
  auto* sim = &home.sim();
  auto* all_pollers = &pollers;
  for (int p = 0; p < 3; ++p) {
    home.bus().subscribe(
        home.pid(p), [p, sim, all_pollers](const devices::SensorEvent& e) {
          for (int q = 0; q < 3; ++q) {
            for (int i = 0; i < 4; ++i) {
              baseline::UncoordinatedPoller* poller =
                  (*all_pollers)[static_cast<std::size_t>(q * 4 + i)].get();
              if (q == p) {
                poller->on_device_event(e);
              } else {
                sim->schedule_after(milliseconds(8), [poller, e] {
                  poller->on_device_event(e);
                });
              }
            }
          }
        });
  }
  for (auto& poller : pollers) poller->start();
  home.run_for(kRunFor);
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<double>(
        home.bus().sensor(SensorId{static_cast<std::uint16_t>(i + 1)})
            .polls_received());
  }
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  print_header(
      "Figure 8: poll requests normalized against optimal (1 per epoch)",
      "coordinated 1.04-1.13x; uncoordinated 1.5-2.5x; Gap 1.0x");
  double coord[4]{}, uncoord[4]{}, gap[4]{};
  const int runs = 3;
  for (int r = 0; r < runs; ++r) {
    double c[4], u[4], g[4];
    rivulet_polls(riv::appmodel::Guarantee::kGapless, 800 + r * 100, c);
    uncoordinated_polls(900 + r * 100, u);
    rivulet_polls(riv::appmodel::Guarantee::kGap, 1000 + r * 100, g);
    for (int i = 0; i < 4; ++i) {
      coord[i] += c[i] / runs;
      uncoord[i] += u[i] / runs;
      gap[i] += g[i] / runs;
    }
  }
  std::printf("\n%-13s %-9s %-13s %-15s %-9s\n", "sensor", "optimal",
              "coordinated", "uncoordinated", "gap");
  for (int i = 0; i < 4; ++i) {
    double opt = optimal_polls(i);
    std::printf("%-13s %-9.0f %6.0f(%4.2fx) %8.0f(%4.2fx) %4.0f(%4.2fx)\n",
                kPlan[i].name, opt, coord[i], coord[i] / opt, uncoord[i],
                uncoord[i] / opt, gap[i], gap[i] / opt);
  }
  std::printf(
      "\nBattery impact: uncoordinated polling drains the sensors'\n"
      "batteries by the same factor (every request costs one unit).\n");
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1};
    opt.seed = 800;
    dump_reference_run(out, "fig8_polling", opt, riv::seconds(60));
  }
  return 0;
}
