// Ablation (extension; cf. Beam in the paper's related work): placement
// policy and blast radius.
//
// §7's placement puts every logic node on the process with the most
// active devices — with symmetric connectivity that concentrates ALL
// applications on one host, so a single crash interrupts every app at
// once (each suffering the ~2 s Gap detection hole). The load-balanced
// extension spreads logic nodes, shrinking the blast radius of one crash.
//
// Setup: 5 processes, 10 Gap applications, every device visible
// everywhere (the worst case for concentration). At t=60 s we crash the
// process hosting the most logic nodes and count total events lost across
// all apps.
#include "bench_util.hpp"

namespace riv::bench {
namespace {

struct Result {
  int max_apps_on_one_process;
  std::uint64_t total_lost;
};

Result run(core::PlacementPolicy policy, std::uint64_t seed) {
  constexpr int kApps = 10;
  workload::HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = 5;
  opt.config.placement_policy = policy;
  workload::HomeDeployment home(opt);

  for (std::uint16_t i = 1; i <= kApps; ++i) {
    devices::SensorSpec spec;
    spec.id = SensorId{i};
    spec.name = "s" + std::to_string(i);
    spec.kind = devices::SensorKind::kDoor;
    spec.tech = devices::Technology::kIp;
    spec.rate_hz = 10.0;
    home.add_sensor(spec, home.processes());

    appmodel::AppBuilder app(AppId{i}, "app" + std::to_string(i));
    auto op = app.add_operator("Sink");
    op.add_sensor(SensorId{i}, appmodel::Guarantee::kGap,
                  appmodel::WindowSpec::count_window(1));
    op.handle_triggered_window(
        [](const std::vector<appmodel::StreamWindow>&,
           appmodel::TriggerContext&) {});
    home.deploy(app.build());
  }
  home.start();
  home.run_for(seconds(60));

  // Which process hosts the most active logic nodes?
  int best_count = 0;
  core::RivuletProcess* victim = nullptr;
  for (int i = 0; i < 5; ++i) {
    int count = 0;
    for (std::uint16_t a = 1; a <= kApps; ++a)
      count += home.process(i).logic_active(AppId{a});
    if (count > best_count) {
      best_count = count;
      victim = &home.process(i);
    }
  }
  victim->crash();
  home.run_for(seconds(60));

  Result r;
  r.max_apps_on_one_process = best_count;
  r.total_lost = 0;
  for (std::uint16_t a = 1; a <= kApps; ++a) {
    std::uint64_t emitted =
        home.bus().sensor(SensorId{a}).events_emitted();
    std::uint64_t delivered = home.metrics().counter_value(
        "app" + std::to_string(a) + ".delivered");
    r.total_lost += emitted - std::min(emitted, delivered);
  }
  return r;
}

}  // namespace
}  // namespace riv::bench

int main() {
  using namespace riv::bench;
  print_header(
      "Ablation: placement policy vs crash blast radius (10 Gap apps)",
      "paper policy concentrates all apps on one host -> one crash "
      "interrupts all 10; load balancing spreads them -> ~1/5 of the loss");
  std::printf("\n%-18s %-22s %-18s\n", "policy", "max apps on one proc",
              "events lost @crash");
  Result paper = run(riv::core::PlacementPolicy::kMaxActiveDevices, 1600);
  std::printf("%-18s %-22d %-18llu\n", "paper (§7)",
              paper.max_apps_on_one_process,
              static_cast<unsigned long long>(paper.total_lost));
  Result balanced = run(riv::core::PlacementPolicy::kLoadBalanced, 1600);
  std::printf("%-18s %-22d %-18llu\n", "load-balanced",
              balanced.max_apps_on_one_process,
              static_cast<unsigned long long>(balanced.total_lost));
  return 0;
}
