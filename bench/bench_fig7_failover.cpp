// Figure 7: events received by the active logic node over time, with the
// application-bearing process crashed at t = 24 s.
//
// Paper expectations (§8.4, 5 processes, 5 receiving, 10 events/s, 2 s
// failure-detection threshold):
//   * Gap: delivery pauses for the ~2 s detection window — a permanent gap
//     of ~20 events — then resumes at the new primary;
//   * Gapless: the newly promoted logic node replays the backlog, causing
//     a spike of ~20+ events at t ~ 27 s; the cumulative curve rejoins the
//     no-loss line.
#include "bench_util.hpp"

namespace riv::bench {
namespace {

void run(appmodel::Guarantee guarantee) {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices = {0, 1, 2, 3, 4};
  opt.guarantee = guarantee;
  opt.seed = 700;
  auto home = make_scenario(opt);
  home->start();
  home->run_for(seconds(24));
  home->process(0).crash();  // p1 is the application-bearing process
  home->run_for(seconds(21));

  auto binned = home->metrics()
                    .series("app1.delivered_ts")
                    .binned_last(seconds(1), TimePoint{seconds(45).us});
  std::printf("\n--- %s (crash of app-bearing process at t=24s) ---\n",
              to_string(guarantee));
  std::printf("%-6s %-10s %-8s\n", "t(s)", "cumulative", "per-sec");
  double prev = 0.0;
  for (const auto& pt : binned) {
    std::printf("%-6.0f %-10.0f %-8.0f\n", pt.t.seconds(), pt.v,
                pt.v - prev);
    prev = pt.v;
  }
  std::uint64_t emitted = home->bus().sensor(kSensor).events_emitted();
  std::uint64_t delivered =
      home->metrics().counter_value("app1.delivered");
  std::printf("emitted=%llu delivered=%llu (gap of %lld events)\n",
              static_cast<unsigned long long>(emitted),
              static_cast<unsigned long long>(delivered),
              static_cast<long long>(emitted) -
                  static_cast<long long>(delivered));
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  print_header(
      "Figure 7: events received by the active logic node over time",
      "Gap: ~2s pause at t=24s, ~20 events permanently lost; Gapless: "
      "spike of backlogged events at t~26-27s, nothing lost");
  run(riv::appmodel::Guarantee::kGap);
  run(riv::appmodel::Guarantee::kGapless);
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1};
    opt.seed = 700;
    dump_reference_run(out, "fig7_failover", opt, riv::seconds(60));
  }
  return 0;
}
