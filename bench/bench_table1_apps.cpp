// Table 1: the surveyed application catalog with its delivery-guarantee
// mandates — and a live smoke-run of every one of the 13 applications on
// a 3-process home, demonstrating that each deploys, triggers, and
// actuates under its mandated guarantee.
//
// Also prints Table 3's sensor classification, which the device models
// in this run follow (small 4-8 B sensors at 1-10 ev/s; 1-20 KB camera /
// microphone events).
#include <cstdio>
#include <functional>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv::bench {
namespace {

using namespace workload;

devices::SensorSpec sensor_of(std::uint16_t id, devices::SensorKind kind,
                              double rate_hz, std::uint32_t payload = 4) {
  devices::SensorSpec spec;
  spec.id = SensorId{id};
  spec.name = devices::to_string(kind);
  spec.kind = kind;
  spec.tech = devices::Technology::kIp;
  spec.payload_size = payload;
  spec.rate_hz = rate_hz;
  spec.pattern = devices::EmitPattern::kPoisson;
  return spec;
}

devices::SensorSpec poll_sensor_of(std::uint16_t id,
                                   devices::SensorKind kind) {
  devices::SensorSpec spec = sensor_of(id, kind, 0.0);
  spec.push = false;
  spec.poll_latency = milliseconds(400);
  return spec;
}

devices::ActuatorSpec actuator_of(std::uint16_t id, const char* name) {
  devices::ActuatorSpec spec;
  spec.id = ActuatorId{id};
  spec.name = name;
  spec.tech = devices::Technology::kIp;
  return spec;
}

struct RunResult {
  std::uint64_t delivered;
  std::uint64_t triggers;
  std::uint64_t actuations;
};

// Deploy `graph` on a fresh 3-process home with the given devices and run
// 120 simulated seconds.
RunResult smoke_run(
    const std::function<appmodel::AppGraph(HomeDeployment&)>& build,
    std::uint64_t seed) {
  HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  appmodel::AppGraph graph = build(home);
  AppId app = graph.id;
  home.deploy(std::move(graph));
  home.start();
  home.run_for(seconds(120));
  RunResult r{};
  r.delivered = home.metrics().counter_value("app1.delivered");
  core::RivuletProcess* active = home.active_logic_process(app);
  r.triggers = active != nullptr && active->logic(app) != nullptr
                   ? active->logic(app)->triggers_fired()
                   : 0;
  std::uint64_t actions = 0;
  for (ActuatorId a : home.bus().actuators())
    actions += home.bus().actuator(a).actions();
  r.actuations = actions;
  return r;
}

constexpr AppId kApp{1};

}  // namespace
}  // namespace riv::bench

int main() {
  using namespace riv;
  using namespace riv::bench;
  using namespace riv::workload;
  using appmodel::AppGraph;

  std::printf("\n==============================================================\n");
  std::printf("Table 1: applications and their mandated delivery guarantee\n");
  std::printf("(each app is then smoke-run for 120s on a 3-process home)\n");
  std::printf("==============================================================\n\n");
  std::printf("%-24s %-12s %-9s | %-9s %-9s %-9s\n", "application",
              "category", "delivery", "delivered", "triggers", "actions");

  using Builder = std::function<AppGraph(HomeDeployment&)>;
  const Builder builders[] = {
      // 1. Occupancy-based HVAC
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kMotion, 1.0),
                     h.processes());
        h.add_actuator(actuator_of(1, "thermostat"), {h.pid(0)});
        return apps::occupancy_hvac(kApp, {SensorId{1}}, ActuatorId{1},
                                    seconds(10));
      },
      // 2. User-based HVAC
      [](HomeDeployment& h) {
        h.add_sensor(
            sensor_of(1, devices::SensorKind::kCamera, 2.0, 15 * 1024),
            {h.pid(0), h.pid(1)});
        h.add_actuator(actuator_of(1, "thermostat"), {h.pid(0)});
        return apps::user_hvac(kApp, SensorId{1}, ActuatorId{1});
      },
      // 3. Automated lighting
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kMotion, 1.0),
                     h.processes());
        h.add_sensor(
            sensor_of(2, devices::SensorKind::kCamera, 1.0, 12 * 1024),
            {h.pid(1)});
        h.add_sensor(
            sensor_of(3, devices::SensorKind::kMicrophone, 2.0, 1024),
            {h.pid(2)});
        h.add_actuator(actuator_of(1, "light"), {h.pid(0)});
        return apps::automated_lighting(kApp, SensorId{1}, SensorId{2},
                                        SensorId{3}, ActuatorId{1});
      },
      // 4. Appliance alert
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kEnergy, 1.0, 8),
                     h.processes());
        h.add_sensor(sensor_of(2, devices::SensorKind::kMotion, 0.5),
                     h.processes());
        h.add_actuator(actuator_of(1, "notifier"), {h.pid(0)});
        return apps::appliance_alert(kApp, SensorId{1}, SensorId{2},
                                     ActuatorId{1}, seconds(30), 10.0);
      },
      // 5. Activity tracking
      [](HomeDeployment& h) {
        h.add_sensor(
            sensor_of(1, devices::SensorKind::kMicrophone, 8.0, 1024),
            {h.pid(0), h.pid(1)});
        h.add_actuator(actuator_of(1, "notifier"), {h.pid(0)});
        return apps::activity_tracking(kApp, SensorId{1}, ActuatorId{1}, 16);
      },
      // 6. Fall alert
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kWearable, 0.5),
                     {h.pid(1)});
        h.add_actuator(actuator_of(1, "notifier"), {h.pid(0)});
        return apps::fall_alert(kApp, SensorId{1}, ActuatorId{1});
      },
      // 7. Inactive alert
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kMotion, 0.5),
                     h.processes());
        h.add_sensor(sensor_of(2, devices::SensorKind::kDoor, 0.2),
                     h.processes());
        h.add_actuator(actuator_of(1, "notifier"), {h.pid(0)});
        return apps::inactive_alert(kApp, SensorId{1}, SensorId{2},
                                    ActuatorId{1}, seconds(30));
      },
      // 8. Flood/fire alert
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kMoisture, 0.2),
                     {h.pid(1)});
        h.add_sensor(sensor_of(2, devices::SensorKind::kSmoke, 0.2),
                     {h.pid(2)});
        h.add_actuator(actuator_of(1, "notifier"), {h.pid(0)});
        return apps::flood_fire_alert(kApp, SensorId{1}, SensorId{2},
                                      ActuatorId{1});
      },
      // 9. Intrusion detection (Listing 1)
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kDoor, 0.5),
                     {h.pid(0), h.pid(1)});
        h.add_sensor(sensor_of(2, devices::SensorKind::kDoor, 0.5),
                     {h.pid(1), h.pid(2)});
        h.add_actuator(actuator_of(1, "siren"), {h.pid(0)});
        return apps::intrusion_detection(kApp, {SensorId{1}, SensorId{2}},
                                         ActuatorId{1});
      },
      // 10. Energy billing
      [](HomeDeployment& h) {
        h.add_sensor(sensor_of(1, devices::SensorKind::kEnergy, 1.0, 8),
                     h.processes());
        h.add_actuator(actuator_of(1, "display"), {h.pid(0)});
        return apps::energy_billing(kApp, SensorId{1}, ActuatorId{1},
                                    seconds(15), 0.24);
      },
      // 11. Temperature-based HVAC (poll-based)
      [](HomeDeployment& h) {
        h.add_sensor(poll_sensor_of(1, devices::SensorKind::kTemperature),
                     h.processes());
        h.add_actuator(actuator_of(1, "hvac"), {h.pid(0)});
        return apps::temperature_hvac(kApp, SensorId{1}, ActuatorId{1},
                                      seconds(10), 18.0, 23.0);
      },
      // 12. Air monitoring (poll-based)
      [](HomeDeployment& h) {
        devices::SensorSpec co2 =
            poll_sensor_of(1, devices::SensorKind::kCo2);
        co2.value_base = 800.0;
        co2.value_amplitude = 300.0;
        co2.value_period = minutes(2);
        h.add_sensor(co2, h.processes());
        h.add_actuator(actuator_of(1, "notifier"), {h.pid(0)});
        return apps::air_monitoring(kApp, SensorId{1}, ActuatorId{1},
                                    seconds(10), 900.0);
      },
      // 13. Surveillance
      [](HomeDeployment& h) {
        devices::SensorSpec cam =
            sensor_of(1, devices::SensorKind::kCamera, 5.0, 18 * 1024);
        cam.value_base = 0.5;
        cam.value_amplitude = 0.5;
        cam.value_period = minutes(1);
        h.add_sensor(cam, {h.pid(1)});
        h.add_actuator(actuator_of(1, "recorder"), {h.pid(0)});
        return apps::surveillance(kApp, SensorId{1}, ActuatorId{1}, 0.8);
      },
  };

  const auto& catalog = apps::table1_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    RunResult r = smoke_run(builders[i], 2000 + i);
    std::printf("%-24s %-12s %-9s | %-9llu %-9llu %-9llu\n",
                catalog[i].name, catalog[i].category,
                to_string(catalog[i].guarantee),
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.triggers),
                static_cast<unsigned long long>(r.actuations));
  }

  std::printf("\nTable 3: sensor classification used above\n");
  std::printf("  Small (4-8 B): temperature, humidity, motion, moisture,\n");
  std::printf("                 door, UV, energy, vibration (1-10 ev/s)\n");
  std::printf("  Large (1-20 KB): IP camera frames, microphone batches\n");
  return 0;
}
