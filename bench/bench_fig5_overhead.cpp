// Figure 5: network overhead of Gapless and of a simple broadcast
// approach, normalized against Gap, with 5 processes and 1..5
// event-receiving processes.
//
// Paper expectations (§8.2):
//   * Gapless has a CONSTANT overhead regardless of how many processes
//     receive the event directly (the ring still sends ~n messages);
//   * broadcast grows with the receiver count: ~1.23x Gapless at 2
//     receivers, ~2x at 3, ~3x at 5 (4 B events);
//   * at 1 receiving process broadcast is cheaper than Gapless (the ring
//     pays for its S/V metadata);
//   * normalized overheads shrink at 20 KB events (metadata amortized).
#include "baseline/broadcast_delivery.hpp"
#include "bench_util.hpp"

namespace riv::bench {
namespace {

// Bytes per emitted event for a Rivulet run.
double rivulet_bytes_per_event(appmodel::Guarantee guarantee, int receivers,
                               std::uint32_t payload, std::uint64_t seed) {
  ScenarioOptions opt;
  opt.n_processes = 5;
  opt.receiver_indices.clear();
  for (int i = 0; i < receivers; ++i) opt.receiver_indices.push_back(i + 1 == 5 ? 0 : i + 1);
  opt.payload = payload;
  opt.guarantee = guarantee;
  opt.seed = seed;
  auto home = make_scenario(opt);
  home->start();
  home->run_for(seconds(200));
  double emitted =
      static_cast<double>(home->bus().sensor(kSensor).events_emitted());
  return static_cast<double>(delivery_bytes(home->metrics())) / emitted;
}

// Bytes per emitted event for the naive broadcast baseline.
double broadcast_bytes_per_event(int receivers, std::uint32_t payload,
                                 std::uint64_t seed) {
  workload::HomeDeployment::Options home_opt;
  home_opt.seed = seed;
  home_opt.n_processes = 5;
  workload::HomeDeployment home(home_opt);

  devices::SensorSpec spec;
  spec.id = kSensor;
  spec.name = "software-sensor";
  spec.tech = devices::Technology::kIp;
  spec.payload_size = payload;
  spec.rate_hz = 10.0;
  std::vector<ProcessId> linked;
  for (int i = 0; i < receivers; ++i)
    linked.push_back(home.pid(i + 1 == 5 ? 0 : i + 1));
  home.add_sensor(spec, linked);

  std::vector<std::unique_ptr<baseline::BroadcastDeliveryNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<baseline::BroadcastDeliveryNode>(
        home.net(), home.bus(), home.pid(i), home.processes(),
        /*app_bearing=*/i == 0));
    nodes.back()->start();
  }
  home.bus().start_all();
  home.run_for(seconds(200));
  double emitted =
      static_cast<double>(home.bus().sensor(kSensor).events_emitted());
  return static_cast<double>(
             home.metrics().counter_value("net.bytes.rb_event")) /
         emitted;
}

void run_for_size(std::uint32_t payload, const char* size_name) {
  std::printf("\n--- event size %s ---\n", size_name);
  std::printf("%-12s", "receivers");
  for (int m = 1; m <= 5; ++m) std::printf("      m=%d", m);
  std::printf("\n");

  double gap[6], gapless[6], bcast[6];
  for (int m = 1; m <= 5; ++m) {
    gap[m] = rivulet_bytes_per_event(appmodel::Guarantee::kGap, m, payload,
                                     300 + m);
    gapless[m] = rivulet_bytes_per_event(appmodel::Guarantee::kGapless, m,
                                         payload, 400 + m);
    bcast[m] = broadcast_bytes_per_event(m, payload, 500 + m);
  }
  // The paper's dotted normalization line is Gap's cost of delivering one
  // event: a single chain forward (at m=5 the app-bearing process receives
  // directly and Gap sends nothing at all, so m=1's cost is the baseline).
  const double gap_unit = gap[1];
  std::printf("%-12s", "Gap");
  for (int m = 1; m <= 5; ++m) std::printf("  %7.2f", gap[m] / gap_unit);
  std::printf("\n%-12s", "Gapless");
  for (int m = 1; m <= 5; ++m)
    std::printf("  %7.2f", gapless[m] / gap_unit);
  std::printf("\n%-12s", "Broadcast");
  for (int m = 1; m <= 5; ++m) std::printf("  %7.2f", bcast[m] / gap_unit);
  std::printf("\n%-12s", "Bcast/Gpls");
  for (int m = 1; m <= 5; ++m)
    std::printf("  %7.2f", bcast[m] / gapless[m]);
  std::printf("\n");
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  Output out = parse_output(argc, argv);
  print_header(
      "Figure 5: network overhead normalized against Gap (5 processes)",
      "Gapless constant in m; broadcast ~1.2x Gapless at m=2, ~2x at m=3, "
      "~3x at m=5; broadcast cheaper than Gapless at m=1; ratios smaller "
      "at 20KB");
  run_for_size(4, "4B");
  run_for_size(20 * 1024, "20KB");
  {
    ScenarioOptions opt;
    opt.n_processes = 5;
    opt.receiver_indices = {1};
    opt.seed = 205;
    dump_reference_run(out, "fig5_overhead", opt, riv::seconds(60));
  }
  return 0;
}
