// bench_fleet: population-scale throughput of the sharded fleet runner.
//
// The fleet layer's whole claim is "a million deterministic homes, one
// process, every core busy, bounded memory"; this bench measures the
// three numbers that claim stands on and writes them as JSON so CI can
// fail on regressions (--check BENCH_fleet.json, >30% drop on homes/s
// fails).
//
// Scenarios:
//   steady_fleet — 100k sampled homes (default population model, 10
//                  virtual seconds each), no chaos. Reports homes/s,
//                  events/s/core and peak-heap bytes/home, the number
//                  that says fleet memory is O(jobs + shards), not
//                  O(homes).
//   chaos_fleet  — 2k homes over 60 virtual seconds with the reference
//                  campaign (WiFi outage across 5% of homes); reports
//                  the same rates plus hit fraction and survival so the
//                  correlated-fault path stays on the perf radar.
//   observed_fleet — the steady fleet re-run with the observatory armed:
//                  1% sampled flight recording + SLO health scoring +
//                  top-16 worst-offender fold. Sampling must cost <10%
//                  homes/s vs steady_fleet (hard gate, fails the bench
//                  regardless of --check) — observability that taxes the
//                  fleet double digits would never stay enabled.
//   determinism  — 256-home fleet run at --jobs 1 and --jobs 4; both
//                  digests must match bit-for-bit (hard gate, fails the
//                  bench regardless of --check).
//
//   bench_fleet [--homes N] [--jobs N] [--check BASELINE.json]
//               [--json PATH]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <new>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "fleet/fleet.hpp"

// --- live-heap accounting hook -------------------------------------------
// Global operator new/delete override local to this binary, tracking live
// heap bytes (via malloc_usable_size, so the allocator's real footprint)
// and the high-water mark. peak delta across a fleet run divided by homes
// is the bench's memory/home figure: it stays flat as --homes grows
// because the runner only ever holds jobs live homes plus shard
// aggregates, never the fleet.
namespace {
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

void account_alloc(void* p) {
  std::uint64_t live =
      g_live_bytes.fetch_add(malloc_usable_size(p),
                             std::memory_order_relaxed) +
      malloc_usable_size(p);
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
}

void account_free(void* p) {
  if (p != nullptr)
    g_live_bytes.fetch_sub(malloc_usable_size(p),
                           std::memory_order_relaxed);
}

// Reset the high-water mark to the current live level so each scenario
// measures its own peak.
std::uint64_t reset_peak() {
  std::uint64_t live = g_live_bytes.load(std::memory_order_relaxed);
  g_peak_bytes.store(live, std::memory_order_relaxed);
  return live;
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  account_alloc(p);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  account_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

namespace riv::fleet::bench {
namespace {

double now_wall() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::uint64_t homes{0};
  double wall_s{0};
  double homes_per_sec{0};
  double events_per_sec_per_core{0};
  double mem_bytes_per_home{0};
  double net_bytes_per_home{0};
  double hit_fraction{-1};    // < 0 = no campaign
  double survival_rate{-1};   // < 0 = no campaign
  std::uint64_t sampled{0};   // flight-recorded homes (observatory on)
  std::uint64_t fault_digest{0};
  std::uint64_t metrics_digest{0};
};

Row run_scenario(FleetOptions opt, int jobs) {
  opt.jobs = jobs;
  std::uint64_t base = reset_peak();
  double t0 = now_wall();
  FleetResult r = run_fleet(opt);
  double wall = now_wall() - t0;
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  Dashboard d = make_dashboard(r, wall, jobs);
  Row row;
  row.homes = r.homes;
  row.wall_s = wall;
  row.homes_per_sec = d.homes_per_sec;
  row.events_per_sec_per_core = d.events_per_sec_per_core;
  row.mem_bytes_per_home = static_cast<double>(peak - base) /
                           static_cast<double>(r.homes);
  row.net_bytes_per_home = d.bytes_per_home;
  if (r.homes_hit > 0) {
    row.hit_fraction = static_cast<double>(r.homes_hit) /
                       static_cast<double>(r.homes);
    row.survival_rate = d.survival_rate;
  }
  row.sampled = r.observation.samples.size();
  row.fault_digest = r.fault_digest;
  row.metrics_digest = registry_fingerprint(r.merged);
  return row;
}

void print_row(const char* name, const Row& r, int jobs) {
  std::printf("%-14s %9llu homes   %8.0f homes/s   %10.0f events/s/core   "
              "%7.0f heap-B/home   %6.0f net-B/home   %6.2f wall-s",
              name, static_cast<unsigned long long>(r.homes),
              r.homes_per_sec, r.events_per_sec_per_core,
              r.mem_bytes_per_home, r.net_bytes_per_home, r.wall_s);
  if (r.hit_fraction >= 0)
    std::printf("   hit %4.1f%%   survival %5.1f%%", r.hit_fraction * 100.0,
                r.survival_rate * 100.0);
  if (r.sampled > 0)
    std::printf("   sampled %llu", static_cast<unsigned long long>(r.sampled));
  std::printf("   (--jobs %d)\n", jobs);
}

void append_json(std::string& out, const char* name, const Row& r,
                 bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"homes\": %llu, \"homes_per_sec\": %.0f, "
                "\"events_per_sec_per_core\": %.0f, "
                "\"mem_bytes_per_home\": %.0f, "
                "\"net_bytes_per_home\": %.0f, \"wall_s\": %.3f",
                name, static_cast<unsigned long long>(r.homes),
                r.homes_per_sec, r.events_per_sec_per_core,
                r.mem_bytes_per_home, r.net_bytes_per_home, r.wall_s);
  out += buf;
  if (r.hit_fraction >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ", \"hit_fraction\": %.4f, \"survival_rate\": %.4f",
                  r.hit_fraction, r.survival_rate);
    out += buf;
  }
  if (r.sampled > 0) {
    std::snprintf(buf, sizeof(buf), ", \"sampled_homes\": %llu",
                  static_cast<unsigned long long>(r.sampled));
    out += buf;
  }
  out += last ? "}\n" : "},\n";
}

double baseline_homes_per_sec(const std::string& json,
                              const std::string& scenario) {
  std::string needle = "\"" + scenario + "\"";
  auto at = json.find(needle);
  if (at == std::string::npos) return -1;
  auto key = json.find("\"homes_per_sec\":", at);
  if (key == std::string::npos) return -1;
  return std::atof(json.c_str() + key + std::strlen("\"homes_per_sec\":"));
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace
}  // namespace riv::fleet::bench

int main(int argc, char** argv) {
  using namespace riv::fleet;
  using namespace riv::fleet::bench;
  std::uint64_t homes = 100'000;
  int jobs = 0;  // auto-detect: the bench measures the whole machine
  std::vector<std::string> check_paths;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--homes N] [--jobs N] "
                     "[--check BASELINE.json] [--json PATH]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--homes") {
      homes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--check") {
      check_paths.push_back(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  jobs = riv::resolve_jobs(jobs);

  std::printf(
      "\n==============================================================\n"
      "bench_fleet — sharded fleet runner\n"
      "Claim under test: >1k steady-state homes/s per core, memory\n"
      "O(jobs + shards) not O(homes), bit-identical for any --jobs\n"
      "==============================================================\n");

  // steady_fleet: the headline number.
  FleetOptions steady;
  steady.homes = homes;
  Row steady_row = run_scenario(steady, jobs);
  print_row("steady_fleet", steady_row, jobs);

  // chaos_fleet: the reference campaign (ISSUE: "WiFi outage across 5% of
  // homes"), kept small enough for CI but large enough that the sampled
  // hit fraction concentrates near 5%.
  FleetOptions chaos;
  chaos.homes = 2000;
  chaos.population.sim_duration = riv::seconds(60);
  CampaignEvent wifi;
  wifi.kind = CampaignFault::kWifiOutage;
  wifi.at = riv::seconds(10);
  wifi.duration = riv::seconds(20);
  wifi.fraction = 0.05;
  chaos.campaign.events.push_back(wifi);
  Row chaos_row = run_scenario(chaos, jobs);
  print_row("chaos_fleet", chaos_row, jobs);

  // observed_fleet: the steady fleet with the observatory armed — 1%
  // sampled flight recording, SLO scoring on sampled homes, top-16 fold.
  FleetOptions observed;
  observed.homes = homes;
  observed.observe.sample = 0.01;
  observed.observe.top_k = 16;
  Row observed_row = run_scenario(observed, jobs);
  print_row("observed_fleet", observed_row, jobs);
  // Hard overhead gate: 1% sampling must cost <10% of the unsampled rate.
  // Back-to-back runs on the same box keep the ratio honest, but shared
  // CI machines still jitter, so a failing first trial gets exactly one
  // paired re-measurement before the gate fires.
  auto overhead_ratio = [&]() {
    return observed_row.homes_per_sec /
           (steady_row.homes_per_sec > 0 ? steady_row.homes_per_sec : 1.0);
  };
  double observe_ratio = overhead_ratio();
  if (observe_ratio < 0.9) {
    std::printf("overhead      %.3fx below floor, re-measuring once\n",
                observe_ratio);
    steady_row = run_scenario(steady, jobs);
    observed_row = run_scenario(observed, jobs);
    observe_ratio = overhead_ratio();
  }
  bool observe_cheap = observe_ratio >= 0.9;
  std::printf("overhead      observed/steady homes/s %.3fx (floor 0.90x)  %s\n",
              observe_ratio, observe_cheap ? "ok" : "TOO EXPENSIVE");

  // determinism: --jobs 1 vs --jobs 4 must agree bit-for-bit. Hard gate.
  FleetOptions det;
  det.homes = 256;
  det.campaign = chaos.campaign;
  Row det1 = run_scenario(det, 1);
  Row det4 = run_scenario(det, 4);
  bool deterministic = det1.fault_digest == det4.fault_digest &&
                       det1.metrics_digest == det4.metrics_digest;
  std::printf("determinism   256-home fleet --jobs 1 vs --jobs 4: %s\n",
              deterministic ? "digests MATCH" : "digests DIFFER");

  std::string json = "{\n  \"bench\": \"fleet\",\n  \"scenarios\": {\n";
  append_json(json, "steady_fleet", steady_row, false);
  append_json(json, "chaos_fleet", chaos_row, false);
  append_json(json, "observed_fleet", observed_row, true);
  json += "  }\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("json written: %s\n", json_path.c_str());
  }

  int failures = (deterministic ? 0 : 1) + (observe_cheap ? 0 : 1);
  if (steady_row.homes_per_sec < 1000.0 * jobs &&
      steady_row.homes_per_sec < 1000.0) {
    // The >1k homes/s/core floor from the ISSUE; soft only in the sense
    // that --check is the CI gate, but print it loudly.
    std::printf("floor check   steady_fleet below 1k homes/s/core\n");
  }
  if (!check_paths.empty()) {
    std::string baseline;
    for (const std::string& p : check_paths) {
      std::string one = read_file(p);
      if (one.empty()) {
        std::fprintf(stderr, "cannot read baseline %s\n", p.c_str());
        return 1;
      }
      baseline += one;
    }
    struct {
      const char* name;
      double current;
      double floor;  // fail below floor × baseline
    } checks[] = {
        // fail on >30% regression of the headline rate; the short
        // chaos_fleet scenario is noisier on loaded CI boxes, so its gate
        // only catches collapses.
        {"steady_fleet", steady_row.homes_per_sec, 0.7},
        {"chaos_fleet", chaos_row.homes_per_sec, 0.5},
        {"observed_fleet", observed_row.homes_per_sec, 0.7},
    };
    for (const auto& c : checks) {
      double base = baseline_homes_per_sec(baseline, c.name);
      if (base <= 0) {
        std::fprintf(stderr, "baseline missing scenario %s\n", c.name);
        ++failures;
        continue;
      }
      double ratio = c.current / base;
      bool ok = ratio >= c.floor;
      std::printf("check %-14s %10.0f vs baseline %10.0f homes/s  "
                  "(%.2fx, floor %.1fx)  %s\n",
                  c.name, c.current, base, ratio, c.floor,
                  ok ? "ok" : "REGRESSION");
      if (!ok) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
