// bench_fleet: population-scale throughput of the sharded fleet runner.
//
// The fleet layer's whole claim is "a million deterministic homes, one
// process, every core busy, bounded memory"; this bench measures the
// three numbers that claim stands on and writes them as JSON so CI can
// fail on regressions (--check BENCH_fleet.json, >30% drop on homes/s
// fails).
//
// Scenarios:
//   steady_fleet — 100k sampled homes (default population model, 10
//                  virtual seconds each), no chaos. Reports homes/s,
//                  events/s/core and peak-heap bytes/home, the number
//                  that says fleet memory is O(jobs + shards), not
//                  O(homes).
//   chaos_fleet  — 2k homes over 60 virtual seconds with the reference
//                  campaign (WiFi outage across 5% of homes); reports
//                  the same rates plus hit fraction and survival so the
//                  correlated-fault path stays on the perf radar.
//   observed_fleet — the steady fleet re-run with the observatory armed:
//                  1% sampled flight recording + SLO health scoring +
//                  top-16 worst-offender fold. Sampling must cost <10%
//                  homes/s vs steady_fleet (hard gate, fails the bench
//                  regardless of --check) — observability that taxes the
//                  fleet double digits would never stay enabled.
//   determinism  — 256-home fleet run at --jobs 1 and --jobs 4; both
//                  digests must match bit-for-bit (hard gate, fails the
//                  bench regardless of --check).
//   warm_fleet   — 8-campaign fan-out over 200 busy homes (4-8 sensors
//                  at 4-12 Hz) with an 18s warm-up prefix and 2s
//                  windows, cold (re-execute the prefix per campaign)
//                  vs warm (snapshot-clone the warmed home, 5% sampled
//                  attestation). Two hard gates: warm must be ≥1.5×
//                  cold homes/s, and every campaign's outcome rows and
//                  digests must match the cold leg bit-for-bit — speed
//                  that changes answers is a bug, not a win.
//
// Every scenario also reports allocations/home (operator-new count),
// the number the pooled-shard-memory work drives down.
//
//   bench_fleet [--homes N] [--jobs N] [--check BASELINE.json]
//               [--json PATH]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <malloc.h>
#include <new>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "fleet/fleet.hpp"

// --- live-heap accounting hook -------------------------------------------
// Global operator new/delete override local to this binary, tracking live
// heap bytes (via malloc_usable_size, so the allocator's real footprint)
// and the high-water mark. peak delta across a fleet run divided by homes
// is the bench's memory/home figure: it stays flat as --homes grows
// because the runner only ever holds jobs live homes plus shard
// aggregates, never the fleet.
namespace {
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};

void account_alloc(void* p) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t live =
      g_live_bytes.fetch_add(malloc_usable_size(p),
                             std::memory_order_relaxed) +
      malloc_usable_size(p);
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
}

void account_free(void* p) {
  if (p != nullptr)
    g_live_bytes.fetch_sub(malloc_usable_size(p),
                           std::memory_order_relaxed);
}

// Reset the high-water mark to the current live level so each scenario
// measures its own peak.
std::uint64_t reset_peak() {
  std::uint64_t live = g_live_bytes.load(std::memory_order_relaxed);
  g_peak_bytes.store(live, std::memory_order_relaxed);
  return live;
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  account_alloc(p);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  account_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

namespace riv::fleet::bench {
namespace {

double now_wall() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::uint64_t homes{0};
  double wall_s{0};
  double homes_per_sec{0};
  double events_per_sec_per_core{0};
  double mem_bytes_per_home{0};
  double allocs_per_home{0};
  double net_bytes_per_home{0};
  double hit_fraction{-1};    // < 0 = no campaign
  double survival_rate{-1};   // < 0 = no campaign
  std::uint64_t sampled{0};   // flight-recorded homes (observatory on)
  std::uint64_t fault_digest{0};
  std::uint64_t metrics_digest{0};
};

Row run_scenario(FleetOptions opt, int jobs) {
  opt.jobs = jobs;
  std::uint64_t base = reset_peak();
  std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  double t0 = now_wall();
  FleetResult r = run_fleet(opt);
  double wall = now_wall() - t0;
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  Dashboard d = make_dashboard(r, wall, jobs);
  Row row;
  row.homes = r.homes;
  row.wall_s = wall;
  row.homes_per_sec = d.homes_per_sec;
  row.events_per_sec_per_core = d.events_per_sec_per_core;
  row.mem_bytes_per_home = static_cast<double>(peak - base) /
                           static_cast<double>(r.homes);
  row.allocs_per_home =
      static_cast<double>(allocs) / static_cast<double>(r.homes);
  row.net_bytes_per_home = d.bytes_per_home;
  if (r.homes_hit > 0) {
    row.hit_fraction = static_cast<double>(r.homes_hit) /
                       static_cast<double>(r.homes);
    row.survival_rate = d.survival_rate;
  }
  row.sampled = r.observation.samples.size();
  row.fault_digest = r.fault_digest;
  row.metrics_digest = registry_fingerprint(r.merged);
  return row;
}

// A multi-campaign sweep measured as one unit: homes counts every
// (home, campaign) simulation, so the cold-vs-warm homes/s ratio reads
// directly as the warm-start speedup. Per-campaign results come back in
// `out` for the bit-identity gate; digests are an order-sensitive fold
// of the per-campaign digests.
Row run_sweep(FleetOptions opt, const std::vector<CampaignPlan>& plans,
              int jobs, std::vector<FleetResult>& out) {
  opt.jobs = jobs;
  std::uint64_t base = reset_peak();
  std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  double t0 = now_wall();
  out = run_fleet_campaigns(opt, plans);
  double wall = now_wall() - t0;
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  Row row;
  row.homes = opt.homes * plans.size();
  row.wall_s = wall;
  row.homes_per_sec = static_cast<double>(row.homes) / wall;
  std::uint64_t events = 0;
  std::uint64_t fd = 1469598103934665603ull;
  std::uint64_t md = fd;
  for (const FleetResult& r : out) {
    events += r.sim_events;
    fd = (fd ^ r.fault_digest) * 1099511628211ull;
    md = (md ^ registry_fingerprint(r.merged)) * 1099511628211ull;
  }
  row.events_per_sec_per_core =
      static_cast<double>(events) / wall / static_cast<double>(jobs);
  row.mem_bytes_per_home = static_cast<double>(peak - base) /
                           static_cast<double>(row.homes);
  row.allocs_per_home =
      static_cast<double>(allocs) / static_cast<double>(row.homes);
  row.fault_digest = fd;
  row.metrics_digest = md;
  return row;
}

void print_row(const char* name, const Row& r, int jobs) {
  std::printf("%-14s %9llu homes   %8.0f homes/s   %10.0f events/s/core   "
              "%7.0f heap-B/home   %7.0f allocs/home   %6.0f net-B/home   "
              "%6.2f wall-s",
              name, static_cast<unsigned long long>(r.homes),
              r.homes_per_sec, r.events_per_sec_per_core,
              r.mem_bytes_per_home, r.allocs_per_home, r.net_bytes_per_home,
              r.wall_s);
  if (r.hit_fraction >= 0)
    std::printf("   hit %4.1f%%   survival %5.1f%%", r.hit_fraction * 100.0,
                r.survival_rate * 100.0);
  if (r.sampled > 0)
    std::printf("   sampled %llu", static_cast<unsigned long long>(r.sampled));
  std::printf("   (--jobs %d)\n", jobs);
}

void append_json(std::string& out, const char* name, const Row& r,
                 bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"homes\": %llu, \"homes_per_sec\": %.0f, "
                "\"events_per_sec_per_core\": %.0f, "
                "\"mem_bytes_per_home\": %.0f, "
                "\"allocs_per_home\": %.0f, "
                "\"net_bytes_per_home\": %.0f, \"wall_s\": %.3f",
                name, static_cast<unsigned long long>(r.homes),
                r.homes_per_sec, r.events_per_sec_per_core,
                r.mem_bytes_per_home, r.allocs_per_home, r.net_bytes_per_home,
                r.wall_s);
  out += buf;
  if (r.hit_fraction >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ", \"hit_fraction\": %.4f, \"survival_rate\": %.4f",
                  r.hit_fraction, r.survival_rate);
    out += buf;
  }
  if (r.sampled > 0) {
    std::snprintf(buf, sizeof(buf), ", \"sampled_homes\": %llu",
                  static_cast<unsigned long long>(r.sampled));
    out += buf;
  }
  out += last ? "}\n" : "},\n";
}

double baseline_homes_per_sec(const std::string& json,
                              const std::string& scenario) {
  std::string needle = "\"" + scenario + "\"";
  auto at = json.find(needle);
  if (at == std::string::npos) return -1;
  auto key = json.find("\"homes_per_sec\":", at);
  if (key == std::string::npos) return -1;
  return std::atof(json.c_str() + key + std::strlen("\"homes_per_sec\":"));
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace
}  // namespace riv::fleet::bench

int main(int argc, char** argv) {
  using namespace riv::fleet;
  using namespace riv::fleet::bench;
  std::uint64_t homes = 100'000;
  int jobs = 0;  // auto-detect: the bench measures the whole machine
  std::vector<std::string> check_paths;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--homes N] [--jobs N] "
                     "[--check BASELINE.json] [--json PATH]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--homes") {
      homes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--check") {
      check_paths.push_back(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  jobs = riv::resolve_jobs(jobs);

  std::printf(
      "\n==============================================================\n"
      "bench_fleet — sharded fleet runner\n"
      "Claim under test: >1k steady-state homes/s per core, memory\n"
      "O(jobs + shards) not O(homes), bit-identical for any --jobs\n"
      "==============================================================\n");

  // steady_fleet: the headline number.
  FleetOptions steady;
  steady.homes = homes;
  Row steady_row = run_scenario(steady, jobs);
  print_row("steady_fleet", steady_row, jobs);

  // chaos_fleet: the reference campaign (ISSUE: "WiFi outage across 5% of
  // homes"), kept small enough for CI but large enough that the sampled
  // hit fraction concentrates near 5%.
  FleetOptions chaos;
  chaos.homes = 2000;
  chaos.population.sim_duration = riv::seconds(60);
  CampaignEvent wifi;
  wifi.kind = CampaignFault::kWifiOutage;
  wifi.at = riv::seconds(10);
  wifi.duration = riv::seconds(20);
  wifi.fraction = 0.05;
  chaos.campaign.events.push_back(wifi);
  Row chaos_row = run_scenario(chaos, jobs);
  print_row("chaos_fleet", chaos_row, jobs);

  // observed_fleet: the steady fleet with the observatory armed — 1%
  // sampled flight recording, SLO scoring on sampled homes, top-16 fold.
  FleetOptions observed;
  observed.homes = homes;
  observed.observe.sample = 0.01;
  observed.observe.top_k = 16;
  Row observed_row = run_scenario(observed, jobs);
  print_row("observed_fleet", observed_row, jobs);
  // Hard overhead gate: 1% sampling must cost <10% of the unsampled rate.
  // Back-to-back runs on the same box keep the ratio honest, but shared
  // CI machines still jitter, so a failing first trial gets exactly one
  // paired re-measurement before the gate fires.
  auto overhead_ratio = [&]() {
    return observed_row.homes_per_sec /
           (steady_row.homes_per_sec > 0 ? steady_row.homes_per_sec : 1.0);
  };
  double observe_ratio = overhead_ratio();
  if (observe_ratio < 0.9) {
    std::printf("overhead      %.3fx below floor, re-measuring once\n",
                observe_ratio);
    steady_row = run_scenario(steady, jobs);
    observed_row = run_scenario(observed, jobs);
    observe_ratio = overhead_ratio();
  }
  bool observe_cheap = observe_ratio >= 0.9;
  std::printf("overhead      observed/steady homes/s %.3fx (floor 0.90x)  %s\n",
              observe_ratio, observe_cheap ? "ok" : "TOO EXPENSIVE");

  // determinism: --jobs 1 vs --jobs 4 must agree bit-for-bit. Hard gate.
  FleetOptions det;
  det.homes = 256;
  det.campaign = chaos.campaign;
  Row det1 = run_scenario(det, 1);
  Row det4 = run_scenario(det, 4);
  bool deterministic = det1.fault_digest == det4.fault_digest &&
                       det1.metrics_digest == det4.metrics_digest;
  std::printf("determinism   256-home fleet --jobs 1 vs --jobs 4: %s\n",
              deterministic ? "digests MATCH" : "digests DIFFER");

  // warm_fleet: the warm-start headline. An 8-campaign fan-out over busy
  // homes (4-8 sensors at 4-12 Hz — the population where warm-up is
  // actually expensive): an 18s fault-free warm-up prefix, then a 2s
  // per-campaign measurement window. The cold leg re-executes the prefix
  // for every campaign (6 × 20 sim-seconds per home); the warm leg
  // executes it once per home, snapshot-clones the warmed state per
  // campaign (5% of clones byte-attested against the checkpoint
  // surface), and re-salts the ambient RNG per campaign (18 + 8 × 2).
  // Both legs arm campaigns after the prefix, so they must agree
  // bit-for-bit — rows and digests — while warm buys ≥1.5× homes/s.
  // Both are hard gates.
  FleetOptions wf_cold;
  wf_cold.homes = 200;
  wf_cold.population.sensors = {4, 8};
  wf_cold.population.rate_hz = {4.0, 12.0};
  wf_cold.population.sim_duration = riv::seconds(2);
  wf_cold.keep_home_rows = true;
  wf_cold.warm.prefix = riv::seconds(18);
  wf_cold.warm.attest_sample = 0.05;
  wf_cold.warm.resalt = 0x77a7;
  std::vector<CampaignPlan> sweep(8);
  CampaignEvent wev;
  wev.at = riv::seconds(1);
  wev.duration = riv::seconds(1);
  const CampaignFault kinds[] = {CampaignFault::kWifiOutage,
                                 CampaignFault::kPowerBlip,
                                 CampaignFault::kSensorDegrade};
  for (std::size_t c = 0; c < sweep.size(); ++c) {
    wev.kind = kinds[c % 3];
    wev.fraction = c < 4 ? 0.3 : 0.15;
    sweep[c].events.push_back(wev);
  }
  FleetOptions wf_warm = wf_cold;
  wf_warm.warm.enabled = true;

  std::vector<FleetResult> wf_cold_results;
  std::vector<FleetResult> wf_warm_results;
  Row wf_cold_row = run_sweep(wf_cold, sweep, jobs, wf_cold_results);
  print_row("cold_sweep", wf_cold_row, jobs);
  Row wf_warm_row = run_sweep(wf_warm, sweep, jobs, wf_warm_results);
  print_row("warm_fleet", wf_warm_row, jobs);
  bool warm_identical =
      wf_warm_row.fault_digest == wf_cold_row.fault_digest &&
      wf_warm_row.metrics_digest == wf_cold_row.metrics_digest;
  for (std::size_t c = 0; warm_identical && c < wf_warm_results.size(); ++c)
    warm_identical = wf_warm_results[c].rows == wf_cold_results[c].rows;
  auto warm_speedup = [&] {
    return wf_warm_row.homes_per_sec /
           (wf_cold_row.homes_per_sec > 0 ? wf_cold_row.homes_per_sec : 1.0);
  };
  double speedup = warm_speedup();
  if (speedup < 1.5) {
    std::printf("warm speedup  %.2fx below floor, re-measuring once\n",
                speedup);
    wf_cold_row = run_sweep(wf_cold, sweep, jobs, wf_cold_results);
    wf_warm_row = run_sweep(wf_warm, sweep, jobs, wf_warm_results);
    speedup = warm_speedup();
  }
  bool warm_fast = speedup >= 1.5;
  std::printf("warm speedup  warm/cold homes/s %.2fx (floor 1.50x)  %s\n",
              speedup, warm_fast ? "ok" : "TOO SLOW");
  std::printf("warm identity %zu campaigns, rows+digests warm vs cold: %s\n",
              sweep.size(), warm_identical ? "MATCH" : "DIFFER");

  std::string json = "{\n  \"bench\": \"fleet\",\n  \"scenarios\": {\n";
  append_json(json, "steady_fleet", steady_row, false);
  append_json(json, "chaos_fleet", chaos_row, false);
  append_json(json, "observed_fleet", observed_row, false);
  append_json(json, "cold_sweep", wf_cold_row, false);
  append_json(json, "warm_fleet", wf_warm_row, true);
  json += "  }\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("json written: %s\n", json_path.c_str());
  }

  int failures = (deterministic ? 0 : 1) + (observe_cheap ? 0 : 1) +
                 (warm_fast ? 0 : 1) + (warm_identical ? 0 : 1);
  if (steady_row.homes_per_sec < 1000.0 * jobs &&
      steady_row.homes_per_sec < 1000.0) {
    // The >1k homes/s/core floor from the ISSUE; soft only in the sense
    // that --check is the CI gate, but print it loudly.
    std::printf("floor check   steady_fleet below 1k homes/s/core\n");
  }
  if (!check_paths.empty()) {
    std::string baseline;
    for (const std::string& p : check_paths) {
      std::string one = read_file(p);
      if (one.empty()) {
        std::fprintf(stderr, "cannot read baseline %s\n", p.c_str());
        return 1;
      }
      baseline += one;
    }
    // Every scenario gets one paired re-measurement before its gate
    // fires: shared CI boxes jitter, and a single bad trial should cost a
    // re-run, not a red build. The print names the gate that tripped.
    struct Check {
      const char* name;
      double current;
      double floor;  // fail below floor × baseline
      std::function<double()> remeasure;
    };
    std::vector<Check> checks = {
        // fail on >30% regression of the headline rate; the short
        // chaos_fleet and warm_fleet scenarios are noisier on loaded CI
        // boxes, so their gates only catch collapses.
        {"steady_fleet", steady_row.homes_per_sec, 0.7,
         [&] { return run_scenario(steady, jobs).homes_per_sec; }},
        {"chaos_fleet", chaos_row.homes_per_sec, 0.5,
         [&] { return run_scenario(chaos, jobs).homes_per_sec; }},
        {"observed_fleet", observed_row.homes_per_sec, 0.7,
         [&] { return run_scenario(observed, jobs).homes_per_sec; }},
        {"warm_fleet", wf_warm_row.homes_per_sec, 0.5,
         [&] {
           std::vector<FleetResult> rs;
           return run_sweep(wf_warm, sweep, jobs, rs).homes_per_sec;
         }},
    };
    for (auto& c : checks) {
      double base = baseline_homes_per_sec(baseline, c.name);
      if (base <= 0) {
        std::fprintf(stderr, "baseline missing scenario %s\n", c.name);
        ++failures;
        continue;
      }
      double ratio = c.current / base;
      if (ratio < c.floor) {
        std::printf("check %-14s gate tripped: homes/s %.2fx of baseline "
                    "(floor %.1fx), re-measuring once\n",
                    c.name, ratio, c.floor);
        c.current = c.remeasure();
        ratio = c.current / base;
      }
      bool ok = ratio >= c.floor;
      std::printf("check %-14s %10.0f vs baseline %10.0f homes/s  "
                  "(%.2fx, floor %.1fx)  %s\n",
                  c.name, c.current, base, ratio, c.floor,
                  ok ? "ok" : "REGRESSION");
      if (!ok) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
