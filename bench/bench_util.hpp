// Shared helpers for the evaluation harness (§8).
//
// Every bench binary regenerates one table or figure of the paper. The
// common scenario mirrors §8.2's setup: one IP-based software sensor
// (event size and rate configurable), n Rivulet processes, an explicit
// placement chain [p1, p2, ...] so p1 is always the application-bearing
// process, and a minimal single-operator app without actuators so the
// measured traffic is purely the delivery service's.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "trace/trace.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv::bench {

// parallel_map grew up and moved to src/common/parallel.hpp (the fleet
// layer shards millions of homes through it); benches keep using it under
// the old name. Dynamic atomic-counter work queue, ordered results
// byte-identical to a serial run, jobs == 0 auto-detects cores.
using riv::parallel_map;
using riv::resolve_jobs;

// Where bench artifacts (counter dumps, trace files) go. Every bench
// binary accepts `--out DIR`; without it no files are written at all —
// results only go to stdout. Nothing is ever written relative to the
// current working directory.
struct Output {
  std::string dir;

  bool enabled() const { return !dir.empty(); }

  // Open DIR/<name> for writing (creating DIR first). Returns nullptr —
  // and prints a warning — when --out was not given or the open fails;
  // callers simply skip the dump.
  std::FILE* open(const std::string& name) const {
    if (!enabled()) return nullptr;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return f;
  }

  std::string path_for(const std::string& name) const {
    return dir + "/" + name;
  }
};

// Parse `--out DIR` (ignoring every other argument, which benches do not
// take). Exits with status 2 on a dangling --out.
inline Output parse_output(int argc, char** argv) {
  Output out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
        std::exit(2);
      }
      out.dir = argv[++i];
    }
  }
  return out;
}

// Dump every counter of a run's metrics registry as CSV under
// --out/<name>.csv; no-op without --out.
inline void dump_counters(const Output& out, const std::string& name,
                          const metrics::Registry& m) {
  std::FILE* f = out.open(name + ".csv");
  if (f == nullptr) return;
  std::fprintf(f, "counter,value\n");
  for (const auto& [cname, counter] : m.counters())
    std::fprintf(f, "%s,%llu\n", cname.c_str(),
                 static_cast<unsigned long long>(counter.value()));
  std::fclose(f);
  std::printf("counters written: %s\n", out.path_for(name + ".csv").c_str());
}

inline constexpr AppId kApp{1};
inline constexpr SensorId kSensor{1};

struct ScenarioOptions {
  int n_processes{5};
  std::vector<int> receiver_indices{1};  // farthest from p1 in ring order
  double link_loss{0.0};
  std::uint32_t payload{4};
  double rate_hz{10.0};
  appmodel::Guarantee guarantee{appmodel::Guarantee::kGapless};
  std::uint64_t seed{1};
};

inline appmodel::AppGraph sink_app(appmodel::Guarantee guarantee) {
  appmodel::AppBuilder app(kApp, "sink");
  auto op = app.add_operator("Sink");
  op.add_sensor(kSensor, guarantee, appmodel::WindowSpec::count_window(1));
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>&,
         appmodel::TriggerContext&) {});
  return app.build();
}

inline std::unique_ptr<workload::HomeDeployment> make_scenario(
    const ScenarioOptions& opt) {
  workload::HomeDeployment::Options home_opt;
  home_opt.seed = opt.seed;
  home_opt.n_processes = opt.n_processes;
  // Deterministic placement: p1 bears the app, then ascending ids — the
  // chain §8.2 implies when it places the receiver "farthest" from the
  // application-bearing process.
  std::vector<ProcessId> chain;
  for (int i = 0; i < opt.n_processes; ++i)
    chain.push_back(ProcessId{static_cast<std::uint16_t>(i + 1)});
  home_opt.config.placement_override[kApp] = chain;

  auto home = std::make_unique<workload::HomeDeployment>(home_opt);

  devices::SensorSpec spec;
  spec.id = kSensor;
  spec.name = "software-sensor";
  spec.kind = devices::SensorKind::kTemperature;
  spec.tech = devices::Technology::kIp;  // §8.1's IP software sensor
  spec.push = true;
  spec.payload_size = opt.payload;
  spec.rate_hz = opt.rate_hz;
  spec.pattern = devices::EmitPattern::kPeriodic;

  std::vector<ProcessId> receivers;
  for (int i : opt.receiver_indices) receivers.push_back(home->pid(i));
  devices::LinkParams link;
  link.loss_prob = opt.link_loss;
  home->add_sensor(spec, receivers, link);
  home->deploy(sink_app(opt.guarantee));
  return home;
}

// Bytes attributable to event delivery (ring + fallback broadcast + gap
// forwards + successor sync), excluding membership chatter.
inline std::uint64_t delivery_bytes(metrics::Registry& m) {
  return m.counter_value("net.bytes.ring_event") +
         m.counter_value("net.bytes.rb_event") +
         m.counter_value("net.bytes.gap_forward") +
         m.counter_value("net.bytes.sync_request") +
         m.counter_value("net.bytes.sync_response");
}

// With --out: re-run the bench's canonical scenario once with the flight
// recorder on, then write <name>.csv (every metrics counter) and
// <name>.rivtrace (the protocol-level flight trace, inspectable with
// tools/trace_diff --dump) under the --out directory. Without --out this
// is a no-op — benches never write cwd-relative files.
inline void dump_reference_run(const Output& out, const std::string& name,
                               const ScenarioOptions& opt,
                               Duration run_len) {
  if (!out.enabled()) return;
  trace::Recorder rec(trace::kAllComponents &
                      ~trace::component_bit(trace::Component::kSim));
  trace::Scope scope(rec);
  auto home = make_scenario(opt);
  home->start();
  home->run_for(run_len);
  dump_counters(out, name, home->metrics());
  std::string path = out.path_for(name + ".rivtrace");
  std::string err;
  if (rec.save(path, &err))
    std::printf("flight trace written: %s (%zu records)\n", path.c_str(),
                rec.size());
  else
    std::fprintf(stderr, "warning: %s\n", err.c_str());
}

inline void print_header(const std::string& title,
                         const std::string& paper_expectation) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace riv::bench
