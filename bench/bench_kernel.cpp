// bench_kernel: self-benchmark of the simulation-kernel hot path.
//
// This is the repo's perf-trajectory artifact: it measures the substrate
// every other bench and the chaos corpus run on, and writes the numbers
// as JSON so CI can fail on regressions (--check BASELINE.json, >30%
// drop on any events/sec metric fails).
//
// Scenarios:
//   timer_churn  — raw kernel: periodic timers + cancel/reschedule churn,
//                  the keep-alive/retransmit pattern that dominates real
//                  workloads. Pure Simulation, no network.
//   chaos_flight — the golden chaos scenario (seed 7, gapless, full
//                  protocol stack + fault injection), the ISSUE's
//                  reference workload. Also reports allocations/event
//                  via a counting global-new hook.
//   traced_flight — the same chaos scenario with a full-mask flight
//                  recorder installed: the traced hot path the golden
//                  corpus and trace_analyze workflows actually run.
//                  Reports events/s plus bytes/record and allocs/record
//                  (trace overhead only: traced minus untraced allocs).
//   steady_home  — §8.2 steady-state home (5 processes, 10 Hz sensor),
//                  reported as wall-seconds per simulated hour.
//   seed_sweep   — chaos seeds fanned out over bench::parallel_map
//                  (--jobs N); verifies per-seed fault-trace hashes are
//                  bit-identical to the serial run.
//
//   bench_kernel [--jobs N] [--check BASELINE.json] [--json PATH] [--out DIR]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/engine.hpp"
#include "checkpoint/fork.hpp"
#include "checkpoint/rivc.hpp"
#include "checkpoint/scenario.hpp"
#include "sim/simulation.hpp"
#include "trace/trace.hpp"

// --- counting allocator hook ---------------------------------------------
// Global operator new override local to this binary: every heap allocation
// made while measuring bumps one relaxed atomic. The delta around a
// scenario divided by events fired gives allocs/event — the kernel
// rewrite's "steady-state scheduling does no allocation" claim, measured.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace riv::bench {
namespace {

double now_wall() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Result {
  double events_per_sec{0};
  double wall_s{0};
  std::uint64_t events{0};
  double allocs_per_event{-1};       // < 0 = not measured
  double wall_s_per_sim_hour{-1};    // < 0 = not measured
  std::uint64_t records{0};          // trace records (traced scenarios)
  double bytes_per_record{-1};       // < 0 = not measured
  double allocs_per_record{-1};      // < 0 = not measured
};

// --- timer_churn ---------------------------------------------------------
// 64 periodic timers (keep-alive pattern) plus a churn timer per period
// that is scheduled and then cancelled before firing (retransmit pattern):
// the cancel-heavy steady state the wheel's tombstones are built for.
Result bench_timer_churn() {
  constexpr int kPeriodic = 64;
  constexpr std::uint64_t kTargetFires = 2'000'000;
  sim::Simulation sim(1);
  std::uint64_t fires = 0;
  std::vector<sim::TimerId> churn(kPeriodic, 0);
  std::function<void(int)> tick = [&](int i) {
    ++fires;
    // Cancel last period's churn timer (it never fires) and arm a new one.
    sim.cancel(churn[static_cast<std::size_t>(i)]);
    churn[static_cast<std::size_t>(i)] =
        sim.schedule_after(milliseconds(40), [] {});
    if (fires < kTargetFires)
      sim.schedule_after(milliseconds(1 + i % 17), [&tick, i] { tick(i); });
  };
  for (int i = 0; i < kPeriodic; ++i) {
    int delay = 1 + i;
    sim.schedule_after(microseconds(delay), [&tick, i] { tick(i); });
  }
  double t0 = now_wall();
  while (fires < kTargetFires && sim.step()) {
  }
  double wall = now_wall() - t0;
  Result r;
  r.events = sim.events_fired();
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  return r;
}

// --- chaos_flight --------------------------------------------------------
chaos::ChaosResult run_chaos(std::uint64_t seed, std::int64_t horizon_s) {
  chaos::EngineOptions opt;
  opt.scenario.seed = seed;
  opt.scenario.guarantee = appmodel::Guarantee::kGapless;
  opt.plan.horizon = seconds(horizon_s);
  return chaos::ChaosEngine(opt).run();
}

Result bench_chaos_flight() {
  constexpr std::int64_t kHorizonS = 60;
  constexpr int kIters = 5;
  // Warm-up run keeps one-time setup costs out of the measurement; each
  // timed iteration is the identical deterministic run, so best-of-N
  // isolates the kernel from scheduler noise.
  run_chaos(7, 2);
  Result r;
  double best = 0;
  for (int it = 0; it < kIters; ++it) {
    std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
    double t0 = now_wall();
    chaos::ChaosResult res = run_chaos(7, kHorizonS);
    double wall = now_wall() - t0;
    std::uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs0;
    if (!res.ok())
      std::fprintf(stderr,
                   "warning: chaos_flight run reported a violation\n");
    r.events = res.sim_events;
    r.wall_s += wall;
    best = std::max(best, static_cast<double>(res.sim_events) / wall);
    r.allocs_per_event =
        static_cast<double>(allocs) / static_cast<double>(res.sim_events);
  }
  r.events_per_sec = best;
  return r;
}

// --- traced_flight -------------------------------------------------------
// The chaos_flight run with a full-mask flight recorder installed — the
// path every golden-trace test, chaos corpus seed and trace_analyze
// workflow actually executes. allocs/record isolates the recorder's own
// allocation cost by subtracting the untraced run's allocations (both
// runs are deterministic, so the delta is exactly the tracing overhead).
chaos::ChaosResult run_chaos_traced(std::uint64_t seed,
                                    std::int64_t horizon_s) {
  chaos::EngineOptions opt;
  opt.scenario.seed = seed;
  opt.scenario.guarantee = appmodel::Guarantee::kGapless;
  opt.plan.horizon = seconds(horizon_s);
  opt.flight = true;
  opt.flight_mask = riv::trace::kAllComponents;
  return chaos::ChaosEngine(opt).run();
}

Result bench_traced_flight() {
  constexpr std::int64_t kHorizonS = 60;
  constexpr int kIters = 3;
  run_chaos_traced(7, 2);  // warm-up
  std::uint64_t untraced0 = g_alloc_count.load(std::memory_order_relaxed);
  run_chaos(7, kHorizonS);
  std::uint64_t untraced_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - untraced0;
  Result r;
  double best = 0;
  for (int it = 0; it < kIters; ++it) {
    std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
    double t0 = now_wall();
    chaos::ChaosResult res = run_chaos_traced(7, kHorizonS);
    double wall = now_wall() - t0;
    std::uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs0;
    if (!res.ok())
      std::fprintf(stderr,
                   "warning: traced_flight run reported a violation\n");
    r.events = res.sim_events;
    r.wall_s += wall;
    best = std::max(best, static_cast<double>(res.sim_events) / wall);
    r.records = res.flight->size();
    r.bytes_per_record =
        static_cast<double>(res.flight->payload_bytes()) /
        static_cast<double>(r.records);
    double overhead =
        allocs > untraced_allocs
            ? static_cast<double>(allocs - untraced_allocs)
            : 0.0;
    r.allocs_per_record = overhead / static_cast<double>(r.records);
  }
  r.events_per_sec = best;
  return r;
}

// --- steady_home ---------------------------------------------------------
Result bench_steady_home() {
  constexpr std::int64_t kSimMinutes = 10;
  ScenarioOptions opt;  // 5 processes, 10 Hz, gapless
  auto home = make_scenario(opt);
  home->start();
  double t0 = now_wall();
  home->run_for(minutes(kSimMinutes));
  double wall = now_wall() - t0;
  Result r;
  r.events = home->sim().events_fired();
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.wall_s_per_sim_hour = wall * (60.0 / static_cast<double>(kSimMinutes));
  return r;
}

// --- seed_sweep ----------------------------------------------------------
Result bench_seed_sweep(int jobs, bool* hashes_match) {
  const std::vector<std::uint64_t> seeds = {3, 7, 11, 19};
  constexpr std::int64_t kHorizonS = 10;
  auto run_all = [&](int j) {
    return parallel_map<chaos::ChaosResult>(
        j, seeds.size(),
        [&](std::size_t i) { return run_chaos(seeds[i], kHorizonS); });
  };
  std::vector<chaos::ChaosResult> serial = run_all(1);
  double t0 = now_wall();
  std::vector<chaos::ChaosResult> parallel = run_all(jobs);
  double wall = now_wall() - t0;
  *hashes_match = true;
  Result r;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    r.events += parallel[i].sim_events;
    if (parallel[i].trace_hash != serial[i].trace_hash) {
      *hashes_match = false;
      std::fprintf(stderr,
                   "seed %llu: parallel trace hash differs from serial!\n",
                   static_cast<unsigned long long>(seeds[i]));
    }
  }
  r.wall_s = wall;
  r.events_per_sec = static_cast<double>(r.events) / wall;
  return r;
}

// --- checkpoint ----------------------------------------------------------
// The checkpoint layer's costs, measured on the chaos reference workload
// (seed 7, gapless) snapshotted mid-run: RIVC size, capture/save/load
// wall time, restore (= re-execution to the snapshot time + byte-level
// attestation), a bare fork(2) round-trip, and the headline — a
// fork-per-seed sweep's wall-clock against from-scratch runs of the same
// seeds. Attestation and fork-vs-fresh equality are hard gates: a
// mismatch fails the bench regardless of --check.
struct CheckpointResult {
  std::uint64_t snapshot_bytes{0};
  double capture_us{0};
  double save_us{0};
  double load_us{0};
  double restore_us{0};
  double fork_us{0};
  double sweep_fresh_wall_s{0};
  double sweep_forked_wall_s{0};
  double sweep_speedup{0};
  bool ok{false};
};

std::string chaos_outcome_line(const chaos::ChaosResult& r) {
  return std::string(r.ok() ? "ok" : "FAIL") +
         " faults=" + std::to_string(r.faults_injected) +
         " trace=" + r.trace_digest;
}

CheckpointResult bench_checkpoint(int jobs) {
  CheckpointResult out;
  out.ok = true;

  chaos::EngineOptions opt;
  opt.scenario.seed = 7;
  opt.scenario.guarantee = appmodel::Guarantee::kGapless;
  opt.plan.horizon = seconds(30);

  // capture / save / load / restore on a mid-run snapshot.
  std::unique_ptr<checkpoint::Scenario> sc =
      checkpoint::make_chaos_scenario(opt);
  sc->start();
  sc->run_to(TimePoint{} + seconds(15));
  constexpr int kIters = 5;
  checkpoint::Snapshot snap;
  out.capture_us = 1e18;
  for (int i = 0; i < kIters; ++i) {
    double t0 = now_wall();
    snap = sc->capture();
    out.capture_us = std::min(out.capture_us, (now_wall() - t0) * 1e6);
  }
  out.snapshot_bytes = checkpoint::encode(snap).size();
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_kernel.rivc")
          .string();
  out.save_us = 1e18;
  out.load_us = 1e18;
  for (int i = 0; i < kIters; ++i) {
    std::string err;
    double t0 = now_wall();
    if (!checkpoint::save(snap, path, &err)) {
      std::fprintf(stderr, "checkpoint save failed: %s\n", err.c_str());
      out.ok = false;
    }
    out.save_us = std::min(out.save_us, (now_wall() - t0) * 1e6);
    checkpoint::Snapshot loaded;
    t0 = now_wall();
    if (!checkpoint::load(path, &loaded, &err)) {
      std::fprintf(stderr, "checkpoint load failed: %s\n", err.c_str());
      out.ok = false;
    }
    out.load_us = std::min(out.load_us, (now_wall() - t0) * 1e6);
  }
  {
    double t0 = now_wall();
    checkpoint::RestoreReport rep = checkpoint::restore(snap);
    out.restore_us = (now_wall() - t0) * 1e6;
    if (!rep.ok) {
      std::fprintf(stderr, "restore attestation FAILED: %s\n",
                   rep.error.c_str());
      out.ok = false;
    }
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);

  if (!checkpoint::fork_supported()) {
    std::fprintf(stderr,
                 "fork(2) unavailable: sweep speed-up not measured\n");
    return out;
  }

  // Bare fork round-trip: address-space copy + pipe + wait.
  out.fork_us = 1e18;
  for (int i = 0; i < kIters; ++i) {
    double t0 = now_wall();
    checkpoint::ForkResult fr =
        checkpoint::fork_run([] { return std::string("x"); });
    double us = (now_wall() - t0) * 1e6;
    if (!fr.ok) out.ok = false;
    out.fork_us = std::min(out.fork_us, us);
  }

  // Fork-per-seed sweep vs from-scratch: same warm-up prefix, same plan
  // seeds, outcome lines must match exactly. The configuration is
  // warm-up-dominated (120 s shared prefix, 10 s of chaos per seed) —
  // the shape the fork API exists for: from-scratch re-executes the
  // prefix N times, the forked sweep once, so the speed-up holds even on
  // a single core (it is eliminated work, not parallelism).
  const std::vector<std::uint64_t> seeds = {3, 7, 11, 19};
  const Duration warmup = seconds(120);
  auto make_options = [] {
    chaos::EngineOptions o;
    o.scenario.seed = 3;
    o.scenario.guarantee = appmodel::Guarantee::kGapless;
    o.plan.horizon = seconds(10);
    o.defer_plan = true;
    return o;
  };
  std::vector<std::string> fresh;
  double t0 = now_wall();
  for (std::uint64_t seed : seeds) {
    chaos::ChaosSession session(make_options());
    session.run_to(TimePoint{} + warmup);
    session.arm_plan(seed, warmup);
    session.run_to(session.run_end());
    chaos::ChaosResult r;
    session.finish(r);
    fresh.push_back(chaos_outcome_line(r));
  }
  out.sweep_fresh_wall_s = now_wall() - t0;

  t0 = now_wall();
  chaos::ChaosSession shared(make_options());
  shared.run_to(TimePoint{} + warmup);
  std::vector<checkpoint::ForkResult> forked = checkpoint::fork_sweep(
      seeds.size(), static_cast<std::size_t>(jobs),
      [&shared, &seeds, warmup](std::size_t i) {
        shared.arm_plan(seeds[i], warmup);
        shared.run_to(shared.run_end());
        chaos::ChaosResult r;
        shared.finish(r);
        return chaos_outcome_line(r);
      });
  out.sweep_forked_wall_s = now_wall() - t0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (!forked[i].ok || forked[i].payload != fresh[i]) {
      std::fprintf(stderr,
                   "fork-vs-fresh MISMATCH seed %llu: '%s' vs '%s'\n",
                   static_cast<unsigned long long>(seeds[i]),
                   forked[i].payload.c_str(), fresh[i].c_str());
      out.ok = false;
    }
  }
  out.sweep_speedup = out.sweep_forked_wall_s > 0
                          ? out.sweep_fresh_wall_s / out.sweep_forked_wall_s
                          : 0;
  return out;
}

void print_checkpoint(const CheckpointResult& r) {
  std::printf("%-14s %8llu snapshot-B   capture %.0fus  save %.0fus  "
              "load %.0fus  restore %.0fus\n",
              "checkpoint",
              static_cast<unsigned long long>(r.snapshot_bytes),
              r.capture_us, r.save_us, r.load_us, r.restore_us);
  if (r.sweep_speedup > 0)
    std::printf("%-14s fork %.0fus   sweep fresh %.3fs vs forked %.3fs  "
                "(%.2fx)\n",
                "", r.fork_us, r.sweep_fresh_wall_s, r.sweep_forked_wall_s,
                r.sweep_speedup);
  std::printf("%-14s attestation + fork-vs-fresh: %s\n", "",
              r.ok ? "ok" : "FAILED");
}

void append_checkpoint_json(std::string& out, const CheckpointResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"checkpoint\": {\"snapshot_bytes\": %llu, \"capture_us\": "
      "%.1f, \"save_us\": %.1f, \"load_us\": %.1f, \"restore_us\": %.1f, "
      "\"fork_us\": %.1f, \"sweep_fresh_wall_s\": %.4f, "
      "\"sweep_forked_wall_s\": %.4f, \"sweep_speedup\": %.2f}\n",
      static_cast<unsigned long long>(r.snapshot_bytes), r.capture_us,
      r.save_us, r.load_us, r.restore_us, r.fork_us, r.sweep_fresh_wall_s,
      r.sweep_forked_wall_s, r.sweep_speedup);
  out += buf;
}

// --- reporting -----------------------------------------------------------
void print_result(const char* name, const Result& r) {
  std::printf("%-14s %12.0f events/s   %9llu events   %7.3f wall-s", name,
              r.events_per_sec, static_cast<unsigned long long>(r.events),
              r.wall_s);
  if (r.allocs_per_event >= 0)
    std::printf("   %6.2f allocs/event", r.allocs_per_event);
  if (r.wall_s_per_sim_hour >= 0)
    std::printf("   %6.2f wall-s/sim-hour", r.wall_s_per_sim_hour);
  if (r.bytes_per_record >= 0)
    std::printf("   %9llu records   %6.1f bytes/record   %6.3f allocs/record",
                static_cast<unsigned long long>(r.records),
                r.bytes_per_record, r.allocs_per_record);
  std::printf("\n");
}

void append_json(std::string& out, const char* name, const Result& r,
                 bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"events_per_sec\": %.0f, \"events\": %llu, "
                "\"wall_s\": %.4f",
                name, r.events_per_sec,
                static_cast<unsigned long long>(r.events), r.wall_s);
  out += buf;
  if (r.allocs_per_event >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"allocs_per_event\": %.3f",
                  r.allocs_per_event);
    out += buf;
  }
  if (r.wall_s_per_sim_hour >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"wall_s_per_sim_hour\": %.3f",
                  r.wall_s_per_sim_hour);
    out += buf;
  }
  if (r.bytes_per_record >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ", \"records\": %llu, \"bytes_per_record\": %.1f, "
                  "\"allocs_per_record\": %.3f",
                  static_cast<unsigned long long>(r.records),
                  r.bytes_per_record, r.allocs_per_record);
    out += buf;
  }
  out += last ? "}\n" : "},\n";
}

// Pull "scenario" -> events_per_sec out of a previously written
// BENCH_kernel.json. Minimal parser for exactly the format append_json
// writes; returns -1 when the scenario is absent.
double baseline_events_per_sec(const std::string& json,
                               const std::string& scenario) {
  std::string needle = "\"" + scenario + "\"";
  auto at = json.find(needle);
  if (at == std::string::npos) return -1;
  auto key = json.find("\"events_per_sec\":", at);
  if (key == std::string::npos) return -1;
  return std::atof(json.c_str() + key + std::strlen("\"events_per_sec\":"));
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace
}  // namespace riv::bench

int main(int argc, char** argv) {
  using namespace riv::bench;
  int jobs = 2;
  std::vector<std::string> check_paths;  // --check is repeatable
  std::string json_path;
  riv::bench::Output out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--jobs N] [--check BASELINE.json] "
                     "[--json PATH] [--out DIR]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--check") {
      check_paths.push_back(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--out") {
      out.dir = next();
    }
  }
  if (jobs < 1) jobs = 1;

  print_header("bench_kernel — simulation-kernel hot path",
               "repo artifact (no paper figure): events/sec, wall-s per "
               "simulated hour, allocs/event");

  Result timer_churn = bench_timer_churn();
  print_result("timer_churn", timer_churn);
  Result chaos_flight = bench_chaos_flight();
  print_result("chaos_flight", chaos_flight);
  Result traced_flight = bench_traced_flight();
  print_result("traced_flight", traced_flight);
  Result steady_home = bench_steady_home();
  print_result("steady_home", steady_home);
  bool hashes_match = true;
  Result seed_sweep = bench_seed_sweep(jobs, &hashes_match);
  print_result("seed_sweep", seed_sweep);
  std::printf("seed_sweep: parallel (--jobs %d) per-seed hashes %s serial\n",
              jobs, hashes_match ? "MATCH" : "DIFFER FROM");
  CheckpointResult checkpoint = bench_checkpoint(jobs);
  print_checkpoint(checkpoint);

  std::string json = "{\n  \"bench\": \"kernel\",\n  \"scenarios\": {\n";
  append_json(json, "timer_churn", timer_churn, false);
  append_json(json, "chaos_flight", chaos_flight, false);
  append_json(json, "traced_flight", traced_flight, false);
  append_json(json, "steady_home", steady_home, false);
  append_json(json, "seed_sweep", seed_sweep, false);
  append_checkpoint_json(json, checkpoint);
  json += "  }\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("json written: %s\n", json_path.c_str());
  }
  if (out.enabled()) {
    std::FILE* f = out.open("BENCH_kernel.json");
    if (f != nullptr) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("json written: %s\n",
                  out.path_for("BENCH_kernel.json").c_str());
    }
  }

  int failures = hashes_match ? 0 : 1;
  if (!checkpoint.ok) ++failures;
  if (!check_paths.empty()) {
    // Concatenate all baseline files: the scenario lookup searches the
    // whole blob, so baselines may be split across files (BENCH_kernel.json
    // for the kernel scenarios, BENCH_trace.json for traced_flight).
    std::string baseline;
    for (const std::string& p : check_paths) {
      std::string one = read_file(p);
      if (one.empty()) {
        std::fprintf(stderr, "cannot read baseline %s\n", p.c_str());
        return 1;
      }
      baseline += one;
    }
    struct {
      const char* name;
      double current;
    } checks[] = {
        {"timer_churn", timer_churn.events_per_sec},
        {"chaos_flight", chaos_flight.events_per_sec},
        {"traced_flight", traced_flight.events_per_sec},
        {"steady_home", steady_home.events_per_sec},
    };
    for (const auto& c : checks) {
      double base = baseline_events_per_sec(baseline, c.name);
      if (base <= 0) {
        std::fprintf(stderr, "baseline missing scenario %s\n", c.name);
        ++failures;
        continue;
      }
      double ratio = c.current / base;
      bool ok = ratio >= 0.7;  // fail on >30% regression
      std::printf("check %-14s %12.0f vs baseline %12.0f  (%.2fx)  %s\n",
                  c.name, c.current, base, ratio, ok ? "ok" : "REGRESSION");
      if (!ok) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
