// Figure 1: events received at different processes from different sensors
// in a 15-day sample home deployment (§2.1).
//
// Paper expectations: significant per-process skew for some sensors due to
// interference/obstructions — e.g. differences of ~2357 events for Door 1,
// ~58 for Motion 1, ~21 for Motion 3 — while the fraction of events lost
// on *all* links simultaneously stays tiny (~0.01-1%), which is the
// opportunity Gapless delivery exploits.
#include <cstdio>

#include "workload/fig1.hpp"

int main() {
  using namespace riv;
  workload::Fig1Options options;
  workload::Fig1Result result = workload::run_fig1_deployment(options);

  std::printf("\n==============================================================\n");
  std::printf("Figure 1: per-process event counts, 15-day deployment\n");
  std::printf("Paper expectation: large skew on Door 1 (~2300 events), small\n");
  std::printf("skews on motion sensors; almost no event lost on every link\n");
  std::printf("==============================================================\n\n");
  std::printf("%-10s %-9s %-9s %-9s %-9s %-7s\n", "sensor", "emitted",
              "proc1", "proc2", "proc3", "skew");
  for (const auto& row : result.rows) {
    std::printf("%-10s %-9llu", row.sensor.c_str(),
                static_cast<unsigned long long>(row.emitted));
    for (const auto& [p, n] : row.received)
      std::printf(" %-9llu", static_cast<unsigned long long>(n));
    std::printf(" %-7llu\n", static_cast<unsigned long long>(row.skew()));
  }
  std::printf("\nfraction of events lost on ALL links simultaneously: %.4f%%\n",
              100.0 * result.all_link_loss_fraction);
  return 0;
}
