// Figure 1: events received at different processes from different sensors
// in a 15-day sample home deployment (§2.1).
//
// Paper expectations: significant per-process skew for some sensors due to
// interference/obstructions — e.g. differences of ~2357 events for Door 1,
// ~58 for Motion 1, ~21 for Motion 3 — while the fraction of events lost
// on *all* links simultaneously stays tiny (~0.01-1%), which is the
// opportunity Gapless delivery exploits.
//
// Checkpointed long-run mode: --checkpoint-every D chunks the 15-day run
// and drops a RIVC snapshot ("fig1" scenario: sim.kernel + bus.devices
// sections) at every D-day boundary; --from-checkpoint F proves the
// snapshot by rebuilding the deployment, re-running to the snapshot time,
// byte-comparing a fresh capture against the stored sections (restore is
// re-execution + attestation, like everywhere in the checkpoint layer),
// then finishing the remaining days and printing the figure.
//
//   bench_fig1_deployment [--days D] [--checkpoint-every DAYS]
//                         [--checkpoint-dir DIR] [--from-checkpoint F]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "checkpoint/rivc.hpp"
#include "common/codec.hpp"
#include "workload/fig1.hpp"

namespace {

using namespace riv;

void print_figure(const workload::Fig1Result& result) {
  std::printf("\n==============================================================\n");
  std::printf("Figure 1: per-process event counts, 15-day deployment\n");
  std::printf("Paper expectation: large skew on Door 1 (~2300 events), small\n");
  std::printf("skews on motion sensors; almost no event lost on every link\n");
  std::printf("==============================================================\n\n");
  std::printf("%-10s %-9s %-9s %-9s %-9s %-7s\n", "sensor", "emitted",
              "proc1", "proc2", "proc3", "skew");
  for (const auto& row : result.rows) {
    std::printf("%-10s %-9llu", row.sensor.c_str(),
                static_cast<unsigned long long>(row.emitted));
    for (const auto& [p, n] : row.received)
      std::printf(" %-9llu", static_cast<unsigned long long>(n));
    std::printf(" %-7llu\n", static_cast<unsigned long long>(row.skew()));
  }
  std::printf("\nfraction of events lost on ALL links simultaneously: %.4f%%\n",
              100.0 * result.all_link_loss_fraction);
}

// params blob: duration (us) + process count — everything a rebuild needs
// beyond (name, seed).
std::vector<std::byte> encode_fig1_params(const workload::Fig1Options& o) {
  BinaryWriter w;
  w.duration(o.duration);
  w.u32(static_cast<std::uint32_t>(o.n_processes));
  return w.take();
}

bool decode_fig1_params(const std::vector<std::byte>& params,
                        workload::Fig1Options* out) {
  BinaryReader r(params);
  out->duration = r.duration();
  out->n_processes = static_cast<int>(r.u32());
  return r.ok() && r.at_end();
}

checkpoint::Snapshot capture_fig1(workload::Fig1Deployment& d,
                                  const workload::Fig1Options& opt) {
  checkpoint::Snapshot snap;
  snap.scenario = "fig1";
  snap.seed = opt.seed;
  snap.params = encode_fig1_params(opt);
  snap.at = d.now();
  BinaryWriter sim_w;
  d.checkpoint_sim(sim_w);
  snap.sections.push_back({"sim.kernel", sim_w.take()});
  BinaryWriter bus_w;
  d.checkpoint_bus(bus_w);
  snap.sections.push_back({"bus.devices", bus_w.take()});
  return snap;
}

int run_from_checkpoint(const std::string& path) {
  checkpoint::Snapshot snap;
  std::string err;
  if (!checkpoint::load(path, &snap, &err)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  if (snap.scenario != "fig1") {
    std::fprintf(stderr, "%s: not a fig1 checkpoint (scenario '%s')\n",
                 path.c_str(), snap.scenario.c_str());
    return 2;
  }
  workload::Fig1Options opt;
  opt.seed = snap.seed;
  if (!decode_fig1_params(snap.params, &opt)) {
    std::fprintf(stderr, "%s: undecodable fig1 params\n", path.c_str());
    return 2;
  }
  const double at_days =
      static_cast<double>((snap.at - TimePoint{}).us) / 86400e6;
  std::printf("restoring %s: fig1 seed=%llu at day %.2f of %.2f\n",
              path.c_str(), static_cast<unsigned long long>(snap.seed),
              at_days,
              static_cast<double>(opt.duration.us) / 86400e6);
  workload::Fig1Deployment d(opt);
  d.start();
  d.run_to(snap.at);
  checkpoint::Snapshot fresh = capture_fig1(d, opt);
  std::string diff = checkpoint::diff_snapshots(snap, fresh);
  if (!diff.empty()) {
    std::fprintf(stderr, "restore attestation FAILED: %s\n", diff.c_str());
    return 1;
  }
  std::printf("restore attested: sim.kernel + bus.devices byte-identical "
              "(restored ≡ uninterrupted)\n");
  d.run_to(d.end_time());
  print_figure(d.result());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace riv;
  double days_total = 15.0;
  double checkpoint_every_days = 0.0;
  std::string checkpoint_dir = "checkpoints";
  std::string from_checkpoint;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--days D] [--checkpoint-every DAYS] "
                     "[--checkpoint-dir DIR] [--from-checkpoint F]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      days_total = std::atof(next());
    } else if (arg == "--checkpoint-every") {
      checkpoint_every_days = std::atof(next());
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next();
    } else if (arg == "--from-checkpoint") {
      from_checkpoint = next();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!from_checkpoint.empty()) return run_from_checkpoint(from_checkpoint);

  workload::Fig1Options options;
  options.duration = microseconds(
      static_cast<std::int64_t>(days_total * 86400e6));

  if (checkpoint_every_days <= 0) {
    print_figure(workload::run_fig1_deployment(options));
    return 0;
  }

  std::error_code ec;
  std::filesystem::create_directories(checkpoint_dir, ec);
  workload::Fig1Deployment d(options);
  d.start();
  const Duration step = microseconds(
      static_cast<std::int64_t>(checkpoint_every_days * 86400e6));
  const TimePoint end = d.end_time();
  for (int k = 1;; ++k) {
    const TimePoint t = TimePoint{} + Duration{step.us * k};
    if (!(t < end)) break;
    d.run_to(t);
    checkpoint::Snapshot snap = capture_fig1(d, options);
    char day_buf[32];
    std::snprintf(day_buf, sizeof(day_buf), "%g", checkpoint_every_days * k);
    const std::string path =
        checkpoint_dir + "/fig1-day" + day_buf + ".rivc";
    std::string err;
    if (!checkpoint::save(snap, path, &err)) {
      std::fprintf(stderr, "checkpoint save failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("checkpoint: day %.2f -> %s (%zu + %zu section bytes)\n",
                static_cast<double>((t - TimePoint{}).us) / 86400e6,
                path.c_str(), snap.sections[0].payload.size(),
                snap.sections[1].payload.size());
  }
  d.run_to(end);
  print_figure(d.result());
  return 0;
}
