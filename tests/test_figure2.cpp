// The paper's Figure 2, verified structurally: a hub, a TV and a fridge
// run the DoorSensor => TurnLightOnOff => LightActuator app. The TV and
// fridge hear the door (active sensor nodes DS2/DS3), only the hub can
// switch the light (active actuator node LA1), and the logic node TL1 is
// active on the hub with shadows elsewhere. Events ingested at the TV or
// fridge must flow through the delivery service to the hub's logic node
// and out to the light.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

struct Figure2 : ::testing::Test {
  Figure2() {
    workload::HomeDeployment::Options opt;
    opt.seed = 321;
    opt.n_processes = 3;  // p1 = hub, p2 = TV, p3 = fridge
    home = std::make_unique<workload::HomeDeployment>(opt);

    devices::SensorSpec door;
    door.id = kDoor;
    door.name = "door";
    door.kind = devices::SensorKind::kDoor;
    door.tech = devices::Technology::kZWave;
    door.rate_hz = 2.0;
    home->add_sensor(door, {home->pid(1), home->pid(2)});  // TV + fridge

    devices::ActuatorSpec light;
    light.id = kLight;
    light.name = "light";
    light.tech = devices::Technology::kZWave;
    home->add_actuator(light, {home->pid(0)});  // hub only

    home->deploy(workload::apps::turn_light_on_off(
        kApp, kDoor, kLight, appmodel::Guarantee::kGapless));
  }
  std::unique_ptr<workload::HomeDeployment> home;
};

TEST_F(Figure2, ActiveAndShadowNodePlacementMatchesThePaper) {
  home->start();
  home->run_for(seconds(2));
  // Sensor nodes: active iff the host can hear the device (§3.3).
  EXPECT_FALSE(home->bus().sensor_in_range(home->pid(0), kDoor));  // DS1
  EXPECT_TRUE(home->bus().sensor_in_range(home->pid(1), kDoor));   // DS2
  EXPECT_TRUE(home->bus().sensor_in_range(home->pid(2), kDoor));   // DS3
  // Actuator nodes: only the hub's LA1 is active.
  EXPECT_TRUE(home->bus().actuator_in_range(home->pid(0), kLight));
  EXPECT_FALSE(home->bus().actuator_in_range(home->pid(1), kLight));
  EXPECT_FALSE(home->bus().actuator_in_range(home->pid(2), kLight));
  // Logic node TL1 active on the hub (it has the most active devices
  // among... all tie at 1, so the chain falls to the lowest id = hub).
  EXPECT_TRUE(home->process(0).logic_active(kApp));
  EXPECT_FALSE(home->process(1).logic_active(kApp));
  EXPECT_FALSE(home->process(2).logic_active(kApp));
}

TEST_F(Figure2, EventsFlowFromRemoteSensorNodesToHubLogicToLight) {
  home->start();
  home->run_for(seconds(30));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  ASSERT_GT(emitted, 40u);
  // The hub never hears the door directly; everything it processed came
  // over the ring from DS2/DS3.
  EXPECT_EQ(home->metrics().counter_value("ingest.p1.s1"), 0u);
  EXPECT_GT(home->metrics().counter_value("ingest.p2.s1"), 0u);
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 2);
  // Door open (value 1) on every second event: the light follows.
  const devices::Actuator& light = home->bus().actuator(kLight);
  EXPECT_GE(light.actions(), emitted - 4);
}

TEST_F(Figure2, ShadowSensorNodeGivesLogicTheLocalIllusion) {
  // §3.3: shadow nodes make remote devices look local — the app handler
  // runs on the hub against events of a sensor the hub cannot hear.
  home->start();
  home->run_for(seconds(10));
  const appmodel::LogicInstance* logic = home->process(0).logic(kApp);
  ASSERT_NE(logic, nullptr);
  EXPECT_GT(logic->events_consumed(), 15u);
  EXPECT_EQ(logic->events_consumed(), logic->triggers_fired());
}

TEST_F(Figure2, HubCrashMovesLogicButNotTheLight) {
  home->start();
  home->run_for(seconds(10));
  const devices::Actuator& light = home->bus().actuator(kLight);
  std::uint64_t before = light.actions();
  EXPECT_GT(before, 0u);
  home->process(0).crash();
  home->run_for(seconds(10));
  // Logic failed over to the TV...
  EXPECT_TRUE(home->process(1).logic_active(kApp));
  // ...but the light's only radio neighbour (the hub) is gone: commands
  // pend, and flow again once the hub recovers.
  std::uint64_t during = light.actions();
  home->process(0).recover();
  home->run_for(seconds(15));
  EXPECT_GT(light.actions(), during);
}

}  // namespace
}  // namespace riv
