// Tests for the replicated LWW store (extension): local semantics,
// replication, anti-entropy convergence, crash recovery, and stateful
// application behaviour across logic-node failover.
#include <gtest/gtest.h>

#include "store/replicated_store.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using store::Entry;
using store::ReplicatedStore;

TEST(LwwEntry, DominanceOrder) {
  Entry a{1.0, TimePoint{100}, 1, ProcessId{1}};
  Entry b{2.0, TimePoint{200}, 2, ProcessId{1}};
  EXPECT_TRUE(b.dominates(a));
  EXPECT_FALSE(a.dominates(b));
  Entry c{3.0, TimePoint{100}, 1, ProcessId{2}};
  EXPECT_TRUE(c.dominates(a));  // same time: higher writer id wins
  EXPECT_FALSE(a.dominates(c));
  EXPECT_FALSE(a.dominates(a));  // no self-dominance (merge is stable)
  Entry a2{4.0, TimePoint{100}, 2, ProcessId{1}};
  EXPECT_TRUE(a2.dominates(a));  // same writer, same time: later seq wins
}

struct StandaloneStore {
  explicit StandaloneStore(sim::Simulation& sim, ProcessId self,
                           sim::StableStore* stable = nullptr)
      : timers(sim) {
    ReplicatedStore::Hooks hooks;
    hooks.self = self;
    hooks.view = [this]() -> const std::set<ProcessId>& { return view; };
    hooks.timers = &timers;
    hooks.stable = stable;
    store = std::make_unique<ReplicatedStore>(std::move(hooks));
  }
  sim::ProcessTimers timers;
  std::set<ProcessId> view;
  std::unique_ptr<ReplicatedStore> store;
};

TEST(ReplicatedStore, LocalPutGet) {
  sim::Simulation sim(1);
  StandaloneStore s(sim, ProcessId{1});
  s.view = {ProcessId{1}};
  s.store->start();
  EXPECT_FALSE(s.store->get("x").has_value());
  s.store->put("x", 42.0);
  EXPECT_EQ(s.store->get("x"), 42.0);
  s.store->put("x", 43.0);
  EXPECT_EQ(s.store->get("x"), 43.0);
  EXPECT_EQ(s.store->size(), 1u);
}

TEST(ReplicatedStore, MergePrefersNewerWrite) {
  sim::Simulation sim(1);
  StandaloneStore s(sim, ProcessId{1});
  s.store->start();
  BinaryWriter newer;
  store::encode_entry(newer, "k", Entry{9.0, TimePoint{500}, 1, ProcessId{2}});
  s.store->on_update(newer.take());
  EXPECT_EQ(s.store->get("k"), 9.0);
  BinaryWriter older;
  store::encode_entry(older, "k", Entry{1.0, TimePoint{100}, 1, ProcessId{3}});
  s.store->on_update(older.take());
  EXPECT_EQ(s.store->get("k"), 9.0);  // stale write ignored
  EXPECT_EQ(s.store->merges_ignored(), 1u);
}

TEST(ReplicatedStore, CrashRecoveryFromStableStore) {
  sim::Simulation sim(1);
  sim::StableStore disk;
  {
    StandaloneStore s(sim, ProcessId{1}, &disk);
    s.store->start();
    s.store->put("total_kwh", 12.5);
    s.store->put("alerts", 3.0);
  }
  StandaloneStore recovered(sim, ProcessId{1}, &disk);
  recovered.store->start();
  EXPECT_EQ(recovered.store->get("total_kwh"), 12.5);
  EXPECT_EQ(recovered.store->get("alerts"), 3.0);
}

// --- full runtime: replication between processes ------------------------

devices::SensorSpec door_sensor() {
  devices::SensorSpec spec;
  spec.id = SensorId{1};
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = 2.0;
  return spec;
}

devices::ActuatorSpec light() {
  devices::ActuatorSpec spec;
  spec.id = ActuatorId{1};
  spec.name = "light";
  spec.tech = devices::Technology::kIp;
  return spec;
}

// An app whose handler counts events into replicated state.
appmodel::AppGraph counting_app() {
  appmodel::AppBuilder app(AppId{1}, "counter");
  auto op = app.add_operator("Count");
  op.add_sensor(SensorId{1}, appmodel::Guarantee::kGapless,
                appmodel::WindowSpec::count_window(1));
  op.add_actuator(ActuatorId{1}, appmodel::Guarantee::kGap);
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>& w,
         appmodel::TriggerContext& ctx) {
        double count = ctx.get_or("count", 0.0) +
                       static_cast<double>(w[0].events.size());
        ctx.put("count", count);
        ctx.actuate(ActuatorId{1}, count);
      });
  return app.build();
}

TEST(ReplicatedStore, StateReplicatesAcrossProcesses) {
  workload::HomeDeployment::Options opt;
  opt.seed = 81;
  opt.n_processes = 3;
  workload::HomeDeployment home(opt);
  home.add_sensor(door_sensor(), home.processes());
  home.add_actuator(light(), home.processes());
  home.deploy(counting_app());
  home.start();
  home.run_for(seconds(30));
  // The active logic wrote the count; anti-entropy spread it everywhere.
  double active_count = -1;
  for (int i = 0; i < 3; ++i) {
    auto v = home.process(i).kv().get("count");
    ASSERT_TRUE(v.has_value()) << "process " << i;
    if (home.process(i).logic_active(AppId{1})) active_count = *v;
  }
  EXPECT_GT(active_count, 40.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(*home.process(i).kv().get("count"), active_count, 5.0);
  }
}

TEST(ReplicatedStore, StatefulAppSurvivesFailover) {
  workload::HomeDeployment::Options opt;
  opt.seed = 82;
  opt.n_processes = 3;
  workload::HomeDeployment home(opt);
  home.add_sensor(door_sensor(), home.processes());
  home.add_actuator(light(), home.processes());
  home.deploy(counting_app());
  home.start();
  home.run_for(seconds(30));
  core::RivuletProcess* first = home.active_logic_process(AppId{1});
  double before = first->kv().get("count").value_or(0.0);
  ASSERT_GT(before, 40.0);
  first->crash();
  home.run_for(seconds(30));
  core::RivuletProcess* second = home.active_logic_process(AppId{1});
  ASSERT_NE(second, nullptr);
  double after = second->kv().get("count").value_or(0.0);
  // The running total continued from (roughly) where the old active left
  // off — it did not reset to zero.
  EXPECT_GT(after, before + 30.0);
}

TEST(ReplicatedStore, PartitionedWritesMergeLww) {
  workload::HomeDeployment::Options opt;
  opt.seed = 83;
  opt.n_processes = 4;
  workload::HomeDeployment home(opt);
  home.add_sensor(door_sensor(), home.processes());
  home.add_actuator(light(), home.processes());
  home.deploy(counting_app());
  home.start();
  home.run_for(seconds(5));
  home.net().set_partition({{home.pid(0), home.pid(1)},
                            {home.pid(2), home.pid(3)}});
  home.run_for(seconds(20));
  // Both sides wrote "count" independently.
  home.net().heal_partition();
  home.run_for(seconds(15));
  // After healing, everyone converges on one LWW winner.
  double v0 = home.process(0).kv().get("count").value_or(-1);
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(home.process(i).kv().get("count").value_or(-2), v0);
}

}  // namespace
}  // namespace riv
