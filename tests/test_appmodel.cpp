// Tests for combiners (§6.1) and Marzullo's fault-tolerant interval
// averaging (§6.2), including parameterized property sweeps.
#include <gtest/gtest.h>

#include "appmodel/combiner.hpp"
#include "appmodel/marzullo.hpp"
#include "common/rng.hpp"

namespace riv::appmodel {
namespace {

StreamWindow sw(const std::string& name) {
  StreamWindow w;
  w.stream = name;
  w.events.resize(1);
  return w;
}

TEST(AllCombiner, RequiresEveryStream) {
  AllCombiner c;
  EXPECT_FALSE(c.should_deliver({sw("a")}, 2));
  EXPECT_TRUE(c.should_deliver({sw("a"), sw("b")}, 2));
  EXPECT_FALSE(c.should_deliver({}, 0));
}

TEST(FTCombiner, ToleratesDeclaredFailures) {
  FTCombiner c(1);  // n - 1 streams suffice
  EXPECT_FALSE(c.should_deliver({sw("a")}, 3));
  EXPECT_TRUE(c.should_deliver({sw("a"), sw("b")}, 3));
  EXPECT_TRUE(c.should_deliver({sw("a"), sw("b"), sw("c")}, 3));
}

TEST(FTCombiner, AnySingleStreamWhenFIsNMinusOne) {
  // Listing 1: intrusion detection with FTCombiner(n-1).
  FTCombiner c(4);
  EXPECT_TRUE(c.should_deliver({sw("door1")}, 5));
}

TEST(FTCombiner, NeverDeliversEmpty) {
  FTCombiner c(10);
  EXPECT_FALSE(c.should_deliver({}, 3));
}

TEST(FTCombiner, CloneKeepsF) {
  FTCombiner c(2);
  auto clone = c.clone();
  EXPECT_TRUE(clone->should_deliver({sw("a")}, 3));
  EXPECT_FALSE(clone->should_deliver({sw("a")}, 4));
}

// --- Marzullo ---------------------------------------------------------------

TEST(Marzullo, AllAgreeingIntervalsIntersect) {
  std::vector<Interval> r = {{20.0, 22.0}, {20.5, 21.5}, {20.8, 22.5}};
  auto fused = marzullo_fuse(r, 0);
  ASSERT_TRUE(fused.has_value());
  EXPECT_DOUBLE_EQ(fused->lo, 20.8);
  EXPECT_DOUBLE_EQ(fused->hi, 21.5);
}

TEST(Marzullo, PaperSemanticsSmallestAndLargestInNMinusF) {
  // 4 intervals, f=1: need overlap of 3.
  std::vector<Interval> r = {{1, 5}, {2, 6}, {3, 7}, {100, 101}};
  auto fused = marzullo_fuse(r, 1);
  ASSERT_TRUE(fused.has_value());
  EXPECT_DOUBLE_EQ(fused->lo, 3.0);
  EXPECT_DOUBLE_EQ(fused->hi, 5.0);
}

TEST(Marzullo, OutlierMaskedWithFOne) {
  std::vector<Interval> r = {{20, 21}, {20.2, 21.2}, {50, 51}};
  auto fused = marzullo_fuse(r, 1);
  ASSERT_TRUE(fused.has_value());
  EXPECT_GE(fused->lo, 20.0);
  EXPECT_LE(fused->hi, 21.2);
}

TEST(Marzullo, NoOverlapWithoutFailureBudgetReturnsEmpty) {
  std::vector<Interval> r = {{0, 1}, {10, 11}, {20, 21}};
  EXPECT_FALSE(marzullo_fuse(r, 0).has_value());
}

TEST(Marzullo, EmptyInputReturnsEmpty) {
  EXPECT_FALSE(marzullo_fuse({}, 3).has_value());
}

TEST(Marzullo, SingleReadingPassesThrough) {
  auto fused = marzullo_fuse({{21.0, 21.5}}, 0);
  ASSERT_TRUE(fused.has_value());
  EXPECT_DOUBLE_EQ(fused->lo, 21.0);
  EXPECT_DOUBLE_EQ(fused->hi, 21.5);
}

TEST(Marzullo, TouchingIntervalsCountAsOverlap) {
  auto fused = marzullo_fuse({{1, 2}, {2, 3}}, 0);
  ASSERT_TRUE(fused.has_value());
  EXPECT_DOUBLE_EQ(fused->lo, 2.0);
  EXPECT_DOUBLE_EQ(fused->hi, 2.0);
}

TEST(Marzullo, ReversedEndpointsNormalized) {
  auto fused = marzullo_fuse({{2, 1}, {1.5, 3}}, 0);
  ASSERT_TRUE(fused.has_value());
  EXPECT_DOUBLE_EQ(fused->lo, 1.5);
  EXPECT_DOUBLE_EQ(fused->hi, 2.0);
}

TEST(Marzullo, FailureBudgets) {
  EXPECT_EQ(marzullo_max_failstop(5), 4u);
  EXPECT_EQ(marzullo_max_arbitrary(4), 1u);
  EXPECT_EQ(marzullo_max_arbitrary(7), 2u);
  EXPECT_EQ(marzullo_max_arbitrary(1), 0u);
  EXPECT_EQ(marzullo_max_arbitrary(0), 0u);
}

// --- property sweep: with <= f arbitrary liars, the fused interval always
// contains the true value -----------------------------------------------------

struct MarzulloCase {
  std::size_t n;
  std::uint64_t seed;
};

class MarzulloProperty : public ::testing::TestWithParam<MarzulloCase> {};

TEST_P(MarzulloProperty, FusedIntervalContainsTruthDespiteLiars) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const std::size_t f = marzullo_max_arbitrary(n);
  for (int trial = 0; trial < 200; ++trial) {
    const double truth = rng.uniform(15.0, 30.0);
    std::vector<Interval> readings;
    // n - f honest sensors: interval containing the truth.
    for (std::size_t i = 0; i < n - f; ++i) {
      double margin_lo = rng.uniform(0.05, 1.0);
      double margin_hi = rng.uniform(0.05, 1.0);
      readings.push_back({truth - margin_lo, truth + margin_hi});
    }
    // f arbitrary liars.
    for (std::size_t i = 0; i < f; ++i) {
      double a = rng.uniform(-100.0, 100.0);
      double b = a + rng.uniform(0.0, 10.0);
      readings.push_back({a, b});
    }
    auto fused = marzullo_fuse(readings, f);
    ASSERT_TRUE(fused.has_value());
    // The fused interval must intersect the honest consensus region, which
    // contains the truth.
    EXPECT_LE(fused->lo, truth + 1.0 + 1e-9);
    EXPECT_GE(fused->hi, truth - 1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MarzulloProperty,
    ::testing::Values(MarzulloCase{4, 1}, MarzulloCase{5, 2},
                      MarzulloCase{7, 3}, MarzulloCase{10, 4},
                      MarzulloCase{13, 5}));

class FTCombinerProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FTCombinerProperty, DeliversIffEnoughStreams) {
  const auto [total, f] = GetParam();
  FTCombiner c(static_cast<std::size_t>(f));
  for (int ready = 1; ready <= total; ++ready) {
    std::vector<StreamWindow> windows;
    for (int i = 0; i < ready; ++i) windows.push_back(sw("s"));
    bool expect = ready >= std::max(1, total - f);
    EXPECT_EQ(c.should_deliver(windows, static_cast<std::size_t>(total)),
              expect)
        << "total=" << total << " f=" << f << " ready=" << ready;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FTCombinerProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values(0, 1, 2, 7)));

}  // namespace
}  // namespace riv::appmodel
